module fgcs

go 1.22
