// Comparison example: the paper's Figure 7 in miniature — the semi-Markov
// predictor against the linear time-series models of Table 1 (AR, BM, MA,
// ARMA, LAST from the RPS toolkit), scored by the relative error of the
// predicted temporal reliability on windows starting at 08:00 on weekdays.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"fgcs/internal/experiments"
	"fgcs/internal/workload"
)

func main() {
	params := workload.DefaultParams()
	params.Machines = 2
	params.Days = 90
	ds, err := workload.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("testbed: %d machines x %d days\n\n", params.Machines, params.Days)

	cfg := experiments.DefaultF7Config()
	rows, err := experiments.RunF7(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("maximum relative error of predicted TR (%), windows starting 08:00 weekdays")
	fmt.Printf("%-12s", "model")
	for _, h := range cfg.LengthsHours {
		fmt.Printf("%8.0fh", h)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-12s", r.Model)
		for _, e := range r.MaxErr {
			fmt.Printf("%9.1f", 100*e)
		}
		fmt.Println()
	}
	fmt.Println("\nThe linear models forecast the load signal multi-step-ahead, which")
	fmt.Println("converges to the window mean — they cannot see rare failure events,")
	fmt.Println("so their error explodes with the prediction horizon. The SMP models")
	fmt.Println("the dynamic structure of availability and stays accurate (Section 7.2.1).")
}
