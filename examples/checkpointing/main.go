// Checkpointing example: the proactive job management the paper's prediction
// enables (Section 1 and future work) — turning checkpointing on adaptively
// based on the predicted temporal reliability.
//
// A 4-hour compute job is submitted to a busy lab machine at 08:00. Three
// recovery policies run against the identical recorded future:
//
//   - restart:     no checkpoints; every guest kill loses all progress;
//   - fixed:       checkpoint every 30 minutes regardless of prediction;
//   - TR-adaptive: query the SMP predictor and checkpoint at an interval
//     sized so that the probability of losing the interval is bounded.
//
// The example reports wall-clock completion time, kills survived and compute
// hours lost for each policy.
//
//	go run ./examples/checkpointing
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/core"
	"fgcs/internal/ishare"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

const (
	jobWork  = 4 * time.Hour
	jobMemMB = 100
	startDay = 60 // first test day
	// ckptCost is the compute time consumed by taking one checkpoint
	// (serializing and shipping the guest state).
	ckptCost = 2 * time.Minute
)

func main() {
	params := workload.DefaultParams()
	params.Machines = 1
	params.Days = 90
	params.ActivityScale = 1.3 // a busy machine, so failures actually happen
	ds, err := workload.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	machine := ds.Machines[0]

	// Evaluate over every test weekday: some are calm (checkpoint
	// overhead is pure waste), some kill the job repeatedly (recovery is
	// everything). A useful policy must win on average.
	var testDays []int
	for d := startDay; d < params.Days-2; d++ {
		if machine.Days[d].Type() == trace.Weekday {
			testDays = append(testDays, d)
		}
	}
	fmt.Printf("job: %v of compute, submitted at 08:00 on each of %d weekdays of %s\n",
		jobWork, len(testDays), machine.ID)
	fmt.Printf("checkpoint cost: %v of compute per checkpoint\n", ckptCost)

	// The TR-adaptive policy sizes its checkpoint interval so the
	// predicted probability of losing an interval stays below 25%.
	pred, err := core.NewPredictor(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	adaptive := chooseInterval(pred, 8*time.Hour)
	fmt.Printf("predicted TR at 08:00: 1h=%.3f 2h=%.3f 4h=%.3f -> adaptive checkpoint interval %v\n\n",
		mustTR(pred, 8*time.Hour, time.Hour),
		mustTR(pred, 8*time.Hour, 2*time.Hour),
		mustTR(pred, 8*time.Hour, 4*time.Hour),
		adaptive)

	fmt.Printf("\n%-14s %-14s %-14s %-7s %s\n", "policy", "mean wall", "worst wall", "kills", "checkpoints")
	for _, pol := range []struct {
		name string
		ckpt time.Duration // 0 = restart from scratch
	}{
		{"restart", 0},
		{"fixed-15m", 15 * time.Minute},
		{"fixed-2h", 2 * time.Hour},
		{"TR-adaptive", adaptive},
	} {
		var total, worst time.Duration
		kills, ckpts := 0, 0
		for _, day := range testDays {
			res := runPolicy(machine, day, pol.ckpt)
			total += res.wall
			if res.wall > worst {
				worst = res.wall
			}
			kills += res.kills
			ckpts += res.checkpoints
		}
		mean := total / time.Duration(len(testDays))
		fmt.Printf("%-14s %-14s %-14s %-7d %d\n", pol.name, mean.Round(time.Minute), worst.Round(time.Minute), kills, ckpts)
	}
	fmt.Println("\nCheckpointing guided by the availability prediction keeps the lost work")
	fmt.Println("bounded without checkpointing blindly often — the proactive management")
	fmt.Println("the paper's prediction framework was built for.")
}

func mustTR(p *core.Predictor, start, length time.Duration) float64 {
	pr, err := p.TR(trace.Weekday, predict.Window{Start: start, Length: length})
	if err != nil {
		log.Fatal(err)
	}
	return pr.TR
}

// chooseInterval applies the Young/Daly optimum interval sqrt(2*C*MTBF)
// with the mean time between failures derived from the PREDICTED temporal
// reliability: lambda = -ln(TR(W))/W. This is exactly the proactive use of
// the prediction the paper proposes — no failure log parsing, no manual
// tuning, just a TR query.
func chooseInterval(p *core.Predictor, start time.Duration) time.Duration {
	window := jobWork
	tr := mustTR(p, start, window)
	if tr >= 0.999 {
		return jobWork // effectively no checkpointing needed
	}
	if tr < 1e-6 {
		tr = 1e-6
	}
	lambda := -math.Log(tr) / window.Hours() // failures per hour
	hours := math.Sqrt(2 * ckptCost.Hours() / lambda)
	iv := time.Duration(hours * float64(time.Hour)).Round(time.Minute)
	if iv < 5*time.Minute {
		iv = 5 * time.Minute
	}
	if iv > jobWork {
		iv = jobWork
	}
	return iv
}

type result struct {
	wall        time.Duration
	kills       int
	lost        time.Duration
	checkpoints int
}

// runPolicy replays the machine's recorded days through a real gateway,
// resubmitting the job after each kill (from the last checkpoint when the
// policy checkpoints).
func runPolicy(machine *trace.Machine, dayIdx int, ckpt time.Duration) result {
	cfg := avail.DefaultConfig()
	clock := simclock.NewVirtual(machine.Days[dayIdx].Date)
	sm, err := ishare.NewStateManager(machine.ID, machine.Period, cfg, clock, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	gw, err := ishare.NewGateway(machine.ID, cfg, machine.Period, clock, sm)
	if err != nil {
		log.Fatal(err)
	}

	var res result
	checkpointed := 0.0 // seconds of progress safely persisted
	start := 8 * time.Hour
	submit := func(resume float64) string {
		resp, err := gw.Submit(context.Background(), ishare.SubmitReq{
			Name:                   "sim",
			WorkSeconds:            jobWork.Seconds(),
			MemMB:                  jobMemMB,
			InitialProgressSeconds: resume,
		})
		if err != nil {
			log.Fatal(err)
		}
		return resp.JobID
	}
	jobID := submit(0)
	elapsed := time.Duration(0)

	for d := dayIdx; d < len(machine.Days); d++ {
		day := machine.Days[d]
		lo := 0
		if d == dayIdx {
			lo = day.IndexAt(start)
		}
		for i := lo; i < day.Len(); i++ {
			t := day.Date.Add(time.Duration(i) * day.Period)
			gw.Record(t, day.Samples[i])
			elapsed += day.Period
			st, err := gw.JobStatus(context.Background(), ishare.JobStatusReq{JobID: jobID})
			if err != nil {
				log.Fatal(err)
			}
			switch st.State {
			case "completed":
				res.wall = elapsed
				return res
			case "killed":
				res.kills++
				res.lost += time.Duration(st.ProgressSeconds-checkpointed) * time.Second
				resume := 0.0
				if ckpt > 0 {
					resume = checkpointed
				}
				jobID = submit(resume)
			default:
				if ckpt > 0 && time.Duration(st.ProgressSeconds-checkpointed)*time.Second >= ckpt {
					checkpointed = st.ProgressSeconds // take a checkpoint
					res.checkpoints++
					elapsed += ckptCost // checkpointing stalls the guest
				}
			}
		}
	}
	res.wall = elapsed
	return res
}
