// Quickstart: generate a synthetic testbed trace, build the semi-Markov
// availability predictor over one machine's history, and predict the
// temporal reliability of a few future time windows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fgcs/internal/core"
	"fgcs/internal/predict"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

func main() {
	// 1. A month of monitoring history for one lab machine (in a real
	//    deployment this comes from the resource monitor's logs).
	params := workload.DefaultParams()
	params.Machines = 1
	params.Days = 28
	ds, err := workload.Generate(params)
	if err != nil {
		log.Fatal(err)
	}
	machine := ds.Machines[0]
	fmt.Printf("history: %s, %d days at %v sampling\n", machine.ID, len(machine.Days), machine.Period)

	// 2. Build the predictor (Th1/Th2 thresholds, suspend limit and guest
	//    working set all default to the paper's testbed values).
	p, err := core.NewPredictor(machine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict TR for guest jobs of different lengths at different
	//    times of day.
	fmt.Printf("\n%-22s %-10s %s\n", "window", "TR", "meaning")
	for _, q := range []struct {
		start  time.Duration
		length time.Duration
	}{
		{2 * time.Hour, 2 * time.Hour},  // overnight: lab is idle
		{8 * time.Hour, 2 * time.Hour},  // morning
		{14 * time.Hour, 2 * time.Hour}, // afternoon
		{19 * time.Hour, 2 * time.Hour}, // evening project rush
		{8 * time.Hour, 10 * time.Hour}, // a long job across the day
	} {
		w := predict.Window{Start: q.start, Length: q.length}
		pred, err := p.TR(trace.Weekday, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-10.4f chance the guest job survives\n", w, pred.TR)
	}

	// 4. The scheduler-style query: a 3-hour job submitted "now".
	now := params.Start.AddDate(0, 0, 21).Add(10*time.Hour + 30*time.Minute)
	tr, err := p.TRAt(now, 3*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3h job at %v: TR = %.4f\n", now.Format("Mon 15:04"), tr)
}
