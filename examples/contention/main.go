// Contention example: reproduce the empirical studies of Section 3.2 that
// motivate the five-state availability model — the reduction of host CPU
// usage caused by a guest process at default and lowest priority, the
// emergent thresholds Th1 and Th2, and the separation between CPU and
// memory contention (thrashing).
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"
	"time"

	"fgcs/internal/host"
)

func main() {
	m := host.DefaultMachine()
	dur := 10 * time.Minute

	fmt.Println("CPU contention: reduction rate of host CPU usage (5% = noticeable slowdown)")
	fmt.Printf("%-8s %-14s %s\n", "L_H%", "guest nice 0", "guest nice 19")
	for _, l := range []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90} {
		row := [2]float64{}
		for pi, nice := range []int{0, 19} {
			sum := 0.0
			const trials = 3
			for s := 0; s < trials; s++ {
				hosts := []host.Proc{{Name: "host", IsolatedCPU: l, MemMB: 60}}
				_, _, red, err := host.Reduction(m, hosts, host.Guest{Nice: nice, MemMB: 50}, dur, uint64(10+s))
				if err != nil {
					log.Fatal(err)
				}
				sum += red
			}
			row[pi] = 100 * sum / trials
		}
		fmt.Printf("%-8.0f %-14.2f %.2f\n", l*100, row[0], row[1])
	}

	fmt.Println("\nderiving the thresholds (this is experiment E1, trimmed):")
	cfg := host.DefaultE1Config()
	cfg.GroupSizes = []int{1}
	cfg.Trials = 3
	cfg.Duration = 10 * time.Minute
	res, err := host.RunE1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Th1 = %.0f%% (renice the guest above this; paper: 20%%)\n", res.Th1)
	fmt.Printf("Th2 = %.0f%% (terminate the guest above this; paper: 60%%)\n", res.Th2)

	fmt.Println("\nmemory contention: SPEC-like guests vs Musbus-like host workloads (384 MB machine)")
	cells, err := host.RunE2(host.E2Config{Machine: m, Duration: 5 * time.Minute, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-14s %-6s %-11s %s\n", "guest", "host", "nice", "reduction%", "thrashing")
	for _, c := range cells {
		if c.GuestNice != 19 {
			continue // the renice-always policy of practical FGCS systems
		}
		fmt.Printf("%-14s %-14s %-6d %-11.1f %v\n", c.Guest, c.Host, c.GuestNice, 100*c.Reduction, c.Thrashing)
	}
	fmt.Println("\nthrashing occurs exactly when working sets exceed physical memory,")
	fmt.Println("and no priority change prevents it — hence the separate S4 state.")
}
