// Scheduler example: proactive, availability-aware job placement on a
// simulated FGCS testbed (the motivating application of the paper).
//
// A client must place a stream of compute jobs on lab machines. The
// TR-aware scheduler queries each machine's gateway for its predicted
// temporal reliability over the job's execution window and picks the most
// reliable machine; the baseline picks machines round-robin. Both run
// against the same future (the actual recorded days), so the comparison
// shows exactly what the prediction buys: fewer guest kills and fewer
// wasted compute hours.
//
//	go run ./examples/scheduler
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/experiments"
	"fgcs/internal/ishare"
	"fgcs/internal/predict"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

const (
	nMachines = 6
	histDays  = 60 // days of history the predictor sees
	jobHours  = 3
)

func main() {
	// A heterogeneous testbed: two busy machines near the lab entrance,
	// two normal ones, two quiet ones in the corner. The scheduler knows
	// nothing about this — it only sees the monitor histories.
	ds, err := experiments.HeterogeneousTestbed(90, experiments.DefaultTestbedScales, 100)
	if err != nil {
		log.Fatal(err)
	}
	params := workload.DefaultParams()
	params.Days = 90
	cfg := avail.DefaultConfig()
	smp := predict.SMP{Cfg: cfg}

	// Jobs arrive on each test day at these hours.
	startHours := []int{9, 13, 17}

	type tally struct{ completed, killed int }
	var trAware, roundRobin tally
	rrNext := 0

	for dayIdx := histDays; dayIdx < params.Days; dayIdx++ {
		date := params.Start.AddDate(0, 0, dayIdx)
		if trace.TypeOfDate(date) != trace.Weekday {
			continue
		}
		for _, hour := range startHours {
			w := predict.Window{Start: time.Duration(hour) * time.Hour, Length: jobHours * time.Hour}

			// The TR-aware scheduler: predict each machine's TR over
			// the window from its history, pick the best.
			best, bestTR := -1, -1.0
			for mi, m := range ds.Machines {
				var hist []*trace.Day
				for _, d := range m.Days[:dayIdx] {
					if d.Type() == trace.Weekday {
						hist = append(hist, d)
					}
				}
				pred, err := smp.Predict(hist, w)
				if err != nil {
					continue
				}
				if pred.TR > bestTR {
					best, bestTR = mi, pred.TR
				}
			}

			// Both schedulers face the same ground truth: does the
			// chosen machine actually stay available?
			outcome := func(mi int) bool {
				day := ds.Machines[mi].Days[dayIdx]
				return avail.WindowSurvives(day.Window(w.Start, w.Length), cfg, day.Period)
			}
			if best >= 0 {
				if outcome(best) {
					trAware.completed++
				} else {
					trAware.killed++
				}
			}
			pick := rrNext % nMachines
			rrNext++
			if outcome(pick) {
				roundRobin.completed++
			} else {
				roundRobin.killed++
			}
		}
	}

	fmt.Printf("placed %d jobs of %dh on %d machines (%d days of history)\n\n",
		trAware.completed+trAware.killed, jobHours, nMachines, histDays)
	report := func(name string, t tally) {
		total := t.completed + t.killed
		fmt.Printf("%-22s completed %3d / %3d (%.0f%%), killed %d\n",
			name, t.completed, total, 100*float64(t.completed)/float64(total), t.killed)
	}
	report("TR-aware scheduler:", trAware)
	report("round-robin baseline:", roundRobin)

	// The same decision through the real iShare components, end to end:
	// gateways + state managers on an in-process testbed.
	fmt.Println("\n--- live query through the iShare gateway stack ---")
	demoLiveQuery(ds, cfg)
}

// demoLiveQuery wires real gateways/state managers for each machine and lets
// the client-side scheduler rank them, exactly as cmd/isharec does over TCP.
func demoLiveQuery(ds *trace.Dataset, cfg avail.Config) {
	// "Now": 09:00 on the first test weekday.
	now := time.Date(2005, 11, 14, 9, 0, 0, 0, time.UTC)
	sched := &ishare.Scheduler{}
	for _, m := range ds.Machines {
		node, err := ishare.NewHostNode(ishare.NodeConfig{
			MachineID: m.ID,
			Cfg:       cfg,
			Period:    m.Period,
			Clock:     fixedClock{now},
			Preloaded: m,
		}, nullSource{})
		if err != nil {
			log.Fatal(err)
		}
		// Prime the current state with one live sample.
		node.Gateway.Record(now, trace.Sample{CPU: 10, FreeMemMB: 300, Up: true})
		sched.Candidates = append(sched.Candidates, ishare.Candidate{MachineID: m.ID, API: node.Gateway})
	}
	job := ishare.SubmitReq{Name: "live-job", WorkSeconds: jobHours * 3600, MemMB: 100}
	ranked, _, err := sched.Rank(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-8s %s\n", "machine", "TR", "state")
	for _, rk := range ranked {
		fmt.Printf("%-10s %-8.4f %s\n", rk.MachineID, rk.TR, rk.CurrentState)
	}
	best, resp, err := sched.SubmitBest(context.Background(), job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s placed on %s\n", resp.JobID, best.MachineID)
}

type fixedClock struct{ t time.Time }

func (c fixedClock) Now() time.Time                       { return c.t }
func (c fixedClock) After(time.Duration) <-chan time.Time { return make(chan time.Time) }
func (c fixedClock) Sleep(time.Duration)                  {}

type nullSource struct{}

func (nullSource) Read() (float64, float64, error) { return 10, 300, nil }
