// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (run `go test -bench=. -benchmem` or see cmd/experiments for
// the full figure regeneration), plus ablation benches for the design
// choices called out in DESIGN.md and microbenches for the hot components.
package fgcs_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/experiments"
	"fgcs/internal/fgcssim"
	"fgcs/internal/host"
	"fgcs/internal/ishare"
	"fgcs/internal/monitor"
	"fgcs/internal/otrace"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/smp"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

// ---------------------------------------------------------------- setup ----

var (
	benchOnce  sync.Once
	benchTrace *trace.Dataset
)

// benchDataset lazily generates a small shared testbed trace (1 machine,
// 28 days) so individual benchmarks stay fast.
func benchDataset(b *testing.B) *trace.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		p := workload.DefaultParams()
		p.Machines = 1
		p.Days = 28
		ds, err := workload.Generate(p)
		if err != nil {
			panic(err)
		}
		benchTrace = ds
	})
	return benchTrace
}

func benchSplit(b *testing.B) trace.Split {
	b.Helper()
	sp, err := trace.SplitHalf(benchDataset(b).Machines[0], trace.Weekday)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// ----------------------------------------------------- E1/E2 (Sec 3.2) ----

// BenchmarkE1CPUContention measures one CPU-contention trial of the study
// that derives Th1 and Th2.
func BenchmarkE1CPUContention(b *testing.B) {
	m := host.DefaultMachine()
	hosts := []host.Proc{{Name: "h", IsolatedCPU: 0.5, MemMB: 60}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _, err := host.Reduction(m, hosts, host.Guest{Nice: 19, MemMB: 50}, 2*time.Minute, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2MemoryContention measures one memory-thrashing trial.
func BenchmarkE2MemoryContention(b *testing.B) {
	m := host.DefaultMachine()
	hosts := []host.Proc{{Name: "compile-large", IsolatedCPU: 0.67, MemMB: 213}}
	g := &host.Guest{Nice: 19, MemMB: 193} // 213+193+50 > 384: thrashing
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := host.Simulate(m, hosts, g, 2*time.Minute, uint64(i))
		if err != nil || !res.Thrashing {
			b.Fatalf("err=%v thrashing=%v", err, res.Thrashing)
		}
	}
}

// ------------------------------------------------------- F4 (Figure 4) ----

// BenchmarkF4PredictionCost regenerates the Figure 4 series: the wall cost
// of one full prediction (sojourn extraction + Q/H estimation + the
// Equation (3) solve) per window length.
func BenchmarkF4PredictionCost(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	for _, hours := range []float64{0.5, 1, 2, 5, 10} {
		w := predict.Window{Start: 8 * time.Hour, Length: time.Duration(hours * float64(time.Hour))}
		b.Run(fmt.Sprintf("%gh", hours), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Predict(sp.Train, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------- F5 (Figure 5) ----

// BenchmarkF5Accuracy measures one accuracy evaluation (train + score) of
// the kind Figure 5 aggregates over 240 windows.
func BenchmarkF5Accuracy(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := predict.EvaluateSMP(p, sp, w); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------- F6 (Figure 6) ----

// BenchmarkF6TrainingRatio measures one ratio point of the Figure 6 sweep.
func BenchmarkF6TrainingRatio(b *testing.B) {
	ds := benchDataset(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := trace.SplitRatio(ds.Machines[0], trace.Weekday, 6, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := predict.EvaluateSMP(p, sp, w); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------- F7 (Figure 7) ----

// BenchmarkF7ModelComparison measures one evaluation per algorithm of the
// Figure 7 comparison (SMP vs the Table 1 linear time-series models).
func BenchmarkF7ModelComparison(b *testing.B) {
	sp := benchSplit(b)
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	b.Run("SMP", func(b *testing.B) {
		p := predict.SMP{Cfg: avail.DefaultConfig()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := predict.EvaluateSMP(p, sp, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, f := range timeseries.ReferenceSuite() {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			ts := predict.TimeSeries{Cfg: avail.DefaultConfig(), Fitter: f}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := predict.EvaluateTimeSeries(ts, sp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------- F8 (Figure 8) ----

// BenchmarkF8NoiseRobustness measures one noisy-prediction round of the
// Figure 8 robustness study.
func BenchmarkF8NoiseRobustness(b *testing.B) {
	ds := benchDataset(b)
	cfg := experiments.DefaultF8Config()
	cfg.NoiseCounts = []int{4}
	cfg.LengthsHours = []float64{2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunF8(ds.Machines[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------- S6/S7 (Sec 6, 7.1) ----

// BenchmarkS6TraceStats measures counting the unavailability occurrences of
// one day (the Section 6.1 statistics).
func BenchmarkS6TraceStats(b *testing.B) {
	day := benchDataset(b).Machines[0].Days[0]
	cfg := avail.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		avail.CountEvents(day, cfg)
	}
}

// BenchmarkS7MonitorOverhead measures one monitor sampling tick — the cost
// the paper reports as <1% of the 6 s period.
func BenchmarkS7MonitorOverhead(b *testing.B) {
	rec := monitor.NewRecorder("bench", trace.DefaultPeriod, 0)
	mon, err := monitor.New(monitor.Config{Period: trace.DefaultPeriod},
		monitor.StaticSource{CPU: 25, FreeMemMB: 300}, rec)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mon.Tick(base.Add(time.Duration(i) * trace.DefaultPeriod))
	}
}

// ------------------------------------------------------------ ablations ----

// BenchmarkAblationSolver compares the paper's dense Equation (3) recursion
// with the sparse-support convolution (identical results, different cost
// class).
func BenchmarkAblationSolver(b *testing.B) {
	sp := benchSplit(b)
	cfg := avail.DefaultConfig()
	w := predict.Window{Start: 8 * time.Hour, Length: 5 * time.Hour}
	units := w.Units(trace.DefaultPeriod)
	var seqs [][]avail.Sojourn
	for _, d := range sp.Train {
		seqs = append(seqs, avail.ExtractTrajectories(d.Window(w.Start, w.Length), cfg, d.Period)...)
	}
	kernel, err := smp.Estimator{Horizon: units}.Estimate(seqs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernel.Solve(avail.S1, units); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kernel.SolveSparseTR(avail.S1, units); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCensoring compares the censoring policies of the kernel
// estimator (accuracy differences are discussed in the smp package docs).
func BenchmarkAblationCensoring(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	for _, mode := range []struct {
		name string
		m    smp.CensorMode
	}{{"hazard", smp.CensorHazard}, {"ignore", smp.CensorIgnore}, {"survival", smp.CensorSurvival}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			pp := p
			pp.Censoring = mode.m
			for i := 0; i < b.N; i++ {
				if _, err := pp.Predict(sp.Train, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEstimation compares restart vs absorb trajectory
// extraction.
func BenchmarkAblationEstimation(b *testing.B) {
	sp := benchSplit(b)
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	for _, mode := range []struct {
		name string
		m    predict.Estimation
	}{{"restart", predict.EstimateRestart}, {"absorb", predict.EstimateAbsorb}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			p := predict.SMP{Cfg: avail.DefaultConfig(), Estimation: mode.m}
			for i := 0; i < b.N; i++ {
				if _, err := p.Predict(sp.Train, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------- components ----

// BenchmarkClassify measures the five-state classification of a full day.
func BenchmarkClassify(b *testing.B) {
	day := benchDataset(b).Machines[0].Days[0]
	cfg := avail.DefaultConfig()
	b.ReportAllocs()
	b.SetBytes(int64(day.Len()))
	for i := 0; i < b.N; i++ {
		avail.Classify(day.Samples, cfg, day.Period)
	}
}

// BenchmarkExtractTrajectories measures estimation preprocessing for one
// full day.
func BenchmarkExtractTrajectories(b *testing.B) {
	day := benchDataset(b).Machines[0].Days[0]
	cfg := avail.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		avail.ExtractTrajectories(day.Samples, cfg, day.Period)
	}
}

// BenchmarkKernelEstimate measures Q/H estimation from a training pool.
func BenchmarkKernelEstimate(b *testing.B) {
	sp := benchSplit(b)
	cfg := avail.DefaultConfig()
	w := predict.Window{Start: 8 * time.Hour, Length: 5 * time.Hour}
	var seqs [][]avail.Sojourn
	for _, d := range sp.Train {
		seqs = append(seqs, avail.ExtractTrajectories(d.Window(w.Start, w.Length), cfg, d.Period)...)
	}
	units := w.Units(trace.DefaultPeriod)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (smp.Estimator{Horizon: units}).Estimate(seqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeSeriesFit measures fitting each Table 1 model to a 2-hour
// load window.
func BenchmarkTimeSeriesFit(b *testing.B) {
	day := benchDataset(b).Machines[0].Days[0]
	samples := day.Window(6*time.Hour, 2*time.Hour)
	series := make([]float64, len(samples))
	for i, s := range samples {
		series[i] = s.CPU
	}
	for _, f := range timeseries.ReferenceSuite() {
		f := f
		b.Run(f.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.Fit(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerateDay measures synthesizing one machine-day of
// 6-second samples.
func BenchmarkWorkloadGenerateDay(b *testing.B) {
	p := workload.DefaultParams()
	p.Machines = 1
	p.Days = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		if _, err := workload.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCodec measures encoding+decoding a machine-week in both
// codecs.
func BenchmarkTraceCodec(b *testing.B) {
	p := workload.DefaultParams()
	p.Machines = 1
	p.Days = 7
	ds, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := trace.WriteBinary(&buf, ds); err != nil {
				b.Fatal(err)
			}
			if _, err := trace.ReadBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := trace.WriteText(&buf, ds); err != nil {
				b.Fatal(err)
			}
			if _, err := trace.ReadText(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPredictCI measures the bootstrap confidence-interval machinery
// (B=50 resamples on a 2-hour window).
func BenchmarkPredictCI(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictCI(sp.Train, w, 0.9, 50, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullInterval measures solving the complete Figure 3 P matrix.
func BenchmarkFullInterval(b *testing.B) {
	sp := benchSplit(b)
	cfg := avail.DefaultConfig()
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	units := w.Units(trace.DefaultPeriod)
	var seqs [][]avail.Sojourn
	for _, d := range sp.Train {
		seqs = append(seqs, avail.ExtractTrajectories(d.Window(w.Start, w.Length), cfg, d.Period)...)
	}
	kernel, err := smp.Estimator{Horizon: units}.Estimate(seqs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kernel.FullInterval(units); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1bPolicy measures one policy-controlled contention run.
func BenchmarkE1bPolicy(b *testing.B) {
	m := host.DefaultMachine()
	hosts := []host.Proc{{Name: "h", IsolatedCPU: 0.5, MemMB: 40}}
	for _, pol := range []host.GuestPolicy{host.PolicyTwoThreshold, host.PolicyGradual, host.PolicyAlwaysLowest} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := host.SimulatePolicy(m, hosts, pol, 20, 60, 2*time.Minute, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadProfiles compares generating a machine-day under each
// workload profile.
func BenchmarkWorkloadProfiles(b *testing.B) {
	for _, prof := range []workload.Profile{workload.ProfileLab, workload.ProfileEnterprise} {
		prof := prof
		b.Run(prof.String(), func(b *testing.B) {
			p := workload.DefaultParams()
			p.Machines = 1
			p.Days = 1
			p.Profile = prof
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Seed = uint64(i + 1)
				if _, err := workload.Generate(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------- engine ----

// BenchmarkEngineCachedVsCold compares a cold engine query — the full
// pipeline (history fingerprinting, trajectory extraction, kernel
// estimation, the Equation (3) solve) — against a warm query served from the
// kernel cache. The warm path must be at least 5× cheaper; in practice it is
// orders of magnitude cheaper, since a hit is a fingerprint plus one map
// lookup.
func BenchmarkEngineCachedVsCold(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := predict.NewEngine(predict.EngineConfig{})
			if _, err := e.Predict(p, sp.Train, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := predict.NewEngine(predict.EngineConfig{})
		if _, err := e.Predict(p, sp.Train, w); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Predict(p, sp.Train, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPredictBatchParallel compares a serial SMP.Predict loop against
// Engine.PredictBatch over the same request set with caching disabled, so
// every request recomputes and the comparison measures worker-pool
// throughput rather than cache hits. The batch results are bit-identical to
// the serial loop (asserted by TestPredictBatchMatchesSerial); on a host
// with ≥4 cores the parallel variants are expected to run the batch ≥2×
// faster than the serial loop.
func BenchmarkPredictBatchParallel(b *testing.B) {
	params := workload.DefaultParams()
	params.Machines = 8
	params.Days = 28
	ds, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	var reqs []predict.BatchRequest
	for _, m := range ds.Machines {
		days := m.DaysOfType(trace.Weekday)
		for _, hours := range []float64{1, 2, 3} {
			w := predict.Window{Start: 8 * time.Hour, Length: time.Duration(hours * float64(time.Hour))}
			reqs = append(reqs, predict.BatchRequest{Machine: m.ID, History: days, Window: w})
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				if _, err := p.Predict(r.History, r.Window); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			e := predict.NewEngine(predict.EngineConfig{CacheSize: -1, Workers: workers})
			for i := 0; i < b.N; i++ {
				for _, r := range e.PredictBatch(p, reqs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// ------------------------------------------------------------- tracing ----

// BenchmarkEnginePredictTracing measures the prediction engine's warm-cache
// path with tracing disabled (an untraced context — the
// instrumented-but-unsampled hot path, which must stay allocation-free) and
// under a sampled span that records cache events and fit/solve children.
// The "off" variant is the benchgate sentinel for zero-overhead tracing.
func BenchmarkEnginePredictTracing(b *testing.B) {
	sp := benchSplit(b)
	p := predict.SMP{Cfg: avail.DefaultConfig()}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	e := predict.NewEngine(predict.EngineConfig{})
	if _, err := e.Predict(p, sp.Train, w); err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.PredictCtx(ctx, p, sp.Train, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tracer := otrace.New(otrace.Config{SampleRate: 1, Recorder: otrace.NewRecorder(8)})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, span := tracer.Start(context.Background(), "bench.predict")
			if _, err := e.PredictCtx(ctx, p, sp.Train, w); err != nil {
				b.Fatal(err)
			}
			span.End()
		}
	})
}

// BenchmarkQueryTRTracing measures a full in-process QueryTR — current-state
// classification, window derivation, engine lookup — on a host node with
// tracing disabled versus under a sampled trace, the gate for the "tracing
// off costs nothing, tracing on costs little" contract at the RPC layer.
func BenchmarkQueryTRTracing(b *testing.B) {
	m := benchDataset(b).Machines[0]
	last := m.Days[len(m.Days)-1].Date
	now := last.Add(24*time.Hour + 8*time.Hour + 30*time.Minute)
	clock := simclock.NewVirtual(now)
	node, err := ishare.NewHostNode(ishare.NodeConfig{
		MachineID: m.ID, Cfg: avail.DefaultConfig(), Period: m.Period,
		Clock: clock, Preloaded: m,
	}, monitor.StaticSource{CPU: 25, FreeMemMB: 300})
	if err != nil {
		b.Fatal(err)
	}
	node.SM.Record(now, trace.Sample{CPU: 5, FreeMemMB: 400, Up: true})
	req := ishare.QueryTRReq{LengthSeconds: 7200, GuestMemMB: 100}
	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := node.SM.QueryTR(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled", func(b *testing.B) {
		tracer := otrace.New(otrace.Config{SampleRate: 1, Recorder: otrace.NewRecorder(8)})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx, span := tracer.Start(context.Background(), "bench.query-tr")
			if _, err := node.SM.QueryTR(ctx, req); err != nil {
				b.Fatal(err)
			}
			span.End()
		}
	})
}

// BenchmarkQueryTREnsemble compares a full in-process QueryTR on a
// single-predictor node against the same query on an ensemble node
// (router-selected serving, FFT/PCT shadows through the engine cache). The
// sub-benchmarks run in one process so `benchgate -ensemble` can gate their
// ratio machine-independently: the ensemble path must stay within the
// tolerance of the single-predictor path.
func BenchmarkQueryTREnsemble(b *testing.B) {
	m := benchDataset(b).Machines[0]
	last := m.Days[len(m.Days)-1].Date
	now := last.Add(24*time.Hour + 8*time.Hour + 30*time.Minute)
	req := ishare.QueryTRReq{LengthSeconds: 7200, GuestMemMB: 100}
	newNode := func(ensemble bool) *ishare.HostNode {
		node, err := ishare.NewHostNode(ishare.NodeConfig{
			MachineID: m.ID, Cfg: avail.DefaultConfig(), Period: m.Period,
			Clock: simclock.NewVirtual(now), Preloaded: m,
			Ensemble: ensemble,
		}, monitor.StaticSource{CPU: 25, FreeMemMB: 300})
		if err != nil {
			b.Fatal(err)
		}
		node.SM.Record(now, trace.Sample{CPU: 5, FreeMemMB: 400, Up: true})
		return node
	}
	b.Run("single", func(b *testing.B) {
		node := newNode(false)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := node.SM.QueryTR(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ensemble", func(b *testing.B) {
		node := newNode(true)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := node.SM.QueryTR(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------- durability ----

// benchWALSample returns the i-th quantized monitor sample of the WAL
// benchmarks' synthetic session.
func benchWALSample(i int) (time.Time, trace.Sample) {
	base := time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)
	t := durable.QuantizeTime(base.Add(time.Duration(i) * trace.DefaultPeriod))
	s := durable.QuantizeSample(trace.Sample{
		CPU: float64(i%97) * 0.9, FreeMemMB: 200 + float64(i%64), Up: i%23 != 0,
	})
	return t, s
}

// BenchmarkWALAppend measures durably logging one monitor sample: delta
// encoding plus the CRC32C-framed segment append. The mem variant isolates
// the codec+framing cost on an in-memory FS; os-batch adds the real write
// syscall with fsync deferred to rotation/snapshot (the -fsync batch
// policy). Per-sample fsync (-fsync always) is deliberately not gated — its
// cost is the disk's, not the code's.
func BenchmarkWALAppend(b *testing.B) {
	run := func(b *testing.B, fs durable.FS, sync durable.SyncPolicy) {
		st, _, err := durable.Open(durable.Config{FS: fs, SegmentBytes: 1 << 20, Sync: sync})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		var coder durable.SampleCoder
		buf := make([]byte, 0, 32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, s := benchWALSample(i)
			buf = coder.Encode(buf[:0], t, s)
			if err := st.Append(durable.RecSample, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("mem", func(b *testing.B) {
		run(b, durable.NewMemFS(), durable.SyncAlways)
	})
	b.Run("os-batch", func(b *testing.B) {
		fs, err := durable.NewOSFS(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, fs, durable.SyncBatch)
	})
}

// BenchmarkRecover measures a cold boot from durable state: snapshot
// selection and validation plus replay of a WAL tail the given number of
// samples long — the startup cost a crashed node pays before it can serve.
func BenchmarkRecover(b *testing.B) {
	for _, tail := range []int{1000, 10000} {
		tail := tail
		fs := durable.NewMemFS()
		st, _, err := durable.Open(durable.Config{FS: fs, SegmentBytes: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.WriteSnapshot([]byte("bench-node-state")); err != nil {
			b.Fatal(err)
		}
		var coder durable.SampleCoder
		buf := make([]byte, 0, 32)
		for i := 0; i < tail; i++ {
			t, s := benchWALSample(i)
			buf = coder.Encode(buf[:0], t, s)
			if err := st.Append(durable.RecSample, buf); err != nil {
				b.Fatal(err)
			}
		}
		// Dirty shutdown: the tail must be replayed, not skipped.
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("tail-%d", tail), func(b *testing.B) {
			// One warm-up recovery outside the timer: first-use costs (lazy
			// tables, fs cache shaping) otherwise smear ~2 allocs/op into
			// small-N runs and flake the benchgate's zero-tolerance allocs
			// rule.
			if st, _, err := durable.Open(durable.Config{FS: fs, SegmentBytes: 1 << 20}); err != nil {
				b.Fatal(err)
			} else {
				st.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rec, err := durable.Open(durable.Config{FS: fs, SegmentBytes: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Records) != tail {
					b.Fatalf("replayed %d records, want %d", len(rec.Records), tail)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFGCSSimDay measures simulating one full testbed-day of the
// whole-deployment simulation (6-second steps across all machines).
func BenchmarkFGCSSimDay(b *testing.B) {
	ds, err := experiments.HeterogeneousTestbed(8, []float64{1.2, 0.5}, 4)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := fgcssim.PoissonJobs(4, ds, 7, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := fgcssim.Config{Dataset: ds, Cfg: avail.DefaultConfig(), StartDay: 7, Policy: fgcssim.PolicyTRAware, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := fgcssim.Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
