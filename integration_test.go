// Cross-module integration test: the full life of an FGCS deployment, from
// synthetic monitoring history through persistence, prediction, the live
// TCP daemons and supervised guest execution. Every subsystem of the
// repository participates.
package fgcs_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/core"
	"fgcs/internal/ishare"
	"fgcs/internal/predict"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// 1. Three weeks of monitoring history for two machines.
	params := workload.DefaultParams()
	params.Machines = 2
	params.Days = 21
	ds, err := workload.Generate(params)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Archive and reload through the compressed codec, as a state
	//    manager would across restarts.
	path := filepath.Join(t.TempDir(), "testbed.trace.gz")
	if err := trace.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MachineDays() != ds.MachineDays() {
		t.Fatalf("persistence lost days: %d != %d", loaded.MachineDays(), ds.MachineDays())
	}

	// 3. Library-level prediction over the reloaded history.
	pred, err := core.NewPredictor(loaded.Machines[0], core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := predict.Window{Start: 9 * time.Hour, Length: 2 * time.Hour}
	point, err := pred.TR(trace.Weekday, w)
	if err != nil {
		t.Fatal(err)
	}
	if point.TR < 0 || point.TR > 1 {
		t.Fatalf("TR = %v", point.TR)
	}
	// And with uncertainty.
	iv, err := predict.SMP{Cfg: avail.DefaultConfig()}.
		PredictCI(loaded.Machines[0].DaysOfType(trace.Weekday), w, 0.9, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > point.TR || iv.Hi < point.TR {
		t.Fatalf("interval [%v,%v] does not cover the point %v", iv.Lo, iv.Hi, point.TR)
	}

	// 4. The live system: registry + two host nodes over real TCP,
	//    discovered and ranked by the client scheduler.
	now := loaded.Machines[0].Days[20].Date.Add(9 * time.Hour)
	clock := simclock.NewVirtual(now)
	reg := ishare.NewRegistry()
	regSrv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer regSrv.Close()
	var gateways []*ishare.Gateway
	for _, m := range loaded.Machines {
		node, err := ishare.NewHostNode(ishare.NodeConfig{
			MachineID: m.ID,
			Cfg:       avail.DefaultConfig(),
			Period:    m.Period,
			Clock:     clock,
			Preloaded: m,
		}, staticOKSource{})
		if err != nil {
			t.Fatal(err)
		}
		node.Gateway.Record(now, trace.Sample{CPU: 8, FreeMemMB: 350, Up: true})
		srv, err := node.Serve("127.0.0.1:0", regSrv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		gateways = append(gateways, node.Gateway)
	}
	sched, err := ishare.FromRegistry(context.Background(), regSrv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ranked, rankFails, err := sched.Rank(context.Background(), ishare.SubmitReq{Name: "job", WorkSeconds: 2 * 3600, MemMB: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rankFails) != 0 {
		t.Fatalf("rank failures = %v", rankFails)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked %d machines", len(ranked))
	}
	for _, r := range ranked {
		if r.TR < 0 || r.TR > 1 || r.HistoryWindows == 0 {
			t.Fatalf("rank entry %+v", r)
		}
	}

	// 5. Supervised execution over TCP: submit, drive the gateways, watch
	//    it complete.
	sv := &ishare.Supervisor{Sched: sched, Clock: clock, PollInterval: 6 * time.Second}
	done := make(chan struct{})
	var run ishare.JobRun
	var runErr error
	go func() {
		defer close(done)
		run, runErr = sv.Run(context.Background(), ishare.SubmitReq{Name: "integration", WorkSeconds: 60, MemMB: 50})
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		select {
		case <-done:
		default:
			if time.Now().After(deadline) {
				t.Fatal("supervised run did not finish")
			}
			tnow := clock.Now()
			for _, g := range gateways {
				g.Record(tnow, trace.Sample{CPU: 8, FreeMemMB: 350, Up: true})
			}
			clock.Advance(6 * time.Second)
			time.Sleep(100 * time.Microsecond)
			continue
		}
		break
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !run.Completed() {
		t.Fatalf("supervised run = %+v", run.Final)
	}
}

type staticOKSource struct{}

func (staticOKSource) Read() (float64, float64, error) { return 8, 350, nil }
