// Command benchgate is the benchmark regression gate: it parses `go test
// -bench` output, records the results as JSON, and compares them against a
// checked-in baseline. The gate fails when a benchmark's latency regresses
// by more than the tolerance (default 10%) or when its allocations per
// operation increase beyond a small slack. Zero-alloc benchmarks are held
// exactly at zero — a pooled hot path either allocates or it doesn't —
// while allocating benchmarks get max(1, 0.1%) extra allocs of room:
// observed counts jitter by a hair between runs (GC timing drains
// sync.Pools; the runtime's tiny allocator packs sub-16-byte objects
// differently depending on heap history), and a real leak blows through
// one alloc of slack immediately. Latency gets a tolerance band because
// wall-clock noise is far larger than either effect.
//
//	go test -run '^$' -bench 'Engine' -benchmem . | benchgate -out BENCH_predict.json -baseline BENCH_baseline.json
//	go test -run '^$' -bench 'Engine' -benchmem . | benchgate -baseline BENCH_baseline.json -write
//
// With -serve the input is an isharebench compare report instead: the gate
// requires the binary transport to beat JSON by -min-speedup in QPS and stay
// at or under -max-p99-ratio of its p99, and compares the binary numbers
// against a recorded BENCH_serve_base.json within the same tolerance:
//
//	isharebench -selfhost -out BENCH_serve.json
//	benchgate -serve -in BENCH_serve.json -baseline BENCH_serve_base.json
//
// With -fleet the input is a cmd/fleetsim report: the gate requires a
// failure-free run, steady memory at or under -max-bytes-per-machine and
// throughput of at least -min-predictions-per-sec, then compares both
// figures against a recorded BENCH_fleet_base.json within the tolerance:
//
//	fleetsim -machines 100000 -out BENCH_fleet.json
//	benchgate -fleet -in BENCH_fleet.json -baseline BENCH_fleet_base.json
//
// Fleet mode also bounds the observability plane's cost: the share of run
// wall time spent in SLO sampling, detector steps and federated metric
// merges must stay under -max-obs-cost-fraction (default 2%).
//
// With -slo the input is an `isharec stats -json` snapshot or a fleetsim
// report, and the gate fails when any declared serving-path SLO reports a
// violated QPS floor, p99 ceiling, or error-budget burn rate:
//
//	isharec -fed localhost:7000 stats -json | benchgate -slo
//	fleetsim -out report.json && benchgate -slo -in report.json
//
// With -ensemble the input is go test -bench output carrying the
// BenchmarkQueryTREnsemble single/ensemble pair, and the gate requires the
// ensemble serving path to stay within -tolerance of the single-predictor
// path. The two sub-benchmarks run in one process on the same machine, so
// the ratio needs no recorded baseline and holds across hardware:
//
//	go test -run '^$' -bench QueryTREnsemble -benchmem . | benchgate -ensemble
//
// Baselines are machine-specific: regenerate with -write when switching
// hardware, and treat the latency gate as meaningful only on comparable
// machines. Benchmark names are kept verbatim, including any trailing
// -GOMAXPROCS tag, because sub-benchmarks may legitimately end in -N
// (workers-2, workers-4) and stripping would collide them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// HasAllocs records whether -benchmem data was present; without it the
	// allocation gate cannot run for this benchmark.
	HasAllocs bool `json:"has_allocs"`
}

// parseBench extracts benchmark results from `go test -bench` output. When
// the input carries repeated measurements of the same benchmark (`-count=N`),
// the minimum of each metric is kept: the minimum is the noise-robust
// statistic for a gate — scheduler preemption and GC pauses only ever push
// measurements up, so the floor across runs is the closest observable to the
// benchmark's true cost.
func parseBench(r io.Reader) ([]Result, error) {
	byName := make(map[string]*Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := Result{Name: fields[0]}
		ok := false
		for i := 2; i+1 <= len(fields)-1; i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasAllocs = true
			}
		}
		if !ok {
			continue
		}
		prev, seen := byName[res.Name]
		if !seen {
			r := res
			byName[res.Name] = &r
			order = append(order, res.Name)
			continue
		}
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		if res.BytesPerOp < prev.BytesPerOp {
			prev.BytesPerOp = res.BytesPerOp
		}
		if res.HasAllocs && (!prev.HasAllocs || res.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp = res.AllocsPerOp
			prev.HasAllocs = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("no benchmark results found in input")
	}
	out := make([]Result, 0, len(byName))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// compare checks current against baseline and returns one message per
// violation.
func compare(baseline, current []Result, tolerance float64) []string {
	byName := make(map[string]Result, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	var violations []string
	for _, base := range baseline {
		cur, ok := byName[base.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from current run", base.Name))
			continue
		}
		if base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+tolerance) {
			violations = append(violations, fmt.Sprintf("%s: latency %.1f ns/op exceeds baseline %.1f ns/op by more than %.0f%%",
				base.Name, cur.NsPerOp, base.NsPerOp, tolerance*100))
		}
		// Zero-alloc benchmarks are gated exactly: a pooled path either
		// allocates or it doesn't. Allocating benchmarks get max(1, 0.1%)
		// slack, because observed counts jitter by a hair run to run — GC
		// timing empties sync.Pools, and the tiny allocator packs
		// sub-16-byte objects differently depending on heap history.
		if base.HasAllocs && cur.HasAllocs {
			slack := base.AllocsPerOp * 0.001
			if base.AllocsPerOp > 0 && slack < 1 {
				slack = 1
			}
			if cur.AllocsPerOp > base.AllocsPerOp+slack {
				violations = append(violations, fmt.Sprintf("%s: allocations regressed %.0f -> %.0f allocs/op",
					base.Name, base.AllocsPerOp, cur.AllocsPerOp))
			}
		}
	}
	return violations
}

func writeJSON(path string, results []Result) error {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func run(in io.Reader, outPath, baselinePath string, write bool, tolerance float64, stderr io.Writer) error {
	current, err := parseBench(in)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeJSON(outPath, current); err != nil {
			return err
		}
	}
	if write {
		if err := writeJSON(baselinePath, current); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "benchgate: baseline %s rewritten (%d benchmarks)\n", baselinePath, len(current))
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -write to create it): %w", err)
	}
	var baseline []Result
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	violations := compare(baseline, current, tolerance)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "benchgate: FAIL:", v)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(violations))
	}
	fmt.Fprintf(stderr, "benchgate: OK: %d benchmarks within %.0f%% of baseline, no alloc regressions\n",
		len(baseline), tolerance*100)
	return nil
}

func main() {
	var (
		in        = flag.String("in", "-", "bench output file (- = stdin)")
		out       = flag.String("out", "", "write current results to this JSON file")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		write     = flag.Bool("write", false, "rewrite the baseline from the current run instead of comparing")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional latency regression")

		serve       = flag.Bool("serve", false, "gate an isharebench compare report instead of go test -bench output")
		minSpeedup  = flag.Float64("min-speedup", 5.0, "serve mode: required binary/json QPS speedup")
		maxP99Ratio = flag.Float64("max-p99-ratio", 0.5, "serve mode: allowed binary/json p99 latency ratio")

		fleet      = flag.Bool("fleet", false, "gate a fleetsim report instead of go test -bench output")
		maxPerMach = flag.Float64("max-bytes-per-machine", 48*1024, "fleet mode: allowed steady memory per machine (bytes)")
		minPredSec = flag.Float64("min-predictions-per-sec", 2500, "fleet mode: required prediction throughput")
		maxObsCost = flag.Float64("max-obs-cost-fraction", 0.02, "fleet mode: allowed share of run wall time spent in the observability plane")

		slo = flag.Bool("slo", false, "gate SLO statuses: every slo in the input (isharec stats -json or a fleetsim report) must report ok")

		ensemble = flag.Bool("ensemble", false, "gate the ensemble serving path: BenchmarkQueryTREnsemble's ensemble sub-benchmark must stay within -tolerance of its single sub-benchmark (same-run ratio, no baseline)")
	)
	flag.Parse()
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	var err error
	switch {
	case *serve:
		err = runServe(r, *baseline, *write, *tolerance, *minSpeedup, *maxP99Ratio, os.Stderr)
	case *fleet:
		err = runFleet(r, *baseline, *write, *tolerance, *maxPerMach, *minPredSec, *maxObsCost, os.Stderr)
	case *slo:
		err = runSLO(r, os.Stderr)
	case *ensemble:
		err = runEnsemble(r, *tolerance, os.Stderr)
	default:
		err = run(r, *out, *baseline, *write, *tolerance, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
