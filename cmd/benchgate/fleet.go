package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// fleetSim mirrors the deterministic section of a fleetsim report; only the
// fields the gate inspects are decoded.
type fleetSim struct {
	Machines       int   `json:"machines"`
	Queries        int64 `json:"queries"`
	QueryFailures  int64 `json:"query_failures"`
	OutageQueries  int64 `json:"outage_queries"`
	OutageFailures int64 `json:"outage_failures"`
}

// fleetPerf mirrors the measured section of a fleetsim report.
type fleetPerf struct {
	PredictionsPerSec   float64 `json:"predictions_per_sec"`
	HeapBytesPerMachine float64 `json:"heap_bytes_per_machine"`
	RSSBytesPerMachine  float64 `json:"rss_bytes_per_machine"`
	TotalSeconds        float64 `json:"total_seconds"`
	ObsPlaneSeconds     float64 `json:"obs_plane_seconds"`
	ObsBytesPerPeer     float64 `json:"obs_bytes_per_peer"`
}

// obsCostFraction is the share of total run wall time spent in the
// observability plane (SLO sampling, detector steps, federated merges).
func (r *fleetReport) obsCostFraction() float64 {
	if r.Perf.TotalSeconds <= 0 {
		return 0
	}
	return r.Perf.ObsPlaneSeconds / r.Perf.TotalSeconds
}

// fleetReport mirrors cmd/fleetsim's report envelope.
type fleetReport struct {
	Sim  fleetSim  `json:"sim"`
	Perf fleetPerf `json:"perf"`
}

// bytesPerMachine prefers the OS view of memory and falls back to the Go
// heap where /proc is unavailable and RSS reads as zero.
func (r *fleetReport) bytesPerMachine() (float64, string) {
	if r.Perf.RSSBytesPerMachine > 0 {
		return r.Perf.RSSBytesPerMachine, "rss"
	}
	return r.Perf.HeapBytesPerMachine, "heap"
}

// runFleet gates a fleetsim report: the run must be failure-free, steady
// per-machine memory must come in at or under maxBytesPerMachine, prediction
// throughput must reach minPredPerSec, and — against a recorded baseline —
// neither may regress by more than the tolerance. With write set the report
// becomes the new baseline instead.
func runFleet(in io.Reader, baselinePath string, write bool, tolerance, maxBytesPerMachine, minPredPerSec, maxObsCost float64, stderr io.Writer) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var rep fleetReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing fleetsim report: %w", err)
	}
	if rep.Sim.Machines == 0 || rep.Sim.Queries == 0 {
		return fmt.Errorf("report describes no fleet traffic (run cmd/fleetsim first)")
	}

	var violations []string
	if rep.Sim.QueryFailures > 0 {
		violations = append(violations, fmt.Sprintf("%d of %d queries failed during the traffic phase",
			rep.Sim.QueryFailures, rep.Sim.Queries))
	}
	if rep.Sim.OutageFailures > 0 {
		violations = append(violations, fmt.Sprintf("%d of %d queries failed during the peer outage (replicas did not cover)",
			rep.Sim.OutageFailures, rep.Sim.OutageQueries))
	}
	mem, memSrc := rep.bytesPerMachine()
	if mem > maxBytesPerMachine {
		violations = append(violations, fmt.Sprintf("%s %.0f B/machine above allowed %.0f B/machine",
			memSrc, mem, maxBytesPerMachine))
	}
	if rep.Perf.PredictionsPerSec < minPredPerSec {
		violations = append(violations, fmt.Sprintf("throughput %.0f predictions/s below required %.0f",
			rep.Perf.PredictionsPerSec, minPredPerSec))
	}
	if cost := rep.obsCostFraction(); cost > maxObsCost {
		violations = append(violations, fmt.Sprintf("observability plane cost %.2f%% of run wall time above allowed %.2f%%",
			100*cost, 100*maxObsCost))
	}

	if write {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stderr, "benchgate: FAIL:", v)
			}
			return fmt.Errorf("refusing to record a baseline from a failing run")
		}
		if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "benchgate: fleet baseline %s rewritten (%d machines, %.0f predictions/s, %s %.0f B/machine)\n",
			baselinePath, rep.Sim.Machines, rep.Perf.PredictionsPerSec, memSrc, mem)
		return nil
	}

	baseRaw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -write to create it): %w", err)
	}
	var base fleetReport
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.Sim.Machines != rep.Sim.Machines {
		fmt.Fprintf(stderr, "benchgate: note: fleet size changed %d -> %d machines; per-machine figures still compared\n",
			base.Sim.Machines, rep.Sim.Machines)
	}
	if base.Perf.PredictionsPerSec > 0 && rep.Perf.PredictionsPerSec < base.Perf.PredictionsPerSec*(1-tolerance) {
		violations = append(violations, fmt.Sprintf("throughput %.0f predictions/s regressed more than %.0f%% below baseline %.0f",
			rep.Perf.PredictionsPerSec, tolerance*100, base.Perf.PredictionsPerSec))
	}
	baseMem, _ := base.bytesPerMachine()
	if baseMem > 0 && mem > baseMem*(1+tolerance) {
		violations = append(violations, fmt.Sprintf("memory %.0f B/machine regressed more than %.0f%% above baseline %.0f B/machine",
			mem, tolerance*100, baseMem))
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "benchgate: FAIL:", v)
		}
		return fmt.Errorf("%d fleet gate violation(s)", len(violations))
	}
	fmt.Fprintf(stderr, "benchgate: OK: fleet of %d machines at %.0f predictions/s, %s %.0f B/machine, within %.0f%% of baseline\n",
		rep.Sim.Machines, rep.Perf.PredictionsPerSec, memSrc, mem, tolerance*100)
	return nil
}
