package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// serveProto mirrors the per-transport block of an isharebench report; only
// the gated fields are decoded.
type serveProto struct {
	QPS    float64          `json:"qps"`
	P99us  float64          `json:"p99_us"`
	Errors map[string]int64 `json:"errors"`
}

// serveReport mirrors the isharebench compare-mode report.
type serveReport struct {
	JSON       *serveProto `json:"json"`
	Binary     *serveProto `json:"binary"`
	SpeedupQPS float64     `json:"speedup_qps"`
	P99Ratio   float64     `json:"p99_ratio"`
}

// runServe gates an isharebench compare report: the binary transport must
// beat JSON by at least minSpeedup in QPS and come in at or under maxP99 of
// its p99, the run must be error-free, and — against a recorded baseline —
// binary QPS and p99 may not regress by more than the tolerance. With write
// set the report becomes the new baseline instead.
func runServe(in io.Reader, baselinePath string, write bool, tolerance, minSpeedup, maxP99 float64, stderr io.Writer) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var rep serveReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("parsing isharebench report: %w", err)
	}
	if rep.JSON == nil || rep.Binary == nil {
		return fmt.Errorf("report lacks a json+binary comparison (run isharebench -proto compare)")
	}

	var violations []string
	for _, p := range []struct {
		name string
		r    *serveProto
	}{{"json", rep.JSON}, {"binary", rep.Binary}} {
		if n := p.r.Errors["transport"] + p.r.Errors["application"]; n > 0 {
			violations = append(violations, fmt.Sprintf("%s: %d transport/application errors during the run", p.name, n))
		}
	}
	if rep.SpeedupQPS < minSpeedup {
		violations = append(violations, fmt.Sprintf("binary/json QPS speedup %.2fx below required %.2fx (binary %.0f qps, json %.0f qps)",
			rep.SpeedupQPS, minSpeedup, rep.Binary.QPS, rep.JSON.QPS))
	}
	if rep.P99Ratio > maxP99 {
		violations = append(violations, fmt.Sprintf("binary/json p99 ratio %.2f above allowed %.2f (binary %.0fus, json %.0fus)",
			rep.P99Ratio, maxP99, rep.Binary.P99us, rep.JSON.P99us))
	}

	if write {
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(stderr, "benchgate: FAIL:", v)
			}
			return fmt.Errorf("refusing to record a baseline from a failing run")
		}
		if err := os.WriteFile(baselinePath, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "benchgate: serve baseline %s rewritten (binary %.0f qps, p99 %.0fus)\n",
			baselinePath, rep.Binary.QPS, rep.Binary.P99us)
		return nil
	}

	baseRaw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -write to create it): %w", err)
	}
	var base serveReport
	if err := json.Unmarshal(baseRaw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if base.Binary != nil {
		if base.Binary.QPS > 0 && rep.Binary.QPS < base.Binary.QPS*(1-tolerance) {
			violations = append(violations, fmt.Sprintf("binary QPS %.0f regressed more than %.0f%% below baseline %.0f",
				rep.Binary.QPS, tolerance*100, base.Binary.QPS))
		}
		if base.Binary.P99us > 0 && rep.Binary.P99us > base.Binary.P99us*(1+tolerance) {
			violations = append(violations, fmt.Sprintf("binary p99 %.0fus regressed more than %.0f%% above baseline %.0fus",
				rep.Binary.P99us, tolerance*100, base.Binary.P99us))
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(stderr, "benchgate: FAIL:", v)
		}
		return fmt.Errorf("%d serving-path gate violation(s)", len(violations))
	}
	fmt.Fprintf(stderr, "benchgate: OK: binary %.2fx faster than json (p99 ratio %.2f), within %.0f%% of baseline\n",
		rep.SpeedupQPS, rep.P99Ratio, tolerance*100)
	return nil
}
