package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: fgcs
cpu: Some CPU @ 3.00GHz
BenchmarkEngineCachedVsCold/cold-8         	     100	  11830452 ns/op	 4511234 B/op	    8123 allocs/op
BenchmarkEngineCachedVsCold/warm-8         	 5065082	       237.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkPredictBatchParallel/serial-8     	      12	  95123456 ns/op
PASS
ok  	fgcs	12.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	cold := byName["BenchmarkEngineCachedVsCold/cold-8"]
	if cold.NsPerOp != 11830452 || cold.AllocsPerOp != 8123 || !cold.HasAllocs {
		t.Fatalf("cold parsed wrong: %+v", cold)
	}
	warm := byName["BenchmarkEngineCachedVsCold/warm-8"]
	if warm.NsPerOp != 237.1 || warm.AllocsPerOp != 0 || !warm.HasAllocs {
		t.Fatalf("warm parsed wrong: %+v", warm)
	}
	serial := byName["BenchmarkPredictBatchParallel/serial-8"]
	if serial.NsPerOp != 95123456 || serial.HasAllocs {
		t.Fatalf("serial parsed wrong: %+v", serial)
	}
}

// TestParseBenchKeepsSubBenchSuffixes guards against "smart" suffix
// stripping: sub-benchmarks that differ only by a -N tag (workers-1,
// workers-2) must stay distinct.
func TestParseBenchKeepsSubBenchSuffixes(t *testing.T) {
	const out = `BenchmarkB/workers-1     	12	100 ns/op
BenchmarkB/workers-2     	12	90 ns/op
BenchmarkB/workers-4     	12	80 ns/op
`
	results, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Name] = true
	}
	for _, want := range []string{"BenchmarkB/workers-1", "BenchmarkB/workers-2", "BenchmarkB/workers-4"} {
		if !names[want] {
			t.Fatalf("missing %q in parsed names %v", want, names)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok fgcs 1s\n")); err == nil {
		t.Fatal("no results accepted")
	}
}

func TestCompare(t *testing.T) {
	base := []Result{
		{Name: "B/x", NsPerOp: 100, AllocsPerOp: 2, HasAllocs: true},
		{Name: "B/y", NsPerOp: 1000, AllocsPerOp: 0, HasAllocs: true},
	}
	// Within tolerance, allocs flat: clean.
	cur := []Result{
		{Name: "B/x", NsPerOp: 109, AllocsPerOp: 2, HasAllocs: true},
		{Name: "B/y", NsPerOp: 900, AllocsPerOp: 0, HasAllocs: true},
	}
	if v := compare(base, cur, 0.10); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Latency blown on x, alloc regression on y, and a missing benchmark.
	base = append(base, Result{Name: "B/z", NsPerOp: 5})
	cur = []Result{
		{Name: "B/x", NsPerOp: 150, AllocsPerOp: 2, HasAllocs: true},
		{Name: "B/y", NsPerOp: 1000, AllocsPerOp: 1, HasAllocs: true},
	}
	v := compare(base, cur, 0.10)
	if len(v) != 3 {
		t.Fatalf("violations = %v, want 3 entries", v)
	}
	for _, want := range []string{"latency", "allocations regressed", "missing"} {
		found := false
		for _, msg := range v {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentioning %q in %v", want, v)
		}
	}
}

func TestRunWriteThenGate(t *testing.T) {
	dir := t.TempDir()
	baseline := dir + "/baseline.json"
	out := dir + "/current.json"
	var stderr strings.Builder
	if err := run(strings.NewReader(sampleOutput), out, baseline, true, 0.10, &stderr); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if err := run(strings.NewReader(sampleOutput), out, baseline, false, 0.10, &stderr); err != nil {
		t.Fatalf("identical run failed the gate: %v\n%s", err, stderr.String())
	}
	// A 2x slowdown on every benchmark must fail.
	slowed := strings.ReplaceAll(sampleOutput, "237.1 ns/op", "601.0 ns/op")
	stderr.Reset()
	if err := run(strings.NewReader(slowed), out, baseline, false, 0.10, &stderr); err == nil {
		t.Fatal("2x latency regression passed the gate")
	}
}
