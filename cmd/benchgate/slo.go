package main

import (
	"encoding/json"
	"fmt"
	"io"
)

// sloStatus mirrors obs.SLOStatus; only the fields the gate reports on are
// decoded.
type sloStatus struct {
	Name           string  `json:"name"`
	OK             bool    `json:"ok"`
	Reason         string  `json:"reason"`
	BudgetConsumed float64 `json:"budget_consumed"`
}

// extractSLO pulls the SLO status list out of any of the shapes the tooling
// emits: a bare array of statuses, an `isharec stats -json` snapshot
// ({"slo": [...]}), or a fleetsim report ({"sim": {"fleet_obs": {"slo":
// [...]}}}).
func extractSLO(raw []byte) ([]sloStatus, error) {
	var bare []sloStatus
	if err := json.Unmarshal(raw, &bare); err == nil {
		return bare, nil
	}
	var stats struct {
		SLO []sloStatus `json:"slo"`
		Sim struct {
			FleetObs struct {
				SLO []sloStatus `json:"slo"`
			} `json:"fleet_obs"`
		} `json:"sim"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		return nil, fmt.Errorf("parsing SLO input: %w", err)
	}
	if len(stats.SLO) > 0 {
		return stats.SLO, nil
	}
	return stats.Sim.FleetObs.SLO, nil
}

// runSLO gates declarative serving-path SLOs: every status in the input must
// report ok. The input is whatever the serving stack emits — `isharec stats
// -json` against a node started with -slo, or a fleetsim report.
func runSLO(in io.Reader, stderr io.Writer) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	statuses, err := extractSLO(raw)
	if err != nil {
		return err
	}
	if len(statuses) == 0 {
		return fmt.Errorf("input carries no SLO statuses (start the server with -slo, or pass a fleetsim report)")
	}
	violations := 0
	for _, st := range statuses {
		if st.OK {
			fmt.Fprintf(stderr, "benchgate: slo %s ok (budget used %.1f%%)\n", st.Name, 100*st.BudgetConsumed)
			continue
		}
		violations++
		fmt.Fprintf(stderr, "benchgate: FAIL: slo %s violated: %s\n", st.Name, st.Reason)
	}
	if violations > 0 {
		return fmt.Errorf("%d of %d SLO(s) violated", violations, len(statuses))
	}
	fmt.Fprintf(stderr, "benchgate: OK: %d SLO(s) within budget\n", len(statuses))
	return nil
}
