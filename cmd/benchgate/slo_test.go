package main

import (
	"strings"
	"testing"
)

func TestSLOGateShapes(t *testing.T) {
	ok := `[{"name":"query","ok":true,"budget_consumed":0.1}]`
	cases := []struct {
		name, in string
		wantErr  string
	}{
		{"bare array ok", ok, ""},
		{"bare array violated",
			`[{"name":"query","ok":false,"reason":"QPS 1.00 below floor 50.00"}]`,
			"1 of 1 SLO(s) violated"},
		{"query-stats shape", `{"machine_id":"n1","slo":` + ok + `}`, ""},
		{"fleetsim shape", `{"sim":{"fleet_obs":{"slo":` + ok + `}}}`, ""},
		{"mixed verdicts",
			`[{"name":"a","ok":true},{"name":"b","ok":false,"reason":"burn"},{"name":"c","ok":false,"reason":"p99"}]`,
			"2 of 3 SLO(s) violated"},
		{"no statuses", `{"machine_id":"n1"}`, "no SLO statuses"},
		{"garbage", `{{{`, "parsing SLO input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr strings.Builder
			err := runSLO(strings.NewReader(tc.in), &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, stderr.String())
				}
				return
			}
			if err == nil {
				t.Fatalf("gate passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestSLOGateViolationNamesReason(t *testing.T) {
	var stderr strings.Builder
	in := `[{"name":"query","ok":false,"reason":"QPS 1.00 below floor 50.00"}]`
	if err := runSLO(strings.NewReader(in), &stderr); err == nil {
		t.Fatal("violated SLO passed the gate")
	}
	if !strings.Contains(stderr.String(), "QPS 1.00 below floor 50.00") {
		t.Errorf("stderr does not carry the violation reason:\n%s", stderr.String())
	}
}
