package main

import (
	"strings"
	"testing"
)

func TestRunEnsemble(t *testing.T) {
	ok := `BenchmarkQueryTREnsemble/single-8    100000  5000 ns/op  3600 B/op  3 allocs/op
BenchmarkQueryTREnsemble/ensemble-8  100000  5400 ns/op  3600 B/op  3 allocs/op
`
	var stderr strings.Builder
	if err := runEnsemble(strings.NewReader(ok), 0.10, &stderr); err != nil {
		t.Fatalf("8%% overhead rejected at 10%% tolerance: %v\n%s", err, stderr.String())
	}

	slow := `BenchmarkQueryTREnsemble/single-8    100000  5000 ns/op
BenchmarkQueryTREnsemble/ensemble-8  100000  6000 ns/op
`
	stderr.Reset()
	if err := runEnsemble(strings.NewReader(slow), 0.10, &stderr); err == nil {
		t.Fatal("20% overhead accepted at 10% tolerance")
	}
	if !strings.Contains(stderr.String(), "FAIL") {
		t.Fatalf("no FAIL line in stderr: %s", stderr.String())
	}

	missing := `BenchmarkQueryTRTracing/off-8  100000  5000 ns/op
`
	if err := runEnsemble(strings.NewReader(missing), 0.10, &stderr); err == nil {
		t.Fatal("input without the pair accepted")
	}
}
