package main

import (
	"strings"
	"testing"
)

const sampleFleetReport = `{
  "sim": {
    "machines": 100000,
    "queries": 4800,
    "query_failures": 0,
    "outage_queries": 500,
    "outage_failures": 0
  },
  "perf": {
    "predictions_per_sec": 8000,
    "heap_bytes_per_machine": 15000,
    "rss_bytes_per_machine": 30000,
    "total_seconds": 100,
    "obs_plane_seconds": 0.5
  }
}`

func TestFleetGateWriteThenCompare(t *testing.T) {
	baseline := t.TempDir() + "/fleet_base.json"
	var stderr strings.Builder
	if err := runFleet(strings.NewReader(sampleFleetReport), baseline, true, 0.10, 48*1024, 1500, 0.02, &stderr); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if err := runFleet(strings.NewReader(sampleFleetReport), baseline, false, 0.10, 48*1024, 1500, 0.02, &stderr); err != nil {
		t.Fatalf("identical run failed the gate: %v\n%s", err, stderr.String())
	}

	cases := []struct {
		name, old, new, want string
	}{
		{"query failures", `"query_failures": 0`, `"query_failures": 3`, "queries failed"},
		{"outage failures", `"outage_failures": 0`, `"outage_failures": 1`, "peer outage"},
		{"throughput regression", `"predictions_per_sec": 8000`, `"predictions_per_sec": 7000`, "regressed"},
		{"memory regression", `"rss_bytes_per_machine": 30000`, `"rss_bytes_per_machine": 40000`, "regressed"},
		{"obs plane cost", `"obs_plane_seconds": 0.5`, `"obs_plane_seconds": 5`, "observability plane cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := strings.Replace(sampleFleetReport, tc.old, tc.new, 1)
			var stderr strings.Builder
			err := runFleet(strings.NewReader(bad), baseline, false, 0.10, 48*1024, 1500, 0.02, &stderr)
			if err == nil {
				t.Fatalf("run with %s passed the gate", tc.name)
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("no violation mentioning %q in:\n%s", tc.want, stderr.String())
			}
		})
	}
}

func TestFleetGateAbsoluteThresholds(t *testing.T) {
	baseline := t.TempDir() + "/fleet_base.json"
	var stderr strings.Builder
	// Absolute ceilings apply even in -write mode: a failing run must not
	// become the baseline.
	if err := runFleet(strings.NewReader(sampleFleetReport), baseline, true, 0.10, 20000, 1500, 0.02, &stderr); err == nil {
		t.Fatal("over-memory run recorded a baseline")
	}
	stderr.Reset()
	if err := runFleet(strings.NewReader(sampleFleetReport), baseline, true, 0.10, 48*1024, 10000, 0.02, &stderr); err == nil {
		t.Fatal("under-throughput run recorded a baseline")
	}
	// Heap is the fallback measure when RSS is unavailable.
	noRSS := strings.Replace(sampleFleetReport, `"rss_bytes_per_machine": 30000`, `"rss_bytes_per_machine": 0`, 1)
	stderr.Reset()
	if err := runFleet(strings.NewReader(noRSS), baseline, true, 0.10, 16000, 1500, 0.02, &stderr); err != nil {
		t.Fatalf("heap fallback under the ceiling failed: %v\n%s", err, stderr.String())
	}
}
