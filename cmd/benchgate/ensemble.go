package main

import (
	"fmt"
	"io"
	"strings"
)

// runEnsemble gates the ensemble serving path against the single-predictor
// path from the same benchmark run: BenchmarkQueryTREnsemble/ensemble must
// stay within the tolerance of BenchmarkQueryTREnsemble/single in ns/op.
// Because both sub-benchmarks come from one process on one machine, the
// ratio is machine-independent — no recorded baseline is involved, so the
// gate holds on any hardware without regeneration.
func runEnsemble(in io.Reader, tolerance float64, stderr io.Writer) error {
	results, err := parseBench(in)
	if err != nil {
		return err
	}
	var single, ens *Result
	for i := range results {
		name := results[i].Name
		if !strings.Contains(name, "QueryTREnsemble") {
			continue
		}
		switch {
		case strings.Contains(name, "/single"):
			single = &results[i]
		case strings.Contains(name, "/ensemble"):
			ens = &results[i]
		}
	}
	if single == nil || ens == nil {
		return fmt.Errorf("input lacks the BenchmarkQueryTREnsemble single/ensemble pair (run go test -bench QueryTREnsemble)")
	}
	if single.NsPerOp <= 0 {
		return fmt.Errorf("single-predictor benchmark reported non-positive latency %.1f ns/op", single.NsPerOp)
	}
	ratio := ens.NsPerOp / single.NsPerOp
	if ratio > 1+tolerance {
		fmt.Fprintf(stderr, "benchgate: FAIL: ensemble query path %.1f ns/op is %.1f%% above single-predictor %.1f ns/op (allowed %.0f%%)\n",
			ens.NsPerOp, 100*(ratio-1), single.NsPerOp, tolerance*100)
		return fmt.Errorf("ensemble serving-path gate violation")
	}
	fmt.Fprintf(stderr, "benchgate: OK: ensemble %.1f ns/op vs single %.1f ns/op (%.1f%% overhead, allowed %.0f%%)\n",
		ens.NsPerOp, single.NsPerOp, 100*(ratio-1), tolerance*100)
	return nil
}
