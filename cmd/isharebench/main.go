// Command isharebench is the serving-path load generator: it drives a
// seeded query-tr workload at a gateway over the binary (pooled,
// multiplexed) or JSON (dial-per-RPC compat) transport and reports QPS,
// latency percentiles (p50/p99/p999) and an error taxonomy (transport /
// overloaded / application).
//
//	isharebench -selfhost -proto compare -duration 3s -out BENCH_serve.json
//	isharebench -addr localhost:7070 -proto binary -conns 32 -qps 5000
//
// With -proto compare the same workload runs once per transport against the
// same server and the report records the binary/JSON QPS speedup and p99
// ratio — the numbers `make bench-serve` gates via benchgate -serve. With
// -qps 0 (the default) the workers run a closed loop, measuring the
// transport's maximum throughput; with -qps > 0 each worker paces requests
// at its share of the target rate, measuring latency under a fixed offered
// load. -selfhost serves an in-process gateway over a synthetic 90-day
// machine history (internal/workload, fixed seed), so the benchmark needs no
// running daemon and the handler cost is identical run to run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/ishare"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

// benchClock pins the serving gateway into the synthetic trace's era so
// predictions are reproducible; the load generator itself uses wall time.
type benchClock struct{ now time.Time }

func (c benchClock) Now() time.Time                         { return c.now }
func (c benchClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (c benchClock) Sleep(d time.Duration)                  { time.Sleep(d) }

// ProtoReport is one transport's measurement.
type ProtoReport struct {
	Proto           string           `json:"proto"`
	Requests        int64            `json:"requests"`
	Errors          map[string]int64 `json:"errors"`
	DurationSeconds float64          `json:"duration_seconds"`
	QPS             float64          `json:"qps"`
	P50us           float64          `json:"p50_us"`
	P99us           float64          `json:"p99_us"`
	P999us          float64          `json:"p999_us"`
}

// Report is the BENCH_serve.json document.
type Report struct {
	Conns      int          `json:"conns"`
	TargetQPS  float64      `json:"target_qps"`
	Seed       uint64       `json:"seed"`
	WorkSecs   float64      `json:"work_seconds"`
	MemMB      float64      `json:"mem_mb"`
	JSON       *ProtoReport `json:"json,omitempty"`
	Binary     *ProtoReport `json:"binary,omitempty"`
	SpeedupQPS float64      `json:"speedup_qps,omitempty"`
	P99Ratio   float64      `json:"p99_ratio,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "", "target gateway address (empty with -selfhost)")
		selfhost = flag.Bool("selfhost", false, "serve an in-process gateway over a synthetic history instead of targeting -addr")
		wal      = flag.Bool("wal", false, "selfhost: attach a durable WAL (fsync always) and stream monitor samples into it for the whole run, measuring serving cost with durability on")
		proto    = flag.String("proto", "compare", "transport to drive: binary, json, or compare (both, plus ratio summary)")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per transport")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "unmeasured warmup per transport")
		conns    = flag.Int("conns", 16, "concurrent workers")
		qps      = flag.Float64("qps", 0, "target offered load across all workers (0 = closed loop, maximum throughput)")
		seed     = flag.Uint64("seed", 1, "seed for the synthetic serving history")
		work     = flag.Float64("work", 3600, "queried job length in seconds")
		mem      = flag.Float64("mem", 100, "queried guest working set in MB")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request timeout")
		repeat   = flag.Int("repeat", 1, "measurement runs per transport; the best run by QPS is reported (noise-robust, like a gate should be)")
		out      = flag.String("out", "", "write the JSON report to this file (default: stdout only)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isharebench:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	if err := run(*addr, *selfhost, *wal, *proto, *duration, *warmup, *conns, *qps, *seed, *work, *mem, *timeout, *repeat, *out); err != nil {
		fmt.Fprintln(os.Stderr, "isharebench:", err)
		os.Exit(1)
	}
}

func run(addr string, selfhost, wal bool, proto string, duration, warmup time.Duration, conns int, qps float64, seed uint64, work, mem float64, timeout time.Duration, repeat int, out string) error {
	if conns <= 0 {
		return fmt.Errorf("-conns must be positive")
	}
	if repeat <= 0 {
		repeat = 1
	}
	if wal && !selfhost {
		return fmt.Errorf("-wal needs -selfhost (it instruments the in-process node)")
	}
	if selfhost {
		srv, cleanup, err := serveSynthetic(seed, wal)
		if err != nil {
			return err
		}
		defer cleanup()
		defer srv.Close()
		addr = srv.Addr()
	}
	if addr == "" {
		return fmt.Errorf("need -addr or -selfhost")
	}

	rep := Report{Conns: conns, TargetQPS: qps, Seed: seed, WorkSecs: work, MemMB: mem}
	measureOnce := func(binary bool) (*ProtoReport, error) {
		caller := &ishare.Caller{}
		if binary {
			// One pooled connection carries up to its per-connection
			// pipelining budget; add connections beyond that.
			pool := &ishare.Pool{MaxPerHost: (conns + 31) / 32}
			defer pool.Close()
			caller.Pool = pool
		}
		return drive(caller, binary, addr, duration, warmup, conns, qps, work, mem, timeout)
	}
	// Noise (scheduler preemption, neighbors) only ever pushes QPS down, so
	// the best of the repeats is the closest observable to the true cost.
	measure := func(binary bool) (*ProtoReport, error) {
		var best *ProtoReport
		for i := 0; i < repeat; i++ {
			r, err := measureOnce(binary)
			if err != nil {
				return nil, err
			}
			if best == nil || r.QPS > best.QPS {
				best = r
			}
		}
		return best, nil
	}
	switch proto {
	case "binary", "json", "compare":
	default:
		return fmt.Errorf("-proto must be binary, json or compare, got %q", proto)
	}
	if proto == "json" || proto == "compare" {
		r, err := measure(false)
		if err != nil {
			return err
		}
		rep.JSON = r
	}
	if proto == "binary" || proto == "compare" {
		r, err := measure(true)
		if err != nil {
			return err
		}
		rep.Binary = r
	}
	if rep.JSON != nil && rep.Binary != nil && rep.JSON.QPS > 0 && rep.JSON.P99us > 0 {
		rep.SpeedupQPS = rep.Binary.QPS / rep.JSON.QPS
		rep.P99Ratio = rep.Binary.P99us / rep.JSON.P99us
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	os.Stdout.Write(doc)
	if out != "" {
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// serveSynthetic builds a gateway over one synthetic lab machine (90 days of
// history, fixed seed) and serves it on an ephemeral port — the handler side
// of the benchmark, identical on every run. With wal set the node gets a
// durable store (fsync always, the strictest -fsync policy) in a throwaway
// data dir and a background feeder appends one monitor sample to the WAL
// every 5 ms for the whole run, so the measurement is serving concurrent
// with live durability traffic — the configuration `make bench-serve-wal`
// gates against the WAL-less baseline.
func serveSynthetic(seed uint64, wal bool) (*ishare.Server, func(), error) {
	params := workload.DefaultParams()
	params.Machines = 1
	params.Seed = seed
	machine, err := workload.GenerateMachine(params, 0)
	if err != nil {
		return nil, nil, err
	}
	// One day past the history's end: every queried window predicts forward
	// from the same instant.
	clock := benchClock{now: params.Start.AddDate(0, 0, params.Days+1).Add(9 * time.Hour)}
	sm, err := ishare.NewStateManager(machine.ID, params.Period, avail.DefaultConfig(), clock, machine, 0)
	if err != nil {
		return nil, nil, err
	}
	gw, err := ishare.NewGateway(machine.ID, avail.DefaultConfig(), params.Period, clock, sm)
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() {}
	if wal {
		dir, err := os.MkdirTemp("", "isharebench-wal-")
		if err != nil {
			return nil, nil, err
		}
		fs, err := durable.NewOSFS(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		st, rec, err := durable.Open(durable.Config{FS: fs, Sync: durable.SyncAlways})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		persist, err := ishare.NewPersister(st, rec, sm, gw, slog.New(slog.NewTextHandler(io.Discard, nil)))
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		persist.Record(clock.Now(), trace.Sample{CPU: 5, FreeMemMB: 400, Up: true})
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			// Virtual sample times advance by the monitor period per append:
			// the WAL sees the same record stream a live node produces, just
			// 1200x faster.
			t := clock.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
					t = t.Add(params.Period)
					persist.Record(t, trace.Sample{
						CPU: float64(i % 90), FreeMemMB: 200 + float64(i%128), Up: true,
					})
				}
			}
		}()
		cleanup = func() {
			close(stop)
			<-done
			persist.Close()
			os.RemoveAll(dir)
		}
	} else {
		gw.Record(clock.Now(), trace.Sample{CPU: 5, FreeMemMB: 400, Up: true})
	}
	srv, err := gw.ServeConfig("127.0.0.1:0", ishare.ServerConfig{})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return srv, cleanup, nil
}

// drive runs the measurement loop for one transport and reduces the latency
// samples to the report percentiles.
func drive(caller *ishare.Caller, binary bool, addr string, duration, warmup time.Duration, conns int, qps, work, mem float64, timeout time.Duration) (*ProtoReport, error) {
	req := ishare.QueryTRReq{LengthSeconds: work, GuestMemMB: mem}
	call := func() error {
		var resp ishare.QueryTRResp
		return caller.Call(context.Background(), addr, ishare.MsgQueryTR, req, &resp, timeout)
	}
	// Fail fast if the target is unreachable rather than reporting a
	// zero-QPS run.
	if err := call(); err != nil {
		return nil, fmt.Errorf("probe request: %w", err)
	}

	var (
		started    = make(chan struct{})
		stop       atomic.Bool
		mu         sync.Mutex
		all        []time.Duration
		requests   int64
		transport  int64
		overloaded int64
		app        int64
	)
	interval := time.Duration(0)
	if qps > 0 {
		interval = time.Duration(float64(conns) / qps * float64(time.Second))
	}
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, 4096)
			<-started
			// Paced workers spread their first shots across one interval so
			// the offered load is uniform, not conns-wide bursts.
			if interval > 0 {
				time.Sleep(interval * time.Duration(w) / time.Duration(conns))
			}
			next := time.Now()
			for !stop.Load() {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				t0 := time.Now()
				err := call()
				el := time.Since(t0)
				atomic.AddInt64(&requests, 1)
				switch {
				case err == nil:
					lat = append(lat, el)
				case ishare.IsOverloaded(err):
					atomic.AddInt64(&overloaded, 1)
				case ishare.IsTransport(err):
					atomic.AddInt64(&transport, 1)
				default:
					atomic.AddInt64(&app, 1)
				}
			}
			mu.Lock()
			all = append(all, lat...)
			mu.Unlock()
		}(w)
	}

	close(started)
	time.Sleep(warmup)
	// Reset the counters: only the measurement window counts.
	atomic.StoreInt64(&requests, 0)
	atomic.StoreInt64(&transport, 0)
	atomic.StoreInt64(&overloaded, 0)
	atomic.StoreInt64(&app, 0)
	t0 := time.Now()
	time.Sleep(duration)
	stop.Store(true)
	elapsed := time.Since(t0)
	wg.Wait()

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Microsecond)
	}
	name := "json"
	if binary {
		name = "binary"
	}
	n := atomic.LoadInt64(&requests)
	return &ProtoReport{
		Proto:           name,
		Requests:        n,
		DurationSeconds: elapsed.Seconds(),
		QPS:             float64(n) / elapsed.Seconds(),
		P50us:           pct(0.50),
		P99us:           pct(0.99),
		P999us:          pct(0.999),
		Errors: map[string]int64{
			"transport":   atomic.LoadInt64(&transport),
			"overloaded":  atomic.LoadInt64(&overloaded),
			"application": atomic.LoadInt64(&app),
		},
	}, nil
}
