// Command isharec is the iShare client: it discovers published host nodes,
// queries their temporal reliability for a prospective guest job, and
// submits the job to the most reliable machine.
//
//	isharec -registry localhost:7000 rank -work 2h -mem 100
//	isharec -registry localhost:7000 submit -name sim1 -work 2h -mem 100
//	isharec -gateway localhost:7070 status -job lab-01-job-1
//	isharec -gateway localhost:7070 stats
//	isharec -gateway localhost:7070 traces -limit 5
//
// Against a federated control plane (ishared -peers), -fed names ANY live
// peer: the entry peer resolves each machine through the consistent-hash
// ring and forwards as needed, so the client never learns the sharding.
// Machine-scoped commands (status, kill) then need -machine; stats shows
// the entry peer's ring view.
//
//	isharec -fed localhost:7000 rank -work 2h -mem 100
//	isharec -fed localhost:7000 submit -name sim1 -work 2h -mem 100
//	isharec -fed localhost:7000 status -machine lab-01 -job lab-01-job-1
//	isharec -fed localhost:7000 stats
//
// With -trace, the command runs under a client-side root span whose context
// rides the request headers, so the server's flight recorder stitches the
// client's retry attempts to its own dispatch spans; the client-side half of
// the trace is printed to stderr when the command finishes. `traces` fetches
// the server-side halves from a gateway's flight recorder.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"fgcs/internal/ishare"
	"fgcs/internal/obs"
	"fgcs/internal/otrace"
)

func main() {
	var (
		registry  = flag.String("registry", "", "registry address for discovery")
		gateway   = flag.String("gateway", "", "direct gateway address (bypasses discovery)")
		fed       = flag.String("fed", "", "federation entry-peer address (any live peer of an ishared -peers ring)")
		timeout   = flag.Duration("timeout", 5*time.Second, "request timeout")
		retries   = flag.Int("retries", 3, "attempts for idempotent RPCs (1 = no retry; submits are retried under an idempotency key)")
		retryBase = flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff delay")
		brkThresh = flag.Int("breaker-threshold", 3, "consecutive failures before a machine is quarantined (0 = no breaker)")
		brkCool   = flag.Duration("breaker-cooldown", 30*time.Second, "quarantine duration before a probe is allowed")
		proto     = flag.String("proto", "binary", "wire protocol: binary (pooled multiplexed frames) or json (dial-per-RPC compat/debug mode)")
		traced    = flag.Bool("trace", false, "trace this command and print the client-side span tree to stderr")
		traceSeed = flag.Uint64("trace-seed", 0, "seed for client trace IDs (0 = fixed default)")
		logLevel  = flag.String("log-level", "warn", "log level: debug, info, warn or error")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()
	logger := otrace.NewLogger(os.Stderr, otrace.ParseLevel(*logLevel), *logJSON, nil)
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: isharec [flags] rank|submit|run|status|kill|stats|alerts|traces [subflags]")
		os.Exit(2)
	}
	cl := client{
		registry: *registry,
		gateway:  *gateway,
		fed:      *fed,
		timeout:  *timeout,
		caller:   &ishare.Caller{Retry: ishare.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase}},
		logger:   logger,
	}
	switch *proto {
	case "binary":
		cl.pool = &ishare.Pool{}
		defer cl.pool.Close()
		cl.caller.Pool = cl.pool
	case "json":
		// dial-per-RPC compat path: the zero Caller.
	default:
		fmt.Fprintf(os.Stderr, "isharec: -proto must be binary or json, got %q\n", *proto)
		os.Exit(2)
	}
	if *brkThresh > 0 {
		cl.breakers = ishare.NewBreakerSet(ishare.BreakerConfig{Threshold: *brkThresh, Cooldown: *brkCool}, nil)
	}
	if *traced {
		cl.flight = otrace.NewRecorder(otrace.DefaultCapacity)
		cl.tracer = otrace.New(otrace.Config{SampleRate: 1, Seed: *traceSeed, Recorder: cl.flight})
	}
	err := run(cl, flag.Arg(0), flag.Args()[1:])
	if err != nil {
		logger.Error("command failed", slog.String("command", flag.Arg(0)), slog.String("err", err.Error()))
		os.Exit(1)
	}
}

// client bundles the fault-tolerance knobs every subcommand shares.
type client struct {
	registry, gateway string
	fed               string
	timeout           time.Duration
	caller            *ishare.Caller
	// pool is the multiplexed binary-transport connection pool (-proto
	// binary); nil on the JSON compat path.
	pool     *ishare.Pool
	breakers *ishare.BreakerSet
	tracer   *otrace.Tracer
	flight   *otrace.Recorder
	logger   *slog.Logger
}

// startRoot opens the command's client-side root span when -trace is set;
// otherwise it leaves the context untraced.
func (c client) startRoot(name string) (context.Context, *otrace.Span) {
	if c.tracer == nil {
		return context.Background(), nil
	}
	return c.tracer.Start(context.Background(), name)
}

// finishRoot ends the root span and prints the client-side span tree(s) to
// stderr, so the job's stdout output stays parseable.
func (c client) finishRoot(span *otrace.Span, err error) {
	if span == nil {
		return
	}
	span.SetError(err)
	id := span.Trace()
	span.End()
	if recs, ok := c.flight.Trace(id); ok && len(recs) > 0 {
		fmt.Fprint(os.Stderr, otrace.RenderTraceString(recs, otrace.RenderOptions{Timings: true}))
	}
}

// fedClient builds the any-peer federation client when -fed is set.
func (c client) fedClient() ishare.FedClient {
	return ishare.FedClient{Addr: c.fed, Timeout: c.timeout, Caller: c.caller}
}

func (c client) scheduler(ctx context.Context) (*ishare.Scheduler, error) {
	if c.fed != "" {
		sched, err := c.fedClient().Scheduler(ctx)
		if err != nil {
			return nil, err
		}
		sched.Breakers = c.breakers
		return sched, nil
	}
	if c.gateway != "" {
		return &ishare.Scheduler{
			Candidates: []ishare.Candidate{{
				MachineID: c.gateway,
				API:       ishare.RemoteGateway{Addr: c.gateway, Timeout: c.timeout, Caller: c.caller},
			}},
			Breakers: c.breakers,
		}, nil
	}
	if c.registry == "" {
		return nil, fmt.Errorf("need -registry or -gateway")
	}
	sched, err := ishare.FromRegistryWith(ctx, c.caller, c.registry, c.timeout)
	if err != nil {
		return nil, err
	}
	sched.Breakers = c.breakers
	return sched, nil
}

func run(cl client, cmd string, args []string) error {
	gateway, timeout := cl.gateway, cl.timeout
	switch cmd {
	case "run":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "guest-job", "job name")
		work := fs.Duration("work", time.Hour, "estimated compute time")
		mem := fs.Float64("mem", 100, "working set in MB")
		poll := fs.Duration("poll", 6*time.Second, "status poll interval")
		migrations := fs.Int("migrations", 5, "maximum recoveries after kills")
		grace := fs.Duration("grace", 18*time.Second, "tolerate unreachable gateways this long before migrating (0 = migrate on first failed poll)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		ctx, root := cl.startRoot("client.run")
		sched, err := cl.scheduler(ctx)
		if err != nil {
			cl.finishRoot(root, err)
			return err
		}
		sv := &ishare.Supervisor{Sched: sched, PollInterval: *poll, MaxMigrations: migrations, UnreachableGrace: *grace}
		fmt.Printf("supervising %s (%v of compute)...\n", *name, *work)
		run, err := sv.Run(ctx, ishare.SubmitReq{Name: *name, WorkSeconds: work.Seconds(), MemMB: *mem})
		cl.finishRoot(root, err)
		for _, pl := range run.Placements {
			fmt.Printf("  %s on %s (TR %.3f): %s", pl.JobID, pl.MachineID, pl.TR, pl.Outcome)
			if pl.Reason != "" {
				fmt.Printf(" — %s", pl.Reason)
			}
			fmt.Println()
		}
		if err != nil {
			return err
		}
		fmt.Printf("completed after %d migration(s)\n", run.Migrations)
		return nil
	case "rank", "submit":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "guest-job", "job name")
		work := fs.Duration("work", time.Hour, "estimated compute time")
		mem := fs.Float64("mem", 100, "working set in MB")
		resume := fs.Duration("resume", 0, "progress to resume from a checkpoint")
		if err := fs.Parse(args); err != nil {
			return err
		}
		ctx, root := cl.startRoot("client." + cmd)
		job := ishare.SubmitReq{
			Name:                   *name,
			WorkSeconds:            work.Seconds(),
			MemMB:                  *mem,
			InitialProgressSeconds: resume.Seconds(),
		}
		if cl.fed != "" {
			// Federation-native verbs: the entry peer assembles the global
			// machine list, queries each machine through ring routing, and
			// returns the merged ranking — one client RPC either way.
			fc := cl.fedClient()
			if cmd == "rank" {
				ranking, err := fc.Rank(ctx, job)
				cl.finishRoot(root, err)
				if err != nil {
					return err
				}
				fmt.Printf("federation entry %s ranked %d machine(s)\n", ranking.Entry, len(ranking.Ranked))
				fmt.Printf("%-12s %-8s %-8s %s\n", "machine", "TR", "state", "history")
				for _, r := range ranking.Ranked {
					fmt.Printf("%-12s %-8.4f %-8s %d days\n", r.MachineID, r.TR, r.CurrentState, r.HistoryWindows)
				}
				for _, f := range ranking.Failures {
					kind := "rejected"
					if f.Transient {
						kind = "unreachable"
					}
					fmt.Printf("%-12s %-8s %v\n", f.MachineID, kind, f.Err)
				}
				return nil
			}
			best, resp, err := fc.SubmitBest(ctx, job)
			cl.finishRoot(root, err)
			if err != nil {
				return err
			}
			fmt.Printf("submitted %s to %s (TR %.4f): job id %s\n", *name, best.MachineID, best.TR, resp.JobID)
			return nil
		}
		sched, err := cl.scheduler(ctx)
		if err != nil {
			cl.finishRoot(root, err)
			return err
		}
		if cmd == "rank" {
			ranked, fails, err := sched.Rank(ctx, job)
			cl.finishRoot(root, err)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-8s %-8s %s\n", "machine", "TR", "state", "history")
			for _, r := range ranked {
				fmt.Printf("%-12s %-8.4f %-8s %d days\n", r.MachineID, r.TR, r.CurrentState, r.HistoryWindows)
			}
			for _, f := range fails {
				kind := "rejected"
				if f.Transient() {
					kind = "unreachable"
				}
				fmt.Printf("%-12s %-8s %v\n", f.MachineID, kind, f.Err)
			}
			return nil
		}
		best, resp, err := sched.SubmitBest(ctx, job)
		cl.finishRoot(root, err)
		if err != nil {
			return err
		}
		fmt.Printf("submitted %s to %s (TR %.4f): job id %s\n", *name, best.MachineID, best.TR, resp.JobID)
		return nil
	case "status", "kill":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jobID := fs.String("job", "", "job id (required)")
		machine := fs.String("machine", "", "machine hosting the job (required with -fed)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *jobID == "" {
			return fmt.Errorf("%s needs -job", cmd)
		}
		if cl.fed != "" && *machine == "" {
			return fmt.Errorf("%s -fed needs -machine (the ring routes by machine name)", cmd)
		}
		if cl.fed == "" && gateway == "" {
			return fmt.Errorf("%s needs -gateway or -fed", cmd)
		}
		ctx, root := cl.startRoot("client." + cmd)
		var api ishare.GatewayAPI
		if cl.fed != "" {
			api = cl.fedClient().Gateway(*machine)
		} else {
			api = ishare.RemoteGateway{Addr: gateway, Timeout: timeout, Caller: cl.caller}
		}
		var st ishare.JobStatusResp
		var err error
		if cmd == "status" {
			st, err = api.JobStatus(ctx, ishare.JobStatusReq{JobID: *jobID})
		} else {
			st, err = api.Kill(ctx, ishare.JobStatusReq{JobID: *jobID})
		}
		cl.finishRoot(root, err)
		if err != nil {
			return err
		}
		fmt.Printf("job %s: %s (%.0f/%.0f s done)", st.JobID, st.State, st.ProgressSeconds, st.WorkSeconds)
		if st.Reason != "" {
			fmt.Printf(" — %s", st.Reason)
		}
		fmt.Println()
		return nil
	case "stats":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		calib := fs.Bool("calibration", false, "include the per-predictor calibration tables")
		verbose := fs.Bool("verbose", false, "include wire-protocol details: the negotiated protocol/version and the server's connection and shed counters")
		fleet := fs.Bool("fleet", false, "print the fleet-wide merged observability view instead (requires -fed: the entry peer fans query-obs out over the ring)")
		alertLimit := fs.Int("alert-limit", 20, "with -fleet: newest merged alerts to keep (0 = all)")
		asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
		if err := fs.Parse(args); err != nil {
			return err
		}
		// A federation peer answers query-stats too (with its ring view), so
		// -fed doubles as the stats target.
		if gateway == "" {
			gateway = cl.fed
		}
		if gateway == "" {
			return fmt.Errorf("stats needs -gateway or -fed")
		}
		if *fleet && cl.fed == "" {
			return fmt.Errorf("stats -fleet needs -fed (only a federation peer can merge the ring)")
		}
		ctx, root := cl.startRoot("client.stats")
		api := ishare.RemoteGateway{Addr: gateway, Timeout: timeout, Caller: cl.caller}
		if *fleet {
			resp, err := api.QueryObs(ctx, ishare.QueryObsReq{MaxAlerts: *alertLimit})
			cl.finishRoot(root, err)
			if err != nil {
				return err
			}
			if resp.Fleet == nil {
				return fmt.Errorf("peer %s returned no fleet view (not a federation peer?)", resp.Peer)
			}
			if *asJSON {
				out, err := json.MarshalIndent(resp.Fleet, "", "  ")
				if err != nil {
					return err
				}
				fmt.Println(string(out))
				return nil
			}
			printFleet(resp.Peer, resp.Fleet)
			return nil
		}
		st, err := api.QueryStats(ctx, ishare.QueryStatsReq{Calibration: *calib})
		cl.finishRoot(root, err)
		if err != nil {
			return err
		}
		if *asJSON {
			out, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		printStats(st)
		if *verbose {
			printWire(cl, gateway, st.Wire)
		}
		return nil
	case "alerts":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		limit := fs.Int("limit", 20, "newest alerts to print (0 = all retained)")
		asJSON := fs.Bool("json", false, "print the raw JSON alerts")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if gateway == "" {
			gateway = cl.fed
		}
		if gateway == "" {
			return fmt.Errorf("alerts needs -gateway or -fed")
		}
		api := ishare.RemoteGateway{Addr: gateway, Timeout: timeout, Caller: cl.caller}
		resp, err := api.QueryObs(context.Background(), ishare.QueryObsReq{Local: true})
		if err != nil {
			return err
		}
		po, err := obs.DecodeObsSnapshot(resp.Snapshot)
		if err != nil {
			return fmt.Errorf("peer %s sent an undecodable obs snapshot: %w", resp.Peer, err)
		}
		alerts := po.Alerts
		if *limit > 0 && len(alerts) > *limit {
			alerts = alerts[len(alerts)-*limit:]
		}
		if *asJSON {
			out, err := json.MarshalIndent(alerts, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		fmt.Printf("node %s: %d alert(s) retained\n", resp.Peer, len(po.Alerts))
		printAlerts(alerts)
		return nil
	case "traces":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		limit := fs.Int("limit", 10, "most recent traces to fetch (ignored with -id)")
		id := fs.String("id", "", "fetch one trace by id")
		events := fs.Bool("events", false, "include retained WARN/ERROR log events")
		timings := fs.Bool("timings", false, "include span durations (wall-clock; disable for run-to-run comparison)")
		previous := fs.Bool("previous", false, "serve the flight snapshot the node persisted on its last shutdown (-data-dir)")
		asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if gateway == "" {
			gateway = cl.fed
		}
		if gateway == "" {
			return fmt.Errorf("traces needs -gateway or -fed")
		}
		api := ishare.RemoteGateway{Addr: gateway, Timeout: timeout, Caller: cl.caller}
		resp, err := api.QueryTraces(context.Background(), ishare.QueryTracesReq{Limit: *limit, TraceID: *id, Events: *events, Previous: *previous})
		if err != nil {
			return err
		}
		if *asJSON {
			out, err := json.MarshalIndent(resp, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		printTraces(resp, otrace.RenderOptions{Timings: *timings})
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printTraces renders a flight-recorder snapshot: records are grouped by
// trace ID (a distributed trace leaves one record per local root) and each
// group prints as one merged span tree.
func printTraces(resp ishare.QueryTracesResp, opts otrace.RenderOptions) {
	fmt.Printf("node %s: %d traces recorded\n", resp.MachineID, resp.TotalRecorded)
	byID := make(map[otrace.TraceID][]otrace.TraceRecord)
	var order []otrace.TraceID
	for _, rec := range resp.Traces {
		if _, seen := byID[rec.TraceID]; !seen {
			order = append(order, rec.TraceID)
		}
		byID[rec.TraceID] = append(byID[rec.TraceID], rec)
	}
	for _, id := range order {
		fmt.Print(otrace.RenderTraceString(byID[id], opts))
	}
	if len(resp.Events) > 0 {
		fmt.Println("recent events:")
		for _, ev := range resp.Events {
			fmt.Printf("  %s %s %s", ev.Time.Format(time.RFC3339), ev.Level, ev.Msg)
			for _, a := range ev.Attrs {
				fmt.Printf(" %s=%s", a.Key, a.Value)
			}
			fmt.Println()
		}
	}
}

// printWire renders the wire-protocol line of `stats -verbose`: what this
// client negotiated on its connection to the gateway, and the server's own
// view of its connection mix and admission-control sheds.
func printWire(cl client, gateway string, w *ishare.WireStats) {
	negotiated := "json (dial-per-RPC compat mode)"
	if cl.pool != nil {
		if v := cl.pool.Negotiated(gateway); v > 0 {
			negotiated = fmt.Sprintf("binary v%d (pooled, multiplexed)", v)
		} else {
			negotiated = "binary (no pooled connection established yet)"
		}
	}
	fmt.Printf("wire: client negotiated %s\n", negotiated)
	if w == nil {
		fmt.Println("wire: server reported no wire stats (observability disabled or pre-binary build)")
		return
	}
	fmt.Printf("wire: server speaks binary v%d; conns binary=%d json=%d; shed accept-queue=%d inflight=%d per-conn=%d\n",
		w.ProtoVersion, w.BinaryConns, w.JSONConns, w.ShedAcceptQueue, w.ShedInflight, w.ShedPerConn)
}

// printRing renders a federation peer's ring view: membership, per-peer
// breaker and anti-entropy state, and this peer's shard counters.
func printRing(r *ishare.RingStats) {
	fmt.Printf("federation ring: self=%s vnodes=%d replicas=%d\n", r.Self, r.Vnodes, r.Replicas)
	fmt.Printf("shard: %d entries (%d owned, %d replicated); served=%d forwarded=%d sync_pushed=%d sync_accepted=%d\n",
		r.Entries, r.Owned, r.Replicated, r.Served, r.Forwarded, r.SyncPushed, r.SyncAccepted)
	fmt.Printf("%-10s %-22s %-9s %-10s %s\n", "peer", "addr", "breaker", "last-sync", "owned-here")
	for _, p := range r.Peers {
		if p.Self {
			fmt.Printf("%-10s %-22s %-9s %-10s %d\n", p.ID+"*", p.Addr, "-", "-", p.OwnedEntries)
			continue
		}
		sync := "never"
		if p.LastSyncAgeSeconds >= 0 {
			sync = fmt.Sprintf("%.0fs ago", p.LastSyncAgeSeconds)
		}
		fmt.Printf("%-10s %-22s %-9s %-10s %d\n", p.ID, p.Addr, p.Breaker, sync, p.OwnedEntries)
	}
}

// printAlerts renders an alert list, oldest first.
func printAlerts(alerts []obs.Alert) {
	for _, a := range alerts {
		scope := a.Machine
		if a.Predictor != "" {
			scope += "/" + a.Predictor
		}
		if a.Peer != "" {
			scope = a.Peer + ":" + scope
		}
		fmt.Printf("  %s %-16s %-24s %s\n", a.Time.Format(time.RFC3339), a.Kind, scope, a.Message)
	}
}

// printSLO renders serving-path SLO verdicts.
func printSLO(statuses []obs.SLOStatus) {
	for _, st := range statuses {
		verdict := "ok"
		if !st.OK {
			verdict = "VIOLATED: " + st.Reason
		}
		fmt.Printf("slo %s: %s (qps %.2f, p99 %.1fms, burn short %.2fx long %.2fx, budget used %.1f%%)\n",
			st.Name, verdict, st.Short.QPS, 1000*st.Short.P99Seconds,
			st.Short.BurnRate, st.Long.BurnRate, 100*st.BudgetConsumed)
	}
}

// printFleet renders the merged fleet observability view an entry peer
// assembled by fanning query-obs out over its ring.
func printFleet(entry string, v *obs.FleetView) {
	ok, stale, unreachable := 0, 0, 0
	for _, p := range v.Peers {
		switch p.Status {
		case obs.PeerStale:
			stale++
		case obs.PeerUnreachable:
			unreachable++
		default:
			ok++
		}
	}
	fmt.Printf("fleet via %s: %d peer(s) — %d ok, %d stale, %d unreachable\n",
		entry, len(v.Peers), ok, stale, unreachable)
	for _, p := range v.Peers {
		switch p.Status {
		case obs.PeerStale:
			fmt.Printf("  %-10s stale (%.0fs old): %s\n", p.Peer, p.AgeSeconds, p.Err)
		case obs.PeerUnreachable:
			fmt.Printf("  %-10s unreachable: %s\n", p.Peer, p.Err)
		default:
			fmt.Printf("  %-10s ok\n", p.Peer)
		}
	}
	fmt.Printf("accuracy: %d resolved, %d dropped across the fleet\n", v.Resolved, v.Dropped)
	if len(v.Accuracy) > 0 {
		fmt.Printf("%-12s %-9s %9s %9s %8s %8s %8s %8s\n",
			"machine", "predictor", "resolved", "survived", "meanTR", "empir", "brier", "acc")
		for _, a := range v.Accuracy {
			fmt.Printf("%-12s %-9s %9d %9d %8.4f %8.4f %8.4f %8.4f\n",
				a.Machine, a.Predictor, a.Resolved, a.Survived, a.MeanTR, a.Empirical, a.Brier, a.Accuracy)
		}
	}
	if len(v.Counters) > 0 {
		ids := make([]string, 0, len(v.Counters))
		for id := range v.Counters {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println("merged counters:")
		for _, id := range ids {
			fmt.Printf("  %s %d\n", id, v.Counters[id])
		}
	}
	fmt.Printf("alerts: %d total", v.AlertsTotal)
	if len(v.Alerts) < v.AlertsTotal {
		fmt.Printf(" (newest %d shown)", len(v.Alerts))
	}
	fmt.Println()
	printAlerts(v.Alerts)
}

// printStats renders the observability snapshot as an operator summary: the
// engine cache effectiveness, the served request mix, and the paper's online
// predictor comparison (SMP vs the linear baselines).
func printStats(st ishare.QueryStatsResp) {
	fmt.Printf("node %s: %d samples recorded, %d predictions pending\n",
		st.MachineID, st.MonitorSamples, st.PendingPredictions)
	if st.Ring != nil {
		printRing(st.Ring)
	}
	if len(st.SLO) > 0 {
		printSLO(st.SLO)
	}
	hitRate := 0.0
	if total := st.Engine.Hits + st.Engine.Misses; total > 0 {
		hitRate = 100 * float64(st.Engine.Hits) / float64(total)
	}
	fmt.Printf("engine cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions\n",
		st.Engine.Hits, st.Engine.Misses, hitRate, st.Engine.Entries, st.Engine.Evictions)
	if len(st.Requests) > 0 {
		types := make([]string, 0, len(st.Requests))
		for typ := range st.Requests {
			types = append(types, typ)
		}
		sort.Strings(types)
		fmt.Printf("requests:")
		for _, typ := range types {
			fmt.Printf(" %s=%d", typ, st.Requests[typ])
			if e := st.Errors[typ]; e > 0 {
				fmt.Printf(" (%d errors)", e)
			}
		}
		fmt.Println()
	}
	if st.Routing != nil {
		fmt.Printf("ensemble routing: %d machines, %d switches, predictors [%s]\n",
			st.Routing.Machines, st.Routing.Switches, strings.Join(st.Routing.Predictors, " "))
		if len(st.Routing.Served) > 0 {
			names := make([]string, 0, len(st.Routing.Served))
			for n := range st.Routing.Served {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Printf("  served:")
			for _, n := range names {
				fmt.Printf(" %s=%d", n, st.Routing.Served[n])
			}
			fmt.Println()
		}
	}
	if len(st.WinRates) > 0 {
		names := make([]string, 0, len(st.WinRates))
		for n := range st.WinRates {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("  win rates:")
		for _, n := range names {
			fmt.Printf(" %s=%.1f%%", n, 100*st.WinRates[n])
		}
		fmt.Println()
	}
	if len(st.Accuracy) == 0 {
		fmt.Println("no resolved predictions yet")
		return
	}
	fmt.Printf("%-12s %-9s %9s %9s %8s %8s %8s %8s\n",
		"machine", "predictor", "resolved", "survived", "meanTR", "empir", "brier", "acc")
	for _, a := range st.Accuracy {
		fmt.Printf("%-12s %-9s %9d %9d %8.4f %8.4f %8.4f %8.4f\n",
			a.Machine, a.Predictor, a.Resolved, a.Survived, a.MeanTR, a.Empirical, a.Brier, a.Accuracy)
		for _, b := range a.Calibration {
			if b.Count == 0 {
				continue
			}
			fmt.Printf("    [%.1f,%.1f) n=%d meanTR=%.3f empirical=%.3f\n",
				b.Lo, b.Hi, b.Count, b.MeanTR, b.Empirical)
		}
	}
}
