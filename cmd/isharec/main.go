// Command isharec is the iShare client: it discovers published host nodes,
// queries their temporal reliability for a prospective guest job, and
// submits the job to the most reliable machine.
//
//	isharec -registry localhost:7000 rank -work 2h -mem 100
//	isharec -registry localhost:7000 submit -name sim1 -work 2h -mem 100
//	isharec -gateway localhost:7070 status -job lab-01-job-1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fgcs/internal/ishare"
)

func main() {
	var (
		registry = flag.String("registry", "", "registry address for discovery")
		gateway  = flag.String("gateway", "", "direct gateway address (bypasses discovery)")
		timeout  = flag.Duration("timeout", 5*time.Second, "request timeout")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: isharec [flags] rank|submit|run|status|kill [subflags]")
		os.Exit(2)
	}
	if err := run(*registry, *gateway, *timeout, flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "isharec:", err)
		os.Exit(1)
	}
}

func scheduler(registry, gateway string, timeout time.Duration) (*ishare.Scheduler, error) {
	if gateway != "" {
		return &ishare.Scheduler{Candidates: []ishare.Candidate{{
			MachineID: gateway,
			API:       ishare.RemoteGateway{Addr: gateway, Timeout: timeout},
		}}}, nil
	}
	if registry == "" {
		return nil, fmt.Errorf("need -registry or -gateway")
	}
	return ishare.FromRegistry(registry, timeout)
}

func run(registry, gateway string, timeout time.Duration, cmd string, args []string) error {
	switch cmd {
	case "run":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "guest-job", "job name")
		work := fs.Duration("work", time.Hour, "estimated compute time")
		mem := fs.Float64("mem", 100, "working set in MB")
		poll := fs.Duration("poll", 6*time.Second, "status poll interval")
		migrations := fs.Int("migrations", 5, "maximum recoveries after kills")
		if err := fs.Parse(args); err != nil {
			return err
		}
		sched, err := scheduler(registry, gateway, timeout)
		if err != nil {
			return err
		}
		sv := &ishare.Supervisor{Sched: sched, PollInterval: *poll, MaxMigrations: *migrations}
		fmt.Printf("supervising %s (%v of compute)...\n", *name, *work)
		run, err := sv.Run(ishare.SubmitReq{Name: *name, WorkSeconds: work.Seconds(), MemMB: *mem})
		for _, pl := range run.Placements {
			fmt.Printf("  %s on %s (TR %.3f): %s", pl.JobID, pl.MachineID, pl.TR, pl.Outcome)
			if pl.Reason != "" {
				fmt.Printf(" — %s", pl.Reason)
			}
			fmt.Println()
		}
		if err != nil {
			return err
		}
		fmt.Printf("completed after %d migration(s)\n", run.Migrations)
		return nil
	case "rank", "submit":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		name := fs.String("name", "guest-job", "job name")
		work := fs.Duration("work", time.Hour, "estimated compute time")
		mem := fs.Float64("mem", 100, "working set in MB")
		resume := fs.Duration("resume", 0, "progress to resume from a checkpoint")
		if err := fs.Parse(args); err != nil {
			return err
		}
		sched, err := scheduler(registry, gateway, timeout)
		if err != nil {
			return err
		}
		job := ishare.SubmitReq{
			Name:                   *name,
			WorkSeconds:            work.Seconds(),
			MemMB:                  *mem,
			InitialProgressSeconds: resume.Seconds(),
		}
		if cmd == "rank" {
			ranked, err := sched.Rank(job)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %-8s %-8s %s\n", "machine", "TR", "state", "history")
			for _, r := range ranked {
				fmt.Printf("%-12s %-8.4f %-8s %d days\n", r.MachineID, r.TR, r.CurrentState, r.HistoryWindows)
			}
			return nil
		}
		best, resp, err := sched.SubmitBest(job)
		if err != nil {
			return err
		}
		fmt.Printf("submitted %s to %s (TR %.4f): job id %s\n", *name, best.MachineID, best.TR, resp.JobID)
		return nil
	case "status", "kill":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		jobID := fs.String("job", "", "job id (required)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *jobID == "" {
			return fmt.Errorf("%s needs -job", cmd)
		}
		if gateway == "" {
			return fmt.Errorf("%s needs -gateway", cmd)
		}
		api := ishare.RemoteGateway{Addr: gateway, Timeout: timeout}
		var st ishare.JobStatusResp
		var err error
		if cmd == "status" {
			st, err = api.JobStatus(ishare.JobStatusReq{JobID: *jobID})
		} else {
			st, err = api.Kill(ishare.JobStatusReq{JobID: *jobID})
		}
		if err != nil {
			return err
		}
		fmt.Printf("job %s: %s (%.0f/%.0f s done)", st.JobID, st.State, st.ProgressSeconds, st.WorkSeconds)
		if st.Reason != "" {
			fmt.Printf(" — %s", st.Reason)
		}
		fmt.Println()
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
