// Command ishared runs an iShare host node: the gateway, resource monitor
// and state manager daemons of Figure 2, exposing the gateway protocol over
// TCP and optionally registering with a registry.
//
//	ishared -id lab-01 -listen :7070 -registry registry-host:7000
//	ishared -id lab-01 -listen :7070 -source replay -trace testbed.trace
//	ishared -registry-only -listen :7000     # run a registry instead
//	ishared -id gw1 -listen :7000 \
//	    -peers gw1=host1:7000,gw2=host2:7000,gw3=host3:7000   # federation peer
//
// With -source proc (the default on Linux) the monitor samples the real host
// via /proc; with -source replay it replays a machine from a trace file,
// which is how a whole simulated testbed can be run on one box.
//
// With -peers the process runs a federated control-plane peer instead of a
// host node: machines are sharded across the listed peers by consistent
// hashing, every entry is replicated to -replicas successor peers, requests
// for machines owned elsewhere are forwarded transparently, and a
// -sync-every anti-entropy loop repairs replicas after restarts. Host nodes
// point -registry at any peer; clients point isharec -fed at any peer.
//
// With -data-dir the process keeps its state durable: monitor samples,
// accepted submits and accuracy statistics (host mode) or registry entries
// (registry-only and federation modes) are written to a checksummed
// write-ahead log with periodic snapshots (-snapshot-every), and a restart
// recovers the newest valid snapshot plus the log tail. -fsync picks the
// WAL sync policy. SIGTERM flushes the log and writes a final snapshot
// before exit, so a clean restart replays nothing.
//
// Served requests are traced (sampled at -trace-sample) into a fixed-size
// flight recorder, inspectable over HTTP (-obs-addr, GET /traces) and over
// the gateway protocol (isharec traces). Logs go to stderr through log/slog
// (-log-level, -log-json); WARN and above are also retained next to the
// traces.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/ishare"
	"fgcs/internal/monitor"
	"fgcs/internal/obs"
	"fgcs/internal/otrace"
	"fgcs/internal/trace"
)

func main() {
	var (
		id           = flag.String("id", hostnameOr("node"), "machine id")
		listen       = flag.String("listen", "127.0.0.1:7070", "gateway listen address")
		registry     = flag.String("registry", "", "registry address to publish to")
		registryOnly = flag.Bool("registry-only", false, "run a registry instead of a host node")
		source       = flag.String("source", "proc", "load source: proc or replay")
		traceFile    = flag.String("trace", "", "trace file for -source replay / preloaded history")
		heartbeat    = flag.String("heartbeat", "", "t_monitor heartbeat file path")
		histDays     = flag.Int("history", 0, "most recent N days to pool (0 = all)")
		archive      = flag.String("archive", "", "archive history logs to this trace file periodically and on shutdown")
		archiveEvery = flag.Duration("archive-every", 10*time.Minute, "archive interval")
		ttl          = flag.Duration("ttl", 90*time.Second, "registration TTL; re-registered by the heartbeat (0 = register once, never expires)")
		hbEvery      = flag.Duration("heartbeat-every", 30*time.Second, "registry re-registration interval")
		reapEvery    = flag.Duration("reap-every", time.Minute, "registry-only: eviction sweep interval for expired registrations (0 = lazy only)")
		peers        = flag.String("peers", "", "comma-separated id=addr federation ring membership; enables federation mode (the list must include this peer's -id)")
		vnodes       = flag.Int("vnodes", ishare.DefaultVnodes, "federation: virtual nodes per peer on the consistent-hash ring")
		replicas     = flag.Int("replicas", ishare.DefaultReplicas, "federation: successor peers mirroring each registry entry (-1 = none)")
		syncEvery    = flag.Duration("sync-every", 30*time.Second, "federation: anti-entropy push interval (0 = on-register replication only)")
		obsAddr      = flag.String("obs-addr", "", "serve Prometheus /metrics, /debug/pprof and /traces on this HTTP address (empty = disabled)")
		maxInflight  = flag.Int("max-inflight", 0, "admission control: max concurrently served requests across all connections (0 = default 256)")
		maxQueued    = flag.Int("max-queued", 0, "admission control: max requests queued for an in-flight slot before shedding with the typed overloaded error (0 = same as -max-inflight)")
		perConnInfl  = flag.Int("per-conn-inflight", 0, "admission control: max pipelined requests in flight per connection (0 = default 32)")
		idleDeadline = flag.Duration("idle-deadline", 0, "close connections with no frame activity for this long; reset per frame on long-lived connections (0 = default 5m)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		traceSample  = flag.Float64("trace-sample", 1, "fraction of served requests to trace into the flight recorder (0 disables tracing)")
		traceSeed    = flag.Uint64("trace-seed", 0, "seed for trace IDs and sampling decisions (0 = fixed default; any fixed seed gives reproducible traces)")
		traceBuffer  = flag.Int("trace-buffer", otrace.DefaultCapacity, "completed traces retained by the flight recorder")
		sloSpecs     = flag.String("slo", "", "comma-separated serving-path SLOs, each name:qps=<floor>;p99=<dur>;budget=<fraction> (optional ;fast=;slow=;short=;long= burn tuning); statuses are served in query-stats and violations fire burn-rate alerts")
		obsEvery     = flag.Duration("obs-every", 15*time.Second, "SLO sampling and drift/ops detector step interval (0 disables the loop)")
		dataDir      = flag.String("data-dir", "", "durable state directory: WAL + snapshots, recovered on restart (empty = stateless)")
		snapEvery    = flag.Duration("snapshot-every", 5*time.Minute, "durable snapshot interval; a final snapshot is always written on clean shutdown")
		fsyncMode    = flag.String("fsync", "always", "WAL sync policy: always (fsync per record), batch (fsync on rotation/snapshot) or off")
		recoverMode  = flag.String("recover", "strict", "recovery policy when every retained snapshot is corrupt and the WAL is incomplete: strict (refuse to start) or best-effort (salvage the valid WAL suffix)")
		ensemble     = flag.Bool("ensemble", false, "serve TR queries from the predictor ensemble: each query is answered by the registered predictor with the best rolling Brier score for this machine (SMP fallback)")
		predictor    = flag.String("predictor", "", "pin TR serving to one registered predictor plugin (e.g. SMP, FFT, PCT, AR(8)); overrides -ensemble routing, shadow scoring continues")
	)
	flag.Parse()
	flight := otrace.NewRecorder(*traceBuffer)
	logger := otrace.NewLogger(os.Stderr, otrace.ParseLevel(*logLevel), *logJSON, flight)
	if err := run(runConfig{
		id: *id, listen: *listen, registry: *registry, registryOnly: *registryOnly,
		source: *source, traceFile: *traceFile, heartbeat: *heartbeat, histDays: *histDays,
		archive: *archive, archiveEvery: *archiveEvery,
		ttl: *ttl, hbEvery: *hbEvery, reapEvery: *reapEvery, obsAddr: *obsAddr,
		peers: *peers, vnodes: *vnodes, replicas: *replicas, syncEvery: *syncEvery,
		traceSample: *traceSample, traceSeed: *traceSeed, flight: flight, logger: logger,
		slo: *sloSpecs, obsEvery: *obsEvery,
		dataDir: *dataDir, snapEvery: *snapEvery, fsync: *fsyncMode, recoverMode: *recoverMode,
		ensemble: *ensemble, predictor: *predictor,
		serveCfg: ishare.ServerConfig{
			MaxInflight:      *maxInflight,
			MaxQueuedWaiters: *maxQueued,
			PerConnInflight:  *perConnInfl,
			IdleDeadline:     *idleDeadline,
		},
	}); err != nil {
		logger.Error("exiting", slog.String("err", err.Error()))
		os.Exit(1)
	}
}

type runConfig struct {
	id, listen, registry         string
	registryOnly                 bool
	source, traceFile, heartbeat string
	histDays                     int
	archive                      string
	archiveEvery, ttl, hbEvery   time.Duration
	reapEvery                    time.Duration
	obsAddr                      string
	peers                        string
	vnodes, replicas             int
	syncEvery                    time.Duration
	traceSample                  float64
	traceSeed                    uint64
	flight                       *otrace.Recorder
	logger                       *slog.Logger
	// slo carries the -slo specs; obsEvery paces the detector/SLO loop.
	slo      string
	obsEvery time.Duration
	// dataDir enables durable state (WAL + snapshots); empty = stateless.
	dataDir   string
	snapEvery time.Duration
	fsync     string
	// recoverMode is "strict" (default: refuse to start when every retained
	// snapshot is corrupt and the WAL alone cannot rebuild full state) or
	// "best-effort" (salvage the valid WAL suffix anyway).
	recoverMode string
	// ensemble turns on router-selected TR serving; predictor pins serving
	// to one named plugin.
	ensemble  bool
	predictor string
	// serveCfg carries the admission-control and connection-lifetime knobs
	// into every protocol server this process starts.
	serveCfg ishare.ServerConfig
}

// obsDrainTimeout bounds how long shutdown waits for in-flight /metrics,
// pprof and /traces responses to finish before closing the listener.
const obsDrainTimeout = 5 * time.Second

// serveObs exposes the node's metrics registry (plus the fleet-wide merged
// view under /metrics?scope=fleet when fleet is non-nil), liveness and
// readiness probes, the alert ring, the pprof handlers, and the flight
// recorder's /traces endpoints on a mux of its own, so profiling never
// shares a port with the gateway protocol. The server carries read/write
// timeouts (a stuck scraper cannot pin a connection open forever) and is
// returned so shutdown can drain it cleanly.
func serveObs(addr string, o *ishare.NodeObs, flight *otrace.Recorder, logger *slog.Logger,
	ready func() error, fleet func(*http.Request) (*obs.FleetSnapshot, error)) (*http.Server, net.Listener, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.FleetHandler(o.Registry, o.Tracker, fleet))
	mux.Handle("/healthz", obs.HealthHandler())
	mux.Handle("/readyz", obs.ReadyHandler(ready))
	mux.Handle("/alerts", obs.AlertsHandler(o.Alerts))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	traces := otrace.HTTPHandler(flight)
	mux.Handle("/traces", traces)
	mux.Handle("/traces/", traces)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler: mux,
		// pprof CPU profiles stream for their ?seconds= duration (default
		// 30 s), so the write timeout must comfortably exceed it.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("obs server stopped", slog.String("err", err.Error()))
		}
	}()
	return srv, ln, nil
}

// setupObsOps installs the -slo monitors, bridges every fired alert into a
// WARN log line (which the otrace logger also retains next to the flight
// recorder's traces), and starts the periodic loop that samples the SLOs and
// steps the drift and ops detectors. The returned stop halts the loop.
func setupObsOps(o *ishare.NodeObs, sloSpecs string, every time.Duration, logger *slog.Logger) (func(), error) {
	for _, spec := range strings.Split(sloSpecs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		slo, err := obs.ParseSLO(spec)
		if err != nil {
			return nil, fmt.Errorf("-slo: %w", err)
		}
		o.AddSLO(obs.NewSLOMonitor(slo))
		logger.Info("slo armed", slog.String("slo", slo.Name))
	}
	o.Alerts.OnAppend(func(a obs.Alert) {
		logger.Warn("alert fired",
			slog.String("kind", a.Kind),
			slog.String("machine", a.Machine),
			slog.String("predictor", a.Predictor),
			slog.String("msg", a.Message))
	})
	if every <= 0 {
		return func() {}, nil
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				o.StepObs(now)
			}
		}
	}()
	return func() { close(done) }, nil
}

// flightFile is the persisted flight-recorder snapshot inside -data-dir.
const flightFile = "flight.json"

// loadPrevFlight installs the previous run's flight snapshot (if any) so
// `isharec traces -previous` can inspect the run that just ended.
func loadPrevFlight(rc runConfig, o *ishare.NodeObs, logger *slog.Logger) {
	if rc.dataDir == "" {
		return
	}
	snap, err := otrace.LoadFlight(filepath.Join(rc.dataDir, flightFile))
	if err != nil {
		logger.Warn("previous flight snapshot unreadable", slog.String("err", err.Error()))
		return
	}
	if snap != nil {
		o.SetPrevFlight(snap)
		logger.Info("previous flight snapshot loaded",
			slog.Int("traces", len(snap.Traces)), slog.Time("saved_at", snap.SavedAt))
	}
}

// saveFlight persists the flight recorder on shutdown; the next boot serves
// it as the previous flight.
func saveFlight(rc runConfig, logger *slog.Logger) {
	if rc.dataDir == "" {
		return
	}
	if err := otrace.SaveFlight(filepath.Join(rc.dataDir, flightFile), rc.flight, time.Now()); err != nil {
		logger.Warn("flight snapshot not saved", slog.String("err", err.Error()))
	}
}

// openDurable opens the WAL + snapshot store under rc.dataDir and logs the
// recovery shape. Returns nils when durability is disabled.
func openDurable(rc runConfig, logger *slog.Logger) (*durable.Store, *durable.Recovery, error) {
	if rc.dataDir == "" {
		return nil, nil, nil
	}
	policy, err := durable.ParseSyncPolicy(rc.fsync)
	if err != nil {
		return nil, nil, err
	}
	var bestEffort bool
	switch rc.recoverMode {
	case "strict", "":
	case "best-effort":
		bestEffort = true
	default:
		return nil, nil, fmt.Errorf("unknown -recover policy %q (want strict or best-effort)", rc.recoverMode)
	}
	fs, err := durable.NewOSFS(rc.dataDir)
	if err != nil {
		return nil, nil, err
	}
	st, rec, err := durable.Open(durable.Config{FS: fs, Sync: policy, BestEffort: bestEffort})
	if err != nil {
		return nil, nil, fmt.Errorf("open data dir %s: %w", rc.dataDir, err)
	}
	logger.Info("durable state recovered",
		slog.String("dir", rc.dataDir),
		slog.Bool("snapshot", rec.SnapshotPayload != nil),
		slog.Int("replayed_records", len(rec.Records)),
		slog.Int("torn_bytes", rec.TornBytes),
		slog.Int("snapshots_skipped", rec.SnapshotsSkipped))
	return st, rec, nil
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}

// parsePeers decodes the -peers list ("id1=addr1,id2=addr2,...").
func parsePeers(s string) ([]ishare.Peer, error) {
	var peers []ishare.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=addr", part)
		}
		peers = append(peers, ishare.Peer{ID: id, Addr: addr})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

// runFed runs one federated control-plane peer: a consistent-hash shard of
// the machine registry plus transparent forwarding for everything else.
func runFed(rc runConfig) error {
	peers, err := parsePeers(rc.peers)
	if err != nil {
		return err
	}
	var self ishare.Peer
	for _, p := range peers {
		if p.ID == rc.id {
			self = p
		}
	}
	if self.ID == "" {
		return fmt.Errorf("-peers does not list this peer's -id %q", rc.id)
	}
	fedLogger := rc.logger.With(slog.String("peer", self.ID))
	nodeObs := ishare.NewNodeObs()
	if rc.traceSample > 0 {
		nodeObs.SetTracing(otrace.New(otrace.Config{
			SampleRate: rc.traceSample,
			Seed:       rc.traceSeed,
			Recorder:   rc.flight,
		}))
	}
	// Peer hops and machine proxying share one retried caller; the breaker
	// set quarantines dead peers so routing skips them without burning a
	// dial timeout per request.
	breakers := ishare.NewBreakerSet(ishare.BreakerConfig{Threshold: 3, Cooldown: 30 * time.Second}, nil)
	ishare.InstrumentBreakers(breakers, nodeObs.Registry)
	gw, err := ishare.NewFedGateway(ishare.FedConfig{
		Self:     self,
		Peers:    peers,
		Vnodes:   rc.vnodes,
		Replicas: rc.replicas,
		Caller: &ishare.Caller{
			Retry:   ishare.RetryPolicy{MaxAttempts: 3},
			Metrics: nodeObs.Caller,
		},
		Breakers: breakers,
		Logger:   fedLogger,
		Tracer:   nodeObs.Tracer,
		Obs:      nodeObs,
	})
	if err != nil {
		return err
	}
	stopObsOps, err := setupObsOps(nodeObs, rc.slo, rc.obsEvery, fedLogger)
	if err != nil {
		return err
	}
	defer stopObsOps()
	// Durable shard state: this peer's owned/replicated registry entries.
	// Restored before serving, so the peer rejoins the ring with its shard
	// intact instead of waiting for anti-entropy to repopulate it. /readyz
	// reports the peer unready until recovery lands and a clean anti-entropy
	// round has confirmed ring convergence.
	gw.SetRecoveryPending(rc.dataDir != "")
	st, rec, err := openDurable(rc, fedLogger)
	if err != nil {
		return err
	}
	var persist *ishare.RegPersister
	if st != nil {
		if persist, err = ishare.NewRegPersister(st, rec, gw, fedLogger); err != nil {
			return err
		}
		stop := persist.StartSnapshots(rc.snapEvery)
		defer stop()
	}
	gw.SetRecoveryPending(false)
	loadPrevFlight(rc, nodeObs, fedLogger)
	srv, err := gw.ServeConfig(rc.listen, rc.serveCfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	if rc.syncEvery > 0 {
		stop := gw.StartSync(rc.syncEvery)
		defer stop()
	}
	var obsSrv *http.Server
	if rc.obsAddr != "" {
		fleet := func(req *http.Request) (*obs.FleetSnapshot, error) {
			return gw.FleetObs(req.Context()), nil
		}
		httpSrv, ln, err := serveObs(rc.obsAddr, nodeObs, rc.flight, fedLogger, gw.Ready, fleet)
		if err != nil {
			return err
		}
		obsSrv = httpSrv
		fedLogger.Info("observability listening", slog.String("addr", ln.Addr().String()))
	}
	fedLogger.Info("federation peer up",
		slog.String("addr", srv.Addr()),
		slog.Int("peers", len(peers)),
		slog.Int("vnodes", rc.vnodes),
		slog.Int("replicas", rc.replicas),
		slog.Duration("sync_every", rc.syncEvery))
	waitForSignal(rc.logger)
	if obsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
		if err := obsSrv.Shutdown(ctx); err != nil {
			fedLogger.Warn("obs drain incomplete", slog.String("err", err.Error()))
		}
		cancel()
	}
	if persist != nil {
		if err := persist.Flush(); err != nil {
			return fmt.Errorf("final shard snapshot: %w", err)
		}
		fedLogger.Info("durable state flushed", slog.String("dir", rc.dataDir))
	}
	saveFlight(rc, fedLogger)
	return nil
}

func run(rc runConfig) error {
	id, listen, registry := rc.id, rc.listen, rc.registry
	source, traceFile, heartbeat := rc.source, rc.traceFile, rc.heartbeat
	histDays, archive, archiveEvery := rc.histDays, rc.archive, rc.archiveEvery
	logger := rc.logger
	if rc.peers != "" {
		return runFed(rc)
	}
	if rc.registryOnly {
		reg := ishare.NewRegistry()
		st, rec, err := openDurable(rc, logger)
		if err != nil {
			return err
		}
		var persist *ishare.RegPersister
		if st != nil {
			if persist, err = ishare.NewRegPersister(st, rec, reg, logger); err != nil {
				return err
			}
			stop := persist.StartSnapshots(rc.snapEvery)
			defer stop()
		}
		srv, err := reg.Serve(listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		if rc.reapEvery > 0 {
			stop := reg.StartReaper(rc.reapEvery)
			defer stop()
		}
		logger.Info("registry listening",
			slog.String("addr", srv.Addr()), slog.Duration("reap_every", rc.reapEvery))
		waitForSignal(logger)
		if persist != nil {
			if err := persist.Flush(); err != nil {
				return fmt.Errorf("final registry snapshot: %w", err)
			}
			logger.Info("durable state flushed", slog.String("dir", rc.dataDir))
		}
		return nil
	}

	var preloaded *trace.Machine
	var src monitor.LoadSource
	switch source {
	case "proc":
		src = monitor.NewProcSource()
		if traceFile != "" {
			ds, err := trace.LoadFile(traceFile)
			if err != nil {
				return err
			}
			if m := ds.Find(id); m != nil {
				preloaded = m
			}
		}
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("-source replay needs -trace")
		}
		ds, err := trace.LoadFile(traceFile)
		if err != nil {
			return err
		}
		m := ds.Find(id)
		if m == nil {
			if len(ds.Machines) == 0 {
				return fmt.Errorf("trace file has no machines")
			}
			m = ds.Machines[0]
		}
		rs, err := monitor.NewReplaySource(m.Days)
		if err != nil {
			return err
		}
		src = rs
		preloaded = m
	default:
		return fmt.Errorf("unknown source %q", source)
	}

	nodeLogger := logger.With(slog.String("machine", id))
	st, rec, err := openDurable(rc, nodeLogger)
	if err != nil {
		return err
	}
	node, err := ishare.NewHostNode(ishare.NodeConfig{
		MachineID:       id,
		Cfg:             avail.DefaultConfig(),
		Preloaded:       preloaded,
		HistoryDays:     histDays,
		HeartbeatPath:   heartbeat,
		Logger:          nodeLogger,
		Durable:         st,
		DurableRecovery: rec,
		Ensemble:        rc.ensemble,
		Predictor:       rc.predictor,
	}, src)
	if err != nil {
		return err
	}
	if node.Persist != nil {
		stop := node.Persist.StartSnapshots(rc.snapEvery)
		defer stop()
	}
	stopObsOps, err := setupObsOps(node.Obs(), rc.slo, rc.obsEvery, nodeLogger)
	if err != nil {
		return err
	}
	defer stopObsOps()
	loadPrevFlight(rc, node.Obs(), nodeLogger)
	if rc.traceSample > 0 {
		node.Obs().SetTracing(otrace.New(otrace.Config{
			SampleRate: rc.traceSample,
			Seed:       rc.traceSeed,
			Recorder:   rc.flight,
		}))
	}
	srv, err := node.Gateway.ServeConfig(listen, rc.serveCfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	// Host readiness: durable recovery already landed (NewHostNode is
	// synchronous), so the remaining gate is the initial registration and
	// monitor start below.
	var started atomic.Bool
	readyCheck := func() error {
		if !started.Load() {
			return fmt.Errorf("startup in flight: registration or monitor start pending")
		}
		return nil
	}
	var obsSrv *http.Server
	if rc.obsAddr != "" {
		httpSrv, ln, err := serveObs(rc.obsAddr, node.Obs(), rc.flight, nodeLogger, readyCheck, nil)
		if err != nil {
			return err
		}
		obsSrv = httpSrv
		nodeLogger.Info("observability listening",
			slog.String("addr", ln.Addr().String()),
			slog.String("endpoints", "/metrics /healthz /readyz /alerts /debug/pprof/ /traces"))
	}
	if registry != "" {
		// Registration failures here are fatal (the operator asked to
		// publish); later heartbeats retry under the caller's policy and
		// otherwise rely on the TTL to advertise the node's death.
		caller := &ishare.Caller{Retry: ishare.RetryPolicy{MaxAttempts: 3}, Metrics: node.Obs().Caller}
		if err := ishare.RegisterWithTTL(context.Background(), caller, registry, id, srv.Addr(), rc.ttl, 5*time.Second); err != nil {
			return err
		}
		if rc.ttl > 0 && rc.hbEvery > 0 {
			stop := node.StartHeartbeat(caller, registry, srv.Addr(), rc.ttl, rc.hbEvery, 5*time.Second)
			defer stop()
		}
	}
	node.Start()
	defer node.Stop()
	started.Store(true)
	nodeLogger.Info("host node up",
		slog.String("gateway", srv.Addr()),
		slog.Duration("period", trace.DefaultPeriod),
		slog.String("source", source),
		slog.Float64("trace_sample", rc.traceSample))
	if registry != "" {
		nodeLogger.Info("registered",
			slog.String("registry", registry),
			slog.Duration("ttl", rc.ttl), slog.Duration("heartbeat_every", rc.hbEvery))
	}
	if archive != "" {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(archiveEvery):
					if err := node.SM.Archive(archive); err != nil {
						nodeLogger.Error("archive failed",
							slog.String("component", "archiver"), slog.String("err", err.Error()))
					}
				}
			}
		}()
	}
	waitForSignal(logger)
	if obsSrv != nil {
		// Drain in-flight /metrics, pprof and /traces responses before the
		// listener closes, so a scrape racing the SIGTERM completes.
		ctx, cancel := context.WithTimeout(context.Background(), obsDrainTimeout)
		if err := obsSrv.Shutdown(ctx); err != nil {
			nodeLogger.Warn("obs drain incomplete", slog.String("err", err.Error()))
		}
		cancel()
	}
	if archive != "" {
		if err := node.SM.Archive(archive); err != nil {
			return fmt.Errorf("final archive: %w", err)
		}
		nodeLogger.Info("history archived", slog.String("path", archive))
	}
	if node.Persist != nil {
		// Stop the monitor before the final snapshot so no sample lands
		// between snapshot and close; the next boot then replays nothing.
		node.Stop()
		if err := node.Persist.Flush(); err != nil {
			return fmt.Errorf("final durable snapshot: %w", err)
		}
		nodeLogger.Info("durable state flushed", slog.String("dir", rc.dataDir))
	}
	saveFlight(rc, nodeLogger)
	return nil
}

func waitForSignal(logger *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	logger.Info("shutting down")
}
