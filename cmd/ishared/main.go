// Command ishared runs an iShare host node: the gateway, resource monitor
// and state manager daemons of Figure 2, exposing the gateway protocol over
// TCP and optionally registering with a registry.
//
//	ishared -id lab-01 -listen :7070 -registry registry-host:7000
//	ishared -id lab-01 -listen :7070 -source replay -trace testbed.trace
//	ishared -registry-only -listen :7000     # run a registry instead
//
// With -source proc (the default on Linux) the monitor samples the real host
// via /proc; with -source replay it replays a machine from a trace file,
// which is how a whole simulated testbed can be run on one box.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/ishare"
	"fgcs/internal/monitor"
	"fgcs/internal/obs"
	"fgcs/internal/trace"
)

func main() {
	var (
		id           = flag.String("id", hostnameOr("node"), "machine id")
		listen       = flag.String("listen", "127.0.0.1:7070", "gateway listen address")
		registry     = flag.String("registry", "", "registry address to publish to")
		registryOnly = flag.Bool("registry-only", false, "run a registry instead of a host node")
		source       = flag.String("source", "proc", "load source: proc or replay")
		traceFile    = flag.String("trace", "", "trace file for -source replay / preloaded history")
		heartbeat    = flag.String("heartbeat", "", "t_monitor heartbeat file path")
		histDays     = flag.Int("history", 0, "most recent N days to pool (0 = all)")
		archive      = flag.String("archive", "", "archive history logs to this trace file periodically and on shutdown")
		archiveEvery = flag.Duration("archive-every", 10*time.Minute, "archive interval")
		ttl          = flag.Duration("ttl", 90*time.Second, "registration TTL; re-registered by the heartbeat (0 = register once, never expires)")
		hbEvery      = flag.Duration("heartbeat-every", 30*time.Second, "registry re-registration interval")
		reapEvery    = flag.Duration("reap-every", time.Minute, "registry-only: eviction sweep interval for expired registrations (0 = lazy only)")
		obsAddr      = flag.String("obs-addr", "", "serve Prometheus /metrics and /debug/pprof on this HTTP address (empty = disabled)")
	)
	flag.Parse()
	if err := run(runConfig{
		id: *id, listen: *listen, registry: *registry, registryOnly: *registryOnly,
		source: *source, traceFile: *traceFile, heartbeat: *heartbeat, histDays: *histDays,
		archive: *archive, archiveEvery: *archiveEvery,
		ttl: *ttl, hbEvery: *hbEvery, reapEvery: *reapEvery, obsAddr: *obsAddr,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ishared:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	id, listen, registry         string
	registryOnly                 bool
	source, traceFile, heartbeat string
	histDays                     int
	archive                      string
	archiveEvery, ttl, hbEvery   time.Duration
	reapEvery                    time.Duration
	obsAddr                      string
}

// serveObs exposes the node's metrics registry and accuracy tracker as a
// Prometheus /metrics endpoint plus the pprof handlers, on a mux of its own
// so profiling never shares a port with the gateway protocol. It returns the
// bound listener so the caller can close it on shutdown.
func serveObs(addr string, node *ishare.HostNode) (net.Listener, error) {
	o := node.Obs()
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(o.Registry, o.Tracker))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln, nil
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}

func run(rc runConfig) error {
	id, listen, registry := rc.id, rc.listen, rc.registry
	source, traceFile, heartbeat := rc.source, rc.traceFile, rc.heartbeat
	histDays, archive, archiveEvery := rc.histDays, rc.archive, rc.archiveEvery
	if rc.registryOnly {
		reg := ishare.NewRegistry()
		srv, err := reg.Serve(listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		if rc.reapEvery > 0 {
			stop := reg.StartReaper(rc.reapEvery)
			defer stop()
		}
		fmt.Printf("registry listening on %s (reap every %v)\n", srv.Addr(), rc.reapEvery)
		waitForSignal()
		return nil
	}

	var preloaded *trace.Machine
	var src monitor.LoadSource
	switch source {
	case "proc":
		src = monitor.NewProcSource()
		if traceFile != "" {
			ds, err := trace.LoadFile(traceFile)
			if err != nil {
				return err
			}
			if m := ds.Find(id); m != nil {
				preloaded = m
			}
		}
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("-source replay needs -trace")
		}
		ds, err := trace.LoadFile(traceFile)
		if err != nil {
			return err
		}
		m := ds.Find(id)
		if m == nil {
			if len(ds.Machines) == 0 {
				return fmt.Errorf("trace file has no machines")
			}
			m = ds.Machines[0]
		}
		rs, err := monitor.NewReplaySource(m.Days)
		if err != nil {
			return err
		}
		src = rs
		preloaded = m
	default:
		return fmt.Errorf("unknown source %q", source)
	}

	node, err := ishare.NewHostNode(ishare.NodeConfig{
		MachineID:     id,
		Cfg:           avail.DefaultConfig(),
		Preloaded:     preloaded,
		HistoryDays:   histDays,
		HeartbeatPath: heartbeat,
	}, src)
	if err != nil {
		return err
	}
	srv, err := node.Gateway.Serve(listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	if rc.obsAddr != "" {
		ln, err := serveObs(rc.obsAddr, node)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Printf("observability on http://%s/metrics (pprof under /debug/pprof/)\n", ln.Addr())
	}
	if registry != "" {
		// Registration failures here are fatal (the operator asked to
		// publish); later heartbeats retry under the caller's policy and
		// otherwise rely on the TTL to advertise the node's death.
		caller := &ishare.Caller{Retry: ishare.RetryPolicy{MaxAttempts: 3}, Metrics: node.Obs().Caller}
		if err := ishare.RegisterWithTTL(caller, registry, id, srv.Addr(), rc.ttl, 5*time.Second); err != nil {
			return err
		}
		if rc.ttl > 0 && rc.hbEvery > 0 {
			stop := node.StartHeartbeat(caller, registry, srv.Addr(), rc.ttl, rc.hbEvery, 5*time.Second)
			defer stop()
		}
	}
	node.Start()
	defer node.Stop()
	fmt.Printf("host node %s: gateway on %s, monitoring every %v (source %s)\n",
		id, srv.Addr(), trace.DefaultPeriod, source)
	if registry != "" {
		fmt.Printf("registered with %s (ttl %v, heartbeat every %v)\n", registry, rc.ttl, rc.hbEvery)
	}
	if archive != "" {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(archiveEvery):
					if err := node.SM.Archive(archive); err != nil {
						fmt.Fprintln(os.Stderr, "ishared: archive:", err)
					}
				}
			}
		}()
	}
	waitForSignal()
	if archive != "" {
		if err := node.SM.Archive(archive); err != nil {
			return fmt.Errorf("final archive: %w", err)
		}
		fmt.Printf("history archived to %s\n", archive)
	}
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("shutting down")
}
