// Command ishared runs an iShare host node: the gateway, resource monitor
// and state manager daemons of Figure 2, exposing the gateway protocol over
// TCP and optionally registering with a registry.
//
//	ishared -id lab-01 -listen :7070 -registry registry-host:7000
//	ishared -id lab-01 -listen :7070 -source replay -trace testbed.trace
//	ishared -registry-only -listen :7000     # run a registry instead
//
// With -source proc (the default on Linux) the monitor samples the real host
// via /proc; with -source replay it replays a machine from a trace file,
// which is how a whole simulated testbed can be run on one box.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/ishare"
	"fgcs/internal/monitor"
	"fgcs/internal/trace"
)

func main() {
	var (
		id           = flag.String("id", hostnameOr("node"), "machine id")
		listen       = flag.String("listen", "127.0.0.1:7070", "gateway listen address")
		registry     = flag.String("registry", "", "registry address to publish to")
		registryOnly = flag.Bool("registry-only", false, "run a registry instead of a host node")
		source       = flag.String("source", "proc", "load source: proc or replay")
		traceFile    = flag.String("trace", "", "trace file for -source replay / preloaded history")
		heartbeat    = flag.String("heartbeat", "", "t_monitor heartbeat file path")
		histDays     = flag.Int("history", 0, "most recent N days to pool (0 = all)")
		archive      = flag.String("archive", "", "archive history logs to this trace file periodically and on shutdown")
		archiveEvery = flag.Duration("archive-every", 10*time.Minute, "archive interval")
	)
	flag.Parse()
	if err := run(*id, *listen, *registry, *registryOnly, *source, *traceFile, *heartbeat, *histDays, *archive, *archiveEvery); err != nil {
		fmt.Fprintln(os.Stderr, "ishared:", err)
		os.Exit(1)
	}
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}

func run(id, listen, registry string, registryOnly bool, source, traceFile, heartbeat string, histDays int, archive string, archiveEvery time.Duration) error {
	if registryOnly {
		reg := ishare.NewRegistry()
		srv, err := reg.Serve(listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("registry listening on %s\n", srv.Addr())
		waitForSignal()
		return nil
	}

	var preloaded *trace.Machine
	var src monitor.LoadSource
	switch source {
	case "proc":
		src = monitor.NewProcSource()
		if traceFile != "" {
			ds, err := trace.LoadFile(traceFile)
			if err != nil {
				return err
			}
			if m := ds.Find(id); m != nil {
				preloaded = m
			}
		}
	case "replay":
		if traceFile == "" {
			return fmt.Errorf("-source replay needs -trace")
		}
		ds, err := trace.LoadFile(traceFile)
		if err != nil {
			return err
		}
		m := ds.Find(id)
		if m == nil {
			if len(ds.Machines) == 0 {
				return fmt.Errorf("trace file has no machines")
			}
			m = ds.Machines[0]
		}
		rs, err := monitor.NewReplaySource(m.Days)
		if err != nil {
			return err
		}
		src = rs
		preloaded = m
	default:
		return fmt.Errorf("unknown source %q", source)
	}

	node, err := ishare.NewHostNode(ishare.NodeConfig{
		MachineID:     id,
		Cfg:           avail.DefaultConfig(),
		Preloaded:     preloaded,
		HistoryDays:   histDays,
		HeartbeatPath: heartbeat,
	}, src)
	if err != nil {
		return err
	}
	srv, err := node.Serve(listen, registry)
	if err != nil {
		return err
	}
	defer srv.Close()
	node.Start()
	defer node.Stop()
	fmt.Printf("host node %s: gateway on %s, monitoring every %v (source %s)\n",
		id, srv.Addr(), trace.DefaultPeriod, source)
	if registry != "" {
		fmt.Printf("registered with %s\n", registry)
	}
	if archive != "" {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			for {
				select {
				case <-stop:
					return
				case <-time.After(archiveEvery):
					if err := node.SM.Archive(archive); err != nil {
						fmt.Fprintln(os.Stderr, "ishared: archive:", err)
					}
				}
			}
		}()
	}
	waitForSignal()
	if archive != "" {
		if err := node.SM.Archive(archive); err != nil {
			return fmt.Errorf("final archive: %w", err)
		}
		fmt.Printf("history archived to %s\n", archive)
	}
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("shutting down")
}
