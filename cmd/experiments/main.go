// Command experiments regenerates every table and figure of the paper's
// evaluation (Sections 3.2, 6.1 and 7) on the synthetic testbed trace:
//
//	experiments -run all            # everything (minutes)
//	experiments -run f5 -machines 6 # one figure
//	experiments -run f7 -trace t.bin
//
// Output is a plain-text table per experiment; EXPERIMENTS.md records these
// numbers next to the paper's.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/experiments"
	"fgcs/internal/fgcssim"
	"fgcs/internal/host"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
	"fgcs/internal/txtplot"
	"fgcs/internal/workload"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id: all, e1, e1b, e2, f4, f5, f6, f7, f8, s6, s7, x1, x2, x3, x4, a1")
		machines = flag.Int("machines", 6, "machines in the generated trace")
		days     = flag.Int("days", 90, "days in the generated trace")
		seed     = flag.Uint64("seed", 1, "generator seed")
		traceIn  = flag.String("trace", "", "load a trace file instead of generating")
		quick    = flag.Bool("quick", false, "smaller designs for a fast smoke run")
		workers  = flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)
	if err := realMain(*run, *machines, *days, *seed, *traceIn, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, machines, days int, seed uint64, traceIn string, quick bool) error {
	want := func(id string) bool { return run == "all" || run == id }
	cfg := avail.DefaultConfig()

	var ds *trace.Dataset
	needTrace := false
	for _, id := range []string{"f4", "f5", "f6", "f7", "f8", "s6", "x1", "x2", "a1"} {
		if want(id) {
			needTrace = true
		}
	}
	if needTrace {
		var err error
		ds, err = loadOrGenerate(traceIn, machines, days, seed, quick)
		if err != nil {
			return err
		}
		fmt.Printf("# trace: %d machines x %d days (%d machine-days)\n\n",
			len(ds.Machines), len(ds.Machines[0].Days), ds.MachineDays())
	}

	if want("e1") {
		if err := runE1(quick); err != nil {
			return err
		}
	}
	if want("e1b") {
		if err := runE1b(quick); err != nil {
			return err
		}
	}
	if want("e2") {
		if err := runE2(quick); err != nil {
			return err
		}
	}
	if want("f4") {
		if err := runF4(ds, cfg); err != nil {
			return err
		}
	}
	if want("f5") {
		if err := runF5(ds, cfg); err != nil {
			return err
		}
	}
	if want("f6") {
		if err := runF6(ds, cfg, quick); err != nil {
			return err
		}
	}
	if want("f7") {
		if err := runF7(ds); err != nil {
			return err
		}
	}
	if want("f8") {
		if err := runF8(ds); err != nil {
			return err
		}
	}
	if want("s6") {
		runS6(ds, cfg)
	}
	if want("s7") {
		if err := runS7(quick); err != nil {
			return err
		}
	}
	if want("x1") {
		if err := runX1(ds); err != nil {
			return err
		}
	}
	if want("x2") {
		if err := runX2(ds, cfg, quick); err != nil {
			return err
		}
	}
	if want("a1") {
		if err := runA1(ds, cfg, quick); err != nil {
			return err
		}
	}
	if want("x3") {
		if err := runX3(machines, days, seed, quick); err != nil {
			return err
		}
	}
	if want("x4") {
		if err := runX4(days, seed, quick); err != nil {
			return err
		}
	}
	return nil
}

func runX4(days int, seed uint64, quick bool) error {
	fmt.Println("== X4 (extension): end-to-end job response time under each placement policy ==")
	nJobs := 100
	if quick {
		days, nJobs = 35, 20
	}
	if days < 28 {
		days = 28
	}
	het, err := experiments.HeterogeneousTestbed(days, experiments.DefaultTestbedScales, seed+500)
	if err != nil {
		return err
	}
	startDay := days / 2
	jobs, err := fgcssim.PoissonJobs(nJobs, het, startDay, seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("%d jobs on %d machines over %d test days (response time is the paper's primary metric)\n",
		len(jobs), len(het.Machines), days-startDay)
	fmt.Printf("%-13s %-11s %-14s %-14s %-7s %s\n", "policy", "completed", "mean response", "p95 response", "kills", "lost compute")
	for _, pol := range []fgcssim.Policy{fgcssim.PolicyTRAware, fgcssim.PolicyRoundRobin, fgcssim.PolicyRandom} {
		cfg := fgcssim.Config{
			Dataset:  het,
			Cfg:      avail.DefaultConfig(),
			StartDay: startDay,
			Policy:   pol,
			Seed:     seed + 2,
		}
		res, err := fgcssim.Run(cfg, jobs)
		if err != nil {
			return err
		}
		fmt.Printf("%-13v %-11d %-14v %-14v %-7d %v\n",
			pol, res.CompletedJobs, res.MeanResponse.Round(time.Second), res.P95Response.Round(time.Second),
			res.TotalKills, res.TotalLost.Round(time.Minute))
	}
	fmt.Println()
	return nil
}

func runX3(machines, days int, seed uint64, quick bool) error {
	fmt.Println("== X3 (future work, Section 8): accuracy on an enterprise-desktop testbed ==")
	if quick {
		machines, days = 2, 28
	}
	// Working-hour placements: lengths that fit inside a 9:00-17:00 day.
	lengths := []float64{1, 2, 3, 5}
	rows, err := experiments.RunX3(machines, days, seed, lengths)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-8s %-10s %s\n", "profile", "hours", "avg err%", "windows")
	for _, r := range rows {
		fmt.Printf("%-12s %-8.0f %-10.2f %d\n", r.Profile, r.WindowHours, 100*r.AvgErr, r.Windows)
	}
	fmt.Println()
	return nil
}

func runX1(ds *trace.Dataset) error {
	fmt.Println("== X1 (extension): proactive TR-aware scheduling vs oblivious placement ==")
	// X1 uses its own heterogeneous testbed: availability-aware placement
	// only has something to choose between when machines differ.
	days := len(ds.Machines[0].Days)
	het, err := experiments.HeterogeneousTestbed(days, experiments.DefaultTestbedScales, 100)
	if err != nil {
		return err
	}
	cfg := experiments.DefaultX1Config()
	if cfg.HistoryDays >= days {
		cfg.HistoryDays = days / 2
	}
	fmt.Printf("heterogeneous testbed: %d machines (activity scales %v), %d days\n",
		len(het.Machines), experiments.DefaultTestbedScales, days)
	rows, err := experiments.RunX1(het, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-13s %-11s %-8s %-10s %s\n", "policy", "completed", "killed", "success%", "wasted compute")
	for _, r := range rows {
		total := r.Completed + r.Killed
		fmt.Printf("%-13s %-11d %-8d %-10.1f %.0f h\n",
			r.Policy, r.Completed, r.Killed, 100*float64(r.Completed)/float64(total), r.WastedHours)
	}
	fmt.Println()
	return nil
}

func runX2(ds *trace.Dataset, cfg avail.Config, quick bool) error {
	fmt.Println("== X2 (extension): sensitivity to the history pool size N (Section 4.2) ==")
	lengths := []float64{1, 3, 10}
	pools := []int{2, 5, 10, 20, 0}
	if quick {
		lengths = []float64{1, 3}
		pools = []int{2, 10, 0}
	}
	rows, err := experiments.RunX2(ds, cfg, pools, lengths)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %-10s %s\n", "N days", "avg err%", "max err%", "windows")
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.HistoryDays)
		if r.HistoryDays == 0 {
			label = "all"
		}
		fmt.Printf("%-10s %-10.2f %-10.2f %d\n", label, 100*r.AvgErr, 100*r.MaxErr, r.Windows)
	}
	fmt.Println()
	return nil
}

func runA1(ds *trace.Dataset, cfg avail.Config, quick bool) error {
	fmt.Println("== A1 (ablation): estimator design, average relative error ==")
	lengths := []float64{1, 3, 10}
	if quick {
		lengths = []float64{1, 3}
	}
	rows, err := experiments.RunA1(ds, cfg, lengths)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s", "variant")
	for _, h := range lengths {
		fmt.Printf("%-9s", fmt.Sprintf("%gh", h))
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-28s", r.Variant)
		for _, e := range r.AvgErr {
			fmt.Printf("%-9.1f", 100*e)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func loadOrGenerate(path string, machines, days int, seed uint64, quick bool) (*trace.Dataset, error) {
	if path != "" {
		return trace.LoadFile(path)
	}
	p := workload.DefaultParams()
	p.Machines = machines
	p.Days = days
	p.Seed = seed
	if quick {
		if p.Machines > 2 {
			p.Machines = 2
		}
		if p.Days > 28 {
			p.Days = 28
		}
	}
	return workload.Generate(p)
}

func runE1(quick bool) error {
	fmt.Println("== E1: CPU contention (Section 3.2.1) — reduction rate of host CPU usage ==")
	cfg := host.DefaultE1Config()
	if quick {
		cfg.GroupSizes = []int{1, 3}
		cfg.Trials = 2
		cfg.Duration = 5 * time.Minute
	}
	res, err := host.RunE1(cfg)
	if err != nil {
		return err
	}
	for _, nice := range []int{0, 19} {
		fmt.Printf("guest priority nice=%d\n", nice)
		fmt.Printf("  %-8s", "L_H%")
		for _, size := range cfg.GroupSizes {
			fmt.Printf("size=%-6d", size)
		}
		fmt.Println()
		for ti := range cfg.Targets {
			curve0 := res.Curves[nice][cfg.GroupSizes[0]]
			fmt.Printf("  %-8.1f", curve0[ti].IsolatedCPU)
			for _, size := range cfg.GroupSizes {
				fmt.Printf("%-10.2f", 100*res.Curves[nice][size][ti].Reduction)
			}
			fmt.Println()
		}
	}
	fmt.Printf("derived thresholds: Th1=%.0f%% Th2=%.0f%% (paper: 20%%, 60%%)\n\n", res.Th1, res.Th2)
	return nil
}

func runE1b(quick bool) error {
	fmt.Println("== E1b: guest-priority policy alternatives (Section 3.2.1) ==")
	targets := []float64{0.10, 0.30, 0.50, 0.70, 0.90}
	trials, dur := 4, 12*time.Minute
	if quick {
		trials, dur = 2, 5*time.Minute
	}
	rows, err := host.RunE1b(host.DefaultMachine(), targets, trials, dur, 2)
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %-8s %-12s %-10s %s\n", "policy", "L_H%", "reduction%", "guest%", "mean nice")
	for _, r := range rows {
		fmt.Printf("%-15v %-8.0f %-12.2f %-10.1f %.1f\n",
			r.Policy, r.IsolatedCPU, 100*r.Reduction, r.GuestCPU, r.MeanNice)
	}
	fmt.Println("conclusion: gradual priorities track the two-threshold scheme (redundant);")
	fmt.Println("the two thresholds reflect the availability levels without over-restriction.")
	fmt.Println()
	return nil
}

func runE2(quick bool) error {
	fmt.Println("== E2: CPU + memory contention (Section 3.2.2) ==")
	cfg := host.DefaultE2Config()
	if quick {
		cfg.Duration = 4 * time.Minute
	}
	cells, err := host.RunE2(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-14s %-5s %-8s %-10s %s\n", "guest", "host", "nice", "L_H%", "reduction%", "thrashing")
	for _, c := range cells {
		fmt.Printf("%-14s %-14s %-5d %-8.1f %-10.2f %v\n",
			c.Guest, c.Host, c.GuestNice, c.HostIsolatedCPU, 100*c.Reduction, c.Thrashing)
	}
	fmt.Println()
	return nil
}

func runF4(ds *trace.Dataset, cfg avail.Config) error {
	fmt.Println("== F4: prediction cost vs window length (Figure 4) ==")
	hours := []float64{0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rows, exp, err := experiments.RunF4(ds.Machines[0], cfg, hours)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %-14s %-12s %s\n", "hours", "Q+H time", "total time", "solver ops", "TR")
	for _, r := range rows {
		fmt.Printf("%-10.1f %-14v %-14v %-12d %.4f\n", r.WindowHours, r.QHTime, r.TotalTime, r.Ops, r.TR)
	}
	fmt.Printf("power-law exponent of total time: %.2f (paper: 1.85)\n\n", exp)
	return nil
}

func runF5(ds *trace.Dataset, cfg avail.Config) error {
	for _, dt := range []trace.DayType{trace.Weekday, trace.Weekend} {
		fmt.Printf("== F5 (%s): relative error of predicted TR (Figure 5) ==\n", dt)
		fcfg := experiments.DefaultF5Config(dt)
		fcfg.Cfg = cfg
		rows, err := experiments.RunF5(ds, fcfg)
		if err != nil {
			return err
		}
		printF5(rows)
	}
	return nil
}

func printF5(rows []experiments.F5Row) {
	fmt.Printf("%-8s %-10s %-10s %-10s %-9s %s\n", "hours", "avg err%", "min err%", "max err%", "windows", "skipped")
	var labels []string
	var avg, max []float64
	for _, r := range rows {
		fmt.Printf("%-8.0f %-10.2f %-10.2f %-10.2f %-9d %d\n",
			r.WindowHours, 100*r.Err.Mean, 100*r.Err.Min, 100*r.Err.Max, r.Windows, r.Skipped)
		labels = append(labels, fmt.Sprintf("%gh", r.WindowHours))
		avg = append(avg, 100*r.Err.Mean)
		max = append(max, 100*r.Err.Max)
	}
	fmt.Println()
	fmt.Println(txtplot.Chart("relative error (%) vs window length", labels, []txtplot.Series{
		{Name: "avg", Y: avg},
		{Name: "max", Y: max},
	}, 10))
}

func runF6(ds *trace.Dataset, cfg avail.Config, quick bool) error {
	fmt.Println("== F6: error vs training:test ratio, weekdays (Figure 6) ==")
	lengths := experiments.DefaultLengthsHours
	if quick {
		lengths = []float64{1, 3}
	}
	rows, err := experiments.RunF6(ds, cfg, lengths)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %s\n", "ratio", "max-avg err%", "max err%")
	best := rows[0]
	for _, r := range rows {
		fmt.Printf("%d:%-6d %-14.2f %.2f\n", r.TrainParts, r.TestParts, 100*r.MaxAvg, 100*r.Max)
		if r.MaxAvg < best.MaxAvg {
			best = r
		}
	}
	fmt.Printf("sweet spot: %d:%d (paper: 6:4)\n\n", best.TrainParts, best.TestParts)
	return nil
}

func runF7(ds *trace.Dataset) error {
	fmt.Println("== F7: SMP vs linear time-series models, max error, 08:00 weekdays (Figure 7) ==")
	cfg := experiments.DefaultF7Config()
	rows, err := experiments.RunF7(ds, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s", "model")
	for _, h := range cfg.LengthsHours {
		fmt.Printf("%-9s", fmt.Sprintf("%gh", h))
	}
	fmt.Println()
	var labels []string
	for _, h := range cfg.LengthsHours {
		labels = append(labels, fmt.Sprintf("%gh", h))
	}
	var series []txtplot.Series
	for _, r := range rows {
		fmt.Printf("%-12s", r.Model)
		ys := make([]float64, len(r.MaxErr))
		for i, e := range r.MaxErr {
			fmt.Printf("%-9.1f", 100*e)
			ys[i] = 100 * e
		}
		fmt.Println()
		series = append(series, txtplot.Series{Name: r.Model, Y: ys})
	}
	fmt.Println()
	fmt.Println(txtplot.Chart("max relative error (%) vs window length", labels, series, 12))
	return nil
}

func runF8(ds *trace.Dataset) error {
	fmt.Println("== F8: prediction discrepancy under injected noise (Figure 8) ==")
	cfg := experiments.DefaultF8Config()
	rows, err := experiments.RunF8(ds.Machines[0], cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s", "noise")
	for _, h := range cfg.LengthsHours {
		fmt.Printf("%-9s", fmt.Sprintf("T=%gh", h))
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-7d", r.Noise)
		for _, d := range r.Discrepancy {
			fmt.Printf("%-9.2f", 100*d)
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

func runS6(ds *trace.Dataset, cfg avail.Config) {
	fmt.Println("== S6: unavailability occurrences per machine (Section 6.1) ==")
	rows := experiments.RunS6(ds, cfg)
	fmt.Printf("%-10s %-6s %-8s %-6s %-6s %s\n", "machine", "days", "events", "S3", "S4", "S5")
	var counts []float64
	for _, r := range rows {
		fmt.Printf("%-10s %-6d %-8d %-6d %-6d %d\n",
			r.MachineID, r.Days, r.Events, r.ByState[avail.S3], r.ByState[avail.S4], r.ByState[avail.S5])
		counts = append(counts, float64(r.Events))
	}
	s := stats.Summarize(counts)
	fmt.Printf("range %.0f-%.0f, mean %.0f (paper: 405-453 over 90 days)\n\n", s.Min, s.Max, s.Mean)
}

func runS7(quick bool) error {
	fmt.Println("== S7: resource monitoring overhead (Section 7.1) ==")
	n := 200000
	if quick {
		n = 20000
	}
	res, err := experiments.RunS7(n, trace.DefaultPeriod)
	if err != nil {
		return err
	}
	fmt.Printf("per-sample cost: %v over %d samples\n", res.PerSample, res.Samples)
	fmt.Printf("fraction of the 6 s period: %.6f%% (paper: < 1%%)\n\n", 100*res.PeriodFraction)
	return nil
}
