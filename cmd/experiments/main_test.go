package main

import "testing"

// The quick path of every experiment must run end to end; this is the
// regression net for the harness plumbing (the statistical content is tested
// in internal/experiments).
func TestRealMainQuickSingles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiment code")
	}
	for _, id := range []string{"s7", "f4", "s6", "f8"} {
		if err := realMain(id, 2, 14, 1, "", true); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRealMainUnknownIDIsNoop(t *testing.T) {
	// Unknown ids simply select no experiment; the trace is not even
	// generated.
	if err := realMain("zzz", 1, 1, 1, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRealMainBadTraceFile(t *testing.T) {
	if err := realMain("s6", 1, 1, 1, "/nonexistent/file.bin", true); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
