package main

import (
	"path/filepath"
	"testing"

	"fgcs/internal/trace"
)

func TestRunWritesLoadableTrace(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.bin", "t.txt", "t.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := run(1, 2, 7, path, "lab", false); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ds, err := trace.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Machines) != 1 || len(ds.Machines[0].Days) != 2 {
			t.Fatalf("%s: shape %d/%d", name, len(ds.Machines), len(ds.Machines[0].Days))
		}
	}
}

func TestRunWithStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.bin")
	if err := run(1, 2, 7, path, "enterprise", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 2, 7, filepath.Join(t.TempDir(), "x.bin"), "lab", false); err == nil {
		t.Fatal("zero machines accepted")
	}
	if err := run(1, 1, 7, "/nonexistent-dir/x.bin", "lab", false); err == nil {
		t.Fatal("unwritable path accepted")
	}
	if err := run(1, 1, 7, filepath.Join(t.TempDir(), "y.bin"), "cluster", false); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
