// Command tracegen generates a synthetic FGCS testbed trace — the substitute
// for the paper's 3-month Purdue lab monitoring data — and writes it to a
// trace file (binary by default, text with a .txt extension):
//
//	tracegen -machines 20 -days 90 -o testbed.trace
//	tracegen -machines 1 -days 7 -seed 42 -o week.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"fgcs/internal/avail"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

func main() {
	var (
		machines = flag.Int("machines", 20, "number of machines")
		days     = flag.Int("days", 90, "number of days")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "testbed.trace", "output file (.txt for text, .gz for compressed)")
		profile  = flag.String("profile", "lab", "workload profile: lab or enterprise")
		stats    = flag.Bool("stats", true, "print per-machine unavailability statistics")
	)
	flag.Parse()
	if err := run(*machines, *days, *seed, *out, *profile, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(machines, days int, seed uint64, out, profile string, stats bool) error {
	p := workload.DefaultParams()
	p.Machines = machines
	p.Days = days
	p.Seed = seed
	switch profile {
	case "lab":
		p.Profile = workload.ProfileLab
	case "enterprise":
		p.Profile = workload.ProfileEnterprise
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	ds, err := workload.Generate(p)
	if err != nil {
		return err
	}
	if err := trace.SaveFile(out, ds); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d machines x %d days (%d machine-days)\n",
		out, machines, days, ds.MachineDays())
	if stats {
		cfg := avail.DefaultConfig()
		for _, m := range ds.Machines {
			total := 0
			for _, d := range m.Days {
				total += avail.CountEvents(d, cfg)
			}
			fmt.Printf("  %s: %d unavailability occurrences\n", m.ID, total)
		}
	}
	return nil
}
