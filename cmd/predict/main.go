// Command predict computes the temporal reliability of machines in a trace
// file over a future time window, using the paper's semi-Markov predictor:
//
//	predict -trace testbed.trace -start 8h -length 2h
//	predict -trace testbed.trace -machine lab-03 -start 9h30m -length 5h -daytype weekend
//
// It prints TR per machine along with the empirical TR of the same window
// measured over the history, so predictions can be sanity-checked at a
// glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/predict"
	"fgcs/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "trace file (required)")
		machine   = flag.String("machine", "", "machine id (default: all)")
		start     = flag.Duration("start", 8*time.Hour, "window start offset from midnight")
		length    = flag.Duration("length", 2*time.Hour, "window length")
		dayType   = flag.String("daytype", "weekday", "weekday or weekend")
		histDays  = flag.Int("history", 0, "most recent N days to pool (0 = all)")
		guestMem  = flag.Float64("mem", 100, "guest working set in MB (S4 threshold)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "prediction worker pool size")
	)
	flag.Parse()
	if err := run(*traceFile, *machine, *start, *length, *dayType, *histDays, *guestMem, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

func run(traceFile, machine string, start, length time.Duration, dayType string, histDays int, guestMem float64, workers int) error {
	if traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	var dt trace.DayType
	switch dayType {
	case "weekday":
		dt = trace.Weekday
	case "weekend":
		dt = trace.Weekend
	default:
		return fmt.Errorf("unknown day type %q", dayType)
	}
	ds, err := trace.LoadFile(traceFile)
	if err != nil {
		return err
	}
	w := predict.Window{Start: start, Length: length}
	if err := w.Validate(); err != nil {
		return err
	}
	cfg := avail.DefaultConfig()
	cfg.GuestMemMB = guestMem
	fmt.Printf("window %v on %ss, guest working set %g MB\n", w, dt, guestMem)
	fmt.Printf("%-10s %-10s %-12s %-10s %s\n", "machine", "TR", "TR(S1)/(S2)", "emp TR", "history")
	// Fan the per-machine predictions across the engine's worker pool;
	// results come back in request order, so the report is stable.
	var selected []*trace.Machine
	var reqs []predict.BatchRequest
	for _, m := range ds.Machines {
		if machine != "" && m.ID != machine {
			continue
		}
		selected = append(selected, m)
		reqs = append(reqs, predict.BatchRequest{Machine: m.ID, History: m.DaysOfType(dt), Window: w})
	}
	p := predict.SMP{Cfg: cfg, HistoryDays: histDays}
	engine := predict.NewEngine(predict.EngineConfig{Workers: workers})
	for i, res := range engine.PredictBatch(p, reqs) {
		m := selected[i]
		if res.Err != nil {
			return fmt.Errorf("%s: %w", m.ID, res.Err)
		}
		pred := res.Prediction
		emp, n := predict.EmpiricalTR(m.DaysOfType(dt), w, cfg)
		fmt.Printf("%-10s %-10.4f %.3f/%.3f  %-10.4f %d windows, %d days\n",
			m.ID, pred.TR, pred.TRByInit[0], pred.TRByInit[1], emp, pred.HistoryWindows, n)
	}
	return nil
}
