package main

import (
	"path/filepath"
	"testing"
	"time"

	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	p := workload.DefaultParams()
	p.Machines = 2
	p.Days = 14
	ds, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := trace.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMachines(t *testing.T) {
	path := writeTestTrace(t)
	if err := run(path, "", 8*time.Hour, 2*time.Hour, "weekday", 0, 100, 2); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "lab-02", 9*time.Hour, time.Hour, "weekend", 5, 50, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestTrace(t)
	cases := []struct {
		name string
		f    func() error
	}{
		{"missing trace flag", func() error {
			return run("", "", 8*time.Hour, time.Hour, "weekday", 0, 100, 2)
		}},
		{"bad day type", func() error {
			return run(path, "", 8*time.Hour, time.Hour, "someday", 0, 100, 2)
		}},
		{"missing file", func() error {
			return run(filepath.Join(t.TempDir(), "nope.bin"), "", 8*time.Hour, time.Hour, "weekday", 0, 100, 2)
		}},
		{"invalid window", func() error {
			return run(path, "", 20*time.Hour, 10*time.Hour, "weekday", 0, 100, 2)
		}},
	}
	for _, c := range cases {
		if err := c.f(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}
