// Command traceinfo analyzes an FGCS monitor trace: per-machine
// unavailability statistics (the Section 6.1 numbers), availability-state
// occupancy, and the diurnal availability profile rendered as an ASCII
// chart.
//
//	traceinfo -trace testbed.trace
//	traceinfo -trace testbed.trace -machine lab-03 -daytype weekend
package main

import (
	"flag"
	"fmt"
	"os"

	"fgcs/internal/avail"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
	"fgcs/internal/txtplot"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "trace file (required)")
		machine   = flag.String("machine", "", "machine id (default: all)")
		dayType   = flag.String("daytype", "weekday", "weekday or weekend (for the diurnal profile)")
	)
	flag.Parse()
	if err := run(*traceFile, *machine, *dayType); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(traceFile, machine, dayType string) error {
	if traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	var dt trace.DayType
	switch dayType {
	case "weekday":
		dt = trace.Weekday
	case "weekend":
		dt = trace.Weekend
	default:
		return fmt.Errorf("unknown day type %q", dayType)
	}
	ds, err := trace.LoadFile(traceFile)
	if err != nil {
		return err
	}
	cfg := avail.DefaultConfig()
	fmt.Printf("%-10s %-6s %-8s %-6s %-6s %-6s %-9s %s\n",
		"machine", "days", "events", "S3", "S4", "S5", "recover%", "mean CPU%")
	for _, m := range ds.Machines {
		if machine != "" && m.ID != machine {
			continue
		}
		events, byState := 0, map[avail.State]int{}
		var occSum avail.Occupancy
		var cpu []float64
		for _, d := range m.Days {
			for _, e := range avail.Events(d, cfg) {
				events++
				byState[e.State]++
			}
			o := avail.StateOccupancy(d.Samples, cfg, d.Period)
			for i := range occSum {
				occSum[i] += o[i] / float64(len(m.Days))
			}
			for _, s := range d.Samples {
				if s.Up {
					cpu = append(cpu, s.CPU)
				}
			}
		}
		fmt.Printf("%-10s %-6d %-8d %-6d %-6d %-6d %-9.2f %.2f\n",
			m.ID, len(m.Days), events, byState[avail.S3], byState[avail.S4], byState[avail.S5],
			100*occSum.Recoverable(), stats.Mean(cpu))
	}

	// Diurnal availability profile of the first selected machine.
	var target *trace.Machine
	if machine != "" {
		target = ds.Find(machine)
		if target == nil {
			return fmt.Errorf("machine %q not in trace", machine)
		}
	} else if len(ds.Machines) > 0 {
		target = ds.Machines[0]
	}
	if target == nil {
		return fmt.Errorf("trace has no machines")
	}
	days := target.DaysOfType(dt)
	if len(days) == 0 {
		return fmt.Errorf("machine %s has no %s days", target.ID, dt)
	}
	hourly := avail.HourlyOccupancy(days, cfg)
	labels := make([]string, 0, 12)
	recover := make([]float64, 0, 12)
	s1 := make([]float64, 0, 12)
	for h := 0; h < 24; h += 2 {
		labels = append(labels, fmt.Sprintf("%02d", h))
		recover = append(recover, 100*hourly[h].Recoverable())
		s1 = append(s1, 100*hourly[h].Of(avail.S1))
	}
	fmt.Println()
	fmt.Println(txtplot.Chart(
		fmt.Sprintf("%s diurnal availability of %s (%% of time, by clock hour)", dt, target.ID),
		labels,
		[]txtplot.Series{
			{Name: "recoverable (S1+S2)", Y: recover},
			{Name: "idle (S1)", Y: s1},
		}, 10))
	return nil
}
