package main

import (
	"path/filepath"
	"testing"

	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

func testTracePath(t *testing.T) string {
	t.Helper()
	p := workload.DefaultParams()
	p.Machines = 2
	p.Days = 14
	ds, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if err := trace.SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAndSingle(t *testing.T) {
	path := testTracePath(t)
	if err := run(path, "", "weekday"); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "lab-02", "weekend"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := testTracePath(t)
	if err := run("", "", "weekday"); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run(path, "", "holiday"); err == nil {
		t.Fatal("bad day type accepted")
	}
	if err := run(path, "ghost", "weekday"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "no.bin"), "", "weekday"); err == nil {
		t.Fatal("missing file accepted")
	}
}
