package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Metrics hygiene: every metric registered on the obs registry must be
// auditable from the source alone. Names are string literals in
// fgcs_-prefixed snake_case, help text is a non-empty sentence ending in a
// period (it becomes the # HELP line operators read), and label keys that
// scale with the fleet — machine ids, job ids, peer addresses — are banned
// outright: one label value per machine turns a fixed-cardinality registry
// into an unbounded one and breaks the federated merge's size assumptions.

// metricFuncs are the registry registration methods audited for hygiene.
var metricFuncs = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// metricNameRE is the required shape of a metric name.
var metricNameRE = regexp.MustCompile(`^fgcs_[a-z0-9_]+$`)

// highCardLabelKeys are label keys whose cardinality grows with the fleet or
// the workload, never allowed on a registered series. Per-machine figures
// belong in the accuracy tracker (which has retention) or in logs.
var highCardLabelKeys = map[string]bool{
	"machine": true, "machine_id": true,
	"job": true, "job_id": true,
	"addr": true, "address": true,
	"trace": true, "trace_id": true, "span_id": true,
}

// metricsHygiene audits every Counter/Gauge/Histogram registration in the
// given package directories (tests excluded) and reports violations.
func metricsHygiene(dirs []string) ([]string, error) {
	var out []string
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fset := token.NewFileSet()
		pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", dir, err)
		}
		for _, pkg := range pkgMap {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) < 2 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !metricFuncs[sel.Sel.Name] {
						return true
					}
					pos := fset.Position(call.Pos())
					at := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)

					name, ok := stringLit(call.Args[0])
					if !ok {
						// Not a registration (or a computed name, which
						// defeats auditing). Only flag it when the second
						// argument looks like help text, so unrelated
						// methods that happen to be called Counter pass.
						if _, helpish := stringLit(call.Args[1]); helpish {
							out = append(out, fmt.Sprintf("%s: metric name is not a string literal", at))
						}
						return true
					}
					if !strings.HasPrefix(name, "fgcs_") {
						// A literal first arg without the prefix is some
						// other API (e.g. a map lookup); require the prefix
						// only once the call also carries literal help.
						if help, helpish := stringLit(call.Args[1]); !helpish || help == "" {
							return true
						}
					}
					if !metricNameRE.MatchString(name) {
						out = append(out, fmt.Sprintf("%s: metric name %q is not fgcs_-prefixed snake_case", at, name))
					}
					help, ok := stringLit(call.Args[1])
					if !ok {
						out = append(out, fmt.Sprintf("%s: metric %s help text is not a string literal", at, name))
					} else if help == "" || !strings.HasSuffix(help, ".") {
						out = append(out, fmt.Sprintf("%s: metric %s help text must be a sentence ending in a period", at, name))
					}
					for _, arg := range call.Args {
						ast.Inspect(arg, func(m ast.Node) bool {
							lit, ok := m.(*ast.CompositeLit)
							if !ok || !isLabelType(lit.Type) {
								return true
							}
							if key, ok := labelKey(lit); ok && highCardLabelKeys[key] {
								out = append(out, fmt.Sprintf("%s: metric %s label key %q has per-machine cardinality; use the accuracy tracker or logs instead", at, name, key))
							}
							return true
						})
					}
					return true
				})
			}
		}
	}
	return out, nil
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// isLabelType matches the obs.Label composite literal type (qualified or
// package-local).
func isLabelType(t ast.Expr) bool {
	switch v := t.(type) {
	case *ast.Ident:
		return v.Name == "Label"
	case *ast.SelectorExpr:
		return v.Sel.Name == "Label"
	}
	return false
}

// labelKey extracts the Key field (or first positional field) of a Label
// literal when it is a string literal.
func labelKey(lit *ast.CompositeLit) (string, bool) {
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
				return stringLit(kv.Value)
			}
			continue
		}
		if i == 0 {
			return stringLit(el)
		}
	}
	return "", false
}
