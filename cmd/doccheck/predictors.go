package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// tableRowName matches the first cell of a markdown table row when it holds a
// single code span: `| `NAME` | ...`. Predictor names may contain letters,
// digits, parens and commas (`ARMA(8,8)`), so the span body is taken verbatim
// up to the closing backtick.
var tableRowName = regexp.MustCompile("^\\|\\s*`([^`]+)`\\s*\\|")

// stalePredictorTable cross-checks the predictor reference table in the
// authoring guide against the names registered in internal/predict. Table
// rows are recognized by a first cell holding exactly one code span; header
// and separator rows never match. Both directions are enforced: a registered
// plugin absent from the table is a missing entry, and a documented name with
// no registration is a phantom entry.
func stalePredictorTable(docPath string, registered []string) ([]string, error) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		return nil, fmt.Errorf("reading predictor guide (satellite docs missing?): %w", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := tableRowName.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	var out []string
	for _, name := range registered {
		if !documented[name] {
			out = append(out, fmt.Sprintf("%s: registered predictor %q is missing from the reference table", docPath, name))
		}
	}
	known := map[string]bool{}
	for _, name := range registered {
		known[name] = true
	}
	phantoms := make([]string, 0, len(documented))
	for name := range documented {
		if !known[name] {
			phantoms = append(phantoms, name)
		}
	}
	sort.Strings(phantoms)
	for _, name := range phantoms {
		out = append(out, fmt.Sprintf("%s: documented predictor %q is not registered in internal/predict", docPath, name))
	}
	return out, nil
}
