package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGuide(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "PREDICTORS.md")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStalePredictorTable(t *testing.T) {
	registered := []string{"ARMA(8,8)", "FFT", "SMP"}
	complete := "# Guide\n\n" +
		"| Name | Knobs |\n|---|---|\n" +
		"| `SMP` | none |\n" +
		"| `FFT` | spectrum items |\n" +
		"| `ARMA(8,8)` | order |\n"

	problems, err := stalePredictorTable(writeGuide(t, complete), registered)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("complete table reported problems: %v", problems)
	}

	missing := strings.Replace(complete, "| `FFT` | spectrum items |\n", "", 1)
	problems, err = stalePredictorTable(writeGuide(t, missing), registered)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"FFT" is missing`) {
		t.Fatalf("dropped FFT row not flagged as missing: %v", problems)
	}

	phantom := complete + "| `GHOST` | imaginary |\n"
	problems, err = stalePredictorTable(writeGuide(t, phantom), registered)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"GHOST" is not registered`) {
		t.Fatalf("unregistered GHOST row not flagged as phantom: %v", problems)
	}

	if _, err := stalePredictorTable(filepath.Join(t.TempDir(), "absent.md"), registered); err == nil {
		t.Fatal("missing guide file did not error")
	}
}

func TestStalePredictorTableIgnoresNonTableSpans(t *testing.T) {
	// Code spans in prose or later columns must not count as documented
	// predictors; only the first cell of a table row does.
	body := "Use `FFT` by calling `NewPlugin`.\n\n" +
		"| Name | See |\n|---|---|\n" +
		"| `SMP` | `FFT` cross-reference |\n"
	problems, err := stalePredictorTable(writeGuide(t, body), []string{"FFT", "SMP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"FFT" is missing`) {
		t.Fatalf("prose mention of FFT satisfied the table check: %v", problems)
	}
}
