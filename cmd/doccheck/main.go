// Command doccheck is the repository's documentation linter, run by `make
// lint`. It enforces four freshness invariants that plain `go vet` does not:
//
//   - every exported symbol in the audited packages (-pkgs) carries a doc
//     comment, so `go doc` is never blank on API surface;
//   - every command-line flag registered by the audited binaries (-flagdirs)
//     is mentioned in the README flag reference (-readme), so the operator
//     docs cannot silently fall behind the binaries;
//   - every metric registered in the audited packages (-metricdirs) is
//     hygienic: a literal fgcs_-prefixed snake_case name, help text that is
//     a sentence ending in a period, and no label key whose cardinality
//     grows with the fleet (machine ids, job ids, addresses);
//   - the predictor reference table in the authoring guide (-predictors)
//     lists exactly the plugins registered in internal/predict — a plugin
//     missing from the table or a documented name with no registration both
//     fail, so the guide cannot drift from the registry.
//
// It prints one line per violation and exits non-zero if any were found.
//
//	go run ./cmd/doccheck
//	go run ./cmd/doccheck -pkgs internal/ishare -flagdirs cmd/ishared
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fgcs/internal/predict"
)

func main() {
	var (
		pkgs       = flag.String("pkgs", "internal/ishare,internal/predict,internal/obs,internal/otrace,internal/fleetsim", "comma-separated package directories audited for exported-symbol doc comments")
		flagDirs   = flag.String("flagdirs", "cmd/ishared,cmd/isharec,cmd/fleetsim", "comma-separated command directories whose registered flags must appear in the README")
		readme     = flag.String("readme", "README.md", "operator document that must mention every registered flag")
		metricDirs = flag.String("metricdirs", "internal/ishare,internal/predict,internal/monitor,internal/obs,internal/fleetsim", "comma-separated package directories audited for metrics hygiene")
		predictors = flag.String("predictors", "docs/PREDICTORS.md", "authoring guide whose reference table must list exactly the registered predictor plugins (empty disables the check)")
	)
	flag.Parse()
	var problems []string
	for _, dir := range strings.Split(*pkgs, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		missing, err := missingDocs(dir)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, missing...)
	}
	flagProblems, err := staleFlags(strings.Split(*flagDirs, ","), *readme)
	if err != nil {
		fatal(err)
	}
	problems = append(problems, flagProblems...)
	metricProblems, err := metricsHygiene(strings.Split(*metricDirs, ","))
	if err != nil {
		fatal(err)
	}
	problems = append(problems, metricProblems...)
	if *predictors != "" {
		tableProblems, err := stalePredictorTable(*predictors, predict.PluginNames())
		if err != nil {
			fatal(err)
		}
		problems = append(problems, tableProblems...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(1)
}

// missingDocs reports every exported symbol in dir (tests excluded) that
// lacks a doc comment: functions, methods on exported receivers, and the
// names declared by type/var/const specs. A parenthesized declaration
// block's doc comment covers all of its specs, matching godoc's rendering.
func missingDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgMap {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, ok := receiverName(d); ok {
						// Methods on unexported types are not API surface.
						if !ast.IsExported(recv) {
							continue
						}
						report(d.Pos(), "method", recv+"."+d.Name.Name)
					} else {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					if d.Doc != nil {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									kind := "var"
									if d.Tok == token.CONST {
										kind = "const"
									}
									report(n.Pos(), kind, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// receiverName extracts the receiver's base type name from a method
// declaration ("*FedGateway" and "FedGateway" both yield "FedGateway").
func receiverName(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// flagFuncs are the flag-registration methods whose (name, default, usage)
// signature identifies a flag definition regardless of the receiver — the
// global `flag` package or a per-subcommand FlagSet.
var flagFuncs = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
}

// staleFlags parses every non-test file in the given command directories,
// collects the name of each registered flag, and reports the ones the
// README never mentions (as `-name` inside a code span or slash-joined
// flag list).
func staleFlags(dirs []string, readmePath string) ([]string, error) {
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		fset := token.NewFileSet()
		pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", dir, err)
		}
		names := map[string]bool{}
		for _, pkg := range pkgMap {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 3 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !flagFuncs[sel.Sel.Name] {
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						return true
					}
					if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
						names[name] = true
					}
					return true
				})
			}
		}
		sorted := make([]string, 0, len(names))
		for n := range names {
			sorted = append(sorted, n)
		}
		sort.Strings(sorted)
		for _, name := range sorted {
			// Match -name after a backtick or a slash (the `-a/-b` list
			// style), not followed by more flag-name characters, so -retry
			// is not satisfied by -retry-base.
			re := regexp.MustCompile("[`/]-" + regexp.QuoteMeta(name) + `([^-\w]|$)`)
			if !re.Match(readme) {
				out = append(out, fmt.Sprintf("%s: flag -%s of %s is not documented in %s", dir, name, filepath.Base(dir), readmePath))
			}
		}
	}
	return out, nil
}
