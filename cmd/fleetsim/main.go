// Command fleetsim runs the in-process fleet-scale simulation: a federated
// ring of gateways serving up to 100k simulated machines over an in-memory
// transport and a virtual clock (no sockets, no sleeps). One run drives the
// full lifecycle — registration storm, two simulated hours of monitor feeds
// and prediction queries crossing a day boundary, a leave/join churn storm
// with TTL reaping, a peer outage served by replicas, and a restart that
// must re-converge via anti-entropy — then emits a two-part JSON report:
// a deterministic "sim" section (byte-identical for the same seed, checked
// by -verify) and a measured "perf" section (throughput, latency, memory)
// that cmd/benchgate gates with -fleet.
//
//	fleetsim -machines 100000 -out BENCH_fleet.json
//	fleetsim -machines 1000 -verify
//
// The report goes to -out (stdout with -out -); a human-readable summary
// always goes to stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"fgcs/internal/fleetsim"
	"fgcs/internal/obs"
)

func main() {
	var (
		machines    = flag.Int("machines", 100_000, "fleet size, including join-storm holdbacks")
		gateways    = flag.Int("gateways", 8, "federation peers in the ring")
		replicas    = flag.Int("replicas", 2, "registry replication factor K")
		vnodes      = flag.Int("vnodes", 64, "virtual nodes per peer on the hash ring")
		seed        = flag.Uint64("seed", 1, "seed for every random choice in the run")
		profiles    = flag.Int("profiles", 64, "shared machine behavior classes")
		historyDays = flag.Int("history-days", 3, "preloaded per-profile history days")
		period      = flag.Duration("period", 5*time.Minute, "monitoring sample period (one tick of virtual time)")
		ticks       = flag.Int("ticks", 24, "traffic ticks; default crosses midnight from the 23:00 start")
		queries     = flag.Int("queries-per-tick", 0, "fleet-wide queries per tick (0 = max(200, machines/50))")
		workers     = flag.Int("workers", 0, "traffic parallelism (0 = GOMAXPROCS); part of the deterministic config")
		perturbRate = flag.Float64("perturb-rate", 0, "arm the drift scenario: per-slot outage probability injected into one behavior class mid-run (0 = off)")
		perturbProf = flag.Int("perturb-profile", 0, "behavior class the perturbation hits")
		perturbTick = flag.Int("perturb-tick", 0, "first perturbed tick (0 = ticks/2)")
		driftLambda = flag.Float64("drift-lambda", 0, "Page–Hinkley alarm threshold for the accuracy-drift watchers (0 = default)")
		ensemble    = flag.Bool("ensemble", false, "route TR queries through the predictor ensemble (per-peer routers over rolling Brier scores); the report gains a deterministic ensemble block")
		out         = flag.String("out", "-", "write the full JSON report here (- = stdout)")
		verify      = flag.Bool("verify", false, "run twice and fail unless the deterministic sections are byte-identical")
		quiet       = flag.Bool("q", false, "suppress phase progress on stderr")
	)
	flag.Parse()

	cfg := fleetsim.Config{
		Machines:        *machines,
		Gateways:        *gateways,
		Replicas:        *replicas,
		Vnodes:          *vnodes,
		Seed:            *seed,
		Profiles:        *profiles,
		HistoryDays:     *historyDays,
		Period:          *period,
		Ticks:           *ticks,
		QueriesPerTick:  *queries,
		Workers:         *workers,
		Drift:           obs.DriftConfig{Lambda: *driftLambda},
		PerturbFailRate: *perturbRate,
		PerturbProfile:  *perturbProf,
		PerturbTick:     *perturbTick,
		Ensemble:        *ensemble,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "fleetsim: "+format+"\n", args...)
		}
	}

	rep, err := fleetsim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	if *verify {
		rep2, err := fleetsim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim: verify run:", err)
			os.Exit(1)
		}
		b1, b2 := rep.DeterministicBytes(), rep2.DeterministicBytes()
		if !bytes.Equal(b1, b2) {
			fmt.Fprintln(os.Stderr, "fleetsim: FAIL: same-seed runs diverged")
			fmt.Fprintf(os.Stderr, "--- run 1 ---\n%s--- run 2 ---\n%s", b1, b2)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fleetsim: verify OK: deterministic sections identical (%d bytes)\n", len(b1))
	}

	raw := rep.JSON()
	if *out == "-" {
		os.Stdout.Write(raw)
	} else if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
	fmt.Fprint(os.Stderr, rep.Summary())
}
