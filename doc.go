// Package fgcs is a from-scratch Go implementation of "Resource Availability
// Prediction in Fine-Grained Cycle Sharing Systems" (Ren, Lee, Eigenmann,
// Bagchi — HPDC 2006): the five-state resource availability model, the
// semi-Markov temporal-reliability predictor, the linear time-series
// baselines, the iShare FGCS runtime, the host-contention simulator behind
// the Th1/Th2 thresholds, and the synthetic testbed-trace generator, with a
// benchmark harness that regenerates every figure of the paper's evaluation.
//
// See README.md for the layout and EXPERIMENTS.md for paper-vs-measured
// results. The root package exists to carry the repository-level benchmarks
// in bench_test.go; the library lives under internal/ and the executables
// under cmd/.
package fgcs
