// Package fgcs is a from-scratch Go implementation of "Resource Availability
// Prediction in Fine-Grained Cycle Sharing Systems" (Ren, Lee, Eigenmann,
// Bagchi — HPDC 2006): the five-state resource availability model, the
// semi-Markov temporal-reliability predictor, the linear time-series
// baselines, the iShare FGCS runtime, the host-contention simulator behind
// the Th1/Th2 thresholds, and the synthetic testbed-trace generator, with a
// benchmark harness that regenerates every figure of the paper's evaluation.
//
// # Layout
//
// The library lives under internal/ in five layers (the full map, with a
// dependency diagram and a request lifecycle, is in ARCHITECTURE.md):
//
//   - Foundations: simclock (injected clocks), rng (seeded streams), stats,
//     linalg, txtplot, obs (metrics + online accuracy), otrace (request
//     tracing + flight recorder). Determinism is load-bearing: nothing
//     above this layer touches the wall clock or global randomness.
//   - Trace data: trace (samples/days/codecs), workload (synthetic testbed
//     generator), host (§3.2 contention simulator), monitor (live /proc
//     sampling + t_monitor heartbeat).
//   - Prediction: avail (§3 five-state model), smp (§4 Q/H estimation and
//     the Equation (3) solver), timeseries (Table 1 baselines), predict
//     (pooling, evaluation, the caching concurrent Engine), jobest, core
//     (the two-call embedder API: NewPredictor, TRAt).
//   - Runtime: ishare — gateway, state manager, registry, client scheduler,
//     supervisor, retry/breaker stack, and the federated multi-gateway
//     control plane (consistent-hash sharding, replication, forwarding);
//     faultnet injects deterministic network faults for the chaos tests.
//   - Evaluation: fgcssim (whole-deployment simulation) and experiments
//     (the figure/table regeneration harness).
//
// The executables live under cmd/: ishared (host node / registry /
// federation peer), isharec (client CLI), experiments, predict, tracegen,
// traceinfo, benchgate and doccheck.
//
// See README.md for operations (quickstarts, flag reference,
// troubleshooting), ARCHITECTURE.md for the codebase map, DESIGN.md for
// design rationale, and EXPERIMENTS.md for paper-vs-measured results of
// every figure. The root package exists to carry the repository-level
// benchmarks in bench_test.go.
package fgcs
