GO ?= go

# Benchmarks gated against BENCH_baseline.json by `make benchstat`.
BENCH_GATE = BenchmarkEngineCachedVsCold|BenchmarkPredictBatchParallel|BenchmarkEnginePredictTracing|BenchmarkQueryTRTracing|BenchmarkQueryTREnsemble|BenchmarkWALAppend|BenchmarkRecover
FUZZTIME ?= 20s

.PHONY: build test race vet lint cover bench benchstat benchbase bench-serve bench-serve-base bench-serve-wal bench-fleet bench-fleet-base fuzz golden chaos crash

build:
	$(GO) build ./...

# The default test gate includes lint (vet + doc/flag freshness), the
# golden-trace regression, the fuzz seed corpora (replayed as plain unit
# tests by `go test`), and a race-detector pass over the concurrent layers:
# networking, fault injection, the prediction engine, the monitor, and the
# metrics/accuracy registry.
test: golden lint crash
	$(GO) test ./...
	$(GO) test -race ./internal/ishare/... ./internal/faultnet/... \
		./internal/predict/... ./internal/monitor/... ./internal/obs/... \
		./internal/otrace/... ./internal/durable/... ./internal/fleetsim/...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint = vet + documentation freshness: every exported symbol in the audited
# packages must carry a doc comment, and every flag registered by
# cmd/ishared / cmd/isharec must appear in the README flag reference.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/doccheck

# Per-package statement coverage summary.
cover:
	$(GO) test -cover ./... | grep -v '\[no test files\]'

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Bench regression gate: run the engine benchmarks, record BENCH_predict.json,
# and fail on >10% latency or an allocs/op regression beyond max(1, 0.1%)
# slack (exactly zero for 0-alloc benchmarks) against the checked-in
# baseline. Baselines are machine-specific — regenerate with `make benchbase`
# when switching hardware.
benchstat:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -count=3 . | tee bench_gate.out
	$(GO) run ./cmd/benchgate -in bench_gate.out -out BENCH_predict.json -baseline BENCH_baseline.json
	$(GO) run ./cmd/benchgate -ensemble -in bench_gate.out
	@rm -f bench_gate.out

benchbase:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchmem -count=3 . | tee bench_gate.out
	$(GO) run ./cmd/benchgate -in bench_gate.out -baseline BENCH_baseline.json -write
	@rm -f bench_gate.out

# Serving-path gate: drive the seeded isharebench workload end to end over
# both transports and fail unless the binary protocol beats dial-per-RPC JSON
# by >=5x QPS at <=0.5x p99, within 10% of the recorded BENCH_serve_base.json
# (machine-specific — regenerate with `make bench-serve-base`).
bench-serve:
	$(GO) run ./cmd/isharebench -selfhost -repeat 3 -out BENCH_serve.json
	$(GO) run ./cmd/benchgate -serve -in BENCH_serve.json -baseline BENCH_serve_base.json

bench-serve-base:
	$(GO) run ./cmd/isharebench -selfhost -repeat 3 -out BENCH_serve.json
	$(GO) run ./cmd/benchgate -serve -in BENCH_serve.json -baseline BENCH_serve_base.json -write

# Durability tax on the serving path: the same workload with a WAL attached
# (fsync always, a live sample stream appending throughout the run) must stay
# within 10% of the WAL-less BENCH_serve_base.json. Fails when durability
# leaks into the query path.
bench-serve-wal:
	$(GO) run ./cmd/isharebench -selfhost -wal -repeat 3 -out BENCH_serve_wal.json
	$(GO) run ./cmd/benchgate -serve -in BENCH_serve_wal.json -baseline BENCH_serve_base.json

# Fleet-scale gate: simulate a 100k-machine federated fleet entirely
# in-process (virtual clock, in-memory transport) and fail unless the run is
# failure-free, steady memory stays under -max-bytes-per-machine, throughput
# reaches -min-predictions-per-sec, and both are within 10% of the recorded
# BENCH_fleet_base.json (machine-specific — regenerate with
# `make bench-fleet-base`).
bench-fleet:
	$(GO) run ./cmd/fleetsim -machines 100000 -out BENCH_fleet.json
	$(GO) run ./cmd/benchgate -fleet -in BENCH_fleet.json -baseline BENCH_fleet_base.json

bench-fleet-base:
	$(GO) run ./cmd/fleetsim -machines 100000 -out BENCH_fleet.json
	$(GO) run ./cmd/benchgate -fleet -in BENCH_fleet.json -baseline BENCH_fleet_base.json -write

# Short fuzz pass over the wire-protocol and trace-codec decoders. The seed
# corpora under testdata/fuzz also run as plain unit tests in `make test`.
fuzz:
	$(GO) test ./internal/ishare/ -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ishare/ -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ishare/ -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadText$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable/ -run '^$$' -fuzz '^FuzzReadSegment$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable/ -run '^$$' -fuzz '^FuzzReadSnapshot$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz '^FuzzDecodeObsSnapshot$$' -fuzztime $(FUZZTIME)

# Golden-trace regression: fixed-seed workload, bit-exact predictor outputs.
# Use `make golden-update` only when a numerical change is intended.
golden:
	$(GO) test ./internal/predict/ -run 'TestGolden' -count=1

golden-update:
	$(GO) test ./internal/predict/ -run 'TestGoldenPredictions' -count=1 -update

# Chaos harnesses: a five-machine testbed over real TCP with seeded fault
# injection (dial refusals, resets, corruption, partitions), and a
# three-peer federated control plane that loses a gateway mid-run. Each runs
# twice per invocation to prove byte-determinism of the fault schedule.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/ishare/...

# Crash-injection harness: kill the WAL at every byte offset (durable layer)
# and at seeded offsets under a live node (ishare layer), then prove recovery
# is prefix-consistent, refuses silent corruption, and answers QueryTR
# exactly as the pre-crash state. Byte-deterministic under fixed seeds.
crash:
	$(GO) test -count=1 -run 'TestCrash|TestBitFlip' ./internal/durable/
	$(GO) test -count=1 -run 'TestPersisterCrash' ./internal/ishare/
