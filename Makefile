GO ?= go

.PHONY: build test race vet bench chaos

build:
	$(GO) build ./...

# The default test gate includes vet and a race-detector pass over the
# networking and fault-injection layers, where the concurrency lives.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/ishare/... ./internal/faultnet/...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Chaos harness: a five-machine testbed over real TCP with seeded fault
# injection (dial refusals, resets, corruption, partitions). Run twice per
# invocation to prove byte-determinism of the fault schedule.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/ishare/...
