GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
