package otrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceRecord is one locally rooted span tree retained by the flight
// recorder. A distributed trace appears as several records sharing a
// TraceID — one per local root (e.g. one client record plus one gateway
// record per RPC attempt); Recorder.Trace merges them for inspection.
type TraceRecord struct {
	TraceID TraceID    `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
}

// Root returns the record's local root span: the span whose parent is not in
// the record (the remote parent, or zero).
func (r TraceRecord) Root() SpanData {
	local := make(map[SpanID]bool, len(r.Spans))
	for _, s := range r.Spans {
		local[s.SpanID] = true
	}
	for _, s := range r.Spans {
		if !local[s.Parent] {
			return s
		}
	}
	if len(r.Spans) > 0 {
		return r.Spans[0]
	}
	return SpanData{}
}

// LogEvent is one captured ERROR/WARN log record, retained alongside traces
// so a post-hoc look at a misbehaving run sees both what happened and what
// was logged while it happened.
type LogEvent struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Recorder is the flight recorder: a fixed-size ring of the most recent
// completed traces plus a ring of recent WARN/ERROR log events. Reads return
// copies, so snapshots are safe to serialize while recording continues.
type Recorder struct {
	mu     sync.Mutex
	traces []TraceRecord // ring; traces[next] is the oldest slot
	next   int
	filled bool
	total  uint64

	events    []LogEvent // ring
	evNext    int
	evFilled  bool
	evDropped uint64
}

// DefaultCapacity is the trace capacity used when NewRecorder is given a
// non-positive size.
const DefaultCapacity = 256

// defaultEventCapacity bounds the retained WARN/ERROR log events.
const defaultEventCapacity = 512

// NewRecorder builds a flight recorder retaining the last capacity completed
// traces (<= 0 selects DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		traces: make([]TraceRecord, capacity),
		events: make([]LogEvent, defaultEventCapacity),
	}
}

// addTrace retains one completed span tree, displacing the oldest when full.
func (r *Recorder) addTrace(id TraceID, spans []SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traces[r.next] = TraceRecord{TraceID: id, Spans: spans}
	r.next++
	if r.next == len(r.traces) {
		r.next = 0
		r.filled = true
	}
	r.total++
	r.mu.Unlock()
}

// AddLogEvent retains one captured log record (the slog capture handler
// calls this for WARN and above).
func (r *Recorder) AddLogEvent(ev LogEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.evFilled {
		r.evDropped++
	}
	r.events[r.evNext] = ev
	r.evNext++
	if r.evNext == len(r.events) {
		r.evNext = 0
		r.evFilled = true
	}
	r.mu.Unlock()
}

// Total reports how many traces have ever been recorded (including those the
// ring has since displaced).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Traces returns up to limit of the most recent records, newest first
// (limit <= 0 returns all retained).
func (r *Recorder) Traces(limit int) []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.traces)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]TraceRecord, 0, limit)
	for i := 0; i < limit; i++ {
		idx := (r.next - 1 - i + len(r.traces)) % len(r.traces)
		out = append(out, r.traces[idx])
	}
	return out
}

// Trace returns every retained record belonging to the trace, oldest first
// (a distributed trace has one record per local root). The second result is
// false when the recorder holds nothing for the ID.
func (r *Recorder) Trace(id TraceID) ([]TraceRecord, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.traces)
	}
	var out []TraceRecord
	for i := n - 1; i >= 0; i-- {
		idx := (r.next - 1 - i + len(r.traces)) % len(r.traces)
		if r.traces[idx].TraceID == id {
			out = append(out, r.traces[idx])
		}
	}
	return out, len(out) > 0
}

// Events returns up to limit of the most recent captured log events, newest
// first (limit <= 0 returns all retained).
func (r *Recorder) Events(limit int) []LogEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.evNext
	if r.evFilled {
		n = len(r.events)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]LogEvent, 0, limit)
	for i := 0; i < limit; i++ {
		idx := (r.evNext - 1 - i + len(r.events)) % len(r.events)
		out = append(out, r.events[idx])
	}
	return out
}

// ------------------------------------------------------------- rendering ----

// RenderOptions shapes RenderTrace output.
type RenderOptions struct {
	// Timings includes start offsets and durations. Disable for
	// deterministic comparisons across runs (wall-clock noise) — the
	// structural tree (names, nesting, attrs, events, statuses) is the
	// deterministic part.
	Timings bool
}

// RenderTrace writes one merged trace as an indented span tree, the format
// `isharec traces` prints and the determinism tests compare. Records are
// merged by span parentage: spans whose parent is absent from the merged set
// render as top-level roots, in record order.
func RenderTrace(w io.Writer, records []TraceRecord, opts RenderOptions) {
	if len(records) == 0 {
		return
	}
	var all []SpanData
	for _, rec := range records {
		all = append(all, rec.Spans...)
	}
	byID := make(map[SpanID]int, len(all))
	children := make(map[SpanID][]int, len(all))
	var roots []int
	for i, s := range all {
		byID[s.SpanID] = i
	}
	for i, s := range all {
		if _, ok := byID[s.Parent]; ok && s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	// Children render in start order (stable across runs under a
	// deterministic clock), falling back to span ID order on ties.
	order := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			sa, sb := all[idx[a]], all[idx[b]]
			if !sa.Start.Equal(sb.Start) {
				return sa.Start.Before(sb.Start)
			}
			return sa.SpanID < sb.SpanID
		})
	}
	order(roots)
	fmt.Fprintf(w, "trace %s (%d spans)\n", records[0].TraceID, len(all))
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := all[i]
		indent := strings.Repeat("  ", depth+1)
		fmt.Fprintf(w, "%s%s", indent, s.Name)
		if opts.Timings {
			fmt.Fprintf(w, " [%v]", s.Duration)
		}
		if s.Status == StatusError {
			fmt.Fprintf(w, " ERROR")
			if s.Error != "" {
				fmt.Fprintf(w, " (%s)", s.Error)
			}
		}
		for _, a := range s.Attrs {
			fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
		}
		fmt.Fprintln(w)
		for _, ev := range s.Events {
			fmt.Fprintf(w, "%s  @ %s", indent, ev.Name)
			for _, a := range ev.Attrs {
				fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
			}
			fmt.Fprintln(w)
		}
		kids := children[s.SpanID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}
}

// RenderTraceString is RenderTrace into a string.
func RenderTraceString(records []TraceRecord, opts RenderOptions) string {
	var b strings.Builder
	RenderTrace(&b, records, opts)
	return b.String()
}
