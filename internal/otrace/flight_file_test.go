package otrace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestFlightSaveLoadRoundTrip proves the shutdown snapshot survives a
// restart byte-for-byte: everything the recorder retained — traces, log
// events, the total counter — comes back from disk, and the lookup helpers
// answer over the loaded copy exactly as the live recorder would.
func TestFlightSaveLoadRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	rec.addTrace(7, []SpanData{{TraceID: 7, SpanID: 1, Name: "client"}})
	rec.addTrace(9, []SpanData{{TraceID: 9, SpanID: 5, Name: "other"}})
	rec.addTrace(7, []SpanData{{TraceID: 7, SpanID: 2, Parent: 1, Name: "server"}})
	rec.AddLogEvent(LogEvent{Level: "WARN", Msg: "disk slow", Time: time.Unix(100, 0).UTC()})

	path := filepath.Join(t.TempDir(), "flight.json")
	savedAt := time.Unix(500, 0).UTC()
	if err := SaveFlight(path, rec, savedAt); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFlight(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("LoadFlight returned nil for an existing file")
	}
	if !snap.SavedAt.Equal(savedAt) || snap.Total != rec.Total() {
		t.Fatalf("header = (%v, %d), want (%v, %d)", snap.SavedAt, snap.Total, savedAt, rec.Total())
	}
	if !reflect.DeepEqual(snap.Traces, rec.Traces(0)) {
		t.Fatalf("traces differ:\n got %+v\nwant %+v", snap.Traces, rec.Traces(0))
	}
	if !reflect.DeepEqual(snap.Events, rec.Events(0)) {
		t.Fatalf("events differ:\n got %+v\nwant %+v", snap.Events, rec.Events(0))
	}
	// The snapshot's lookup helpers mirror the live recorder's.
	wantMerged, _ := rec.Trace(7)
	gotMerged, ok := snap.Trace(7)
	if !ok || !reflect.DeepEqual(gotMerged, wantMerged) {
		t.Fatalf("snapshot Trace(7): ok=%v got %+v want %+v", ok, gotMerged, wantMerged)
	}
	if _, ok := snap.Trace(42); ok {
		t.Fatal("snapshot Trace(42) found a trace that was never recorded")
	}
	if got := snap.TracesLimit(1); len(got) != 1 || got[0].TraceID != 7 {
		t.Fatalf("TracesLimit(1) = %+v, want newest record of trace 7", got)
	}
	if got := snap.EventsLimit(0); len(got) != 1 {
		t.Fatalf("EventsLimit(0) = %+v, want the one event", got)
	}
}

// TestFlightLoadMissingAndCorrupt pins the two failure modes apart: a node
// that never shut down cleanly has no snapshot (nil, nil — not an error),
// while a half-written or damaged file must be reported, never served as if
// it were the real previous run.
func TestFlightLoadMissingAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	snap, err := LoadFlight(filepath.Join(dir, "absent.json"))
	if snap != nil || err != nil {
		t.Fatalf("missing file: snap=%v err=%v, want nil, nil", snap, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{\"saved_at\": tru"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFlight(bad); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

// TestFlightSaveOverwriteKeepsOldOnFailure: SaveFlight stages under a temp
// name, so a save that cannot complete leaves the previous snapshot intact.
func TestFlightSaveOverwriteKeepsOldOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	rec := NewRecorder(4)
	rec.addTrace(1, []SpanData{{TraceID: 1, SpanID: 1, Name: "first"}})
	if err := SaveFlight(path, rec, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Second save: the file is replaced atomically, never truncated in place.
	rec.addTrace(2, []SpanData{{TraceID: 2, SpanID: 2, Name: "second"}})
	if err := SaveFlight(path, rec, time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFlight(path)
	if err != nil || len(snap.Traces) != 2 {
		t.Fatalf("after overwrite: snap=%+v err=%v", snap, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
}
