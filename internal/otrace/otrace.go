// Package otrace is a stdlib-only, allocation-conscious tracing layer for
// the iShare control plane. It gives every request a trace: a tree of spans
// (client command, scheduler decision, RPC attempt, gateway dispatch, state
// manager query, engine fit/solve) with key-value attributes, events and an
// error status, assembled as the spans end and retained by a fixed-size
// flight recorder for post-hoc inspection.
//
// Design constraints, in order:
//
//   - Zero overhead when off. A nil *Tracer and a nil *Span are fully inert:
//     every method no-ops, StartSpan returns the context unchanged, and the
//     instrumented-but-unsampled hot paths (Engine.Predict, QueryTR) stay at
//     0 allocs/op. Sampling is decided once, at the root; an unsampled trace
//     never materializes a span object at all.
//
//   - Determinism. Trace and span IDs are drawn from a seeded SplitMix64
//     sequence and the sampling decision is a pure hash of the trace ID, so
//     a run that performs the same operations in the same order produces the
//     same IDs and the same sampling decisions — the property the chaos
//     harness relies on to assert byte-identical span trees across runs.
//
//   - Propagation over the wire. A span crossing the iShare protocol travels
//     as a small Link (trace ID, parent span ID, sampled flag) carried in an
//     optional request-envelope field; old peers ignore it, new peers
//     tolerate its absence.
//
// Spans are carried in a context.Context. StartSpan creates a child of
// whatever span the context holds (or nothing, if the context is untraced —
// this is what keeps unsampled paths allocation-free); Tracer.Start creates
// roots, Tracer.StartRemote creates local roots parented to a remote span.
package otrace

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request tree across processes.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex (the wire form).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as fixed-width hex (the wire form).
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("otrace: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// ParseSpanID parses the hex form produced by SpanID.String.
func ParseSpanID(s string) (SpanID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("otrace: bad span id %q: %w", s, err)
	}
	return SpanID(v), nil
}

// Attr is one key-value span attribute. Values are pre-rendered strings so
// records marshal without reflection and compare bytewise in determinism
// tests.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Float builds a float attribute (shortest round-trippable form).
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Duration builds a duration attribute in Go's duration syntax.
func Duration(k string, v time.Duration) Attr { return Attr{Key: k, Value: v.String()} }

// Event is a point-in-time annotation on a span (a breaker opening, a cache
// hit, a retry backoff).
type Event struct {
	Name  string    `json:"name"`
	Time  time.Time `json:"time"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Status is a span's terminal disposition.
type Status uint8

const (
	// StatusOK is the default: the operation succeeded.
	StatusOK Status = iota
	// StatusError marks a failed operation; SpanData.Error holds the cause.
	StatusError
)

// String returns "ok" or "error".
func (s Status) String() string {
	if s == StatusError {
		return "error"
	}
	return "ok"
}

// MarshalText makes Status render as its name in JSON records.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the Status name (unknown values read as ok).
func (s *Status) UnmarshalText(b []byte) error {
	if string(b) == "error" {
		*s = StatusError
	} else {
		*s = StatusOK
	}
	return nil
}

// SpanData is the immutable record of one completed span.
type SpanData struct {
	TraceID  TraceID       `json:"trace_id"`
	SpanID   SpanID        `json:"span_id"`
	Parent   SpanID        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
	Status   Status        `json:"status"`
	Error    string        `json:"error,omitempty"`
}

// Link is the wire form of a span reference: what crosses process boundaries
// in the protocol envelope's optional trace header.
type Link struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// activeTrace accumulates the completed spans of one locally rooted trace.
// The lock is taken only when a span ends (and once at flush) — never on the
// per-operation read paths — which is what "lock-light" buys: concurrent
// children serialize only their completion records.
type activeTrace struct {
	tracer *Tracer
	id     TraceID

	mu      sync.Mutex
	spans   []SpanData
	flushed bool
}

func (tr *activeTrace) add(data SpanData) {
	tr.mu.Lock()
	if !tr.flushed {
		tr.spans = append(tr.spans, data)
	}
	tr.mu.Unlock()
}

// flush hands the accumulated spans to the recorder. Called when the local
// root ends; spans ending after their root are dropped (the record is sealed).
func (tr *activeTrace) flush() {
	tr.mu.Lock()
	spans := tr.spans
	tr.flushed = true
	tr.spans = nil
	tr.mu.Unlock()
	if rec := tr.tracer.recorder; rec != nil && len(spans) > 0 {
		rec.addTrace(tr.id, spans)
	}
}

// Span is one live operation in a trace. Only sampled operations have a
// non-nil *Span; every method is nil-safe, so instrumentation sites never
// branch on sampling themselves.
type Span struct {
	tr     *activeTrace
	isRoot bool // flushes the trace on End

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Sampled reports whether the span is live (nil spans are not).
func (s *Span) Sampled() bool { return s != nil }

// Trace returns the span's trace ID (zero for nil spans).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.data.TraceID
}

// ID returns the span's own ID (zero for nil spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// Link returns the span's wire reference for protocol propagation. A nil
// span yields the zero Link (Sampled false), which callers encode as "no
// header".
func (s *Span) Link() Link {
	if s == nil {
		return Link{}
	}
	return Link{TraceID: s.data.TraceID, SpanID: s.data.SpanID, Sampled: true}
}

// SetAttr records a key-value attribute.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, attrs...)
	s.mu.Unlock()
}

// AddEvent records a point-in-time event at the tracer's current clock
// reading.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := s.tr.tracer.now()
	s.mu.Lock()
	s.data.Events = append(s.data.Events, Event{Name: name, Time: now, Attrs: attrs})
	s.mu.Unlock()
}

// SetError marks the span failed. A nil err is ignored, so call sites can
// pass their error unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.data.Status = StatusError
	s.data.Error = err.Error()
	s.mu.Unlock()
}

// End completes the span: its record joins the trace buffer, and if this
// span is the local root the whole trace is flushed to the flight recorder.
// End is idempotent; spans ended twice record once.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Duration = now.Sub(s.data.Start)
	data := s.data
	s.mu.Unlock()
	s.tr.add(data)
	if s.isRoot {
		s.tr.flush()
	}
}

// StartChild begins a child span of s. For a nil (unsampled) receiver it
// returns nil, keeping the whole subtree free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr.tracer
	return &Span{
		tr: s.tr,
		data: SpanData{
			TraceID: s.data.TraceID,
			SpanID:  SpanID(t.nextID()),
			Parent:  s.data.SpanID,
			Name:    name,
			Start:   t.now(),
		},
	}
}

// ----------------------------------------------------------- propagation ----

// ctxKey keys the active span in a context.
type ctxKey struct{}

// ContextWith returns ctx carrying the span. A nil span returns ctx
// unchanged — the zero-allocation contract for unsampled paths.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the active span, or nil if the context is untraced.
// The lookup itself does not allocate.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's active span and returns the
// derived context. On an untraced context it returns (ctx, nil) without
// allocating — this is the form every instrumented library path uses, so a
// path that is compiled with tracing but runs unsampled costs two pointer
// reads.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWith(ctx, child), child
}

// ----------------------------------------------------------------- tracer ----

// Clock is the minimal time source a tracer needs (satisfied by
// simclock.Clock implementations).
type Clock interface {
	Now() time.Time
}

// realClock avoids importing internal/simclock just for the default.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the fraction of root traces recorded, in [0, 1].
	// 1 records everything, 0 disables recording while keeping wire
	// propagation inert. The decision is a pure hash of the trace ID, so a
	// fixed seed gives a fixed decision sequence.
	SampleRate float64
	// Seed drives trace/span ID generation (0 uses a fixed default). Two
	// tracers with the same seed performing the same operations in the same
	// order mint identical IDs.
	Seed uint64
	// Recorder receives completed traces (nil discards them — spans still
	// propagate over the wire so a downstream recorder can capture its
	// side).
	Recorder *Recorder
	// Clock stamps span starts, ends and events (nil = wall clock).
	// Simulations pass their virtual clock so recorded durations are
	// deterministic.
	Clock Clock
}

// Tracer mints trace roots. A nil *Tracer is inert: Start and StartRemote
// return the context unchanged and a nil span.
type Tracer struct {
	rate     float64
	seed     uint64
	seq      atomic.Uint64
	recorder *Recorder
	clock    Clock
}

// DefaultSeed is used when Config.Seed is zero.
const DefaultSeed = 0x07A5

// New builds a tracer.
func New(cfg Config) *Tracer {
	rate := cfg.SampleRate
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	return &Tracer{rate: rate, seed: seed, recorder: cfg.Recorder, clock: clock}
}

// Recorder returns the tracer's flight recorder (nil when unset or for a nil
// tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.recorder
}

func (t *Tracer) now() time.Time { return t.clock.Now() }

// nextID mints the next ID in the tracer's deterministic sequence.
func (t *Tracer) nextID() uint64 {
	n := t.seq.Add(1)
	return splitmix(t.seed + n*0x9E3779B97F4A7C15)
}

// sampled is the pure per-trace decision: a hash of the trace ID mapped to
// [0, 1) and compared to the rate.
func (t *Tracer) sampledID(id uint64) bool {
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	u := splitmix(id ^ 0xD1B54A32D192ED03)
	return float64(u>>11)/(1<<53) < t.rate
}

// Start begins a new root span (a fresh trace) unless ctx already carries a
// span, in which case it begins a child — callers at trace boundaries need
// not care which they are. Unsampled roots return (ctx, nil) without
// allocating.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		child := parent.StartChild(name)
		return ContextWith(ctx, child), child
	}
	id := t.nextID()
	if !t.sampledID(id) {
		return ctx, nil
	}
	return t.root(ctx, TraceID(id), 0, name)
}

// StartRemote begins a local root continuing the remote trace described by
// link (the decoded wire header). A zero link (no header on the wire) falls
// back to Start's fresh-trace behavior; an unsampled link stays unsampled on
// this side too, so one root decision governs the whole distributed tree.
func (t *Tracer) StartRemote(ctx context.Context, link Link, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if link.TraceID == 0 {
		return t.Start(ctx, name)
	}
	if !link.Sampled {
		return ctx, nil
	}
	return t.root(ctx, link.TraceID, link.SpanID, name)
}

func (t *Tracer) root(ctx context.Context, traceID TraceID, parent SpanID, name string) (context.Context, *Span) {
	tr := &activeTrace{tracer: t, id: traceID}
	s := &Span{
		tr:     tr,
		isRoot: true,
		data: SpanData{
			TraceID: traceID,
			SpanID:  SpanID(t.nextID()),
			Parent:  parent,
			Name:    name,
			Start:   t.now(),
		},
	}
	return ContextWith(ctx, s), s
}

// splitmix is the SplitMix64 finalizer, the same mixer the repository's rng
// package uses.
func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
