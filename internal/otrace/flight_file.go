package otrace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// FlightSnapshot is a serialized flight recorder: the traces and log events
// retained at save time, newest first. ishared writes one on shutdown so
// the run that just ended stays inspectable after a restart — the black box
// a post-mortem wants is precisely the one the crashed-and-restarted
// process no longer holds in memory.
type FlightSnapshot struct {
	SavedAt time.Time     `json:"saved_at"`
	Total   uint64        `json:"total_recorded"`
	Traces  []TraceRecord `json:"traces,omitempty"`
	Events  []LogEvent    `json:"events,omitempty"`
}

// Snapshot captures the recorder's full retained state.
func (r *Recorder) Snapshot(at time.Time) *FlightSnapshot {
	return &FlightSnapshot{
		SavedAt: at,
		Total:   r.Total(),
		Traces:  r.Traces(0),
		Events:  r.Events(0),
	}
}

// TracesLimit returns up to limit snapshot traces, newest first (<= 0 = all).
func (s *FlightSnapshot) TracesLimit(limit int) []TraceRecord {
	if limit <= 0 || limit > len(s.Traces) {
		limit = len(s.Traces)
	}
	return s.Traces[:limit]
}

// Trace returns every snapshot record of one trace, oldest first, mirroring
// Recorder.Trace.
func (s *FlightSnapshot) Trace(id TraceID) ([]TraceRecord, bool) {
	var out []TraceRecord
	for i := len(s.Traces) - 1; i >= 0; i-- {
		if s.Traces[i].TraceID == id {
			out = append(out, s.Traces[i])
		}
	}
	return out, len(out) > 0
}

// EventsLimit returns up to limit snapshot log events, newest first
// (<= 0 = all).
func (s *FlightSnapshot) EventsLimit(limit int) []LogEvent {
	if limit <= 0 || limit > len(s.Events) {
		limit = len(s.Events)
	}
	return s.Events[:limit]
}

// SaveFlight atomically writes the recorder's snapshot as JSON: the file is
// staged under a temporary name and renamed into place, so a crash during
// the save never destroys the previous snapshot.
func SaveFlight(path string, r *Recorder, at time.Time) error {
	data, err := json.Marshal(r.Snapshot(at))
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// LoadFlight reads a snapshot written by SaveFlight. A missing file returns
// (nil, nil): the previous run simply never saved one.
func LoadFlight(path string) (*FlightSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("otrace: corrupt flight snapshot %s: %w", path, err)
	}
	return &snap, nil
}
