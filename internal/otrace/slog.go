package otrace

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// CaptureHandler wraps a slog.Handler and tees every record at or above
// CaptureLevel (default WARN) into a flight recorder's log-event ring, so
// the recent errors of a run survive next to its traces. Records flow to the
// wrapped handler unchanged.
type CaptureHandler struct {
	inner slog.Handler
	rec   *Recorder
	min   slog.Level
	attrs []Attr // accumulated WithAttrs, pre-rendered
	group string
}

// NewCaptureHandler tees WARN-and-above records from inner into rec.
func NewCaptureHandler(inner slog.Handler, rec *Recorder) *CaptureHandler {
	return &CaptureHandler{inner: inner, rec: rec, min: slog.LevelWarn}
}

// Enabled implements slog.Handler.
func (h *CaptureHandler) Enabled(ctx context.Context, level slog.Level) bool {
	// The recorder wants WARN+ even when the inner handler's level would
	// drop them, so the flight recorder still has errors after a quiet
	// -log-level=error run... but not the other way round: below min, defer
	// to the inner handler entirely.
	if level >= h.min {
		return true
	}
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler.
func (h *CaptureHandler) Handle(ctx context.Context, r slog.Record) error {
	if h.rec != nil && r.Level >= h.min {
		ev := LogEvent{Time: r.Time, Level: r.Level.String(), Msg: r.Message}
		ev.Attrs = append(ev.Attrs, h.attrs...)
		r.Attrs(func(a slog.Attr) bool {
			ev.Attrs = append(ev.Attrs, h.render(a)...)
			return true
		})
		if span := FromContext(ctx); span != nil {
			ev.Attrs = append(ev.Attrs,
				String("trace_id", span.Trace().String()),
				String("span_id", span.ID().String()))
		}
		h.rec.AddLogEvent(ev)
	}
	if !h.inner.Enabled(ctx, r.Level) {
		return nil
	}
	return h.inner.Handle(ctx, r)
}

// render flattens a slog.Attr (including groups) into pre-rendered pairs.
func (h *CaptureHandler) render(a slog.Attr) []Attr {
	key := a.Key
	if h.group != "" {
		key = h.group + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		var out []Attr
		for _, g := range a.Value.Group() {
			sub := g
			sub.Key = key + "." + g.Key
			out = append(out, Attr{Key: sub.Key, Value: sub.Value.String()})
		}
		return out
	}
	return []Attr{{Key: key, Value: a.Value.String()}}
}

// WithAttrs implements slog.Handler.
func (h *CaptureHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	next := *h
	next.inner = h.inner.WithAttrs(attrs)
	next.attrs = append(append([]Attr(nil), h.attrs...), func() []Attr {
		var out []Attr
		for _, a := range attrs {
			out = append(out, h.render(a)...)
		}
		return out
	}()...)
	return &next
}

// WithGroup implements slog.Handler.
func (h *CaptureHandler) WithGroup(name string) slog.Handler {
	next := *h
	next.inner = h.inner.WithGroup(name)
	if next.group == "" {
		next.group = name
	} else {
		next.group = next.group + "." + name
	}
	return &next
}

// ParseLevel maps the -log-level flag values to slog levels (unknown values
// read as info).
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the control plane's logger: text or JSON at the given
// level, with WARN-and-above teed into the flight recorder when rec is
// non-nil.
func NewLogger(w io.Writer, level slog.Level, json bool, rec *Recorder) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	if json {
		inner = slog.NewJSONHandler(w, opts)
	} else {
		inner = slog.NewTextHandler(w, opts)
	}
	if rec != nil {
		return slog.New(NewCaptureHandler(inner, rec))
	}
	return slog.New(inner)
}

// SpanAttrs returns the span's identity as slog attributes, so log lines
// emitted inside a traced operation carry its trace and span IDs. A nil span
// yields nothing.
func SpanAttrs(s *Span) []any {
	if s == nil {
		return nil
	}
	return []any{
		slog.String("trace_id", s.Trace().String()),
		slog.String("span_id", s.ID().String()),
	}
}
