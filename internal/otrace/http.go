package otrace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// traceSummary is one row of the GET /traces listing.
type traceSummary struct {
	TraceID string `json:"trace_id"`
	Root    string `json:"root"`
	Spans   int    `json:"spans"`
	Status  Status `json:"status"`
	Start   string `json:"start"`
}

// HTTPHandler serves the flight recorder on an observability mux:
//
//	GET /traces            — recent trace summaries plus recent WARN/ERROR
//	                         log events (?limit=N bounds both)
//	GET /traces/{id}       — every retained record of one trace, full spans
//	                         (?render=1 returns the indented text tree)
//
// Mount it at both "/traces" and "/traces/" so the bare listing and the
// per-trace paths resolve.
func HTTPHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(strings.TrimPrefix(r.URL.Path, "/traces"), "/")
		if rest == "" {
			limit := 0
			if v := r.URL.Query().Get("limit"); v != "" {
				if n, err := strconv.Atoi(v); err == nil {
					limit = n
				}
			}
			records := rec.Traces(limit)
			sums := make([]traceSummary, 0, len(records))
			for _, tr := range records {
				root := tr.Root()
				sums = append(sums, traceSummary{
					TraceID: tr.TraceID.String(),
					Root:    root.Name,
					Spans:   len(tr.Spans),
					Status:  worstStatus(tr),
					Start:   root.Start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
				})
			}
			writeJSON(w, map[string]interface{}{
				"total_recorded": rec.Total(),
				"traces":         sums,
				"events":         rec.Events(limit),
			})
			return
		}
		id, err := ParseTraceID(rest)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		records, ok := rec.Trace(id)
		if !ok {
			http.Error(w, "trace not retained", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("render") != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			RenderTrace(w, records, RenderOptions{Timings: true})
			return
		}
		writeJSON(w, records)
	})
}

// worstStatus reports error if any span in the record failed.
func worstStatus(tr TraceRecord) Status {
	for _, s := range tr.Spans {
		if s.Status == StatusError {
			return StatusError
		}
	}
	return StatusOK
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
