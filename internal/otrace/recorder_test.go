package otrace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecorderRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		rec.addTrace(TraceID(i), []SpanData{{TraceID: TraceID(i), SpanID: SpanID(i), Name: "op"}})
	}
	if rec.Total() != 6 {
		t.Fatalf("Total = %d, want 6", rec.Total())
	}
	got := rec.Traces(0)
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	// Newest first: 6, 5, 4, 3. Traces 1 and 2 were displaced.
	for i, want := range []TraceID{6, 5, 4, 3} {
		if got[i].TraceID != want {
			t.Fatalf("Traces[%d] = %s, want %s", i, got[i].TraceID, want)
		}
	}
	if _, ok := rec.Trace(1); ok {
		t.Fatalf("displaced trace still retrievable")
	}
	if limited := rec.Traces(2); len(limited) != 2 || limited[0].TraceID != 6 {
		t.Fatalf("limit ignored: %+v", limited)
	}
}

func TestRecorderTraceMergesRecords(t *testing.T) {
	rec := NewRecorder(8)
	// Two records of one distributed trace (client + server), plus noise.
	rec.addTrace(7, []SpanData{{TraceID: 7, SpanID: 1, Name: "client"}})
	rec.addTrace(9, []SpanData{{TraceID: 9, SpanID: 5, Name: "other"}})
	rec.addTrace(7, []SpanData{{TraceID: 7, SpanID: 2, Parent: 1, Name: "server"}})
	records, ok := rec.Trace(7)
	if !ok || len(records) != 2 {
		t.Fatalf("merge: ok=%v n=%d", ok, len(records))
	}
	// Oldest first, so the client record leads.
	if records[0].Spans[0].Name != "client" || records[1].Spans[0].Name != "server" {
		t.Fatalf("record order wrong: %+v", records)
	}
}

func TestRecordRootSelection(t *testing.T) {
	r := TraceRecord{Spans: []SpanData{
		{SpanID: 3, Parent: 2, Name: "leaf"},
		{SpanID: 2, Parent: 99, Name: "local-root"}, // parent is remote
	}}
	if got := r.Root(); got.Name != "local-root" {
		t.Fatalf("Root = %q", got.Name)
	}
	if got := (TraceRecord{}).Root(); got.Name != "" {
		t.Fatalf("empty record root: %+v", got)
	}
}

func TestEventRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < defaultEventCapacity+3; i++ {
		rec.AddLogEvent(LogEvent{Level: "WARN", Msg: "m", Time: time.Unix(int64(i), 0)})
	}
	events := rec.Events(0)
	if len(events) != defaultEventCapacity {
		t.Fatalf("retained %d events, want %d", len(events), defaultEventCapacity)
	}
	if events[0].Time.Unix() != int64(defaultEventCapacity+2) {
		t.Fatalf("newest event wrong: %v", events[0].Time)
	}
	if limited := rec.Events(1); len(limited) != 1 {
		t.Fatalf("event limit ignored")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	rec.addTrace(1, nil)
	rec.AddLogEvent(LogEvent{})
	if rec.Total() != 0 || rec.Traces(0) != nil || rec.Events(0) != nil {
		t.Fatalf("nil recorder not inert")
	}
	if _, ok := rec.Trace(1); ok {
		t.Fatalf("nil recorder found a trace")
	}
}

func TestHTTPHandler(t *testing.T) {
	rec := NewRecorder(8)
	tr := New(Config{SampleRate: 1, Seed: 17, Recorder: rec, Clock: newFixedClock()})
	ctx, root := tr.Start(context.Background(), "query-tr")
	_, child := StartSpan(ctx, "predict")
	child.End()
	root.End()
	rec.AddLogEvent(LogEvent{Level: "ERROR", Msg: "boom"})

	h := HTTPHandler(rec)

	// Listing.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces", nil))
	if rw.Code != 200 {
		t.Fatalf("GET /traces: %d", rw.Code)
	}
	var listing struct {
		TotalRecorded uint64 `json:"total_recorded"`
		Traces        []struct {
			TraceID string `json:"trace_id"`
			Root    string `json:"root"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
		Events []LogEvent `json:"events"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing json: %v\n%s", err, rw.Body.String())
	}
	if listing.TotalRecorded != 1 || len(listing.Traces) != 1 || len(listing.Events) != 1 {
		t.Fatalf("listing content: %+v", listing)
	}
	if listing.Traces[0].Root != "query-tr" || listing.Traces[0].Spans != 2 {
		t.Fatalf("summary wrong: %+v", listing.Traces[0])
	}

	// Per-trace JSON.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/"+listing.Traces[0].TraceID, nil))
	if rw.Code != 200 {
		t.Fatalf("GET /traces/{id}: %d", rw.Code)
	}
	var records []TraceRecord
	if err := json.Unmarshal(rw.Body.Bytes(), &records); err != nil {
		t.Fatalf("trace json: %v", err)
	}
	if len(records) != 1 || len(records[0].Spans) != 2 {
		t.Fatalf("trace content: %+v", records)
	}

	// Rendered form.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/"+listing.Traces[0].TraceID+"?render=1", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), "query-tr") {
		t.Fatalf("render: %d %q", rw.Code, rw.Body.String())
	}

	// Errors.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/zzzz-not-hex", nil))
	if rw.Code != 400 {
		t.Fatalf("bad id: %d", rw.Code)
	}
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/traces/00000000000000ff", nil))
	if rw.Code != 404 {
		t.Fatalf("missing trace: %d", rw.Code)
	}
}
