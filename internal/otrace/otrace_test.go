package otrace

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock is a deterministic Clock that advances a fixed step per reading.
type fixedClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFixedClock() *fixedClock {
	return &fixedClock{t: time.Unix(1_000_000, 0).UTC(), step: time.Millisecond}
}

func (c *fixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "root")
	if span != nil {
		t.Fatalf("nil tracer produced a span")
	}
	if ctx != context.Background() {
		t.Fatalf("nil tracer changed the context")
	}
	// Every nil-span method must no-op without panicking.
	var s *Span
	s.SetAttr(String("k", "v"))
	s.AddEvent("ev")
	s.SetError(errors.New("boom"))
	s.End()
	if s.Sampled() || s.Trace() != 0 || s.ID() != 0 {
		t.Fatalf("nil span not inert")
	}
	if s.StartChild("c") != nil {
		t.Fatalf("nil span produced a child")
	}
	if got := s.Link(); got != (Link{}) {
		t.Fatalf("nil span Link = %+v, want zero", got)
	}
	if _, child := StartSpan(context.Background(), "x"); child != nil {
		t.Fatalf("untraced StartSpan produced a span")
	}
	if tr.Recorder() != nil {
		t.Fatalf("nil tracer has a recorder")
	}
}

func TestUnsampledZeroAlloc(t *testing.T) {
	rec := NewRecorder(8)
	tr := New(Config{SampleRate: 0, Seed: 1, Recorder: rec, Clock: newFixedClock()})
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		c2, s := tr.Start(ctx, "root")
		c3, s2 := StartSpan(c2, "child")
		s2.SetAttr(String("k", "v"))
		s2.AddEvent("ev")
		s2.End()
		s.End()
		_ = c3
	}); n != 0 {
		t.Fatalf("unsampled path allocates %v allocs/op, want 0", n)
	}
	if rec.Total() != 0 {
		t.Fatalf("unsampled traces reached the recorder")
	}
}

func TestSampledTraceRecorded(t *testing.T) {
	rec := NewRecorder(8)
	tr := New(Config{SampleRate: 1, Seed: 42, Recorder: rec, Clock: newFixedClock()})
	ctx, root := tr.Start(context.Background(), "query-tr")
	if !root.Sampled() {
		t.Fatalf("rate-1 root not sampled")
	}
	root.SetAttr(String("machine", "m1"))
	ctx2, child := StartSpan(ctx, "predict")
	child.AddEvent("cache-hit", String("key", "abc"))
	child.End()
	_, failed := StartSpan(ctx2, "solve")
	failed.SetError(errors.New("singular matrix"))
	failed.End()
	root.End()

	if rec.Total() != 1 {
		t.Fatalf("recorded %d traces, want 1", rec.Total())
	}
	records, ok := rec.Trace(root.Trace())
	if !ok || len(records) != 1 {
		t.Fatalf("Trace lookup: ok=%v records=%d", ok, len(records))
	}
	if got := len(records[0].Spans); got != 3 {
		t.Fatalf("retained %d spans, want 3", got)
	}
	out := RenderTraceString(records, RenderOptions{Timings: false})
	for _, want := range []string{"query-tr", "machine=m1", "predict", "@ cache-hit key=abc", "solve", "ERROR (singular matrix)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
	// Root must render at depth 1, children nested below it.
	if !strings.Contains(out, "\n  query-tr") || !strings.Contains(out, "\n    predict") {
		t.Fatalf("unexpected nesting:\n%s", out)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		rec := NewRecorder(8)
		tr := New(Config{SampleRate: 1, Seed: 7, Recorder: rec, Clock: newFixedClock()})
		ctx, root := tr.Start(context.Background(), "submit")
		for i := 0; i < 3; i++ {
			_, attempt := StartSpan(ctx, "rpc-attempt")
			attempt.SetAttr(Int("attempt", i+1))
			if i < 2 {
				attempt.SetError(errors.New("dial refused"))
			}
			attempt.End()
		}
		root.End()
		recs, _ := rec.Trace(root.Trace())
		return root.Trace().String() + "\n" + RenderTraceString(recs, RenderOptions{Timings: true})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different trees:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestSamplingIsPureFunctionOfTraceID(t *testing.T) {
	tr := New(Config{SampleRate: 0.5, Seed: 9})
	first := make([]bool, 0, 64)
	for i := 0; i < 64; i++ {
		_, s := tr.Start(context.Background(), "op")
		first = append(first, s.Sampled())
		s.End()
	}
	tr2 := New(Config{SampleRate: 0.5, Seed: 9})
	for i := 0; i < 64; i++ {
		_, s := tr2.Start(context.Background(), "op")
		if s.Sampled() != first[i] {
			t.Fatalf("sampling decision %d differs across same-seed tracers", i)
		}
		s.End()
	}
	var hits int
	for _, v := range first {
		if v {
			hits++
		}
	}
	if hits == 0 || hits == len(first) {
		t.Fatalf("rate 0.5 sampled %d/%d — decision not probabilistic", hits, len(first))
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	clientRec := NewRecorder(8)
	client := New(Config{SampleRate: 1, Seed: 3, Recorder: clientRec, Clock: newFixedClock()})
	_, cspan := client.Start(context.Background(), "client-call")
	link := cspan.Link()
	if !link.Sampled || link.TraceID == 0 {
		t.Fatalf("bad link: %+v", link)
	}

	serverRec := NewRecorder(8)
	server := New(Config{SampleRate: 1, Seed: 99, Recorder: serverRec, Clock: newFixedClock()})
	sctx, sspan := server.StartRemote(context.Background(), link, "gateway.dispatch")
	if sspan.Trace() != cspan.Trace() {
		t.Fatalf("server trace %s != client trace %s", sspan.Trace(), cspan.Trace())
	}
	_, inner := StartSpan(sctx, "state.query")
	inner.End()
	sspan.End()
	cspan.End()

	// Both sides retained a record under the same trace ID; a merged render
	// nests the server root under the client span it was linked to.
	all := append([]TraceRecord{}, mustTrace(t, clientRec, cspan.Trace())...)
	all = append(all, mustTrace(t, serverRec, cspan.Trace())...)
	out := RenderTraceString(all, RenderOptions{Timings: false})
	if !strings.Contains(out, "\n  client-call") ||
		!strings.Contains(out, "\n    gateway.dispatch") ||
		!strings.Contains(out, "\n      state.query") {
		t.Fatalf("merged render did not stitch remote parentage:\n%s", out)
	}

	// An unsampled link must suppress the server side entirely.
	if _, s := server.StartRemote(context.Background(), Link{TraceID: 5, SpanID: 6, Sampled: false}, "x"); s != nil {
		t.Fatalf("unsampled link produced a span")
	}
	// A zero link behaves like a fresh root.
	if _, s := server.StartRemote(context.Background(), Link{}, "fresh"); s == nil {
		t.Fatalf("zero link did not start a fresh trace")
	}
}

func mustTrace(t *testing.T, rec *Recorder, id TraceID) []TraceRecord {
	t.Helper()
	records, ok := rec.Trace(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	return records
}

func TestIDStringRoundTrip(t *testing.T) {
	id := TraceID(0xDEADBEEF12345678)
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("trace id round trip: %v %v", got, err)
	}
	sid := SpanID(42)
	if s := sid.String(); len(s) != 16 {
		t.Fatalf("span id %q not fixed-width", s)
	}
	gotS, err := ParseSpanID(sid.String())
	if err != nil || gotS != sid {
		t.Fatalf("span id round trip: %v %v", gotS, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatalf("ParseTraceID accepted garbage")
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	for _, st := range []Status{StatusOK, StatusError} {
		b, err := st.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Status
		if err := back.UnmarshalText(b); err != nil || back != st {
			t.Fatalf("status %v round trip: %v %v", st, back, err)
		}
	}
}

func TestEndIdempotentAndSealedAfterFlush(t *testing.T) {
	rec := NewRecorder(8)
	tr := New(Config{SampleRate: 1, Seed: 11, Recorder: rec, Clock: newFixedClock()})
	ctx, root := tr.Start(context.Background(), "root")
	_, straggler := StartSpan(ctx, "straggler")
	root.End()
	root.End()      // idempotent
	straggler.End() // after flush: dropped, record is sealed
	if rec.Total() != 1 {
		t.Fatalf("double End recorded %d traces", rec.Total())
	}
	records, _ := rec.Trace(root.Trace())
	if len(records[0].Spans) != 1 {
		t.Fatalf("sealed record grew: %d spans", len(records[0].Spans))
	}
}

func TestCaptureHandler(t *testing.T) {
	rec := NewRecorder(8)
	var buf bytes.Buffer
	logger := NewLogger(&buf, slog.LevelError, false, rec)

	tr := New(Config{SampleRate: 1, Seed: 13, Recorder: rec, Clock: newFixedClock()})
	ctx, span := tr.Start(context.Background(), "op")

	logger.InfoContext(ctx, "chatty")                           // below WARN: not captured
	logger.WarnContext(ctx, "tick late", slog.Int("lag_ms", 7)) // captured, below inner level: not printed
	logger.ErrorContext(ctx, "read failed", slog.String("machine", "m1"))
	span.End()

	events := rec.Events(0)
	if len(events) != 2 {
		t.Fatalf("captured %d events, want 2", len(events))
	}
	// Newest first.
	if events[0].Msg != "read failed" || events[1].Msg != "tick late" {
		t.Fatalf("unexpected events: %+v", events)
	}
	var sawTrace bool
	for _, a := range events[0].Attrs {
		if a.Key == "trace_id" && a.Value == span.Trace().String() {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatalf("captured event missing trace_id attr: %+v", events[0].Attrs)
	}
	out := buf.String()
	if strings.Contains(out, "tick late") || strings.Contains(out, "chatty") {
		t.Fatalf("inner handler printed suppressed levels:\n%s", out)
	}
	if !strings.Contains(out, "read failed") {
		t.Fatalf("inner handler dropped an error:\n%s", out)
	}
}

func TestCaptureHandlerWithAttrsAndGroup(t *testing.T) {
	rec := NewRecorder(8)
	logger := NewLogger(&buffer{}, slog.LevelInfo, true, rec).
		With(slog.String("component", "monitor")).
		WithGroup("host")
	logger.Warn("cpu read failed", slog.String("machine", "m2"))
	events := rec.Events(0)
	if len(events) != 1 {
		t.Fatalf("captured %d events, want 1", len(events))
	}
	keys := map[string]string{}
	for _, a := range events[0].Attrs {
		keys[a.Key] = a.Value
	}
	if keys["component"] != "monitor" {
		t.Fatalf("WithAttrs lost: %+v", events[0].Attrs)
	}
	if keys["host.machine"] != "m2" {
		t.Fatalf("group prefix lost: %+v", events[0].Attrs)
	}
}

type buffer struct{ bytes.Buffer }

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"error": slog.LevelError, "bogus": slog.LevelInfo, "": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestSpanAttrs(t *testing.T) {
	if got := SpanAttrs(nil); got != nil {
		t.Fatalf("nil span attrs: %v", got)
	}
	tr := New(Config{SampleRate: 1, Seed: 21})
	_, s := tr.Start(context.Background(), "op")
	if got := SpanAttrs(s); len(got) != 2 {
		t.Fatalf("span attrs: %v", got)
	}
	s.End()
}

func TestAttrConstructors(t *testing.T) {
	cases := []struct {
		got  Attr
		want Attr
	}{
		{String("a", "b"), Attr{"a", "b"}},
		{Int("n", 42), Attr{"n", "42"}},
		{Bool("ok", true), Attr{"ok", "true"}},
		{Float("f", 0.25), Attr{"f", "0.25"}},
		{Duration("d", 1500*time.Millisecond), Attr{"d", "1.5s"}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("attr %+v, want %+v", c.got, c.want)
		}
	}
}
