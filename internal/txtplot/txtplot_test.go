package txtplot

import (
	"math"
	"testing/quick"

	"fgcs/internal/rng"
	"strings"
	"testing"
)

func TestChartBasicShape(t *testing.T) {
	out := Chart("errors", []string{"1h", "2h", "3h"}, []Series{
		{Name: "SMP", Y: []float64{1, 2, 3}},
	}, 5)
	if !strings.HasPrefix(out, "errors\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + labels + legend
	if len(lines) != 9 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	plotArea := out[:strings.Index(out, "legend")]
	if strings.Count(plotArea, "*") != 3 {
		t.Fatalf("marker count = %d:\n%s", strings.Count(plotArea, "*"), out)
	}
	for _, l := range []string{"1h", "2h", "3h", "legend: *=SMP"} {
		if !strings.Contains(out, l) {
			t.Fatalf("missing %q:\n%s", l, out)
		}
	}
}

func TestChartMonotoneSeriesOrdering(t *testing.T) {
	out := Chart("t", []string{"a", "b"}, []Series{{Name: "s", Y: []float64{0, 10}}}, 6)
	// Collect (row, col) of every marker in the plot body; the marker in
	// the leftmost column (the low value) must sit on a LOWER row (higher
	// row index) than the rightmost one.
	type pt struct{ row, col int }
	var pts []pt
	for i, l := range strings.Split(out, "\n") {
		pos := strings.IndexByte(l, '|')
		if pos < 0 {
			continue
		}
		for c, ch := range l[pos+1:] {
			if ch == '*' {
				pts = append(pts, pt{i, c})
			}
		}
	}
	if len(pts) != 2 {
		t.Fatalf("markers = %d:\n%s", len(pts), out)
	}
	left, right := pts[0], pts[1]
	if left.col > right.col {
		left, right = right, left
	}
	if right.row >= left.row {
		t.Fatalf("value 10 (row %d) not above value 0 (row %d):\n%s", right.row, left.row, out)
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	out := Chart("t", []string{"x"}, []Series{
		{Name: "a", Y: []float64{1}},
		{Name: "b", Y: []float64{2}},
	}, 4)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if out := Chart("empty", nil, nil, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
	out := Chart("nan", []string{"a"}, []Series{{Y: []float64{math.NaN()}}}, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("NaN-only chart output: %q", out)
	}
	// Constant series must not divide by zero.
	out = Chart("const", []string{"a", "b"}, []Series{{Name: "c", Y: []float64{5, 5}}}, 5)
	if got := strings.Count(out[:strings.Index(out, "legend")], "*"); got != 2 {
		t.Fatalf("constant series markers = %d:\n%s", got, out)
	}
	// Tiny height is clamped, not crashed.
	out = Chart("tiny", []string{"a"}, []Series{{Y: []float64{1}}}, 1)
	if !strings.Contains(out, "*") {
		t.Fatalf("tiny-height chart:\n%s", out)
	}
}

func TestChartHandlesInfValues(t *testing.T) {
	out := Chart("inf", []string{"a", "b", "c"}, []Series{
		{Name: "s", Y: []float64{1, math.Inf(1), 2}},
	}, 5)
	// Inf is skipped, finite points plotted.
	if got := strings.Count(out[:strings.Index(out, "legend")], "*"); got != 2 {
		t.Fatalf("inf handling markers = %d:\n%s", got, out)
	}
}

// Property: Chart never panics and always emits the title, for arbitrary
// series shapes including NaN/Inf values and mismatched label counts.
func TestChartNeverPanicsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		ns := r.Intn(4)
		series := make([]Series, ns)
		for i := range series {
			n := r.Intn(8)
			ys := make([]float64, n)
			for j := range ys {
				switch r.Intn(10) {
				case 0:
					ys[j] = math.NaN()
				case 1:
					ys[j] = math.Inf(1)
				default:
					ys[j] = r.Uniform(-1e6, 1e6)
				}
			}
			series[i] = Series{Name: "s", Y: ys}
		}
		labels := make([]string, r.Intn(6))
		for i := range labels {
			labels[i] = "L"
		}
		out := Chart("p", labels, series, r.Intn(20))
		return strings.HasPrefix(out, "p")
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
