// Package txtplot renders small ASCII line charts so the experiment harness
// can show figure-shaped output (error-vs-window-length curves, model
// comparisons) directly in a terminal, next to the numeric tables.
package txtplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	Y    []float64
}

// markers distinguish series in a chart.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series into a width×height character grid with a
// y-axis, an x-axis labeled by xlabels, and a legend. All series must share
// the x positions; shorter series are drawn over their prefix. Invalid
// dimensions or empty input yield an explanatory one-liner rather than an
// error, since chart output is always advisory.
func Chart(title string, xlabels []string, series []Series, height int) string {
	if height < 3 {
		height = 8
	}
	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > n {
			n = len(s.Y)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if n == 0 || math.IsInf(lo, 1) {
		return fmt.Sprintf("%s: (no data)\n", title)
	}
	if hi == lo {
		hi = lo + 1
	}
	// Each x position gets a fixed-width column so labels align.
	colW := 6
	for _, l := range xlabels {
		if len(l)+2 > colW {
			colW = len(l) + 2
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", n*colW))
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prev := -1
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				prev = -1
				continue
			}
			r := row(v)
			c := i*colW + colW/2
			grid[r][c] = m
			// Connect to the previous point with a sparse vertical run.
			if prev >= 0 && prev != r {
				step := 1
				if r < prev {
					step = -1
				}
				for rr := prev + step; rr != r; rr += step {
					cc := c - colW/2
					if cc >= 0 && grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			prev = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := 0; r < height; r++ {
		v := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%9.2f |%s\n", v, strings.TrimRight(string(grid[r]), " "))
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", n*colW))
	fmt.Fprintf(&b, "%9s  ", "")
	for i := 0; i < n; i++ {
		label := ""
		if i < len(xlabels) {
			label = xlabels[i]
		}
		fmt.Fprintf(&b, "%-*s", colW, centerIn(label, colW))
	}
	b.WriteString("\n")
	if len(series) > 1 || series[0].Name != "" {
		fmt.Fprintf(&b, "%9s  legend:", "")
		for si, s := range series {
			fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func centerIn(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	pad := (w - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
