package smp

import (
	"math"
	"testing"
	"testing/quick"

	"fgcs/internal/avail"
	"fgcs/internal/rng"
)

func TestLegalTransitions(t *testing.T) {
	// Exactly the eight pairs of Figure 3.
	count := 0
	for from := avail.S1; from <= avail.S5; from++ {
		for to := avail.S1; to <= avail.S5; to++ {
			legal := Legal(from, to)
			if legal {
				count++
			}
			wantLegal := from.Recoverable() && from != to
			if legal != wantLegal {
				t.Errorf("Legal(%v,%v) = %v", from, to, legal)
			}
		}
	}
	if count != 8 {
		t.Fatalf("legal pair count = %d, want 8", count)
	}
	if len(LegalTransitions) != 8 {
		t.Fatal("LegalTransitions table wrong size")
	}
	for _, p := range LegalTransitions {
		if !Legal(p[0], p[1]) {
			t.Errorf("table pair %v not legal", p)
		}
	}
}

func TestEstimateCounts(t *testing.T) {
	// Two windows:
	//   S1(3) -> S2(2) -> S3        and   S1(4) [censored]
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 3}, {State: avail.S2, Units: 2}, {State: avail.S3, Units: 5}},
		{{State: avail.S1, Units: 4}},
	}
	k, err := Estimator{Horizon: 100, Censoring: CensorSurvival}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	// S1 exposure: one completed + one censored = 2; S2 exposure: 1.
	if k.Exposure(avail.S1) != 2 || k.Exposure(avail.S2) != 1 {
		t.Fatalf("exposures = %v %v", k.Exposure(avail.S1), k.Exposure(avail.S2))
	}
	// Q1(S2) = 1/2 under survival censoring; Q2(S3) = 1.
	if got := k.Q(avail.S1, avail.S2); got != 0.5 {
		t.Fatalf("Q1(S2) = %v, want 0.5", got)
	}
	if got := k.Q(avail.S2, avail.S3); got != 1 {
		t.Fatalf("Q2(S3) = %v, want 1", got)
	}
	// H is concentrated at the observed holding times.
	if got := k.H(avail.S1, avail.S2, 3); got != 1 {
		t.Fatalf("H1,2(3) = %v, want 1", got)
	}
	if got := k.H(avail.S2, avail.S3, 2); got != 1 {
		t.Fatalf("H2,3(2) = %v, want 1", got)
	}
	if k.H(avail.S1, avail.S2, 0) != 0 {
		t.Fatal("H(0) must be 0 (Figure 3)")
	}
}

func TestEstimateCensorIgnore(t *testing.T) {
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 3}, {State: avail.S2, Units: 2}, {State: avail.S3, Units: 5}},
		{{State: avail.S1, Units: 4}},
	}
	k, err := Estimator{Horizon: 100, Censoring: CensorIgnore}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Q(avail.S1, avail.S2); got != 1 {
		t.Fatalf("Q1(S2) = %v, want 1 under CensorIgnore", got)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := (Estimator{Horizon: 0}).Estimate(nil); err != ErrNoHorizon {
		t.Fatalf("err = %v", err)
	}
	if _, err := (Estimator{Horizon: 10, Smoothing: -1}).Estimate(nil); err == nil {
		t.Fatal("negative smoothing accepted")
	}
	// Illegal transition in training data (S1 -> S1 impossible after run
	// compression, so fabricate S3 -> S1).
	bad := [][]avail.Sojourn{{{State: avail.S3, Units: 1}, {State: avail.S1, Units: 1}}}
	k, err := Estimator{Horizon: 10}.Estimate(bad)
	// S3 is absorbing: the estimator must simply stop at it, not error.
	if err != nil || k == nil {
		t.Fatalf("failure-state sequence rejected: %v", err)
	}
	bad2 := [][]avail.Sojourn{{{State: avail.S1, Units: 1}, {State: avail.S1, Units: 2}}}
	if _, err := (Estimator{Horizon: 10}).Estimate(bad2); err == nil {
		t.Fatal("S1->S1 self transition accepted")
	}
}

func TestEstimateOverHorizonSojournIsCensored(t *testing.T) {
	// A sojourn longer than the horizon transitions outside the window:
	// within the window it is pure survival, not an event at the cap.
	seqs := [][]avail.Sojourn{{{State: avail.S1, Units: 500}, {State: avail.S3, Units: 1}}}
	k, err := Estimator{Horizon: 10}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Q(avail.S1, avail.S3); got != 0 {
		t.Fatalf("over-horizon sojourn produced event mass Q = %v", got)
	}
	tr, err := k.TR(avail.S1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 1 {
		t.Fatalf("TR = %v, want 1 (no failure observable within the horizon)", tr)
	}
	// It still counts as exposure under the hazard estimator.
	if k.Exposure(avail.S1) != 1 {
		t.Fatalf("exposure = %v", k.Exposure(avail.S1))
	}
}

func TestHazardEstimatorKaplanMeier(t *testing.T) {
	// 4 windows fail out of S1 at exactly 600 units; 6 windows are
	// censored at 1200 units. The KM estimate of absorbing by 600 is
	// 4/10 = 0.4 (all ten sojourns are at risk at 600), so TR = 0.6 —
	// matching the empirical window survival.
	var seqs [][]avail.Sojourn
	for i := 0; i < 4; i++ {
		seqs = append(seqs, []avail.Sojourn{{State: avail.S1, Units: 600}, {State: avail.S5, Units: 1}})
	}
	for i := 0; i < 6; i++ {
		seqs = append(seqs, []avail.Sojourn{{State: avail.S1, Units: 1200}})
	}
	k, err := Estimator{Horizon: 1200}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := k.TR(avail.S1, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr-0.6) > 1e-12 {
		t.Fatalf("TR = %v, want 0.6 (Kaplan-Meier)", tr)
	}
	// CensorIgnore on the same data predicts certain failure: the bias
	// the default mode exists to avoid.
	ki, _ := Estimator{Horizon: 1200, Censoring: CensorIgnore}.Estimate(seqs)
	tri, _ := ki.TR(avail.S1, 1200)
	if tri != 0 {
		t.Fatalf("CensorIgnore TR = %v, want 0", tri)
	}
}

func TestHazardTwoStageKaplanMeier(t *testing.T) {
	// S1 sojourns: events at l=2 (2 of 4 at risk), censoring at l=3,
	// event at l=5. KM: q(2) per cause = 1/4 each; S(2) = 1/2; at l=5
	// the risk set is 1, so q(5) = 1/2.
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 2}, {State: avail.S3, Units: 1}},
		{{State: avail.S1, Units: 2}, {State: avail.S4, Units: 1}},
		{{State: avail.S1, Units: 3}},
		{{State: avail.S1, Units: 5}, {State: avail.S5, Units: 1}},
	}
	k, err := Estimator{Horizon: 10}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.qAt(0, avail.S3, 2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("q13(2) = %v, want 0.25", got)
	}
	if got := k.qAt(0, avail.S5, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("q15(5) = %v, want 0.5", got)
	}
	tr, _ := k.TR(avail.S1, 10)
	if math.Abs(tr-0) > 1e-12 {
		t.Fatalf("TR = %v, want 0 (all surviving mass absorbed by l=5)", tr)
	}
}

func TestSolveSingleStepAnalytic(t *testing.T) {
	// One observation: S1 holds 1 unit then fails to S3, and one censored
	// S1 sojourn → q_{1,3}(1) = 0.5. TR from S1 over any horizon ≥ 1 is
	// 0.5; from S2 (no data) it is 1.
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 1}, {State: avail.S3, Units: 1}},
		{{State: avail.S1, Units: 5}},
	}
	k, err := Estimator{Horizon: 50}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := k.Solve(avail.S1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TR-0.5) > 1e-12 {
		t.Fatalf("TR = %v, want 0.5", r.TR)
	}
	if math.Abs(r.PFail[0]-0.5) > 1e-12 || r.PFail[1] != 0 || r.PFail[2] != 0 {
		t.Fatalf("PFail = %v", r.PFail)
	}
	tr2, err := k.TR(avail.S2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 != 1 {
		t.Fatalf("TR from S2 with no data = %v, want 1", tr2)
	}
}

func TestSolveTwoStepAnalytic(t *testing.T) {
	// S1 always moves to S2 after exactly 2 units; S2 fails to S4 after
	// exactly 3 units with probability 1. Absorption into S4 happens at
	// unit 5: TR(4) = 1, TR(5) = 0.
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 2}, {State: avail.S2, Units: 3}, {State: avail.S4, Units: 1}},
	}
	k, err := Estimator{Horizon: 50}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		units int
		want  float64
	}{{1, 1}, {4, 1}, {5, 0}, {20, 0}} {
		tr, err := k.TR(avail.S1, c.units)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr-c.want) > 1e-12 {
			t.Fatalf("TR(%d) = %v, want %v", c.units, tr, c.want)
		}
	}
	// From S2 the failure lands at unit 3.
	tr, _ := k.TR(avail.S2, 2)
	if tr != 1 {
		t.Fatalf("TR_S2(2) = %v, want 1", tr)
	}
	tr, _ = k.TR(avail.S2, 3)
	if tr != 0 {
		t.Fatalf("TR_S2(3) = %v, want 0", tr)
	}
}

func TestSolveMixedBranching(t *testing.T) {
	// From S1: 50% to S2 (hold 1), 50% to S3 (hold 1).
	// From S2: 100% back to S1 (hold 1).
	// Absorption probability by horizon m: 0.5 + 0.25 + ... (failure
	// attempt every 2 units).
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 1}, {State: avail.S3, Units: 1}},
		{{State: avail.S1, Units: 1}, {State: avail.S2, Units: 1}, {State: avail.S1, Units: 1}, {State: avail.S3, Units: 1}},
	}
	// This gives S1 exposure 3: two S1->S3 at hold 1, one S1->S2 at hold 1.
	k, err := Estimator{Horizon: 100}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	p3 := k.Q(avail.S1, avail.S3)
	p2 := k.Q(avail.S1, avail.S2)
	if math.Abs(p3-2.0/3) > 1e-12 || math.Abs(p2-1.0/3) > 1e-12 {
		t.Fatalf("Q = %v %v", p3, p2)
	}
	// Analytic absorption: at odd units 2k+1, P = p3 * Σ_{i<=k} p2^i.
	want := 0.0
	for i := 0; i <= 2; i++ {
		want += p3 * math.Pow(p2, float64(i))
	}
	tr, err := k.TR(avail.S1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((1-tr)-want) > 1e-9 {
		t.Fatalf("absorption by 5 = %v, want %v", 1-tr, want)
	}
}

func TestSolveErrors(t *testing.T) {
	k, _ := Estimator{Horizon: 10}.Estimate(nil)
	if _, err := k.Solve(avail.S3, 5); err == nil {
		t.Fatal("failure initial state accepted")
	}
	if _, err := k.Solve(avail.S1, -1); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := k.Solve(avail.S1, 11); err == nil {
		t.Fatal("window beyond horizon accepted")
	}
	if _, _, err := k.Reliabilities(11); err == nil {
		t.Fatal("Reliabilities beyond horizon accepted")
	}
}

func TestSolveZeroWindow(t *testing.T) {
	k, _ := Estimator{Horizon: 10}.Estimate(nil)
	r, err := k.Solve(avail.S1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TR != 1 {
		t.Fatalf("TR over empty window = %v, want 1", r.TR)
	}
}

func TestReliabilitiesMatchesSolve(t *testing.T) {
	seqs := [][]avail.Sojourn{
		{{State: avail.S1, Units: 2}, {State: avail.S2, Units: 1}, {State: avail.S5, Units: 1}},
		{{State: avail.S2, Units: 4}, {State: avail.S1, Units: 3}, {State: avail.S4, Units: 1}},
		{{State: avail.S1, Units: 8}},
	}
	k, err := Estimator{Horizon: 30}.Estimate(seqs)
	if err != nil {
		t.Fatal(err)
	}
	tr1, tr2, err := k.Reliabilities(20)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := k.Solve(avail.S1, 20)
	r2, _ := k.Solve(avail.S2, 20)
	if tr1 != r1.TR || tr2 != r2.TR {
		t.Fatalf("Reliabilities = %v,%v; Solve = %v,%v", tr1, tr2, r1.TR, r2.TR)
	}
}

func TestSmoothingMakesQPositive(t *testing.T) {
	k, err := Estimator{Horizon: 10, Smoothing: 1}.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range LegalTransitions {
		if k.Q(p[0], p[1]) <= 0 {
			t.Fatalf("smoothed Q%v = 0", p)
		}
	}
	tr, err := k.TR(avail.S1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr >= 1 || tr <= 0 {
		t.Fatalf("smoothed TR = %v, want strictly inside (0,1)", tr)
	}
}

// randomKernel builds a kernel directly from random legal counts.
func randomKernel(r *rng.Stream, horizon int) *Kernel {
	var seqs [][]avail.Sojourn
	nseq := 3 + r.Intn(20)
	for i := 0; i < nseq; i++ {
		var seq []avail.Sojourn
		state := avail.S1
		if r.Bool(0.3) {
			state = avail.S2
		}
		remaining := horizon
		for remaining > 0 {
			hold := 1 + r.Intn(horizon/2)
			if hold > remaining {
				hold = remaining
			}
			seq = append(seq, avail.Sojourn{State: state, Units: hold})
			remaining -= hold
			if remaining <= 0 {
				break
			}
			// Choose the next state: toggle between the recoverable
			// states or absorb into a failure state.
			x := r.Float64()
			switch {
			case x < 0.7:
				if state == avail.S1 {
					state = avail.S2
				} else {
					state = avail.S1
				}
			case x < 0.82:
				seq = append(seq, avail.Sojourn{State: avail.S3, Units: 1})
				remaining = 0
			case x < 0.92:
				seq = append(seq, avail.Sojourn{State: avail.S4, Units: 1})
				remaining = 0
			default:
				seq = append(seq, avail.Sojourn{State: avail.S5, Units: 1})
				remaining = 0
			}
		}
		seqs = append(seqs, seq)
	}
	k, err := Estimator{Horizon: horizon}.Estimate(seqs)
	if err != nil {
		panic(err)
	}
	return k
}

// simulate runs the semi-Markov process forward once and reports whether it
// is absorbed in a failure state within `units`.
func simulate(k *Kernel, r *rng.Stream, init avail.State, units int) bool {
	state := init
	t := 0
	for {
		fi := fromIndex(state)
		// Build the categorical over (to, l) pairs plus survival mass.
		x := r.Float64()
		acc := 0.0
		var to avail.State
		var hold int
		found := false
	outer:
		for s := avail.S1; s <= avail.S5; s++ {
			qs := k.q[fi][s]
			for l := 1; l < len(qs); l++ {
				acc += qs[l]
				if x < acc {
					to, hold, found = s, l, true
					break outer
				}
			}
		}
		if !found {
			return false // survives past the horizon in this state
		}
		t += hold
		if t > units {
			return false // transition happens after the window closes
		}
		if to.Failure() {
			return true
		}
		state = to
	}
}

// TestSolveMatchesMonteCarlo cross-validates the Equation (3) recursion
// against forward simulation of the same kernel.
func TestSolveMatchesMonteCarlo(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 5; trial++ {
		k := randomKernel(r.SplitN("kernel", trial), 40)
		for _, init := range []avail.State{avail.S1, avail.S2} {
			for _, units := range []int{5, 17, 40} {
				want, err := k.TR(init, units)
				if err != nil {
					t.Fatal(err)
				}
				const n = 30000
				failed := 0
				sim := r.SplitN("sim", trial*100+units)
				for i := 0; i < n; i++ {
					if simulate(k, sim, init, units) {
						failed++
					}
				}
				got := 1 - float64(failed)/n
				if math.Abs(got-want) > 0.015 {
					t.Fatalf("trial %d init %v units %d: MC TR = %v, solver TR = %v",
						trial, init, units, got, want)
				}
			}
		}
	}
}

// Property: TR is within [0,1] and non-increasing in the window length.
func TestTRMonotoneProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		k := randomKernel(r, 30)
		for _, init := range []avail.State{avail.S1, avail.S2} {
			prev := 1.0
			for units := 0; units <= 30; units++ {
				tr, err := k.TR(init, units)
				if err != nil || tr < 0 || tr > 1 {
					return false
				}
				if tr > prev+1e-9 {
					return false
				}
				prev = tr
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Q rows are sub-stochastic and H masses are normalized.
func TestKernelStochasticProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		k := randomKernel(rng.New(seed), 25)
		for _, from := range []avail.State{avail.S1, avail.S2} {
			rowSum := 0.0
			for to := avail.S1; to <= avail.S5; to++ {
				q := k.Q(from, to)
				if q < 0 || q > 1+1e-9 {
					return false
				}
				rowSum += q
				if q > 0 {
					hsum := 0.0
					for l := 0; l <= k.Horizon(); l++ {
						h := k.H(from, to, l)
						if h < 0 {
							return false
						}
						hsum += h
					}
					if math.Abs(hsum-1) > 1e-9 {
						return false
					}
				}
			}
			if rowSum > 1+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property (Figure 3): mass never appears outside the eight legal pairs.
func TestSparsityProperty(t *testing.T) {
	k := randomKernel(rng.New(99), 20)
	for from := avail.S1; from <= avail.S5; from++ {
		for to := avail.S1; to <= avail.S5; to++ {
			if !Legal(from, to) && k.Q(from, to) != 0 {
				t.Fatalf("illegal pair (%v,%v) carries mass", from, to)
			}
		}
	}
}

func TestSolveOpsGrowSuperlinearly(t *testing.T) {
	k := randomKernel(rng.New(5), 2000)
	r1, err := k.Solve(avail.S1, 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := k.Solve(avail.S1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the window must cost more than 4x the ops (the DP is O(N^2)).
	if r2.Ops <= 4*r1.Ops {
		t.Fatalf("ops growth not superlinear: %d -> %d", r1.Ops, r2.Ops)
	}
}

// TestSparseSolverMatchesDense: the ablation solver must be numerically
// identical to the dense Equation (3) recursion.
func TestSparseSolverMatchesDense(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		k := randomKernel(rng.New(uint64(trial)+77), 60)
		for _, init := range []avail.State{avail.S1, avail.S2} {
			for _, units := range []int{0, 1, 7, 33, 60} {
				dense, err := k.Solve(init, units)
				if err != nil {
					t.Fatal(err)
				}
				sp, err := k.SolveSparseTR(init, units)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(dense.TR-sp.TR) > 1e-12 {
					t.Fatalf("trial %d init %v units %d: dense %v != sparse %v",
						trial, init, units, dense.TR, sp.TR)
				}
				if sp.Ops > dense.Ops {
					t.Fatalf("sparse solver did more work than dense: %d > %d", sp.Ops, dense.Ops)
				}
			}
		}
	}
}

func TestSparseSolverErrors(t *testing.T) {
	k, _ := Estimator{Horizon: 10}.Estimate(nil)
	if _, err := k.SolveSparseTR(avail.S4, 5); err == nil {
		t.Fatal("failure initial state accepted")
	}
	if _, err := k.SolveSparseTR(avail.S1, 11); err == nil {
		t.Fatal("window beyond horizon accepted")
	}
}

// TestFullIntervalRowsSumToOne: the process is always somewhere — every row
// of the Figure 3 P matrix sums to 1 at every horizon.
func TestFullIntervalRowsSumToOne(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		k := randomKernel(rng.New(uint64(trial)+31), 40)
		iv, err := k.FullInterval(40)
		if err != nil {
			t.Fatal(err)
		}
		for fi := 0; fi < 2; fi++ {
			for m := 0; m <= 40; m++ {
				if sum := iv.RowSum(fi, m); math.Abs(sum-1) > 1e-9 {
					t.Fatalf("trial %d fi %d m %d: row sum = %v", trial, fi, m, sum)
				}
			}
		}
	}
}

// TestFullIntervalMatchesSolve: the failure columns must equal the standard
// Equation (3) solver's output.
func TestFullIntervalMatchesSolve(t *testing.T) {
	k := randomKernel(rng.New(123), 30)
	iv, err := k.FullInterval(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, init := range []avail.State{avail.S1, avail.S2} {
		fi := fromIndex(init)
		for _, m := range []int{0, 7, 30} {
			res, err := k.Solve(init, m)
			if err != nil {
				t.Fatal(err)
			}
			for ji := 0; ji < 3; ji++ {
				if math.Abs(iv.P[fi][ji+2][m]-res.PFail[ji]) > 1e-12 {
					t.Fatalf("init %v m %d j %d: %v != %v", init, m, ji, iv.P[fi][ji+2][m], res.PFail[ji])
				}
			}
		}
	}
}

// TestFullIntervalMatchesMonteCarlo validates the recoverable-state
// occupancy columns against forward simulation.
func TestFullIntervalMatchesMonteCarlo(t *testing.T) {
	r := rng.New(777)
	k := randomKernel(r.Split("kern"), 30)
	iv, err := k.FullInterval(30)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	units := 19
	counts := [avail.NumStates + 1]int{}
	sim := r.Split("sim")
	for i := 0; i < n; i++ {
		state := simulateState(k, sim, avail.S1, units)
		counts[state]++
	}
	for st := avail.S1; st <= avail.S5; st++ {
		want := iv.P[0][int(st)-1][units]
		got := float64(counts[st]) / n
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("state %v: MC %v vs solver %v", st, got, want)
		}
	}
}

// simulateState runs the process forward and returns the state occupied at
// exactly `units`.
func simulateState(k *Kernel, r *rng.Stream, init avail.State, units int) avail.State {
	state := init
	t := 0
	for {
		fi := fromIndex(state)
		if fi < 0 {
			return state // absorbed
		}
		x := r.Float64()
		acc := 0.0
		var to avail.State
		var hold int
		found := false
	outer:
		for s := avail.S1; s <= avail.S5; s++ {
			qs := k.q[fi][s]
			for l := 1; l < len(qs); l++ {
				acc += qs[l]
				if x < acc {
					to, hold, found = s, l, true
					break outer
				}
			}
		}
		if !found || t+hold > units {
			return state // stays put past the horizon
		}
		t += hold
		state = to
		if state.Failure() {
			return state
		}
		if t == units {
			return state
		}
	}
}

func TestFullIntervalErrors(t *testing.T) {
	k, _ := Estimator{Horizon: 10}.Estimate(nil)
	if _, err := k.FullInterval(11); err == nil {
		t.Fatal("beyond-horizon interval accepted")
	}
	if _, err := k.FullInterval(-1); err == nil {
		t.Fatal("negative horizon accepted")
	}
	// Empty kernel: the process never leaves its initial state.
	iv, err := k.FullInterval(10)
	if err != nil {
		t.Fatal(err)
	}
	if iv.P[0][0][10] != 1 || iv.P[1][1][10] != 1 {
		t.Fatalf("empty kernel occupancy: %v %v", iv.P[0][0][10], iv.P[1][1][10])
	}
}
