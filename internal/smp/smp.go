// Package smp implements the discrete-time semi-Markov process model of
// Section 4: estimation of the state-transition matrix Q and the holding-time
// mass function matrix H from observed sojourn sequences, and the
// sparsity-optimized backward recursion of Equation (3) that yields the
// interval transition probabilities into the failure states and hence the
// temporal reliability TR of Equation (2).
//
// The state space is the five-state availability model of package avail.
// Per Figure 3, only eight (from, to) transition pairs can carry probability
// mass: S1→{S2,S3,S4,S5} and S2→{S1,S3,S4,S5}; S3, S4 and S5 are absorbing.
// The solver therefore tracks only the six interval transition probabilities
// P[1,j](m), P[2,j](m), j ∈ {3,4,5}.
package smp

import (
	"errors"
	"fmt"

	"fgcs/internal/avail"
)

// LegalTransitions enumerates the eight (from, to) pairs permitted by the
// model's sparsity (Figure 3).
var LegalTransitions = [8][2]avail.State{
	{avail.S1, avail.S2}, {avail.S1, avail.S3}, {avail.S1, avail.S4}, {avail.S1, avail.S5},
	{avail.S2, avail.S1}, {avail.S2, avail.S3}, {avail.S2, avail.S4}, {avail.S2, avail.S5},
}

// Legal reports whether a direct transition from → to can carry probability
// mass in the model.
func Legal(from, to avail.State) bool {
	if !from.Recoverable() || from == to {
		return false
	}
	return to >= avail.S1 && to <= avail.S5
}

// CensorMode selects how right-censored sojourns (still in progress when the
// observation window ended) are used by the estimator.
type CensorMode int

const (
	// CensorHazard (the default) is the discrete-time Kaplan–Meier
	// competing-risks estimator: for each holding time l the
	// cause-specific hazard h_ij(l) is the fraction of sojourns still
	// under observation at l that transition to j exactly then, and the
	// kernel mass is q_ij(l) = S_i(l-1)·h_ij(l) with S_i the
	// product-limit survival. Right-censored sojourns contribute to the
	// risk sets up to their censoring time and nothing afterwards —
	// the statistically correct use of incomplete observations.
	CensorHazard CensorMode = iota
	// CensorIgnore estimates the kernel from completed sojourns only.
	// It biases toward the quick transitions that manage to complete
	// inside windows: failure-free (fully censored) history windows
	// contribute nothing, so rare failures look certain. Retained as an
	// ablation.
	CensorIgnore
	// CensorSurvival counts censored sojourns in a flat per-state
	// exposure; the missing kernel mass becomes a per-visit "outlasts
	// the horizon" probability. Because window-end censoring is shared
	// by the whole trajectory but this treats it as independent per
	// visit, the optimism compounds over the many sojourns of a long
	// window and TR is overestimated. Retained as an ablation.
	CensorSurvival
)

// Estimator configures kernel estimation from sojourn sequences.
type Estimator struct {
	// Horizon is T/d: the number of discretization intervals in the
	// prediction window. Holding times longer than the horizon are capped
	// (their exact length cannot matter within the window).
	Horizon int
	// Smoothing adds a pseudo-count to every legal transition target at
	// holding-time 1..Horizon spread uniformly. Zero (the default)
	// reproduces the plain empirical statistics the paper computes.
	Smoothing float64
	// Censoring selects the censored-sojourn policy.
	Censoring CensorMode
}

// Kernel is the estimated one-step behavior of the semi-Markov process:
// q[i][j][l] = Pr{next state is j and the holding time is exactly l units |
// the process just entered state i}. Q and H of the paper factor out of q as
// Q_i(j) = Σ_l q_ij(l) and H_ij(l) = q_ij(l)/Q_i(j).
type Kernel struct {
	horizon int
	// q[fi][int(to)][l]; fi is 0 for S1, 1 for S2; l runs 1..horizon
	// (index 0 unused). Only legal targets are allocated.
	q [2][avail.NumStates + 1][]float64
	// exposures counts sojourns observed in each from-state (including
	// censored ones under CensorSurvival); useful diagnostics.
	exposures [2]float64
}

func fromIndex(s avail.State) int {
	switch s {
	case avail.S1:
		return 0
	case avail.S2:
		return 1
	}
	return -1
}

// Horizon returns the kernel's horizon in discretization units.
func (k *Kernel) Horizon() int { return k.horizon }

// Exposure returns the number of sojourns observed in the given from-state.
func (k *Kernel) Exposure(from avail.State) float64 {
	fi := fromIndex(from)
	if fi < 0 {
		return 0
	}
	return k.exposures[fi]
}

// Q returns the transition probability Q_from(to): the probability that the
// process that entered from will enter to on its next transition within the
// horizon.
func (k *Kernel) Q(from, to avail.State) float64 {
	fi := fromIndex(from)
	if fi < 0 || !Legal(from, to) {
		return 0
	}
	qs := k.q[fi][to]
	total := 0.0
	for _, v := range qs {
		total += v
	}
	return total
}

// H returns the holding-time mass H_{from,to}(l): the probability that the
// process remains at from for exactly l units before a transition to to,
// conditioned on that transition happening. H(·, ·, 0) is 0 by construction
// (Figure 3: transitions take a finite amount of time).
func (k *Kernel) H(from, to avail.State, l int) float64 {
	fi := fromIndex(from)
	if fi < 0 || !Legal(from, to) || l < 1 || l > k.horizon {
		return 0
	}
	qs := k.q[fi][to]
	if qs == nil {
		return 0
	}
	total := 0.0
	for _, v := range qs {
		total += v
	}
	if total == 0 {
		return 0
	}
	return qs[l] / total
}

// qAt returns the raw kernel value q_{from,to}(l).
func (k *Kernel) qAt(fi int, to avail.State, l int) float64 {
	qs := k.q[fi][to]
	if qs == nil || l < 1 || l >= len(qs) {
		return 0
	}
	return qs[l]
}

// ErrNoHorizon is returned when the estimator is configured without a
// positive horizon.
var ErrNoHorizon = errors.New("smp: horizon must be positive")

// Estimate builds a Kernel from sojourn sequences, one sequence per training
// window (the same clock window on each of the most recent N same-type days,
// per Section 4.2). Sequences may be empty. The final sojourn of a sequence
// that does not end in a failure state is treated as right-censored, and a
// sojourn longer than the horizon is censored at the horizon (its eventual
// transition cannot matter within the window).
func (e Estimator) Estimate(seqs [][]avail.Sojourn) (*Kernel, error) {
	if e.Horizon <= 0 {
		return nil, ErrNoHorizon
	}
	if e.Smoothing < 0 {
		return nil, fmt.Errorf("smp: negative smoothing")
	}
	k := &Kernel{horizon: e.Horizon}
	// Event counts accumulate directly in k.q[fi][to][l] (completed
	// sojourns by holding time) and are normalized into kernel mass in
	// place below — the estimator's only allocations are the kernel's own
	// slices, which outlive the call. censored[fi][l] counts right-censored
	// sojourns by observed length; both from-states share one backing
	// array.
	censBuf := make([]float64, 2*(e.Horizon+1))
	censored := [2][]float64{censBuf[: e.Horizon+1 : e.Horizon+1], censBuf[e.Horizon+1:]}
	var nEvents, nCensored [2]float64
	for fi, from := 0, []avail.State{avail.S1, avail.S2}; fi < 2; fi++ {
		for to := avail.S1; to <= avail.S5; to++ {
			if Legal(from[fi], to) {
				k.q[fi][to] = make([]float64, e.Horizon+1)
			}
		}
	}
	for _, seq := range seqs {
		for si, soj := range seq {
			fi := fromIndex(soj.State)
			if fi < 0 {
				// Failure state: absorbing, nothing follows.
				break
			}
			units := soj.Units
			if units < 1 {
				units = 1
			}
			completed := si+1 < len(seq)
			if units > e.Horizon {
				// Over-horizon sojourns are censored at the horizon.
				units = e.Horizon
				completed = false
			}
			if completed {
				to := seq[si+1].State
				if !Legal(soj.State, to) {
					return nil, fmt.Errorf("smp: illegal transition %v -> %v in training sequence", soj.State, to)
				}
				k.q[fi][to][units]++
				nEvents[fi]++
			} else {
				censored[fi][units]++
				nCensored[fi]++
			}
		}
	}
	// Smoothing: spread pseudo-events uniformly over legal targets and
	// holding times.
	if e.Smoothing > 0 {
		per := e.Smoothing / float64(4*e.Horizon)
		for fi := 0; fi < 2; fi++ {
			for to := avail.S1; to <= avail.S5; to++ {
				if k.q[fi][to] == nil {
					continue
				}
				for l := 1; l <= e.Horizon; l++ {
					k.q[fi][to][l] += per
				}
			}
			nEvents[fi] += e.Smoothing
		}
	}
	// Convert the in-place counts into the one-step kernel under the
	// selected censoring policy.
	for fi := 0; fi < 2; fi++ {
		switch e.Censoring {
		case CensorIgnore:
			k.exposures[fi] = nEvents[fi]
			if nEvents[fi] == 0 {
				continue
			}
			inv := 1 / nEvents[fi]
			for to := avail.S1; to <= avail.S5; to++ {
				for l, c := range k.q[fi][to] {
					if c != 0 {
						k.q[fi][to][l] = c * inv
					}
				}
			}
		case CensorSurvival:
			total := nEvents[fi] + nCensored[fi]
			k.exposures[fi] = total
			if total == 0 {
				continue
			}
			inv := 1 / total
			for to := avail.S1; to <= avail.S5; to++ {
				for l, c := range k.q[fi][to] {
					if c != 0 {
						k.q[fi][to][l] = c * inv
					}
				}
			}
		default: // CensorHazard
			risk := nEvents[fi] + nCensored[fi]
			k.exposures[fi] = risk
			surv := 1.0
			l := 1
			for ; l <= e.Horizon && risk > 1e-12 && surv > 0; l++ {
				atL := 0.0
				for to := avail.S1; to <= avail.S5; to++ {
					qs := k.q[fi][to]
					if qs == nil {
						continue
					}
					c := qs[l]
					if c != 0 {
						qs[l] = surv * c / risk
						atL += c
					}
				}
				surv *= 1 - atL/risk
				if surv < 0 {
					surv = 0
				}
				risk -= atL + censored[fi][l]
			}
			// Holding times past the early-exit point keep no mass:
			// clear any raw counts left there.
			for ; l <= e.Horizon; l++ {
				for to := avail.S1; to <= avail.S5; to++ {
					if qs := k.q[fi][to]; qs != nil {
						qs[l] = 0
					}
				}
			}
		}
	}
	return k, nil
}

// Result carries the solved interval transition probabilities for one
// initial state.
type Result struct {
	// Units is the horizon the result was solved for.
	Units int
	// PFail[j] is P_{init,Sj}(Units) for j = 3, 4, 5 (indices 0..2).
	PFail [3]float64
	// TR is the temporal reliability, Equation (2).
	TR float64
	// Ops counts the multiply-accumulate operations the solver performed;
	// the Figure 4 cost experiment verifies its superlinear growth.
	Ops int64
}

// Solve computes the temporal reliability for a job starting in init (S1 or
// S2) over a window of the given number of discretization units, by the
// sparsity-optimized recursion of Equation (3).
func (k *Kernel) Solve(init avail.State, units int) (Result, error) {
	if fromIndex(init) < 0 {
		return Result{}, fmt.Errorf("smp: initial state %v is not recoverable", init)
	}
	if units < 0 {
		return Result{}, fmt.Errorf("smp: negative window")
	}
	if units > k.horizon {
		return Result{}, fmt.Errorf("smp: window of %d units exceeds kernel horizon %d", units, k.horizon)
	}
	sol := k.solve(units)
	var res Result
	res.Units = units
	res.Ops = sol.ops
	fi := fromIndex(init)
	total := 0.0
	for ji := 0; ji < 3; ji++ {
		p := sol.p[fi][ji][units]
		res.PFail[ji] = p
		total += p
	}
	tr := 1 - total
	if tr < 0 {
		tr = 0
	}
	if tr > 1 {
		tr = 1
	}
	res.TR = tr
	return res, nil
}

// TR is a convenience wrapper around Solve returning only the temporal
// reliability.
func (k *Kernel) TR(init avail.State, units int) (float64, error) {
	r, err := k.Solve(init, units)
	if err != nil {
		return 0, err
	}
	return r.TR, nil
}

type solution struct {
	// p[fi][ji][m]: fi 0/1 for S1/S2, ji 0..2 for S3..S5.
	p   [2][3][]float64
	ops int64
}

// Workspace holds reusable buffers for the Equation (3) recursion, so a
// long-lived caller (the prediction engine's per-query scratch) can solve
// repeatedly without allocating. The zero value is ready to use. Workspaces
// are not safe for concurrent use.
type Workspace struct {
	sol solution
	cum [2][3][]float64
}

// grow sizes the workspace buffers for n = units+1 entries, reusing capacity
// and resetting the m=0 column the recursion relies on.
func (ws *Workspace) grow(n int) {
	for fi := 0; fi < 2; fi++ {
		for ji := 0; ji < 3; ji++ {
			ws.sol.p[fi][ji] = growZeroHead(ws.sol.p[fi][ji], n)
			ws.cum[fi][ji] = growZeroHead(ws.cum[fi][ji], n)
		}
	}
	ws.sol.ops = 0
}

// growZeroHead returns a slice of length n reusing buf's storage when
// possible, with index 0 zeroed (the only entry the recursion reads before
// writing).
func growZeroHead(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	if n > 0 {
		buf[0] = 0
	}
	return buf
}

// solve runs the dynamic program of Equation (3) for m = 0..units. The six
// sequences P_{1,j}, P_{2,j} are mutually recursive through the recoverable
// cross terms q_{1,2} and q_{2,1}; the direct failure terms accumulate as
// prefix sums. The inner convolution makes the total cost Θ(units²) — the
// superlinear growth measured in Figure 4.
func (k *Kernel) solve(units int) *solution {
	return k.solveMode(nil, units, false)
}

// solveSparse is the ablation variant: it convolves only over the nonzero
// support of the cross-transition kernels (the observed holding times),
// trading the paper's simple dense recursion for near-linear cost on sparse
// history data. Results are numerically identical.
func (k *Kernel) solveSparse(units int) *solution {
	return k.solveMode(nil, units, true)
}

// nonzero returns the indices l with qs[l] != 0, limited to 1..units.
func nonzero(qs []float64, units int) []int {
	var idx []int
	for l := 1; l < len(qs) && l <= units; l++ {
		if qs[l] != 0 {
			idx = append(idx, l)
		}
	}
	return idx
}

func (k *Kernel) solveMode(ws *Workspace, units int, sparse bool) *solution {
	var sol *solution
	var directCum [2][3][]float64
	if ws != nil {
		ws.grow(units + 1)
		sol = &ws.sol
		directCum = ws.cum
	} else {
		sol = &solution{}
		for fi := 0; fi < 2; fi++ {
			for ji := 0; ji < 3; ji++ {
				sol.p[fi][ji] = make([]float64, units+1)
				directCum[fi][ji] = make([]float64, units+1)
			}
		}
	}
	// directCum[fi][ji][m] = Σ_{l=1..m} q_{fi,j}(l): probability of a
	// direct absorption into j within m units.
	for fi := 0; fi < 2; fi++ {
		for ji := 0; ji < 3; ji++ {
			to := avail.State(ji + 3)
			cum := directCum[fi][ji]
			run := 0.0
			for m := 1; m <= units; m++ {
				run += k.qAt(fi, to, m)
				cum[m] = run
			}
			sol.ops += int64(units)
		}
	}
	// Cross-transition kernels, padded to units+1 so the inner loop needs
	// no bounds logic.
	crossQ := [2][]float64{pad(k.q[0][avail.S2], units+1), pad(k.q[1][avail.S1], units+1)}
	var crossNZ [2][]int
	if sparse {
		crossNZ[0] = nonzero(crossQ[0], units)
		crossNZ[1] = nonzero(crossQ[1], units)
	}
	for m := 1; m <= units; m++ {
		for fi := 0; fi < 2; fi++ {
			other := 1 - fi
			q := crossQ[fi]
			for ji := 0; ji < 3; ji++ {
				acc := directCum[fi][ji][m]
				po := sol.p[other][ji]
				// Convolution with the path through the other
				// recoverable state.
				if sparse {
					for _, l := range crossNZ[fi] {
						if l >= m {
							break
						}
						acc += q[l] * po[m-l]
					}
					sol.ops += int64(len(crossNZ[fi]))
				} else {
					for l := 1; l < m; l++ {
						acc += q[l] * po[m-l]
					}
					sol.ops += int64(m)
				}
				if acc > 1 {
					acc = 1
				}
				sol.p[fi][ji][m] = acc
			}
		}
	}
	return sol
}

// pad returns qs extended with zeros to length n (aliasing qs when long
// enough).
func pad(qs []float64, n int) []float64 {
	if len(qs) >= n {
		return qs
	}
	out := make([]float64, n)
	copy(out, qs)
	return out
}

// SolveSparseTR is the sparse-convolution ablation entry point: numerically
// identical to Solve but with cost proportional to the number of distinct
// observed holding times instead of the window length.
func (k *Kernel) SolveSparseTR(init avail.State, units int) (Result, error) {
	if fromIndex(init) < 0 {
		return Result{}, fmt.Errorf("smp: initial state %v is not recoverable", init)
	}
	if units < 0 || units > k.horizon {
		return Result{}, fmt.Errorf("smp: window of %d units outside kernel horizon %d", units, k.horizon)
	}
	sol := k.solveSparse(units)
	var res Result
	res.Units = units
	res.Ops = sol.ops
	fi := fromIndex(init)
	total := 0.0
	for ji := 0; ji < 3; ji++ {
		res.PFail[ji] = sol.p[fi][ji][units]
		total += sol.p[fi][ji][units]
	}
	res.TR = clamp01(1 - total)
	return res, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Reliabilities solves the model once and returns TR for both possible
// initial states, useful when the caller mixes over the initial-state
// distribution.
func (k *Kernel) Reliabilities(units int) (trS1, trS2 float64, err error) {
	return k.ReliabilitiesWS(nil, units)
}

// ReliabilitiesWS is Reliabilities solving into ws's reusable buffers (nil
// behaves like Reliabilities): once the workspace has warmed up to the
// largest horizon it sees, the backward recursion allocates nothing. This is
// the prediction engine's cache-miss hot path.
func (k *Kernel) ReliabilitiesWS(ws *Workspace, units int) (trS1, trS2 float64, err error) {
	if units < 0 || units > k.horizon {
		return 0, 0, fmt.Errorf("smp: window of %d units outside kernel horizon %d", units, k.horizon)
	}
	sol := k.solveMode(ws, units, false)
	trs := [2]float64{}
	for fi := 0; fi < 2; fi++ {
		total := 0.0
		for ji := 0; ji < 3; ji++ {
			total += sol.p[fi][ji][units]
		}
		tr := 1 - total
		if tr < 0 {
			tr = 0
		}
		if tr > 1 {
			tr = 1
		}
		trs[fi] = tr
	}
	return trs[0], trs[1], nil
}

// Interval is the full interval-transition-probability row set of Figure 3:
// P[i][j](m) = Pr{S(m) = j | S(0) = i} for the recoverable initial states.
// Columns S3..S5 accumulate absorption; columns S1/S2 track the recoverable
// occupancy. Each row sums to 1 at every m (the process is somewhere).
type Interval struct {
	Units int
	// P[fi][state-1][m], fi 0/1 for initial S1/S2, state 1..5.
	P [2][avail.NumStates][]float64
}

// FullInterval solves the complete interval transition probabilities up to
// the given horizon: the failure columns by the Equation (3) recursion and
// the recoverable columns by the matching renewal equations
//
//	P_{i,i}(m) = S_i(m) + Σ_l q_{i,ī}(l)·P_{ī,i}(m-l)
//	P_{i,ī}(m) =          Σ_l q_{i,ī}(l)·P_{ī,ī}(m-l)
//
// with S_i the first-sojourn survival and ī the other recoverable state.
func (k *Kernel) FullInterval(units int) (*Interval, error) {
	if units < 0 || units > k.horizon {
		return nil, fmt.Errorf("smp: window of %d units outside kernel horizon %d", units, k.horizon)
	}
	iv := &Interval{Units: units}
	for fi := 0; fi < 2; fi++ {
		for st := 0; st < avail.NumStates; st++ {
			iv.P[fi][st] = make([]float64, units+1)
		}
	}
	// Failure columns from the standard solver.
	sol := k.solve(units)
	for fi := 0; fi < 2; fi++ {
		for ji := 0; ji < 3; ji++ {
			copy(iv.P[fi][ji+2], sol.p[fi][ji])
		}
	}
	// First-sojourn survival S_i(m) = 1 - Σ_{j,l<=m} q_{i,j}(l) and the
	// cross kernels.
	surv := [2][]float64{make([]float64, units+1), make([]float64, units+1)}
	for fi := 0; fi < 2; fi++ {
		cum := 0.0
		surv[fi][0] = 1
		for m := 1; m <= units; m++ {
			for to := avail.S1; to <= avail.S5; to++ {
				cum += k.qAt(fi, to, m)
			}
			s := 1 - cum
			if s < 0 {
				s = 0
			}
			surv[fi][m] = s
		}
	}
	crossQ := [2][]float64{pad(k.q[0][avail.S2], units+1), pad(k.q[1][avail.S1], units+1)}
	// Recoverable columns: mutual recursion over m.
	iv.P[0][0][0] = 1 // P_{1,1}(0)
	iv.P[1][1][0] = 1 // P_{2,2}(0)
	for m := 1; m <= units; m++ {
		for fi := 0; fi < 2; fi++ {
			other := 1 - fi
			own := surv[fi][m] // still in the very first sojourn
			crossTo := 0.0
			for l := 1; l <= m; l++ {
				q := crossQ[fi][l]
				if q == 0 {
					continue
				}
				// After moving to the other state at l, be back in fi
				// (own) or still in other (crossTo) at m.
				own += q * iv.P[other][fi][m-l]
				crossTo += q * iv.P[other][other][m-l]
			}
			iv.P[fi][fi][m] = clamp01(own)
			iv.P[fi][other][m] = clamp01(crossTo)
		}
	}
	return iv, nil
}

// RowSum returns Σ_j P[init][j](m); always 1 up to floating-point error.
func (iv *Interval) RowSum(fi, m int) float64 {
	total := 0.0
	for st := 0; st < avail.NumStates; st++ {
		total += iv.P[fi][st][m]
	}
	return total
}
