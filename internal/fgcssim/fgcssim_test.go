package fgcssim

import (
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/experiments"
	"fgcs/internal/trace"
)

func testbed(t *testing.T) *trace.Dataset {
	t.Helper()
	ds, err := experiments.HeterogeneousTestbed(21, []float64{1.4, 1.0, 0.4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseConfig(ds *trace.Dataset) Config {
	return Config{
		Dataset:  ds,
		Cfg:      avail.DefaultConfig(),
		StartDay: 14,
		Seed:     1,
	}
}

func TestRunValidation(t *testing.T) {
	ds := testbed(t)
	if _, err := Run(Config{}, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
	cfg := baseConfig(ds)
	cfg.StartDay = 0
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("start day 0 accepted (no history)")
	}
	cfg = baseConfig(ds)
	cfg.Cfg = avail.Config{Th1: 90, Th2: 10, SuspendLimit: time.Minute}
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("invalid model config accepted")
	}
	cfg = baseConfig(ds)
	bad := []JobSpec{{ID: "x", Arrival: ds.Machines[0].Days[14].Date, Work: 0}}
	if _, err := Run(cfg, bad); err == nil {
		t.Fatal("zero-work job accepted")
	}
	// Mismatched day counts.
	uneven := &trace.Dataset{Machines: []*trace.Machine{ds.Machines[0], trimMachine(t, ds.Machines[1], 10)}}
	cfg = baseConfig(uneven)
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("uneven machine histories accepted")
	}
}

func trimMachine(t *testing.T, m *trace.Machine, days int) *trace.Machine {
	t.Helper()
	out := trace.NewMachine(m.ID+"-trim", m.Period)
	for _, d := range m.Days[:days] {
		if err := out.AddDay(d); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestPoissonJobs(t *testing.T) {
	ds := testbed(t)
	jobs, err := PoissonJobs(30, ds, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 30 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.Work < 10*time.Minute || j.Work > 6*time.Hour {
			t.Fatalf("job %d work = %v", i, j.Work)
		}
		if j.MemMB < 29 || j.MemMB > 193 {
			t.Fatalf("job %d mem = %v", i, j.MemMB)
		}
		if i > 0 && j.Arrival.Before(jobs[i-1].Arrival) {
			t.Fatal("jobs not sorted by arrival")
		}
		h := j.Arrival.Hour()
		if h < 8 || h >= 17 {
			t.Fatalf("job %d arrives at %v, outside working hours", i, j.Arrival)
		}
	}
	if _, err := PoissonJobs(1, nil, 0, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := PoissonJobs(1, ds, 99, 1); err == nil {
		t.Fatal("bad start day accepted")
	}
}

func TestRunCompletesJobs(t *testing.T) {
	ds := testbed(t)
	jobs, err := PoissonJobs(12, ds, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ds)
	cfg.Policy = PolicyTRAware
	res, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedJobs == 0 {
		t.Fatal("no jobs completed")
	}
	for _, jr := range res.Jobs {
		if jr.Completed {
			if jr.Response < jr.Work/2 {
				t.Fatalf("job %s response %v below half its work %v", jr.ID, jr.Response, jr.Work)
			}
			if len(jr.Machines) == 0 {
				t.Fatalf("job %s completed nowhere", jr.ID)
			}
		}
	}
	if res.MeanResponse <= 0 || res.P95Response < res.MeanResponse/2 {
		t.Fatalf("response stats = %v / %v", res.MeanResponse, res.P95Response)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	ds := testbed(t)
	jobs, _ := PoissonJobs(8, ds, 14, 3)
	cfg := baseConfig(ds)
	cfg.Policy = PolicyRandom
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse || a.TotalKills != b.TotalKills {
		t.Fatal("same seed produced different results")
	}
}

func TestPolicyNames(t *testing.T) {
	if PolicyTRAware.String() != "tr-aware" || PolicyRandom.String() != "random" ||
		PolicyRoundRobin.String() != "round-robin" || Policy(7).String() != "Policy(7)" {
		t.Fatal("policy names wrong")
	}
}

// TestResponseTimeBenefit is the paper's motivating claim: proactive
// prediction-driven management improves job response time over oblivious
// placement.
func TestResponseTimeBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation is slow")
	}
	ds, err := experiments.HeterogeneousTestbed(35, experiments.DefaultTestbedScales, 8)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := PoissonJobs(40, ds, 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate over seeds: per-run kill counts are small-sample noisy;
	// the stable signal is response time and redone compute.
	agg := map[Policy]*Result{PolicyTRAware: {}, PolicyRandom: {}}
	for seed := uint64(2); seed < 5; seed++ {
		for _, pol := range []Policy{PolicyTRAware, PolicyRandom} {
			cfg := Config{Dataset: ds, Cfg: avail.DefaultConfig(), StartDay: 21, Policy: pol, Seed: seed}
			res, err := Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if res.CompletedJobs < len(jobs)/2 {
				t.Fatalf("%v completed only %d/%d jobs", pol, res.CompletedJobs, len(jobs))
			}
			a := agg[pol]
			a.MeanResponse += res.MeanResponse
			a.TotalKills += res.TotalKills
			a.TotalLost += res.TotalLost
		}
	}
	tr, rnd := agg[PolicyTRAware], agg[PolicyRandom]
	t.Logf("tr-aware: mean %v kills %d lost %v; random: mean %v kills %d lost %v",
		tr.MeanResponse/3, tr.TotalKills, tr.TotalLost, rnd.MeanResponse/3, rnd.TotalKills, rnd.TotalLost)
	if tr.MeanResponse > rnd.MeanResponse*105/100 {
		t.Errorf("tr-aware mean response %v not competitive with random %v", tr.MeanResponse/3, rnd.MeanResponse/3)
	}
	if tr.TotalLost > rnd.TotalLost*130/100 {
		t.Errorf("tr-aware redone compute %v far above random %v", tr.TotalLost, rnd.TotalLost)
	}
}
