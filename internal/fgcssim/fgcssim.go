// Package fgcssim simulates a complete FGCS deployment end to end: a
// testbed of host machines replaying their recorded days, a stream of guest
// jobs, and a placement policy that decides where each job runs. Guest jobs
// progress, get reniced, suspended and killed through the real iShare
// gateway state machine; killed jobs are re-placed (resuming from
// checkpointed progress) until they complete.
//
// The simulator measures what the paper declares the primary performance
// metric for compute-bound guest jobs — response time (Section 1) — and so
// quantifies the end-to-end benefit of availability prediction: proactive,
// TR-aware placement against prediction-oblivious baselines on identical job
// streams and identical machine futures.
package fgcssim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/ishare"
	"fgcs/internal/predict"
	"fgcs/internal/rng"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// Policy selects how jobs are placed on machines.
type Policy int

const (
	// PolicyTRAware ranks the free machines by predicted temporal
	// reliability over the job's remaining work and picks the best.
	PolicyTRAware Policy = iota
	// PolicyRandom picks a free machine uniformly.
	PolicyRandom
	// PolicyRoundRobin cycles through the machines.
	PolicyRoundRobin
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyTRAware:
		return "tr-aware"
	case PolicyRandom:
		return "random"
	case PolicyRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// JobSpec is one guest job of the stream.
type JobSpec struct {
	ID      string
	Arrival time.Time
	Work    time.Duration
	MemMB   float64
}

// JobResult is the outcome of one job.
type JobResult struct {
	JobSpec
	Completed bool
	// Response is completion time minus arrival time (queueing included).
	Response time.Duration
	// Kills counts guest terminations the job survived via re-placement.
	Kills int
	// LostCompute is the work redone because it postdated the last
	// checkpoint.
	LostCompute time.Duration
	// Machines lists every machine the job ran on.
	Machines []string
}

// Config parameterizes a simulation run.
type Config struct {
	// Dataset is the testbed trace; all machines must cover the same
	// dates.
	Dataset *trace.Dataset
	// Cfg is the availability model configuration.
	Cfg avail.Config
	// Policy selects the placement strategy.
	Policy Policy
	// StartDay is the first replayed day index (earlier days are the
	// predictor's history).
	StartDay int
	// HistoryDays bounds the predictor's day pool (0 = all).
	HistoryDays int
	// CheckpointInterval is how much new progress a job accumulates
	// before its next checkpoint is taken; progress past the last
	// checkpoint is lost on a kill. Default: 30 minutes.
	CheckpointInterval time.Duration
	// Seed drives the random policy.
	Seed uint64
}

// Result aggregates a run.
type Result struct {
	Policy Policy
	Jobs   []JobResult
	// MeanResponse and P95Response are over completed jobs.
	MeanResponse, P95Response time.Duration
	// CompletedJobs counts jobs that finished within the simulated span.
	CompletedJobs int
	// TotalKills counts guest terminations across all jobs.
	TotalKills int
	// TotalLost is the compute redone across all jobs.
	TotalLost time.Duration
}

// machineState is the simulator's view of one host node.
type machineState struct {
	machine *trace.Machine
	gateway *ishare.Gateway
	sm      *ishare.StateManager
	// jobIdx is the index of the active job in the run's job table, -1
	// when the machine is free.
	jobIdx int
	jobID  string
}

type activeJob struct {
	spec       JobSpec
	checkpoint float64 // seconds of persisted progress
	lost       float64 // compute seconds lost to kills
	kills      int
	machines   []string
	placed     bool
	done       bool
	doneAt     time.Time
}

// Run simulates the job stream over the dataset under the policy.
func Run(cfg Config, jobs []JobSpec) (Result, error) {
	if cfg.Dataset == nil || len(cfg.Dataset.Machines) == 0 {
		return Result{}, fmt.Errorf("fgcssim: empty dataset")
	}
	days := len(cfg.Dataset.Machines[0].Days)
	for _, m := range cfg.Dataset.Machines {
		if len(m.Days) != days {
			return Result{}, fmt.Errorf("fgcssim: machine %s has %d days, want %d", m.ID, len(m.Days), days)
		}
	}
	if cfg.StartDay < 1 || cfg.StartDay >= days {
		return Result{}, fmt.Errorf("fgcssim: start day %d outside (0, %d)", cfg.StartDay, days)
	}
	if err := cfg.Cfg.Validate(); err != nil {
		return Result{}, err
	}
	ckptIv := cfg.CheckpointInterval.Seconds()
	if ckptIv <= 0 {
		ckptIv = 30 * 60
	}
	period := cfg.Dataset.Machines[0].Period
	clock := simclock.NewVirtual(cfg.Dataset.Machines[0].Days[cfg.StartDay].Date)
	r := rng.New(cfg.Seed)
	predictor := predict.SMP{Cfg: cfg.Cfg, HistoryDays: cfg.HistoryDays}

	// Wire a gateway per machine.
	var machines []*machineState
	for _, m := range cfg.Dataset.Machines {
		sm, err := ishare.NewStateManager(m.ID, period, cfg.Cfg, clock, nil, cfg.HistoryDays)
		if err != nil {
			return Result{}, err
		}
		gw, err := ishare.NewGateway(m.ID, cfg.Cfg, period, clock, sm)
		if err != nil {
			return Result{}, err
		}
		machines = append(machines, &machineState{machine: m, gateway: gw, sm: sm, jobIdx: -1})
	}

	// Job table sorted by arrival.
	table := make([]*activeJob, len(jobs))
	for i, j := range jobs {
		if j.Work <= 0 {
			return Result{}, fmt.Errorf("fgcssim: job %s has non-positive work", j.ID)
		}
		table[i] = &activeJob{spec: j}
	}
	sort.SliceStable(table, func(a, b int) bool { return table[a].spec.Arrival.Before(table[b].spec.Arrival) })

	rrNext := 0
	place := func(now time.Time, ji int) bool {
		job := table[ji]
		// Free machines in a recoverable state only — the scheduler's
		// QueryTR reports the current state, and no client submits to a
		// machine that is down or overloaded right now (its TR is 0).
		var free []int
		for mi, ms := range machines {
			if ms.jobIdx < 0 && ms.sm.CurrentState().Recoverable() {
				free = append(free, mi)
			}
		}
		if len(free) == 0 {
			return false
		}
		pick := -1
		switch cfg.Policy {
		case PolicyRandom:
			pick = free[r.Intn(len(free))]
		case PolicyRoundRobin:
			pick = free[rrNext%len(free)]
			rrNext++
		default: // PolicyTRAware
			bestTR := -1.0
			for _, mi := range free {
				tr := predictTR(predictor, machines[mi].machine, now,
					time.Duration(job.spec.Work.Seconds()-job.checkpoint)*time.Second)
				if tr > bestTR {
					bestTR, pick = tr, mi
				}
			}
		}
		if pick < 0 {
			return false
		}
		resp, err := machines[pick].gateway.Submit(context.Background(), ishare.SubmitReq{
			Name:                   job.spec.ID,
			WorkSeconds:            job.spec.Work.Seconds(),
			MemMB:                  job.spec.MemMB,
			InitialProgressSeconds: job.checkpoint,
		})
		if err != nil {
			return false
		}
		machines[pick].jobIdx = ji
		machines[pick].jobID = resp.JobID
		job.placed = true
		job.machines = append(job.machines, machines[pick].machine.ID)
		return true
	}

	nextArrival := 0
	var queue []int
	for dayIdx := cfg.StartDay; dayIdx < days; dayIdx++ {
		dayLen := cfg.Dataset.Machines[0].Days[dayIdx].Len()
		for i := 0; i < dayLen; i++ {
			now := cfg.Dataset.Machines[0].Days[dayIdx].Date.Add(time.Duration(i) * period)
			clock.AdvanceTo(now)
			// Feed this tick's samples into every gateway.
			for _, ms := range machines {
				s := ms.machine.Days[dayIdx].Samples[i]
				ms.gateway.Record(now, s)
			}
			// Harvest completions/kills.
			for _, ms := range machines {
				if ms.jobIdx < 0 {
					continue
				}
				st, err := ms.gateway.JobStatus(context.Background(), ishare.JobStatusReq{JobID: ms.jobID})
				if err != nil {
					continue
				}
				job := table[ms.jobIdx]
				switch st.State {
				case "completed":
					job.done = true
					job.doneAt = now
					ms.jobIdx = -1
				case "killed":
					job.kills++
					job.lost += st.ProgressSeconds - job.checkpoint
					ms.jobIdx = -1
					queue = append(queue, indexOf(table, job))
				default:
					if st.ProgressSeconds-job.checkpoint >= ckptIv {
						job.checkpoint = st.ProgressSeconds
					}
				}
			}
			// Admit arrivals.
			for nextArrival < len(table) && !table[nextArrival].spec.Arrival.After(now) {
				queue = append(queue, nextArrival)
				nextArrival++
			}
			// Place queued jobs, FIFO.
			for len(queue) > 0 {
				if !place(now, queue[0]) {
					break
				}
				queue = queue[1:]
			}
		}
	}

	// Collect results.
	res := Result{Policy: cfg.Policy}
	var responses []float64
	for _, job := range table {
		jr := JobResult{JobSpec: job.spec, Completed: job.done, Kills: job.kills,
			LostCompute: time.Duration(job.lost * float64(time.Second)), Machines: job.machines}
		if job.done {
			jr.Response = job.doneAt.Sub(job.spec.Arrival)
			responses = append(responses, jr.Response.Seconds())
			res.CompletedJobs++
		}
		res.TotalKills += job.kills
		res.TotalLost += time.Duration(job.lost * float64(time.Second))
		res.Jobs = append(res.Jobs, jr)
	}
	if len(responses) > 0 {
		sum := 0.0
		for _, v := range responses {
			sum += v
		}
		res.MeanResponse = time.Duration(sum / float64(len(responses)) * float64(time.Second))
		sort.Float64s(responses)
		idx := int(0.95 * float64(len(responses)-1))
		res.P95Response = time.Duration(responses[idx] * float64(time.Second))
	}
	return res, nil
}

func indexOf(table []*activeJob, job *activeJob) int {
	for i, j := range table {
		if j == job {
			return i
		}
	}
	return -1
}

// predictTR computes the machine's TR for a window starting now, from its
// history days strictly before today.
func predictTR(p predict.SMP, m *trace.Machine, now time.Time, length time.Duration) float64 {
	midnight := time.Date(now.Year(), now.Month(), now.Day(), 0, 0, 0, 0, time.UTC)
	start := now.Sub(midnight).Truncate(m.Period)
	if length < m.Period {
		length = m.Period
	}
	if start+length > 24*time.Hour {
		length = 24*time.Hour - start
	}
	if length < m.Period {
		return 0
	}
	var hist []*trace.Day
	for _, d := range m.Days {
		if d.Date.Before(midnight) && d.Type() == trace.TypeOfDate(midnight) {
			hist = append(hist, d)
		}
	}
	if len(hist) == 0 {
		return 1
	}
	pred, err := p.Predict(hist, predict.Window{Start: start, Length: length})
	if err != nil {
		return 0
	}
	return pred.TR
}

// PoissonJobs draws a job stream: arrivals uniform over the working hours of
// the simulated span, lognormal work (median ~1.5 h), working sets in the
// SPEC range of the paper.
func PoissonJobs(n int, ds *trace.Dataset, startDay int, seed uint64) ([]JobSpec, error) {
	if ds == nil || len(ds.Machines) == 0 {
		return nil, fmt.Errorf("fgcssim: empty dataset")
	}
	days := len(ds.Machines[0].Days)
	if startDay < 0 || startDay >= days {
		return nil, fmt.Errorf("fgcssim: start day out of range")
	}
	r := rng.New(seed)
	jobs := make([]JobSpec, n)
	for i := range jobs {
		day := startDay + r.Intn(days-startDay)
		// Arrive during working hours so jobs do not trivially run on
		// empty overnight machines.
		offset := time.Duration(r.Uniform(8, 17) * float64(time.Hour))
		work := time.Duration(r.LogNormal(8.6, 0.5) * float64(time.Second)) // median ~90 min
		if work > 6*time.Hour {
			work = 6 * time.Hour
		}
		if work < 10*time.Minute {
			work = 10 * time.Minute
		}
		jobs[i] = JobSpec{
			ID:      fmt.Sprintf("job-%03d", i),
			Arrival: ds.Machines[0].Days[day].Date.Add(offset),
			Work:    work,
			MemMB:   r.Uniform(29, 193),
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival.Before(jobs[b].Arrival) })
	return jobs, nil
}
