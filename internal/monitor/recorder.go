package monitor

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"fgcs/internal/trace"
)

// Recorder is a Sink that accumulates samples into per-day trace structures
// — the history logs the state manager stores and the SMP predictor reads.
// Gaps between consecutive samples longer than the revocation threshold are
// back-filled as machine-down samples, which is how URR periods become
// visible in the logs (Section 5.2).
type Recorder struct {
	mu sync.Mutex
	// period is the expected sampling period.
	period time.Duration
	// gapThreshold marks how large a sample gap is recorded as downtime.
	gapThreshold time.Duration
	machine      *trace.Machine
	// lastSample is the timestamp of the most recent recorded sample.
	lastSample time.Time
	// sealedBefore marks days handed out by DaysBefore as immutable: a
	// late sample targeting a day before this midnight is dropped rather
	// than mutated under a reader (zero = nothing sealed).
	sealedBefore time.Time
	// logger, when set, reports dropped samples (see SetLogger).
	logger *slog.Logger
}

// NewRecorder creates a recorder for the given machine ID and sampling
// period. gapThreshold defaults to three periods when zero.
func NewRecorder(machineID string, period, gapThreshold time.Duration) *Recorder {
	if gapThreshold <= 0 {
		gapThreshold = 3 * period
	}
	return &Recorder{
		period:       period,
		gapThreshold: gapThreshold,
		machine:      trace.NewMachine(machineID, period),
	}
}

// SetLogger makes the recorder report dropped samples — otherwise silently
// discarded clock-skew artifacts — as structured warnings. Call before the
// monitor starts; the recorder itself adds the machine and component attrs.
func (r *Recorder) SetLogger(l *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l != nil {
		l = l.With(slog.String("component", "recorder"), slog.String("machine", r.machine.ID))
	}
	r.logger = l
}

// Record implements Sink.
func (r *Recorder) Record(t time.Time, s trace.Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.lastSample.IsZero() && t.Sub(r.lastSample) > r.gapThreshold {
		// Back-fill the revocation gap with down samples.
		for ts := r.lastSample.Add(r.period); ts.Before(t); ts = ts.Add(r.period) {
			r.put(ts, trace.Sample{Up: false})
		}
	}
	r.put(t, s)
	r.lastSample = t
}

// put writes one sample into its day slot, allocating days as needed.
func (r *Recorder) put(t time.Time, s trace.Sample) {
	t = t.UTC()
	date := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	if !r.sealedBefore.IsZero() && date.Before(r.sealedBefore) {
		// The day was handed out as completed history (DaysBefore); a
		// prediction may be fitting over it right now. Completed days are
		// immutable — drop the straggler instead of mutating shared state.
		if r.logger != nil {
			r.logger.Warn("sample into sealed day dropped", slog.Time("sample_time", t))
		}
		return
	}
	var day *trace.Day
	if n := len(r.machine.Days); n > 0 && r.machine.Days[n-1].Date.Equal(date) {
		day = r.machine.Days[n-1]
	} else {
		day = trace.NewDay(date, r.period)
		// Days created mid-stream start unknown; mark samples before
		// the first observation of the day as down only when we know a
		// gap is in progress — otherwise leave them Up-with-zero-load.
		if err := r.machine.AddDay(day); err != nil {
			// Out-of-order timestamps (clock skew): drop the sample
			// rather than corrupt the log.
			if r.logger != nil {
				r.logger.Warn("out-of-order sample dropped",
					slog.Time("sample_time", t), slog.String("err", err.Error()))
			}
			return
		}
	}
	idx := day.IndexAt(t.Sub(date))
	if idx >= day.Len() {
		return
	}
	day.Samples[idx] = s
}

// DayWindow returns a copy of the recorded samples of the day containing
// date, restricted to clock offsets [start, start+length). It returns nil
// when that day has no samples yet. Unlike Snapshot it copies only the
// requested window, so per-query callers (the online baseline predictors)
// do not clone the whole history log.
func (r *Recorder) DayWindow(date time.Time, start, length time.Duration) []trace.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	date = date.UTC()
	midnight := time.Date(date.Year(), date.Month(), date.Day(), 0, 0, 0, 0, time.UTC)
	for i := len(r.machine.Days) - 1; i >= 0; i-- {
		d := r.machine.Days[i]
		if d.Date.Equal(midnight) {
			w := d.Window(start, length)
			if len(w) == 0 {
				return nil
			}
			return append([]trace.Sample(nil), w...)
		}
		if d.Date.Before(midnight) {
			return nil
		}
	}
	return nil
}

// Export returns a deep copy of the accumulated log together with the
// timestamp of the most recent recorded sample — the two pieces of state a
// durable snapshot needs to rebuild the recorder exactly.
func (r *Recorder) Export() (*trace.Machine, time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.machine.Clone(), r.lastSample
}

// Restore replaces the recorder's state with a log recovered from durable
// storage. The machine's period must match the recorder's; the recorder
// takes ownership of m. Call before samples start flowing.
func (r *Recorder) Restore(m *trace.Machine, last time.Time) error {
	if m == nil {
		return fmt.Errorf("monitor: restore needs a machine log")
	}
	if m.Period != r.period {
		return fmt.Errorf("monitor: restored log period %v != %v", m.Period, r.period)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machine = m
	r.lastSample = last
	// Seals are per-process reader state, not recovered state: WAL-tail
	// replay must be free to write into any recovered day.
	r.sealedBefore = time.Time{}
	return nil
}

// DaysBefore returns the recorded days dated strictly before the given UTC
// midnight, without copying: the returned *trace.Day values are the live
// ones, sealed by this call — any straggler sample targeting them is
// dropped (see put). Day pointers are stable across calls, which is what
// lets the prediction engine recognize an unchanged history and reuse its
// per-day content hashes; Snapshot's deep clone made every day rollover a
// full-history copy per machine, a measurable stall at fleet scale.
func (r *Recorder) DaysBefore(midnight time.Time) []*trace.Day {
	midnight = midnight.UTC()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealedBefore.Before(midnight) {
		r.sealedBefore = midnight
	}
	n := 0
	for _, d := range r.machine.Days {
		if !d.Date.Before(midnight) {
			break
		}
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]*trace.Day, n)
	copy(out, r.machine.Days[:n])
	return out
}

// Snapshot returns a deep copy of the accumulated machine log.
func (r *Recorder) Snapshot() *trace.Machine {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.machine.Clone()
}

// Days returns the number of days with at least one sample.
func (r *Recorder) Days() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.machine.Days)
}
