package monitor

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"fgcs/internal/trace"
)

// ReplaySource replays a recorded (or generated) trace day sample-by-sample:
// the load source used by simulations and the examples.
type ReplaySource struct {
	mu      sync.Mutex
	days    []*trace.Day
	day, ix int
}

// NewReplaySource replays the given days in order, looping at the end.
func NewReplaySource(days []*trace.Day) (*ReplaySource, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("monitor: no days to replay")
	}
	for _, d := range days {
		if d.Len() == 0 {
			return nil, fmt.Errorf("monitor: empty day in replay source")
		}
	}
	return &ReplaySource{days: days}, nil
}

// Read implements LoadSource. Machine-down samples surface as read errors:
// a dead machine's monitor cannot answer, which is exactly how URR manifests
// to the sampling loop.
func (r *ReplaySource) Read() (float64, float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.days[r.day]
	s := d.Samples[r.ix]
	r.ix++
	if r.ix >= d.Len() {
		r.ix = 0
		r.day = (r.day + 1) % len(r.days)
	}
	if !s.Up {
		return 0, 0, fmt.Errorf("monitor: machine down")
	}
	return s.CPU, s.FreeMemMB, nil
}

// StaticSource returns fixed readings; useful for tests and overhead
// benchmarks.
type StaticSource struct {
	CPU, FreeMemMB float64
	Err            error
}

// Read implements LoadSource.
func (s StaticSource) Read() (float64, float64, error) {
	return s.CPU, s.FreeMemMB, s.Err
}

// ProcSource reads real host load from the Linux /proc filesystem — the
// production analogue of the paper's use of top. CPU usage is derived from
// /proc/stat deltas between consecutive reads; free memory comes from
// MemAvailable in /proc/meminfo.
type ProcSource struct {
	// StatPath and MeminfoPath default to the real /proc files; tests
	// point them at fixtures.
	StatPath    string
	MeminfoPath string

	mu                  sync.Mutex
	lastBusy, lastTotal uint64
	primed              bool
}

// NewProcSource returns a source reading the real /proc files.
func NewProcSource() *ProcSource {
	return &ProcSource{StatPath: "/proc/stat", MeminfoPath: "/proc/meminfo"}
}

// Read implements LoadSource.
func (p *ProcSource) Read() (float64, float64, error) {
	busy, total, err := p.readStat()
	if err != nil {
		return 0, 0, err
	}
	freeMB, err := p.readMeminfo()
	if err != nil {
		return 0, 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var cpu float64
	if p.primed && total > p.lastTotal {
		cpu = 100 * float64(busy-p.lastBusy) / float64(total-p.lastTotal)
	}
	p.lastBusy, p.lastTotal, p.primed = busy, total, true
	if cpu < 0 {
		cpu = 0
	}
	if cpu > 100 {
		cpu = 100
	}
	return cpu, freeMB, nil
}

func (p *ProcSource) readStat() (busy, total uint64, err error) {
	b, err := os.ReadFile(p.StatPath)
	if err != nil {
		return 0, 0, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)[1:]
		if len(fields) < 4 {
			return 0, 0, fmt.Errorf("monitor: malformed cpu line in %s", p.StatPath)
		}
		vals := make([]uint64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("monitor: bad cpu field %q: %w", f, err)
			}
			vals[i] = v
		}
		for i, v := range vals {
			total += v
			// Fields 3 (idle) and 4 (iowait) are not busy time.
			if i != 3 && i != 4 {
				busy += v
			}
		}
		return busy, total, nil
	}
	return 0, 0, fmt.Errorf("monitor: no cpu line in %s", p.StatPath)
}

func (p *ProcSource) readMeminfo() (float64, error) {
	b, err := os.ReadFile(p.MeminfoPath)
	if err != nil {
		return 0, err
	}
	var availableKB, freeKB float64
	var haveAvailable, haveFree bool
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "MemAvailable:":
			availableKB, haveAvailable = v, true
		case "MemFree:":
			freeKB, haveFree = v, true
		}
	}
	switch {
	case haveAvailable:
		return availableKB / 1024, nil
	case haveFree:
		return freeKB / 1024, nil
	}
	return 0, fmt.Errorf("monitor: no memory fields in %s", p.MeminfoPath)
}
