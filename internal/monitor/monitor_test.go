package monitor

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

var epoch = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

func TestNewValidation(t *testing.T) {
	src := StaticSource{CPU: 10, FreeMemMB: 200}
	sink := SinkFunc(func(time.Time, trace.Sample) {})
	if _, err := New(Config{Period: 0}, src, sink); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := New(Config{Period: time.Second}, nil, sink); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(Config{Period: time.Second}, src); err == nil {
		t.Fatal("no sinks accepted")
	}
}

func TestMonitorSamplesPeriodically(t *testing.T) {
	clock := simclock.NewVirtual(epoch)
	var mu sync.Mutex
	var got []trace.Sample
	var times []time.Time
	sink := SinkFunc(func(ts time.Time, s trace.Sample) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, s)
		times = append(times, ts)
	})
	recorded := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}
	m, err := New(Config{Period: 6 * time.Second, Clock: clock}, StaticSource{CPU: 42, FreeMemMB: 300}, sink)
	if err != nil {
		t.Fatal(err)
	}
	go m.Run()
	defer m.Stop()
	// Drive 10 ticks deterministically.
	for i := 0; i < 10; i++ {
		waitForTimer(t, clock)
		clock.Advance(6 * time.Second)
		deadline := time.Now().Add(2 * time.Second)
		for recorded() < i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("sink stuck at %d samples waiting for %d", recorded(), i+1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("sink saw %d samples, want 10", len(got))
	}
	for i, s := range got {
		if s.CPU != 42 || s.FreeMemMB != 300 || !s.Up {
			t.Fatalf("sample %d = %+v", i, s)
		}
	}
	for i := 1; i < len(times); i++ {
		if d := times[i].Sub(times[i-1]); d != 6*time.Second {
			t.Fatalf("inter-sample gap %v", d)
		}
	}
}

func waitForTimer(t *testing.T, clock *simclock.Virtual) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for clock.PendingTimers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("monitor never armed its timer")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestMonitorCountsSourceErrors(t *testing.T) {
	m, err := New(Config{Period: time.Second},
		StaticSource{Err: errors.New("boom")},
		SinkFunc(func(time.Time, trace.Sample) { t.Fatal("sink called on error") }))
	if err != nil {
		t.Fatal(err)
	}
	m.Tick(epoch)
	if m.Errors() != 1 || m.Samples() != 0 {
		t.Fatalf("errors=%d samples=%d", m.Errors(), m.Samples())
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t_monitor")
	want := epoch.Add(12345 * time.Second)
	if err := WriteHeartbeat(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("heartbeat = %v, want %v", got, want)
	}
}

func TestReadHeartbeatErrors(t *testing.T) {
	if _, err := ReadHeartbeat(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeartbeat(path); err == nil {
		t.Fatal("corrupt heartbeat accepted")
	}
}

func TestDetectRevocation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t_monitor")
	last := epoch
	if err := WriteHeartbeat(path, last); err != nil {
		t.Fatal(err)
	}
	// Fresh heartbeat: no gap.
	if _, _, err := DetectRevocation(path, last.Add(10*time.Second), 18*time.Second); !errors.Is(err, ErrNoGap) {
		t.Fatalf("err = %v, want ErrNoGap", err)
	}
	// Stale heartbeat: the machine was down from t_monitor until now.
	now := last.Add(10 * time.Minute)
	from, to, err := DetectRevocation(path, now, 18*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !from.Equal(last) || !to.Equal(now) {
		t.Fatalf("gap = [%v, %v)", from, to)
	}
}

func TestMonitorWritesHeartbeat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t_monitor")
	m, err := New(Config{Period: time.Second, HeartbeatPath: path},
		StaticSource{CPU: 1, FreeMemMB: 1},
		SinkFunc(func(time.Time, trace.Sample) {}))
	if err != nil {
		t.Fatal(err)
	}
	now := epoch.Add(time.Hour)
	m.Tick(now)
	got, err := ReadHeartbeat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(now) {
		t.Fatalf("heartbeat = %v, want %v", got, now)
	}
}

func TestRecorderBuildsDays(t *testing.T) {
	r := NewRecorder("lab-01", 6*time.Second, 0)
	for i := 0; i < 100; i++ {
		r.Record(epoch.Add(time.Duration(i)*6*time.Second), trace.Sample{CPU: float64(i), FreeMemMB: 100, Up: true})
	}
	m := r.Snapshot()
	if len(m.Days) != 1 {
		t.Fatalf("days = %d", len(m.Days))
	}
	if m.Days[0].Samples[50].CPU != 50 {
		t.Fatalf("sample 50 = %+v", m.Days[0].Samples[50])
	}
}

func TestRecorderSpansMidnight(t *testing.T) {
	r := NewRecorder("lab-01", 6*time.Second, 0)
	start := epoch.Add(24*time.Hour - 30*time.Second)
	for i := 0; i < 20; i++ {
		r.Record(start.Add(time.Duration(i)*6*time.Second), trace.Sample{CPU: 5, FreeMemMB: 100, Up: true})
	}
	m := r.Snapshot()
	if len(m.Days) != 2 {
		t.Fatalf("days = %d, want 2 (midnight crossing)", len(m.Days))
	}
}

func TestRecorderBackfillsGapsAsDowntime(t *testing.T) {
	r := NewRecorder("lab-01", 6*time.Second, 0)
	r.Record(epoch, trace.Sample{CPU: 5, FreeMemMB: 100, Up: true})
	// 5-minute gap: the machine was revoked.
	r.Record(epoch.Add(5*time.Minute), trace.Sample{CPU: 5, FreeMemMB: 100, Up: true})
	m := r.Snapshot()
	day := m.Days[0]
	down := 0
	for _, s := range day.Samples[:day.IndexAt(6*time.Minute)] {
		if !s.Up {
			down++
		}
	}
	// ~49 periods of 6 s inside the 5-minute gap.
	if down < 45 || down > 52 {
		t.Fatalf("back-filled down samples = %d", down)
	}
}

func TestRecorderIgnoresOutOfOrder(t *testing.T) {
	r := NewRecorder("lab-01", 6*time.Second, 0)
	r.Record(epoch.Add(24*time.Hour), trace.Sample{Up: true})
	// Earlier day arrives afterwards: must be dropped, not corrupt the log.
	r.Record(epoch, trace.Sample{Up: true})
	if r.Days() != 1 {
		t.Fatalf("days = %d", r.Days())
	}
}

func TestReplaySource(t *testing.T) {
	d := trace.NewDay(epoch, time.Minute)
	for i := range d.Samples {
		d.Samples[i] = trace.Sample{CPU: float64(i % 100), FreeMemMB: 50, Up: i%7 != 3}
	}
	src, err := NewReplaySource([]*trace.Day{d})
	if err != nil {
		t.Fatal(err)
	}
	okReads, errReads := 0, 0
	for i := 0; i < d.Len()*2; i++ { // loops around
		_, _, err := src.Read()
		if err != nil {
			errReads++
		} else {
			okReads++
		}
	}
	if errReads == 0 || okReads == 0 {
		t.Fatalf("ok=%d err=%d: down samples must read as errors", okReads, errReads)
	}
	if _, err := NewReplaySource(nil); err == nil {
		t.Fatal("empty replay accepted")
	}
	if _, err := NewReplaySource([]*trace.Day{{Date: epoch, Period: time.Minute}}); err == nil {
		t.Fatal("empty day accepted")
	}
}

func TestProcSourceFixtures(t *testing.T) {
	dir := t.TempDir()
	stat := filepath.Join(dir, "stat")
	meminfo := filepath.Join(dir, "meminfo")
	write := func(path, content string) {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(stat, "cpu  100 0 100 800 0 0 0 0 0 0\ncpu0 100 0 100 800 0 0 0 0 0 0\n")
	write(meminfo, "MemTotal: 1024000 kB\nMemFree: 256000 kB\nMemAvailable: 512000 kB\n")
	src := &ProcSource{StatPath: stat, MeminfoPath: meminfo}
	cpu, free, err := src.Read()
	if err != nil {
		t.Fatal(err)
	}
	if cpu != 0 {
		t.Fatalf("first read cpu = %v, want 0 (unprimed)", cpu)
	}
	if free != 500 {
		t.Fatalf("free = %v MB, want 500 (MemAvailable)", free)
	}
	// 100 more busy jiffies out of 200 total: 50% busy.
	write(stat, "cpu  150 0 150 900 0 0 0 0 0 0\n")
	cpu, _, err = src.Read()
	if err != nil {
		t.Fatal(err)
	}
	if cpu != 50 {
		t.Fatalf("cpu = %v, want 50", cpu)
	}
}

func TestProcSourceMemFreeFallback(t *testing.T) {
	dir := t.TempDir()
	stat := filepath.Join(dir, "stat")
	meminfo := filepath.Join(dir, "meminfo")
	os.WriteFile(stat, []byte("cpu  1 0 1 8 0 0 0 0 0 0\n"), 0o644)
	os.WriteFile(meminfo, []byte("MemFree: 102400 kB\n"), 0o644)
	src := &ProcSource{StatPath: stat, MeminfoPath: meminfo}
	_, free, err := src.Read()
	if err != nil {
		t.Fatal(err)
	}
	if free != 100 {
		t.Fatalf("free = %v, want 100 (MemFree fallback)", free)
	}
}

func TestProcSourceErrors(t *testing.T) {
	dir := t.TempDir()
	src := &ProcSource{StatPath: filepath.Join(dir, "nope"), MeminfoPath: filepath.Join(dir, "nope")}
	if _, _, err := src.Read(); err == nil {
		t.Fatal("missing files accepted")
	}
	stat := filepath.Join(dir, "stat")
	os.WriteFile(stat, []byte("no cpu line here\n"), 0o644)
	meminfo := filepath.Join(dir, "meminfo")
	os.WriteFile(meminfo, []byte("MemAvailable: 1 kB\n"), 0o644)
	src = &ProcSource{StatPath: stat, MeminfoPath: meminfo}
	if _, _, err := src.Read(); err == nil {
		t.Fatal("statfile without cpu line accepted")
	}
	os.WriteFile(stat, []byte("cpu  a b c d\n"), 0o644)
	if _, _, err := src.Read(); err == nil {
		t.Fatal("malformed cpu fields accepted")
	}
	os.WriteFile(stat, []byte("cpu  1 0 1 8 0 0 0 0 0 0\n"), 0o644)
	os.WriteFile(meminfo, []byte("nothing useful\n"), 0o644)
	if _, _, err := src.Read(); err == nil {
		t.Fatal("meminfo without memory fields accepted")
	}
}

func TestProcSourceRealSystem(t *testing.T) {
	if _, err := os.Stat("/proc/stat"); err != nil {
		t.Skip("/proc not available")
	}
	src := NewProcSource()
	if _, _, err := src.Read(); err != nil {
		t.Fatalf("real /proc read failed: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	cpu, free, err := src.Read()
	if err != nil {
		t.Fatal(err)
	}
	if cpu < 0 || cpu > 100 || free <= 0 {
		t.Fatalf("implausible readings cpu=%v free=%v", cpu, free)
	}
}
