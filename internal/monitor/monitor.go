// Package monitor implements the resource monitor daemon of Section 5.2: it
// periodically samples host resource usage (total host CPU load and free
// memory) with light-weight system facilities, appends the samples to
// history logs, and maintains the t_monitor heartbeat timestamp whose gaps
// reveal resource revocation (URR) without requiring administrator access to
// system logs.
package monitor

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"fgcs/internal/obs"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// Metrics is the monitor's observability surface. Instruments are nil-safe,
// so partially wired metrics record what they can.
type Metrics struct {
	// Samples counts successful source reads; Errors failed ones.
	Samples *obs.Counter
	Errors  *obs.Counter
	// TickSeconds observes the latency of one full sampling tick: source
	// read, sink fan-out and heartbeat write.
	TickSeconds *obs.Histogram
}

// NewMetrics registers the monitor metric family on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Samples:     r.Counter("fgcs_monitor_samples_total", "Successful resource samples taken."),
		Errors:      r.Counter("fgcs_monitor_read_errors_total", "Load-source reads that failed."),
		TickSeconds: r.Histogram("fgcs_monitor_tick_seconds", "Sampling tick latency: read, sink fan-out, heartbeat.", nil),
	}
}

// LoadSource provides instantaneous host resource readings — the role played
// by top on Linux and vmstat/prstat on Unix in the paper's prototype.
type LoadSource interface {
	// Read returns the total CPU usage of all host processes (percent)
	// and the free physical memory (MB).
	Read() (cpuPercent, freeMemMB float64, err error)
}

// Sink receives each sample as it is taken. trace-building recorders and the
// iShare state manager implement this.
type Sink interface {
	Record(t time.Time, s trace.Sample)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(t time.Time, s trace.Sample)

// Record implements Sink.
func (f SinkFunc) Record(t time.Time, s trace.Sample) { f(t, s) }

// Config configures a Monitor.
type Config struct {
	// Period is the sampling period (paper: 6 s).
	Period time.Duration
	// HeartbeatPath is the file holding t_monitor. Empty disables the
	// heartbeat (useful in pure simulations).
	HeartbeatPath string
	// Clock defaults to the wall clock.
	Clock simclock.Clock
	// Metrics, when non-nil, receives sample/error counts and tick
	// latency.
	Metrics *Metrics
	// Logger, when non-nil, receives tick failures (source read and
	// heartbeat write errors) as structured records instead of the errors
	// being silently counted. Callers attach machine/component attrs.
	Logger *slog.Logger
}

// Monitor samples a LoadSource periodically.
type Monitor struct {
	cfg   Config
	src   LoadSource
	sinks []Sink

	mu      sync.Mutex
	samples int64
	errs    int64
	stopped chan struct{}
	stopo   sync.Once
}

// New creates a monitor. At least one sink is required.
func New(cfg Config, src LoadSource, sinks ...Sink) (*Monitor, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("monitor: non-positive period")
	}
	if src == nil {
		return nil, fmt.Errorf("monitor: nil load source")
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("monitor: no sinks")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	return &Monitor{cfg: cfg, src: src, sinks: sinks, stopped: make(chan struct{})}, nil
}

// Samples reports how many samples have been taken.
func (m *Monitor) Samples() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples
}

// Errors reports how many source reads failed.
func (m *Monitor) Errors() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errs
}

// Stop terminates Run after the current tick.
func (m *Monitor) Stop() { m.stopo.Do(func() { close(m.stopped) }) }

// Run samples until Stop is called. It is typically run in its own
// goroutine. Each tick reads the source, forwards the sample to every sink,
// and updates the heartbeat.
func (m *Monitor) Run() {
	for {
		select {
		case <-m.stopped:
			return
		case now := <-m.cfg.Clock.After(m.cfg.Period):
			m.Tick(now)
		}
	}
}

// Tick performs a single sampling step at the given time. Exposed so tests
// and simulations can drive the monitor deterministically.
func (m *Monitor) Tick(now time.Time) {
	mx := m.cfg.Metrics
	var tickStart time.Time
	if mx != nil {
		tickStart = time.Now()
	}
	cpu, free, err := m.src.Read()
	m.mu.Lock()
	if err != nil {
		m.errs++
		m.mu.Unlock()
		if mx != nil {
			mx.Errors.Inc()
		}
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("load source read failed",
				slog.String("component", "monitor"), slog.String("err", err.Error()))
		}
		return
	}
	m.samples++
	m.mu.Unlock()
	s := trace.Sample{CPU: cpu, FreeMemMB: free, Up: true}
	for _, sink := range m.sinks {
		sink.Record(now, s)
	}
	if m.cfg.HeartbeatPath != "" {
		// Heartbeat write failures are deliberately non-fatal: a full
		// disk must not kill monitoring — but they are worth a warning,
		// since a stale t_monitor later reads as a revocation.
		if err := WriteHeartbeat(m.cfg.HeartbeatPath, now); err != nil && m.cfg.Logger != nil {
			m.cfg.Logger.Warn("heartbeat write failed",
				slog.String("component", "monitor"),
				slog.String("path", m.cfg.HeartbeatPath), slog.String("err", err.Error()))
		}
	}
	if mx != nil {
		mx.Samples.Inc()
		mx.TickSeconds.Observe(time.Since(tickStart).Seconds())
	}
}

// ---------------------------------------------------------- heartbeat ----

// WriteHeartbeat persists t_monitor atomically.
func WriteHeartbeat(path string, t time.Time) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(t.UnixNano(), 10)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadHeartbeat loads the saved t_monitor.
func ReadHeartbeat(path string) (time.Time, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return time.Time{}, err
	}
	ns, err := strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("monitor: corrupt heartbeat: %w", err)
	}
	return time.Unix(0, ns), nil
}

// ErrNoGap is returned by DetectRevocation when the heartbeat is fresh.
var ErrNoGap = errors.New("monitor: no revocation gap")

// DetectRevocation implements the paper's URR detection: if the gap between
// now and the saved t_monitor exceeds the threshold, the monitor — and by
// implication the FGCS system — was down in between (system crash or owner
// leave). It returns the down interval [from, to).
func DetectRevocation(path string, now time.Time, threshold time.Duration) (from, to time.Time, err error) {
	last, err := ReadHeartbeat(path)
	if err != nil {
		return time.Time{}, time.Time{}, err
	}
	if now.Sub(last) <= threshold {
		return time.Time{}, time.Time{}, ErrNoGap
	}
	return last, now, nil
}
