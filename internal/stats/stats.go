// Package stats provides the statistical tooling used across the repository:
// descriptive statistics, autocovariance/autocorrelation, the Levinson–Durbin
// recursion for Yule–Walker systems, quantiles, histograms, and least-squares
// line fits (used to measure the Figure 4 cost exponent).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divides by n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs.
// It returns (0, 0, ErrEmpty) for an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Max returns the largest value in xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	_, max, err := MinMax(xs)
	if err != nil {
		return 0
	}
	return max
}

// Min returns the smallest value in xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	min, _, err := MinMax(xs)
	if err != nil {
		return 0
	}
	return min
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo], nil
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac, nil
}

// Autocovariance returns the sample autocovariance of xs at lags 0..maxLag,
// using the biased (1/n) estimator, which guarantees a positive semidefinite
// autocovariance sequence (required by Levinson–Durbin).
func Autocovariance(xs []float64, maxLag int) []float64 {
	n := len(xs)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	m := Mean(xs)
	acov := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		s := 0.0
		for t := 0; t+lag < n; t++ {
			s += (xs[t] - m) * (xs[t+lag] - m)
		}
		acov[lag] = s / float64(n)
	}
	return acov
}

// Autocorrelation returns the sample autocorrelation of xs at lags 0..maxLag.
// For a constant series every lag is reported as 0 except lag 0, which is 1.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	acov := Autocovariance(xs, maxLag)
	if len(acov) == 0 {
		return nil
	}
	ac := make([]float64, len(acov))
	ac[0] = 1
	if acov[0] == 0 {
		return ac
	}
	for i := 1; i < len(acov); i++ {
		ac[i] = acov[i] / acov[0]
	}
	return ac
}

// LevinsonDurbin solves the Yule–Walker equations R a = r for the AR(p)
// coefficients a[0..p-1] given the autocovariance sequence acov[0..p]
// (acov[0] is the variance). It returns the coefficients and the final
// innovation variance. The convention is
//
//	x[t] ≈ a[0] x[t-1] + a[1] x[t-2] + ... + a[p-1] x[t-p].
//
// It returns an error when acov is too short or the variance is zero.
func LevinsonDurbin(acov []float64, p int) (coeffs []float64, noiseVar float64, err error) {
	if p < 1 {
		return nil, 0, errors.New("stats: AR order must be >= 1")
	}
	if len(acov) < p+1 {
		return nil, 0, errors.New("stats: autocovariance sequence too short")
	}
	if acov[0] <= 0 {
		return nil, 0, errors.New("stats: zero variance")
	}
	a := make([]float64, p)
	prev := make([]float64, p)
	e := acov[0]
	for k := 0; k < p; k++ {
		acc := acov[k+1]
		for j := 0; j < k; j++ {
			acc -= a[j] * acov[k-j]
		}
		if e == 0 {
			// Degenerate (perfectly predictable) series: stop early,
			// remaining coefficients stay zero.
			break
		}
		refl := acc / e
		copy(prev, a[:k])
		a[k] = refl
		for j := 0; j < k; j++ {
			a[j] = prev[j] - refl*prev[k-1-j]
		}
		e *= 1 - refl*refl
		if e < 0 {
			e = 0
		}
	}
	return a, e, nil
}

// LinearFit fits y = slope*x + intercept by ordinary least squares.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) {
		return 0, 0, errors.New("stats: length mismatch")
	}
	if len(x) < 2 {
		return 0, 0, errors.New("stats: need at least two points")
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	slope = num / den
	intercept = my - slope*mx
	return slope, intercept, nil
}

// PowerLawExponent estimates b in y = a*x^b via a log-log least-squares fit,
// as used to verify the superlinear cost growth of Figure 4. Non-positive
// points are skipped.
func PowerLawExponent(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: length mismatch")
	}
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	slope, _, err := LinearFit(lx, ly)
	return slope, err
}

// RelativeError returns |predicted-actual| / |actual|. When actual is zero it
// returns 0 if predicted is also zero and +Inf otherwise, mirroring how the
// paper's relative-error metric degenerates when the empirical TR reaches 0.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// Summary holds the aggregate statistics reported for a set of observations,
// in the shape used by the Figure 5 error bars (average with min/max).
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Std  float64
}

// Summarize computes a Summary of xs. Infinite values are excluded from the
// mean/std but counted and reflected in Max.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if len(xs) == 0 {
		return s
	}
	finite := make([]float64, 0, len(xs))
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if !math.IsInf(x, 0) && !math.IsNaN(x) {
			finite = append(finite, x)
		}
	}
	s.Mean = Mean(finite)
	s.Std = StdDev(finite)
	return s
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi]. Values
// outside the range are clamped to the first/last bin. It returns the counts
// and the bin edges (nbins+1 values).
func Histogram(xs []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 || hi <= lo {
		return nil, nil
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}
