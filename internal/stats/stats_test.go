package stats

import (
	"math"
	"testing"
	"testing/quick"

	"fgcs/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("MinMax = %v %v %v", min, max, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v", err)
	}
	if Max([]float64{1, 9, 3}) != 9 || Min([]float64{1, 9, 3}) != 1 {
		t.Fatal("Max/Min helpers wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	med, err := Quantile(xs, 0.5)
	if err != nil || !almost(med, 2.5, 1e-12) {
		t.Fatalf("median = %v err=%v", med, err)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 4 {
		t.Fatalf("extremes = %v %v", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("empty input accepted")
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	ac := Autocorrelation([]float64{5, 5, 5, 5, 5}, 3)
	if ac[0] != 1 {
		t.Fatalf("lag-0 autocorrelation = %v", ac[0])
	}
	for lag := 1; lag < len(ac); lag++ {
		if ac[lag] != 0 {
			t.Fatalf("constant series lag %d = %v", lag, ac[lag])
		}
	}
}

func TestAutocorrelationAlternating(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	ac := Autocorrelation(xs, 2)
	if !almost(ac[1], -1, 0.02) {
		t.Fatalf("alternating lag-1 = %v, want ~-1", ac[1])
	}
	if !almost(ac[2], 1, 0.02) {
		t.Fatalf("alternating lag-2 = %v, want ~1", ac[2])
	}
}

func TestAutocovarianceClampsLag(t *testing.T) {
	acov := Autocovariance([]float64{1, 2, 3}, 10)
	if len(acov) != 3 {
		t.Fatalf("len = %d, want 3", len(acov))
	}
}

func TestLevinsonDurbinRecoversAR1(t *testing.T) {
	// Simulate x[t] = 0.7 x[t-1] + e[t].
	r := rng.New(99)
	const phi = 0.7
	xs := make([]float64, 20000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + r.Normal(0, 1)
	}
	acov := Autocovariance(xs, 1)
	coeffs, noise, err := LevinsonDurbin(acov, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(coeffs[0], phi, 0.05) {
		t.Fatalf("AR(1) coefficient = %v, want ~%v", coeffs[0], phi)
	}
	if !almost(noise, 1, 0.1) {
		t.Fatalf("innovation variance = %v, want ~1", noise)
	}
}

func TestLevinsonDurbinRecoversAR2(t *testing.T) {
	r := rng.New(7)
	a1, a2 := 0.5, 0.3
	xs := make([]float64, 40000)
	for i := 2; i < len(xs); i++ {
		xs[i] = a1*xs[i-1] + a2*xs[i-2] + r.Normal(0, 1)
	}
	acov := Autocovariance(xs, 2)
	coeffs, _, err := LevinsonDurbin(acov, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(coeffs[0], a1, 0.05) || !almost(coeffs[1], a2, 0.05) {
		t.Fatalf("AR(2) coefficients = %v, want ~[%v %v]", coeffs, a1, a2)
	}
}

func TestLevinsonDurbinErrors(t *testing.T) {
	if _, _, err := LevinsonDurbin([]float64{1, 0.5}, 0); err == nil {
		t.Fatal("order 0 accepted")
	}
	if _, _, err := LevinsonDurbin([]float64{1}, 1); err == nil {
		t.Fatal("short sequence accepted")
	}
	if _, _, err := LevinsonDurbin([]float64{0, 0}, 1); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(slope, 2, 1e-12) || !almost(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 3 x^1.85, the Figure 4 shape.
	var x, y []float64
	for _, v := range []float64{1, 2, 4, 8, 16} {
		x = append(x, v)
		y = append(y, 3*math.Pow(v, 1.85))
	}
	b, err := PowerLawExponent(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b, 1.85, 1e-9) {
		t.Fatalf("exponent = %v, want 1.85", b)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(0.8, 1.0); !almost(got, 0.2, 1e-12) {
		t.Fatalf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0); got != 0 {
		t.Fatalf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(0.1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeError(x,0) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	inf := math.Inf(1)
	s = Summarize([]float64{1, inf, 3})
	if s.Mean != 2 {
		t.Fatalf("mean with inf = %v, want 2 (inf excluded)", s.Mean)
	}
	if !math.IsInf(s.Max, 1) {
		t.Fatalf("max should reflect inf, got %v", s.Max)
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0.5, 1.5, 2.5, -1, 100}, 0, 3, 3)
	if len(counts) != 3 || len(edges) != 4 {
		t.Fatalf("shape = %d %d", len(counts), len(edges))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("counts = %v (out-of-range values must clamp)", counts)
	}
	if c, e := Histogram(nil, 3, 0, 3); c != nil || e != nil {
		t.Fatal("invalid range accepted")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Uniform(-100, 100)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v, err := Quantile(xs, q)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevinsonDurbinStationaryProperty(t *testing.T) {
	// For any (reasonable) series, the innovation variance must be
	// non-negative and no larger than the series variance.
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
		}
		acov := Autocovariance(xs, 8)
		if acov[0] == 0 {
			return true
		}
		_, noise, err := LevinsonDurbin(acov, 8)
		if err != nil {
			return false
		}
		return noise >= 0 && noise <= acov[0]*(1+1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
