package fleetsim

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"fgcs/internal/obs"
)

// Report is the output of one fleet run, split along the determinism
// boundary. Sim holds quantities that are pure functions of the Config —
// two runs with the same config produce byte-identical Sim sections, which
// is what the determinism smoke test and the CLI's -verify mode check.
// Perf holds measured quantities (wall times, throughput, memory) that vary
// run to run and feed the benchgate thresholds.
type Report struct {
	Sim  SimStats  `json:"sim"`
	Perf PerfStats `json:"perf"`
}

// SimStats is the deterministic section of the report.
type SimStats struct {
	// Config echo, so a report is self-describing.
	Machines      int     `json:"machines"`
	Gateways      int     `json:"gateways"`
	Replicas      int     `json:"replicas"`
	Vnodes        int     `json:"vnodes"`
	Profiles      int     `json:"profiles"`
	HistoryDays   int     `json:"history_days"`
	PeriodSeconds float64 `json:"period_seconds"`
	Ticks         int     `json:"ticks"`
	Workers       int     `json:"workers"`
	Seed          uint64  `json:"seed"`
	// Perturbation echo (zero unless the run arms a failure regression).
	PerturbProfile  int     `json:"perturb_profile,omitempty"`
	PerturbTick     int     `json:"perturb_tick,omitempty"`
	PerturbFailRate float64 `json:"perturb_fail_rate,omitempty"`

	// Registration storm and heartbeat refresh.
	Registered             int     `json:"registered"`
	RegisterRPCs           int64   `json:"register_rpcs"`
	RegisterRequestBytes   int64   `json:"register_request_bytes"`
	HeartbeatRounds        int     `json:"heartbeat_rounds"`
	HeartbeatRequestBytes  int64   `json:"heartbeat_request_bytes"`
	ControlBytesPerMachine float64 `json:"control_bytes_per_machine"`
	// PlacementImbalance is max per-peer owned keys over fair share.
	PlacementImbalance float64 `json:"placement_imbalance"`

	// Traffic phase.
	SamplesFed        int64  `json:"samples_fed"`
	DayRollovers      int    `json:"day_rollovers"`
	Queries           int64  `json:"queries"`
	QueryFailures     int64  `json:"query_failures"`
	QueryRequestBytes int64  `json:"query_request_bytes"`
	TranscriptFNV     string `json:"transcript_fnv"`

	// Churn: leave/join storms and ring key movement.
	LeaveMachines      int     `json:"leave_machines"`
	JoinMachines       int     `json:"join_machines"`
	EntriesBeforeReap  int     `json:"entries_before_reap"`
	EntriesAfterReap   int     `json:"entries_after_reap"`
	JoinMovedKeys      int     `json:"join_moved_keys"`
	JoinMovedFraction  float64 `json:"join_moved_fraction"`
	LeaveMovedKeys     int     `json:"leave_moved_keys"`
	LeaveMovedFraction float64 `json:"leave_moved_fraction"`

	// Peer outage, restart and anti-entropy convergence.
	OutageQueries       int64  `json:"outage_queries"`
	OutageFailures      int64  `json:"outage_failures"`
	OutageTranscriptFNV string `json:"outage_transcript_fnv"`
	ConvergenceRounds   int    `json:"convergence_rounds"`
	ConvergenceAccepted int64  `json:"convergence_accepted"`
	RestartEntries      int    `json:"restart_entries"`

	// Accuracy-tracker retention over the run.
	TrackerResolved        uint64 `json:"tracker_resolved"`
	TrackerDropped         uint64 `json:"tracker_dropped"`
	TrackerEvictedMachines uint64 `json:"tracker_evicted_machines"`
	TrackerMachines        int    `json:"tracker_machines"`

	Utilization UtilizationStats `json:"utilization"`

	// Ensemble is the routing block of an -ensemble run (nil otherwise):
	// which predictors served, how often routing switched, and the
	// per-predictor win rates from the merged accuracy trackers. It sits in
	// the deterministic section — two same-seed ensemble runs must produce
	// byte-identical routing, which is exactly what the determinism check
	// pins (Go's JSON marshaling sorts the map keys).
	Ensemble *EnsembleStats `json:"ensemble,omitempty"`

	FleetObs FleetObsStats `json:"fleet_obs"`
}

// EnsembleStats summarizes the ensemble router's behaviour over the run,
// merged across federation peers in peer order.
type EnsembleStats struct {
	// Predictors is the sorted candidate set the routers selected over.
	Predictors []string `json:"predictors"`
	// Served counts queries answered per predictor.
	Served map[string]uint64 `json:"served,omitempty"`
	// Switches counts routing changes away from an incumbent predictor.
	Switches uint64 `json:"switches"`
	// RoutedMachines is the number of machines with routing state.
	RoutedMachines int `json:"routed_machines"`
	// WinRates is the fraction of scored machines on which each predictor
	// holds the best rolling Brier score (tallies merged across the
	// per-peer trackers before dividing).
	WinRates map[string]float64 `json:"win_rates,omitempty"`
	// WinMachines is the denominator of WinRates: machines where at least
	// one predictor had enough resolved outcomes to compete.
	WinMachines int `json:"win_machines"`
}

// FleetObsStats is the deterministic fleet-observability block: what the
// federated aggregation saw, which alerts the detectors fired, and the SLO
// verdicts — all pure functions of the Config (only the seeded gateway
// request/error counters are included; scheduling-dependent series such as
// engine-cache hits are deliberately left out).
type FleetObsStats struct {
	// Final post-heal aggregation sweep.
	PeersOK          int `json:"peers_ok"`
	PeersStale       int `json:"peers_stale"`
	PeersUnreachable int `json:"peers_unreachable"`
	// Aggregation sweep taken while one federation peer was down: its
	// warmed export must merge as stale, and the merged fed-query-tr
	// counter must equal the direct per-registry sum exactly.
	OutagePeersOK          int    `json:"outage_peers_ok"`
	OutagePeersStale       int    `json:"outage_peers_stale"`
	OutagePeersUnreachable int    `json:"outage_peers_unreachable"`
	OutageMergedFedQueryTR uint64 `json:"outage_merged_fed_query_tr"`
	OutageDirectFedQueryTR uint64 `json:"outage_direct_fed_query_tr"`
	// Merged gateway counters by series id, and tracker totals.
	GatewayRequests map[string]uint64 `json:"gateway_requests,omitempty"`
	GatewayErrors   map[string]uint64 `json:"gateway_errors,omitempty"`
	Resolved        uint64            `json:"resolved"`
	Dropped         uint64            `json:"dropped"`
	// Alerts fired over the run (AlertsTotal is the true count; Alerts
	// keeps the newest maxReportAlerts).
	AlertsTotal  int             `json:"alerts_total"`
	AlertsByKind map[string]int  `json:"alerts_by_kind,omitempty"`
	Alerts       []obs.Alert     `json:"alerts,omitempty"`
	SLO          []obs.SLOStatus `json:"slo,omitempty"`
}

// UtilizationStats is the fleet-level utilization/waste report: how much
// host capacity the fleet left harvestable, and how well the SMP predictor
// identified the windows worth harvesting. All fields derive from integer
// counters or worker-ordered sums, so they are deterministic.
type UtilizationStats struct {
	SamplesUp   int64 `json:"samples_up"`
	SamplesDown int64 `json:"samples_down"`
	// UpFraction is machine availability over the traffic phase.
	UpFraction float64 `json:"up_fraction"`
	// MeanCPUPercent averages host load over up samples.
	MeanCPUPercent float64 `json:"mean_cpu_percent"`
	// HarvestableFraction is the mean idle capacity over all machine-slots:
	// up * (1 - cpu/100), the cycles a guest could have used.
	HarvestableFraction float64 `json:"harvestable_fraction"`
	// MeanPredictedTR averages the TR returned to clients.
	MeanPredictedTR float64 `json:"mean_predicted_tr"`
	// SMP outcome accounting from the fleet-wide accuracy tracker.
	SMPResolved          uint64  `json:"smp_resolved"`
	SMPSurvived          uint64  `json:"smp_survived"`
	SMPEmpiricalSurvival float64 `json:"smp_empirical_survival"`
	SMPAccuracy          float64 `json:"smp_accuracy"`
	// WastedFraction is the share of resolved windows whose thresholded
	// prediction was wrong — guest work either scheduled into a failing
	// window or withheld from a surviving one.
	WastedFraction float64 `json:"wasted_fraction"`
}

// PerfStats is the measured (non-deterministic) section of the report.
type PerfStats struct {
	BuildSeconds    float64 `json:"build_seconds"`
	RegisterSeconds float64 `json:"register_seconds"`
	TrafficSeconds  float64 `json:"traffic_seconds"`
	FeedSeconds     float64 `json:"feed_seconds"`
	QuerySeconds    float64 `json:"query_seconds"`
	ChurnSeconds    float64 `json:"churn_seconds"`
	TotalSeconds    float64 `json:"total_seconds"`
	// PredictionsPerSec is federation QueryTR round trips (client -> entry
	// peer -> owner -> machine) per wall second of the query phases.
	PredictionsPerSec   float64 `json:"predictions_per_sec"`
	SamplesPerSec       float64 `json:"samples_per_sec"`
	RegistrationsPerSec float64 `json:"registrations_per_sec"`
	LatencyP50Micros    float64 `json:"latency_p50_micros"`
	LatencyP99Micros    float64 `json:"latency_p99_micros"`
	// HeapBytes is Go heap in use after the run (double GC); RSSBytes is
	// the OS view (VmRSS), zero where /proc is unavailable.
	HeapBytes           uint64  `json:"heap_bytes"`
	HeapBytesPerMachine float64 `json:"heap_bytes_per_machine"`
	RSSBytes            uint64  `json:"rss_bytes"`
	RSSBytesPerMachine  float64 `json:"rss_bytes_per_machine"`
	ResponseBytes       int64   `json:"response_bytes"`
	Goroutines          int     `json:"goroutines"`
	// Observability-plane cost: total wall time spent in obs work (SLO
	// sampling, detector steps, federated aggregation), the final
	// aggregation sweep alone, and aggregation traffic per remote peer.
	ObsPlaneSeconds     float64 `json:"obs_plane_seconds"`
	ObsAggregateSeconds float64 `json:"obs_aggregate_seconds"`
	ObsBytesPerPeer     float64 `json:"obs_bytes_per_peer"`
}

// DeterministicBytes renders the Sim section alone; two same-seed runs must
// produce identical output.
func (r *Report) DeterministicBytes() []byte {
	b, err := json.MarshalIndent(&r.Sim, "", "  ")
	if err != nil {
		panic(err) // statically marshalable
	}
	return append(b, '\n')
}

// JSON renders the full report.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// Summary renders the human-readable digest the CLI prints.
func (r *Report) Summary() string {
	var b strings.Builder
	s, p := &r.Sim, &r.Perf
	fmt.Fprintf(&b, "fleet: %d machines, %d gateways (K=%d, %d vnodes), %d profiles, seed %d\n",
		s.Machines, s.Gateways, s.Replicas, s.Vnodes, s.Profiles, s.Seed)
	fmt.Fprintf(&b, "traffic: %d ticks x %.0fs, %d queries (%d failed), %d samples, %d day rollovers\n",
		s.Ticks, s.PeriodSeconds, s.Queries, s.QueryFailures, s.SamplesFed, s.DayRollovers)
	fmt.Fprintf(&b, "control plane: %.0f B/machine (register+heartbeat), placement imbalance %.2fx\n",
		s.ControlBytesPerMachine, s.PlacementImbalance)
	fmt.Fprintf(&b, "churn: -%d/+%d machines, entries %d -> %d after reap, restart converged in %d rounds (%d entries restored)\n",
		s.LeaveMachines, s.JoinMachines, s.EntriesBeforeReap, s.EntriesAfterReap, s.ConvergenceRounds, s.RestartEntries)
	fmt.Fprintf(&b, "ring movement: join moves %.1f%% of keys, leave moves %.1f%%\n",
		100*s.JoinMovedFraction, 100*s.LeaveMovedFraction)
	fmt.Fprintf(&b, "tracker: %d resolved, %d dropped, %d machines evicted, %d live\n",
		s.TrackerResolved, s.TrackerDropped, s.TrackerEvictedMachines, s.TrackerMachines)
	u := &s.Utilization
	fmt.Fprintf(&b, "utilization: up %.1f%%, mean load %.1f%%, harvestable %.1f%%; SMP accuracy %.3f (wasted %.3f), mean TR %.3f vs empirical %.3f\n",
		100*u.UpFraction, u.MeanCPUPercent, 100*u.HarvestableFraction,
		u.SMPAccuracy, u.WastedFraction, u.MeanPredictedTR, u.SMPEmpiricalSurvival)
	if e := s.Ensemble; e != nil {
		fmt.Fprintf(&b, "ensemble: %d routed machines, %d switches; served", e.RoutedMachines, e.Switches)
		for _, name := range e.Predictors {
			if n := e.Served[name]; n > 0 {
				fmt.Fprintf(&b, " %s=%d", name, n)
			}
		}
		fmt.Fprintf(&b, "; win rates (%d machines)", e.WinMachines)
		for _, name := range e.Predictors {
			if wr, ok := e.WinRates[name]; ok {
				fmt.Fprintf(&b, " %s=%.1f%%", name, 100*wr)
			}
		}
		fmt.Fprintln(&b)
	}
	fo := &s.FleetObs
	sloState := "none"
	if len(fo.SLO) > 0 {
		sloState = "ok"
		if !fo.SLO[0].OK {
			sloState = "VIOLATED (" + fo.SLO[0].Reason + ")"
		}
	}
	fmt.Fprintf(&b, "obs: %d/%d/%d peers ok/stale/unreachable (outage sweep %d stale), %d alerts, slo %s, %.0f B/peer %.1fms merge\n",
		fo.PeersOK, fo.PeersStale, fo.PeersUnreachable, fo.OutagePeersStale,
		fo.AlertsTotal, sloState, p.ObsBytesPerPeer, 1000*p.ObsAggregateSeconds)
	fmt.Fprintf(&b, "perf: %.0f predictions/s, p50 %.0fus p99 %.0fus, %.0f samples/s, %.0f registrations/s\n",
		p.PredictionsPerSec, p.LatencyP50Micros, p.LatencyP99Micros, p.SamplesPerSec, p.RegistrationsPerSec)
	fmt.Fprintf(&b, "memory: heap %.1f MiB (%.0f B/machine), rss %.1f MiB (%.0f B/machine)\n",
		float64(p.HeapBytes)/(1<<20), p.HeapBytesPerMachine,
		float64(p.RSSBytes)/(1<<20), p.RSSBytesPerMachine)
	fmt.Fprintf(&b, "wall: build %.1fs register %.1fs traffic %.1fs churn %.1fs total %.1fs\n",
		p.BuildSeconds, p.RegisterSeconds, p.TrafficSeconds, p.ChurnSeconds, p.TotalSeconds)
	fmt.Fprintf(&b, "transcript: %s / outage %s\n", s.TranscriptFNV, s.OutageTranscriptFNV)
	return b.String()
}

// percentile returns the q-quantile (0..1) of sorted, or 0 when empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// sortFloats sorts in place and returns its argument.
func sortFloats(v []float64) []float64 {
	sort.Float64s(v)
	return v
}

// readRSS returns the process's resident set size in bytes, or 0 when the
// platform does not expose /proc/self/status.
func readRSS() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
