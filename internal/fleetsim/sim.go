// Package fleetsim drives a federated iShare fleet — N gateway peers
// serving M simulated machines — entirely in process: a virtual clock
// instead of sleeps and an in-memory loopback transport instead of sockets,
// with the production client, routing, registry and prediction stacks
// otherwise unmodified. One run covers a registration storm, steady-state
// replayed traffic across a day rollover, heartbeat refresh, leave/join
// churn, TTL reaping, and a peer crash/restart healed by anti-entropy, and
// reports both a byte-deterministic simulation transcript and measured
// throughput/memory figures (see Report).
package fleetsim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/ishare"
	"fgcs/internal/obs"
	"fgcs/internal/predict"
	"fgcs/internal/rng"
	"fgcs/internal/simclock"
)

// simStart is the fixed simulated epoch: 23:00 UTC on a Wednesday, so
// default-length runs cross a day boundary mid-traffic (exercising the
// history rollover path) and the preloaded weekday history matches the
// query days' type under the estimator's weekday/weekend pooling.
var simStart = time.Date(2026, 6, 3, 23, 0, 0, 0, time.UTC)

// rpcTimeout bounds each in-process RPC. It is nominal: the loopback
// transport never blocks on a network.
const rpcTimeout = 30 * time.Second

// queryLengthsSec are the requested job lengths (T) cycled by the replayed
// client traffic.
var queryLengthsSec = [3]float64{900, 1800, 3600}

// Config parameterizes one fleet run. The zero value of any field selects
// the documented default.
type Config struct {
	// Machines is the fleet size, including the join-storm holdbacks
	// (default 1000).
	Machines int
	// Gateways is the number of federation peers (default 8).
	Gateways int
	// Replicas is the registry replication factor K (default 2).
	Replicas int
	// Vnodes per peer on the consistent-hash ring (default 64).
	Vnodes int
	// Seed drives every random choice in the run (default 1).
	Seed uint64
	// Profiles is the number of shared machine behavior classes
	// (default 64, capped at Machines).
	Profiles int
	// HistoryDays of preloaded per-profile history (default 3).
	HistoryDays int
	// Period is the monitoring sample period (default 5m).
	Period time.Duration
	// Ticks of traffic; the clock advances one Period per tick
	// (default 24: two hours crossing midnight from the 23:00 start).
	Ticks int
	// QueriesPerTick across the whole fleet (default max(200, Machines/50)).
	QueriesPerTick int
	// Workers is the traffic parallelism; machines are partitioned over
	// workers, so worker count changes scheduling but not the transcript
	// only when it stays fixed — it is therefore part of the deterministic
	// config echo (default GOMAXPROCS).
	Workers int
	// HeartbeatEvery is the tick interval between fleet-wide registration
	// refreshes (default 8); a final round always runs on the last tick.
	HeartbeatEvery int
	// RegistryTTL is the registration lifetime (default 90m).
	RegistryTTL time.Duration
	// ChurnTick is the tick after which the leave/join storm happens
	// (default 2/3 of Ticks).
	ChurnTick int
	// LeaveFraction of initially registered machines that stop heartbeating
	// at ChurnTick (default 0.05).
	LeaveFraction float64
	// JoinFraction of Machines held back from the initial storm and
	// registered at ChurnTick (default 0.02).
	JoinFraction float64
	// OutageQueries replayed while one peer is down (default 500).
	OutageQueries int
	// TrackerMaxMachines caps accuracy-tracker machine state (default 0 =
	// uncapped; the idle TTL still applies).
	TrackerMaxMachines int
	// TrackerIdleTTL evicts tracker state for machines idle this long
	// (default RegistryTTL).
	TrackerIdleTTL time.Duration
	// EngineCacheSize is the shared prediction-engine kernel cache
	// (default 8192).
	EngineCacheSize int
	// EvictEvery is the tick interval between tracker eviction sweeps
	// (default 4).
	EvictEvery int
	// Drift tunes the per-peer accuracy-drift watchers (zero fields select
	// the obs package defaults).
	Drift obs.DriftConfig
	// PerturbFailRate, when > 0, arms the drift scenario: behavior profile
	// PerturbProfile switches to independent per-slot outages at this rate
	// from PerturbTick on (default 0 = disabled).
	PerturbFailRate float64
	// PerturbProfile is the perturbed behavior class (default 0).
	PerturbProfile int
	// PerturbTick is the first perturbed tick (default Ticks/2).
	PerturbTick int
	// Ensemble routes every TR query through the predictor ensemble: each
	// federation peer runs a router over its cohort's accuracy tracker, and
	// queries are answered by the predictor with the best rolling Brier
	// score per machine. The report then carries an ensemble block
	// (per-predictor serve counts, switches, win rates) inside its
	// deterministic section.
	Ensemble bool
	// Progress, when set, receives phase-level progress lines.
	Progress func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 1000
	}
	if c.Gateways <= 0 {
		c.Gateways = 8
	}
	if c.Replicas == 0 {
		c.Replicas = ishare.DefaultReplicas
	}
	if c.Vnodes <= 0 {
		c.Vnodes = ishare.DefaultVnodes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Profiles <= 0 {
		c.Profiles = 64
	}
	if c.Profiles > c.Machines {
		c.Profiles = c.Machines
	}
	if c.HistoryDays <= 0 {
		c.HistoryDays = 3
	}
	if c.Period <= 0 {
		c.Period = 5 * time.Minute
	}
	if c.Ticks <= 0 {
		c.Ticks = 24
	}
	if c.QueriesPerTick <= 0 {
		c.QueriesPerTick = maxInt(200, c.Machines/50)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 8
	}
	if c.RegistryTTL <= 0 {
		c.RegistryTTL = 90 * time.Minute
	}
	if c.ChurnTick <= 0 {
		c.ChurnTick = c.Ticks * 2 / 3
	}
	if c.LeaveFraction == 0 {
		c.LeaveFraction = 0.05
	}
	if c.JoinFraction == 0 {
		c.JoinFraction = 0.02
	}
	if c.OutageQueries <= 0 {
		c.OutageQueries = 500
	}
	if c.TrackerIdleTTL <= 0 {
		c.TrackerIdleTTL = c.RegistryTTL
	}
	if c.EngineCacheSize == 0 {
		c.EngineCacheSize = 8192
	}
	if c.EvictEvery <= 0 {
		c.EvictEvery = 4
	}
	if c.PerturbFailRate > 0 && c.PerturbTick <= 0 {
		c.PerturbTick = c.Ticks / 2
	}
	return c
}

func (c Config) validate() error {
	if c.Gateways < 2 {
		return fmt.Errorf("fleetsim: need at least 2 gateways")
	}
	if c.Replicas >= c.Gateways {
		return fmt.Errorf("fleetsim: replicas %d must be below gateways %d", c.Replicas, c.Gateways)
	}
	if c.ChurnTick >= c.Ticks {
		return fmt.Errorf("fleetsim: churn tick %d must be below ticks %d", c.ChurnTick, c.Ticks)
	}
	if c.LeaveFraction < 0 || c.LeaveFraction >= 1 || c.JoinFraction < 0 || c.JoinFraction >= 0.5 {
		return fmt.Errorf("fleetsim: leave/join fractions out of range")
	}
	joiners := int(c.JoinFraction * float64(c.Machines))
	leavers := int(c.LeaveFraction * float64(c.Machines-joiners))
	if leavers+joiners >= c.Machines {
		return fmt.Errorf("fleetsim: churn storms exceed fleet size")
	}
	// Heartbeats must refresh registrations faster than they expire.
	if time.Duration(c.HeartbeatEvery)*c.Period >= c.RegistryTTL {
		return fmt.Errorf("fleetsim: heartbeat interval %v not below registry TTL %v",
			time.Duration(c.HeartbeatEvery)*c.Period, c.RegistryTTL)
	}
	if c.PerturbFailRate > 0 {
		if c.PerturbFailRate > 1 {
			return fmt.Errorf("fleetsim: perturb fail rate %v above 1", c.PerturbFailRate)
		}
		if c.PerturbProfile < 0 || c.PerturbProfile >= c.Profiles {
			return fmt.Errorf("fleetsim: perturb profile %d out of range [0, %d)", c.PerturbProfile, c.Profiles)
		}
		if c.PerturbTick >= c.Ticks {
			return fmt.Errorf("fleetsim: perturb tick %d must be below ticks %d", c.PerturbTick, c.Ticks)
		}
	}
	return nil
}

// simMachine is one fleet member: its production gateway/state-manager
// stack plus the behavior profile that generates its samples.
type simMachine struct {
	id   string
	addr string
	prof *profile
	gw   *ishare.Gateway
}

// workerState accumulates one traffic worker's partition-local results.
// Workers own disjoint machine sets, so per-machine event order is fixed;
// cross-worker results are combined in worker-index order, making every
// reduction deterministic.
type workerState struct {
	samplesUp   int64
	samplesDown int64
	cpuSum      float64
	harvestSum  float64
	queries     int64
	failures    int64
	trSum       float64
	trCount     int64
	hash        uint64 // running FNV-1a over the query transcript
	latencies   []float64
}

func (w *workerState) fold(record string) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(record))
	if w.hash == 0 {
		w.hash = h.Sum64()
	} else {
		w.hash = mix64(w.hash ^ h.Sum64())
	}
}

func (w *workerState) foldQuery(tick, k int, machine string, lengthSec float64, resp ishare.QueryTRResp, err error) {
	if err != nil {
		w.fold(fmt.Sprintf("%d|%d|%s|%g|ERR|%s", tick, k, machine, lengthSec, err.Error()))
		return
	}
	// Cache counters are cumulative and scheduling-dependent, so they stay
	// out of the transcript; TR is folded as exact bits. The serving
	// predictor folds too (empty without the ensemble), so ensemble routing
	// decisions are pinned by the determinism check along with the values.
	w.fold(fmt.Sprintf("%d|%d|%s|%g|%016x|%d|%s|%s",
		tick, k, machine, lengthSec, math.Float64bits(resp.TR), resp.HistoryWindows, resp.CurrentState, resp.Predictor))
}

// fleet is the assembled simulation state shared by the phases.
type fleet struct {
	cfg      Config
	clock    *simclock.Virtual
	net      *loopNet
	peers    []ishare.Peer
	feds     []*ishare.FedGateway
	machines []*simMachine
	// peerObs is each federation peer's observability bundle; machine i's
	// serving stack records into peerObs[i % Gateways], so every peer owns
	// the metrics and accuracy streams of its machine cohort and the fleet
	// view only exists after federated aggregation — the production shape.
	peerObs []*ishare.NodeObs
	// routers is each peer's ensemble router (nil slices when the run is
	// single-predictor); machine i routes through routers[i % Gateways].
	routers []*ishare.Router
	ctx     context.Context

	registered int // machines registered in the initial storm
	leavers    int // machines[0:leavers] leave at ChurnTick
	joinStart  int // machines[joinStart:] join at ChurnTick

	active [][]*simMachine // per-worker active machines (fed + queried)

	lastLeaverRefresh time.Time // last registration covering the leavers
	lastActiveRefresh time.Time // last registration covering survivors

	// Obs-plane state: alerts fired across the run (peer-stamped, in
	// peer-then-tick order), the fleet serving SLO fed on the virtual
	// clock, and the post-churn merged snapshot finalize reports from.
	alerts    []obs.Alert
	slo       *obs.SLOMonitor
	fleetSnap *obs.FleetSnapshot
}

func (f *fleet) progress(format string, args ...any) {
	if f.cfg.Progress != nil {
		f.cfg.Progress(format, args...)
	}
}

func (f *fleet) newCaller() *ishare.Caller {
	return &ishare.Caller{
		Dialer: f.net,
		// Single attempt: retries sleep on the clock, and nothing advances
		// the virtual clock during an RPC. Failover is the federation's
		// job (replica fallback), not the transport's.
		Retry: ishare.RetryPolicy{MaxAttempts: 1},
		Clock: f.clock,
	}
}

func (f *fleet) newFed(i int) (*ishare.FedGateway, error) {
	return ishare.NewFedGateway(ishare.FedConfig{
		Self:     f.peers[i],
		Peers:    f.peers,
		Vnodes:   f.cfg.Vnodes,
		Replicas: f.cfg.Replicas,
		Caller:   f.newCaller(),
		Timeout:  rpcTimeout,
		Clock:    f.clock,
		Obs:      f.peerObs[i],
	})
}

// runWorkers executes fn(0..n-1) concurrently and waits for all of them.
func runWorkers(n int, fn func(wi int)) {
	var wg sync.WaitGroup
	for wi := 0; wi < n; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			fn(wi)
		}(wi)
	}
	wg.Wait()
}

// Run executes one fleet simulation and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Sim: SimStats{
		Machines:      cfg.Machines,
		Gateways:      cfg.Gateways,
		Replicas:      cfg.Replicas,
		Vnodes:        cfg.Vnodes,
		Profiles:      cfg.Profiles,
		HistoryDays:   cfg.HistoryDays,
		PeriodSeconds: cfg.Period.Seconds(),
		Ticks:         cfg.Ticks,
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
	}}
	if cfg.PerturbFailRate > 0 {
		rep.Sim.PerturbProfile = cfg.PerturbProfile
		rep.Sim.PerturbTick = cfg.PerturbTick
		rep.Sim.PerturbFailRate = cfg.PerturbFailRate
	}
	runStart := time.Now()

	f, err := buildFleet(cfg, rep)
	if err != nil {
		return nil, err
	}
	f.registerStorm(rep)
	f.trafficPhase(rep)
	f.churnPhase(rep)
	f.obsPhase(rep)
	f.finalize(rep)

	rep.Perf.TotalSeconds = time.Since(runStart).Seconds()
	return rep, nil
}

// buildFleet constructs profiles, peers and the per-machine serving stacks.
func buildFleet(cfg Config, rep *Report) (*fleet, error) {
	t0 := time.Now()
	midnight0 := time.Date(simStart.Year(), simStart.Month(), simStart.Day(), 0, 0, 0, 0, time.UTC)
	f := &fleet{
		cfg:   cfg,
		clock: simclock.NewVirtual(simStart),
		net:   newLoopNet(),
		ctx:   context.Background(),
	}
	profs := genProfiles(cfg.Seed, cfg.Profiles, cfg.Period, cfg.HistoryDays, midnight0)
	if cfg.PerturbFailRate > 0 {
		// Samples at tick k carry the timestamp simStart + (k+1)*Period, so
		// arming at PerturbTick's timestamp perturbs that tick onward.
		profs[cfg.PerturbProfile].perturb(
			simStart.Add(time.Duration(cfg.PerturbTick+1)*cfg.Period), cfg.PerturbFailRate)
	}

	// One observability bundle (registry, accuracy tracker, drift watcher,
	// alert ring) per federation peer: machine i records into its peer
	// group's bundle, and the fleet-level view exists only after federated
	// aggregation merges the per-peer exports — the production shape. The
	// prediction engine stays fleet-shared; its cache metrics land on peer
	// 0's registry.
	f.peerObs = make([]*ishare.NodeObs, cfg.Gateways)
	for i := range f.peerObs {
		o := ishare.NewNodeObs()
		o.Tracker.SetRetention(obs.RetentionPolicy{
			MaxMachines: cfg.TrackerMaxMachines,
			IdleTTL:     cfg.TrackerIdleTTL,
		})
		o.SetDriftConfig(cfg.Drift)
		f.peerObs[i] = o
	}
	engine := predict.NewEngine(predict.EngineConfig{CacheSize: cfg.EngineCacheSize})
	engine.SetMetrics(f.peerObs[0].Engine)
	if cfg.Ensemble {
		f.routers = make([]*ishare.Router, cfg.Gateways)
		for i := range f.routers {
			f.routers[i] = ishare.NewRouter(f.peerObs[i].Tracker, ishare.RouterConfig{})
			f.routers[i].SetMetrics(f.peerObs[i].RouterDecisions, f.peerObs[i].RouterSwitches)
		}
	}
	f.slo = obs.NewSLOMonitor(obs.SLO{
		Name: "fleet-query",
		// Floor at a quarter of the configured fleet rate: deterministic
		// headroom over the exact per-tick rate the replay produces.
		QPSFloor:    0.25 * float64(cfg.QueriesPerTick) / cfg.Period.Seconds(),
		ErrorBudget: 0.01,
		ShortWindow: 2 * cfg.Period,
		LongWindow:  8 * cfg.Period,
	})

	f.peers = make([]ishare.Peer, cfg.Gateways)
	for i := range f.peers {
		id := fmt.Sprintf("gw%02d", i)
		f.peers[i] = ishare.Peer{ID: id, Addr: "fed/" + id}
	}
	f.feds = make([]*ishare.FedGateway, cfg.Gateways)
	for i := range f.feds {
		fed, err := f.newFed(i)
		if err != nil {
			return nil, err
		}
		f.feds[i] = fed
		f.net.Register(f.peers[i].Addr, fed.Handler())
	}

	availCfg := avail.DefaultConfig()
	f.machines = make([]*simMachine, cfg.Machines)
	for i := range f.machines {
		id := fmt.Sprintf("m%06d", i)
		prof := profs[i%len(profs)]
		deps := ishare.SharedDeps{Obs: f.peerObs[i%cfg.Gateways], Engine: engine}
		if f.routers != nil {
			deps.Router = f.routers[i%cfg.Gateways]
		}
		sm, err := ishare.NewStateManagerShared(id, cfg.Period, availCfg, f.clock,
			prof.machine, cfg.HistoryDays, deps)
		if err != nil {
			return nil, err
		}
		gw, err := ishare.NewGateway(id, availCfg, cfg.Period, f.clock, sm)
		if err != nil {
			return nil, err
		}
		addr := "node/" + id
		f.net.Register(addr, gw.Handler())
		f.machines[i] = &simMachine{id: id, addr: addr, prof: prof, gw: gw}
	}

	joiners := int(cfg.JoinFraction * float64(cfg.Machines))
	f.joinStart = cfg.Machines - joiners
	f.registered = f.joinStart
	f.leavers = int(cfg.LeaveFraction * float64(f.registered))
	rep.Sim.LeaveMachines = f.leavers
	rep.Sim.JoinMachines = joiners
	rep.Sim.Registered = f.registered

	// Initial active set: everything registered in the storm.
	f.active = make([][]*simMachine, cfg.Workers)
	for i := 0; i < f.joinStart; i++ {
		wi := i % cfg.Workers
		f.active[wi] = append(f.active[wi], f.machines[i])
	}

	rep.Perf.BuildSeconds = time.Since(t0).Seconds()
	f.progress("built %d machines on %d gateways in %.1fs", cfg.Machines, cfg.Gateways, rep.Perf.BuildSeconds)
	return f, nil
}

// registerStorm publishes every non-holdback machine through a seeded
// random entry peer, measuring the control-plane cost of a cold fleet
// coming up at once.
func (f *fleet) registerStorm(rep *Report) {
	t0 := time.Now()
	bytes0 := f.net.RequestBytes()
	dials0 := f.net.Dials()
	now := f.clock.Now()
	runWorkers(f.cfg.Workers, func(wi int) {
		caller := f.newCaller()
		st := rng.New(f.cfg.Seed).Split(fmt.Sprintf("register/%d", wi))
		for _, m := range f.active[wi] {
			entry := f.peers[st.Intn(len(f.peers))].Addr
			if err := ishare.RegisterWithTTL(f.ctx, caller, entry, m.id, m.addr, f.cfg.RegistryTTL, rpcTimeout); err != nil {
				panic(fmt.Sprintf("fleetsim: register %s: %v", m.id, err))
			}
		}
	})
	f.lastLeaverRefresh = now
	f.lastActiveRefresh = now
	rep.Perf.RegisterSeconds = time.Since(t0).Seconds()
	rep.Sim.RegisterRequestBytes = f.net.RequestBytes() - bytes0
	rep.Sim.RegisterRPCs = f.net.Dials() - dials0
	if rep.Perf.RegisterSeconds > 0 {
		rep.Perf.RegistrationsPerSec = float64(f.registered) / rep.Perf.RegisterSeconds
	}

	// Placement balance, computed locally from the same ring the peers use.
	ring := ishare.NewRing(f.cfg.Vnodes)
	for _, p := range f.peers {
		if err := ring.Add(p); err != nil {
			panic(err)
		}
	}
	owned := make(map[string]int)
	for i := 0; i < f.registered; i++ {
		o, _ := ring.Owner(f.machines[i].id)
		owned[o.ID]++
	}
	maxOwned := 0
	for _, n := range owned {
		maxOwned = maxInt(maxOwned, n)
	}
	fair := float64(f.registered) / float64(f.cfg.Gateways)
	if fair > 0 {
		rep.Sim.PlacementImbalance = float64(maxOwned) / fair
	}
	f.progress("registered %d machines in %.1fs (%d RPCs, imbalance %.2fx)",
		f.registered, rep.Perf.RegisterSeconds, rep.Sim.RegisterRPCs, rep.Sim.PlacementImbalance)
}

// heartbeat re-registers every currently active machine, refreshing its
// TTL — the fleet's periodic keepalive storm.
func (f *fleet) heartbeat(tick int, rep *Report) {
	bytes0 := f.net.RequestBytes()
	runWorkers(f.cfg.Workers, func(wi int) {
		caller := f.newCaller()
		st := rng.New(f.cfg.Seed).Split(fmt.Sprintf("heartbeat/%d/%d", tick, wi))
		for _, m := range f.active[wi] {
			entry := f.peers[st.Intn(len(f.peers))].Addr
			if err := ishare.RegisterWithTTL(f.ctx, caller, entry, m.id, m.addr, f.cfg.RegistryTTL, rpcTimeout); err != nil {
				panic(fmt.Sprintf("fleetsim: heartbeat %s: %v", m.id, err))
			}
		}
	})
	now := f.clock.Now()
	if tick <= f.cfg.ChurnTick {
		f.lastLeaverRefresh = now
	}
	f.lastActiveRefresh = now
	rep.Sim.HeartbeatRounds++
	rep.Sim.HeartbeatRequestBytes += f.net.RequestBytes() - bytes0
}

// trafficPhase replays Ticks rounds of monitoring samples and client
// queries, with heartbeat refreshes, the leave/join storm at ChurnTick, and
// periodic tracker eviction sweeps.
func (f *fleet) trafficPhase(rep *Report) {
	cfg := f.cfg
	t0 := time.Now()
	queryBytes := int64(0)
	states := make([]*workerState, cfg.Workers)
	for i := range states {
		states[i] = &workerState{}
	}
	prevMidnight := midnightOf(f.clock.Now())

	for tick := 0; tick < cfg.Ticks; tick++ {
		f.clock.Advance(cfg.Period)
		now := f.clock.Now()
		if m := midnightOf(now); !m.Equal(prevMidnight) {
			rep.Sim.DayRollovers++
			prevMidnight = m
		}

		// Feed: one monitoring sample per active machine, driven straight
		// through the gateway sink exactly as a live monitor would.
		feed0 := time.Now()
		runWorkers(cfg.Workers, func(wi int) {
			ws := states[wi]
			for _, m := range f.active[wi] {
				s := m.prof.sampleAt(now)
				if s.Up {
					ws.samplesUp++
					ws.cpuSum += s.CPU
					ws.harvestSum += 1 - s.CPU/100
				} else {
					ws.samplesDown++
					m.gw.Crash()
				}
				m.gw.Record(now, s)
			}
		})
		rep.Perf.FeedSeconds += time.Since(feed0).Seconds()

		// Queries: replayed client traffic through random entry peers.
		// Each worker targets only its own partition, so the per-machine
		// prediction/observation order is deterministic.
		q0 := time.Now()
		qb0 := f.net.RequestBytes()
		runWorkers(cfg.Workers, func(wi int) {
			ws := states[wi]
			if len(f.active[wi]) == 0 {
				return
			}
			n := cfg.QueriesPerTick / cfg.Workers
			if wi < cfg.QueriesPerTick%cfg.Workers {
				n++
			}
			caller := f.newCaller()
			st := rng.New(cfg.Seed).Split(fmt.Sprintf("queries/%d/%d", tick, wi))
			for k := 0; k < n; k++ {
				target := f.active[wi][st.Intn(len(f.active[wi]))]
				entry := f.peers[st.Intn(len(f.peers))]
				length := queryLengthsSec[st.Intn(len(queryLengthsSec))]
				client := ishare.FedClient{Addr: entry.Addr, Caller: caller, Timeout: rpcTimeout}
				c0 := time.Now()
				resp, err := client.QueryTR(f.ctx, target.id, ishare.QueryTRReq{LengthSeconds: length, GuestMemMB: 100})
				ws.latencies = append(ws.latencies, float64(time.Since(c0).Microseconds()))
				ws.queries++
				if err != nil {
					ws.failures++
				} else {
					ws.trSum += resp.TR
					ws.trCount++
				}
				ws.foldQuery(tick, k, target.id, length, resp, err)
			}
		})
		rep.Perf.QuerySeconds += time.Since(q0).Seconds()
		queryBytes += f.net.RequestBytes() - qb0

		if (tick+1)%cfg.HeartbeatEvery == 0 || tick == cfg.Ticks-1 {
			f.heartbeat(tick, rep)
		}
		if tick == cfg.ChurnTick {
			f.churnStorm(rep)
		}
		if (tick+1)%cfg.EvictEvery == 0 {
			for _, o := range f.peerObs {
				rep.Sim.TrackerEvictedMachines += uint64(o.Tracker.EvictIdle(f.clock.Now()))
			}
		}

		// Obs plane: one cumulative SLO sample on the virtual clock, then
		// each peer's alerting step, in peer index order after the workers
		// have joined — everything it reads is a deterministic function of
		// the tick's completed traffic.
		obs0 := time.Now()
		var cumQ, cumF uint64
		for _, ws := range states {
			cumQ += uint64(ws.queries)
			cumF += uint64(ws.failures)
		}
		f.slo.Record(obs.SLOSample{T: now, Requests: cumQ, Errors: cumF})
		f.stepObs(now)
		rep.Perf.ObsPlaneSeconds += time.Since(obs0).Seconds()

		if (tick+1)%8 == 0 {
			f.progress("tick %d/%d: %s", tick+1, cfg.Ticks, f.clock.Now().Format("15:04"))
		}
	}

	// Merge worker results in worker-index order.
	var lat []float64
	combined := fnv.New64a()
	for wi, ws := range states {
		rep.Sim.Utilization.SamplesUp += ws.samplesUp
		rep.Sim.Utilization.SamplesDown += ws.samplesDown
		rep.Sim.Utilization.MeanCPUPercent += ws.cpuSum
		rep.Sim.Utilization.HarvestableFraction += ws.harvestSum
		rep.Sim.Utilization.MeanPredictedTR += ws.trSum
		rep.Sim.Queries += ws.queries
		rep.Sim.QueryFailures += ws.failures
		fmt.Fprintf(combined, "%d:%016x\n", wi, ws.hash)
		lat = append(lat, ws.latencies...)
	}
	var trCount int64
	for _, ws := range states {
		trCount += ws.trCount
	}
	u := &rep.Sim.Utilization
	totalSamples := u.SamplesUp + u.SamplesDown
	if u.SamplesUp > 0 {
		u.MeanCPUPercent /= float64(u.SamplesUp)
	}
	if totalSamples > 0 {
		u.UpFraction = float64(u.SamplesUp) / float64(totalSamples)
		u.HarvestableFraction /= float64(totalSamples)
	}
	if trCount > 0 {
		u.MeanPredictedTR /= float64(trCount)
	}
	rep.Sim.SamplesFed = totalSamples
	rep.Sim.QueryRequestBytes = queryBytes
	rep.Sim.TranscriptFNV = fmt.Sprintf("%016x", combined.Sum64())
	rep.Sim.ControlBytesPerMachine = float64(rep.Sim.RegisterRequestBytes+rep.Sim.HeartbeatRequestBytes) /
		float64(maxInt(1, f.registered))

	sortFloats(lat)
	rep.Perf.LatencyP50Micros = percentile(lat, 0.50)
	rep.Perf.LatencyP99Micros = percentile(lat, 0.99)
	rep.Perf.TrafficSeconds = time.Since(t0).Seconds()
	if rep.Perf.QuerySeconds > 0 {
		rep.Perf.PredictionsPerSec = float64(rep.Sim.Queries) / rep.Perf.QuerySeconds
	}
	if rep.Perf.FeedSeconds > 0 {
		rep.Perf.SamplesPerSec = float64(rep.Sim.SamplesFed) / rep.Perf.FeedSeconds
	}
	f.progress("traffic done: %d queries (%d failed), %d samples, %.0f predictions/s",
		rep.Sim.Queries, rep.Sim.QueryFailures, rep.Sim.SamplesFed, rep.Perf.PredictionsPerSec)
}

// churnStorm removes the leavers from the active set and registers the
// join-storm holdbacks, which start being fed and queried from the next
// tick on.
func (f *fleet) churnStorm(rep *Report) {
	joiners := f.machines[f.joinStart:]
	caller := f.newCaller()
	st := rng.New(f.cfg.Seed).Split("join")
	for _, m := range joiners {
		entry := f.peers[st.Intn(len(f.peers))].Addr
		if err := ishare.RegisterWithTTL(f.ctx, caller, entry, m.id, m.addr, f.cfg.RegistryTTL, rpcTimeout); err != nil {
			panic(fmt.Sprintf("fleetsim: join %s: %v", m.id, err))
		}
	}
	for wi := range f.active {
		f.active[wi] = f.active[wi][:0]
	}
	for i := f.leavers; i < len(f.machines); i++ {
		wi := i % f.cfg.Workers
		f.active[wi] = append(f.active[wi], f.machines[i])
	}
	f.progress("churn storm at %s: -%d leavers, +%d joiners",
		f.clock.Now().Format("15:04"), f.leavers, len(joiners))
}

// churnPhase runs the post-traffic scenario: TTL reaping of the leavers,
// ring key-movement accounting, then a peer outage with traffic served by
// replicas, a restart from empty state, and anti-entropy convergence.
func (f *fleet) churnPhase(rep *Report) {
	t0 := time.Now()
	cfg := f.cfg

	// Ring key movement on membership change, computed on a scratch ring:
	// consistent hashing promises a join moves only the keys the joiner
	// acquires and a leave only the leaver's own keys.
	keys := make([]string, 0, len(f.machines)-f.leavers)
	for i := f.leavers; i < len(f.machines); i++ {
		keys = append(keys, f.machines[i].id)
	}
	base := buildRing(cfg.Vnodes, f.peers)
	grown := buildRing(cfg.Vnodes, f.peers)
	if err := grown.Add(ishare.Peer{ID: "gw-join", Addr: "fed/gw-join"}); err != nil {
		panic(err)
	}
	shrunk := buildRing(cfg.Vnodes, f.peers)
	shrunk.Remove(f.peers[len(f.peers)-1].ID)
	for _, k := range keys {
		b, _ := base.Owner(k)
		if g, _ := grown.Owner(k); g.ID != b.ID {
			rep.Sim.JoinMovedKeys++
		}
		if s, _ := shrunk.Owner(k); s.ID != b.ID {
			rep.Sim.LeaveMovedKeys++
		}
	}
	if len(keys) > 0 {
		rep.Sim.JoinMovedFraction = float64(rep.Sim.JoinMovedKeys) / float64(len(keys))
		rep.Sim.LeaveMovedFraction = float64(rep.Sim.LeaveMovedKeys) / float64(len(keys))
	}

	// TTL reap: advance the clock into the window where the leavers' last
	// refresh has lapsed but the survivors' has not, then run one
	// anti-entropy round so every peer expels the dead entries.
	rep.Sim.EntriesBeforeReap = f.sumEntries()
	leaverExpiry := f.lastLeaverRefresh.Add(cfg.RegistryTTL)
	activeExpiry := f.lastActiveRefresh.Add(cfg.RegistryTTL)
	reapTime := leaverExpiry.Add(activeExpiry.Sub(leaverExpiry) / 2)
	if !reapTime.After(f.clock.Now()) {
		reapTime = f.clock.Now().Add(cfg.Period)
	}
	f.clock.AdvanceTo(reapTime)
	for _, fed := range f.feds {
		fed.SyncOnce(f.ctx)
	}
	rep.Sim.EntriesAfterReap = f.sumEntries()
	for _, o := range f.peerObs {
		rep.Sim.TrackerEvictedMachines += uint64(o.Tracker.EvictIdle(f.clock.Now()))
	}

	// Warm the aggregator's obs cache while every peer is still up, so the
	// outage below exercises the stale-merge path rather than losing gw00's
	// column outright.
	obs0 := time.Now()
	f.feds[1].FleetObs(f.ctx)
	rep.Perf.ObsPlaneSeconds += time.Since(obs0).Seconds()

	// Peer outage: gw00 drops off the network; queries entering elsewhere
	// are served by the entry's replica fallback.
	downAddr := f.peers[0].Addr
	f.net.SetDown(downAddr, true)
	activeList := f.machines[f.leavers:]
	caller := f.newCaller()
	st := rng.New(cfg.Seed).Split("outage")
	outage := &workerState{}
	for k := 0; k < cfg.OutageQueries; k++ {
		target := activeList[st.Intn(len(activeList))]
		entry := f.peers[1+st.Intn(len(f.peers)-1)]
		length := queryLengthsSec[st.Intn(len(queryLengthsSec))]
		client := ishare.FedClient{Addr: entry.Addr, Caller: caller, Timeout: rpcTimeout}
		resp, err := client.QueryTR(f.ctx, target.id, ishare.QueryTRReq{LengthSeconds: length, GuestMemMB: 100})
		outage.queries++
		if err != nil {
			outage.failures++
		}
		outage.foldQuery(-1, k, target.id, length, resp, err)
	}
	rep.Sim.OutageQueries = outage.queries
	rep.Sim.OutageFailures = outage.failures
	rep.Sim.OutageTranscriptFNV = fmt.Sprintf("%016x", outage.hash)

	// Fleet aggregation during the outage: gw00 cannot answer, so its
	// warmed export is merged marked stale — and since a down fed peer
	// serves no federation RPCs, its stale fed-serving counters still sum
	// exactly with the live peers'. The merged fed-query-tr counter is
	// recorded next to the same counter read directly off every peer
	// registry; the obs determinism test pins their equality.
	obs0 = time.Now()
	f.stepObs(f.clock.Now())
	chaos := f.feds[1].FleetObs(f.ctx)
	fo := &rep.Sim.FleetObs
	for _, ps := range chaos.Peers {
		switch ps.Status {
		case obs.PeerStale:
			fo.OutagePeersStale++
		case obs.PeerUnreachable:
			fo.OutagePeersUnreachable++
		default:
			fo.OutagePeersOK++
		}
	}
	const fedQueryTRSeries = `fgcs_gateway_requests_total{type="fed-query-tr"}`
	fo.OutageMergedFedQueryTR = chaos.Metrics.Counters[fedQueryTRSeries]
	fo.OutageDirectFedQueryTR = f.sumGatewayRequests("fed-query-tr")
	rep.Perf.ObsPlaneSeconds += time.Since(obs0).Seconds()

	// Restart gw00 from empty state and count anti-entropy rounds until
	// every peer reports Ready — a full round in which all pushes landed
	// and nothing new was accepted.
	fresh, err := f.newFed(0)
	if err != nil {
		panic(err)
	}
	f.feds[0] = fresh
	f.net.Register(downAddr, fresh.Handler())
	f.net.SetDown(downAddr, false)
	for rounds := 0; rounds < 16; {
		before := f.sumAccepted()
		for _, fed := range f.feds {
			fed.SyncOnce(f.ctx)
		}
		rounds++
		rep.Sim.ConvergenceRounds = rounds
		rep.Sim.ConvergenceAccepted += f.sumAccepted() - before
		if f.allReady() {
			break
		}
	}
	rep.Sim.RestartEntries = f.feds[0].RingStats().Entries
	rep.Perf.ChurnSeconds = time.Since(t0).Seconds()
	f.progress("churn done: entries %d -> %d, restart restored %d entries in %d rounds",
		rep.Sim.EntriesBeforeReap, rep.Sim.EntriesAfterReap, rep.Sim.RestartEntries, rep.Sim.ConvergenceRounds)
}

// maxReportAlerts caps the alert list embedded in the deterministic report
// block (the newest are kept; AlertsTotal records the true count).
const maxReportAlerts = 32

// obsPhase runs the final fleet-wide aggregation over the healed ring and
// folds the deterministic fleet-observability block into the report.
func (f *fleet) obsPhase(rep *Report) {
	t0 := time.Now()
	req0, resp0 := f.net.RequestBytes(), f.net.ResponseBytes()
	snap := f.feds[1].FleetObs(f.ctx)
	f.fleetSnap = snap
	rep.Perf.ObsAggregateSeconds = time.Since(t0).Seconds()
	rep.Perf.ObsPlaneSeconds += rep.Perf.ObsAggregateSeconds
	if n := f.cfg.Gateways - 1; n > 0 {
		rep.Perf.ObsBytesPerPeer = float64((f.net.RequestBytes()-req0)+(f.net.ResponseBytes()-resp0)) / float64(n)
	}

	fo := &rep.Sim.FleetObs
	for _, ps := range snap.Peers {
		switch ps.Status {
		case obs.PeerStale:
			fo.PeersStale++
		case obs.PeerUnreachable:
			fo.PeersUnreachable++
		default:
			fo.PeersOK++
		}
	}
	// Only the gateway request/error families go into the deterministic
	// block: they are pure functions of the seeded traffic, while e.g. the
	// engine-cache counters depend on cross-worker scheduling.
	fo.GatewayRequests = make(map[string]uint64)
	for id, v := range snap.Metrics.Counters {
		switch {
		case strings.HasPrefix(id, "fgcs_gateway_requests_total"):
			fo.GatewayRequests[id] = v
		case strings.HasPrefix(id, "fgcs_gateway_errors_total") && v > 0:
			if fo.GatewayErrors == nil {
				fo.GatewayErrors = make(map[string]uint64)
			}
			fo.GatewayErrors[id] = v
		}
	}
	fo.Resolved = snap.Resolved
	fo.Dropped = snap.Dropped
	fo.AlertsTotal = len(f.alerts)
	if len(f.alerts) > 0 {
		fo.AlertsByKind = make(map[string]int)
		for _, a := range f.alerts {
			fo.AlertsByKind[a.Kind]++
		}
		al := f.alerts
		if len(al) > maxReportAlerts {
			al = al[len(al)-maxReportAlerts:]
		}
		fo.Alerts = al
	}
	fo.SLO = []obs.SLOStatus{f.slo.Status()}
	f.progress("obs plane: merged %d peers (%d stale at outage), %d alerts, %.0f B/peer",
		len(snap.Peers), fo.OutagePeersStale, fo.AlertsTotal, rep.Perf.ObsBytesPerPeer)
}

// finalize folds the tracker totals and memory figures into the report.
func (f *fleet) finalize(rep *Report) {
	for _, o := range f.peerObs {
		tr := o.Tracker
		rep.Sim.TrackerResolved += tr.Resolved()
		rep.Sim.TrackerDropped += tr.DroppedPredictions()
		rep.Sim.TrackerMachines += tr.Machines()
	}

	// SMP outcome accounting from the merged fleet snapshot — the "_all"
	// rollup across every peer's tracker, i.e. the number the obs plane
	// serves to operators.
	var all obs.AccuracyStats
	for _, s := range f.fleetSnap.AccuracySums() {
		if s.Machine == "_all" && s.Predictor == "SMP" {
			all = s.Stats(false)
			break
		}
	}
	u := &rep.Sim.Utilization
	u.SMPResolved = all.Resolved
	u.SMPSurvived = all.Survived
	u.SMPEmpiricalSurvival = all.Empirical
	u.SMPAccuracy = all.Accuracy
	if all.Resolved > 0 {
		u.WastedFraction = 1 - all.Accuracy
	}

	if f.routers != nil {
		e := &EnsembleStats{
			Predictors: f.routers[0].Predictors(),
			Served:     make(map[string]uint64),
			WinRates:   make(map[string]float64),
		}
		// Merge per-peer router snapshots and win tallies in peer order —
		// sums of deterministic per-peer figures, so the block lands in the
		// deterministic report section.
		wins := make(map[string]uint64)
		for i, r := range f.routers {
			snap := r.Snapshot()
			for name, n := range snap.Served {
				e.Served[name] += n
			}
			e.Switches += snap.Switches
			e.RoutedMachines += snap.Machines
			w, m := f.peerObs[i].Tracker.WinCounts(r.Config().MinSamples)
			for name, n := range w {
				wins[name] += n
			}
			e.WinMachines += m
		}
		if e.WinMachines > 0 {
			for name, n := range wins {
				e.WinRates[name] = float64(n) / float64(e.WinMachines)
			}
		}
		rep.Sim.Ensemble = e
	}

	rep.Perf.ResponseBytes = f.net.ResponseBytes()
	rep.Perf.Goroutines = runtime.NumGoroutine()
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.Perf.HeapBytes = ms.HeapAlloc
	rep.Perf.HeapBytesPerMachine = float64(ms.HeapAlloc) / float64(f.cfg.Machines)
	rep.Perf.RSSBytes = readRSS()
	rep.Perf.RSSBytesPerMachine = float64(rep.Perf.RSSBytes) / float64(f.cfg.Machines)
}

func (f *fleet) sumEntries() int {
	n := 0
	for _, fed := range f.feds {
		n += fed.RingStats().Entries
	}
	return n
}

func (f *fleet) sumAccepted() int64 {
	var n int64
	for _, fed := range f.feds {
		n += int64(fed.RingStats().SyncAccepted)
	}
	return n
}

// stepObs advances every peer's operational detectors (drift, shed-rate,
// breaker-flap, SLO sampling) at the virtual time and collects the alerts
// fired, stamped with the owning peer.
func (f *fleet) stepObs(now time.Time) {
	for g, o := range f.peerObs {
		for _, a := range o.StepObs(now) {
			a.Peer = f.peers[g].ID
			f.alerts = append(f.alerts, a)
		}
	}
}

// sumGatewayRequests reads one request-type counter directly off every peer
// registry — the ground truth the merged fleet snapshot is checked against.
func (f *fleet) sumGatewayRequests(typ string) uint64 {
	var n uint64
	for _, o := range f.peerObs {
		n += o.Registry.Counter("fgcs_gateway_requests_total",
			"Gateway RPCs served, by request type.",
			obs.Label{Key: "type", Value: typ}).Value()
	}
	return n
}

// allReady reports whether every federation peer passes its readiness check
// (WAL recovered, a clean anti-entropy round completed, ring converged).
func (f *fleet) allReady() bool {
	for _, fed := range f.feds {
		if fed.Ready() != nil {
			return false
		}
	}
	return true
}

func buildRing(vnodes int, peers []ishare.Peer) *ishare.Ring {
	r := ishare.NewRing(vnodes)
	for _, p := range peers {
		if err := r.Add(p); err != nil {
			panic(err)
		}
	}
	return r
}

func midnightOf(t time.Time) time.Time {
	t = t.UTC()
	return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
}
