package fleetsim

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fgcs/internal/ishare"
	"fgcs/internal/rng"
	"fgcs/internal/simclock"
)

// TestRingChurnKeyMovement pins the consistent-hashing contract under
// join/leave storms at several fleet shapes: a join moves keys only TO the
// joiner and roughly one fair share of them; a leave moves exactly the
// keys the leaver owned.
func TestRingChurnKeyMovement(t *testing.T) {
	cases := []struct {
		peers  int
		vnodes int
		keys   int
	}{
		{4, 64, 5_000},
		{8, 64, 20_000},
		{16, 64, 20_000},
		{8, 128, 20_000},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("p%d-v%d-k%d", tc.peers, tc.vnodes, tc.keys), func(t *testing.T) {
			peers := make([]ishare.Peer, tc.peers)
			for i := range peers {
				id := fmt.Sprintf("gw%02d", i)
				peers[i] = ishare.Peer{ID: id, Addr: "fed/" + id}
			}
			base := buildRing(tc.vnodes, peers)
			owner := make(map[string]string, tc.keys)
			keys := make([]string, tc.keys)
			for i := range keys {
				keys[i] = fmt.Sprintf("m%06d", i)
				o, ok := base.Owner(keys[i])
				if !ok {
					t.Fatal("empty ring")
				}
				owner[keys[i]] = o.ID
			}

			// Join storm: one new peer enters.
			grown := buildRing(tc.vnodes, peers)
			if err := grown.Add(ishare.Peer{ID: "gw-new", Addr: "fed/gw-new"}); err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				o, _ := grown.Owner(k)
				if o.ID == owner[k] {
					continue
				}
				moved++
				if o.ID != "gw-new" {
					t.Fatalf("key %s moved %s -> %s on join: keys may move only to the joiner",
						k, owner[k], o.ID)
				}
			}
			fair := float64(tc.keys) / float64(tc.peers+1)
			if f := float64(moved); f > 2*fair {
				t.Errorf("join moved %d keys, > 2x fair share %.0f", moved, fair)
			}
			if moved == 0 {
				t.Error("join moved no keys")
			}

			// Leave storm: the last peer exits.
			leaver := peers[len(peers)-1].ID
			shrunk := buildRing(tc.vnodes, peers)
			shrunk.Remove(leaver)
			for _, k := range keys {
				o, _ := shrunk.Owner(k)
				if owner[k] == leaver {
					if o.ID == leaver {
						t.Fatalf("key %s still owned by removed peer", k)
					}
					continue
				}
				if o.ID != owner[k] {
					t.Fatalf("key %s moved %s -> %s on leave: only the leaver's keys may move",
						k, owner[k], o.ID)
				}
			}
		})
	}
}

// TestFedConvergenceAfterRestart rebuilds one peer from empty state in
// fleets of several shapes and asserts anti-entropy restores its full shard
// within a bounded number of sync rounds: one round to repopulate, one to
// observe quiescence.
func TestFedConvergenceAfterRestart(t *testing.T) {
	cases := []struct {
		gateways int
		replicas int
		machines int
	}{
		{4, 1, 500},
		{8, 2, 2_000},
		{16, 3, 2_000},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("g%d-k%d-m%d", tc.gateways, tc.replicas, tc.machines), func(t *testing.T) {
			ctx := context.Background()
			clock := simclock.NewVirtual(time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC))
			net := newLoopNet()
			peers := make([]ishare.Peer, tc.gateways)
			for i := range peers {
				id := fmt.Sprintf("gw%02d", i)
				peers[i] = ishare.Peer{ID: id, Addr: "fed/" + id}
			}
			newCaller := func() *ishare.Caller {
				return &ishare.Caller{Dialer: net, Retry: ishare.RetryPolicy{MaxAttempts: 1}, Clock: clock}
			}
			newFed := func(i int) *ishare.FedGateway {
				fed, err := ishare.NewFedGateway(ishare.FedConfig{
					Self: peers[i], Peers: peers, Replicas: tc.replicas,
					Caller: newCaller(), Timeout: time.Second, Clock: clock,
				})
				if err != nil {
					t.Fatal(err)
				}
				return fed
			}
			feds := make([]*ishare.FedGateway, tc.gateways)
			for i := range feds {
				feds[i] = newFed(i)
				net.Register(peers[i].Addr, feds[i].Handler())
			}
			caller := newCaller()
			st := rng.New(42).Split("register")
			for i := 0; i < tc.machines; i++ {
				id := fmt.Sprintf("m%06d", i)
				entry := peers[st.Intn(len(peers))].Addr
				if err := ishare.RegisterWithTTL(ctx, caller, entry, id, "node/"+id, 0, time.Second); err != nil {
					t.Fatalf("register %s: %v", id, err)
				}
			}

			before := feds[0].RingStats().Entries
			if before == 0 {
				t.Fatal("peer 0 holds no entries before the crash")
			}

			// Crash and restart peer 0 with an empty shard.
			net.SetDown(peers[0].Addr, true)
			net.SetDown(peers[0].Addr, false)
			feds[0] = newFed(0)
			net.Register(peers[0].Addr, feds[0].Handler())

			sumAccepted := func() uint64 {
				var n uint64
				for _, f := range feds {
					n += f.RingStats().SyncAccepted
				}
				return n
			}
			rounds := 0
			for rounds < 8 {
				prev := sumAccepted()
				for _, f := range feds {
					f.SyncOnce(ctx)
				}
				rounds++
				if sumAccepted() == prev {
					break
				}
			}
			if rounds > 2 {
				t.Errorf("convergence took %d rounds, want <= 2 (repopulate + quiesce)", rounds)
			}
			if after := feds[0].RingStats().Entries; after != before {
				t.Errorf("restarted peer holds %d entries, held %d before the crash", after, before)
			}
		})
	}
}
