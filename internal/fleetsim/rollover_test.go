package fleetsim

import (
	"context"
	"math"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/ishare"
	"fgcs/internal/simclock"
)

// TestDayRolloverUnderWAL crosses a simulated day boundary mid-traffic on a
// WAL-backed node and checks the completed-day handoff: once queries run
// from the new day, yesterday's log is part of the prediction history (not
// stale), straggler samples into the sealed day are dropped rather than
// mutating state under the predictor, and a crash-recovery from the WAL
// reproduces the post-rollover answers bit for bit.
func TestDayRolloverUnderWAL(t *testing.T) {
	const (
		period      = 5 * time.Minute
		historyDays = 2
		seed        = 99
	)
	ctx := context.Background()
	// A Wednesday: the two preloaded days (Mon, Tue) share its day type, so
	// they all count as history under weekday/weekend pooling.
	day0 := time.Date(2026, 6, 3, 0, 0, 0, 0, time.UTC)
	start := day0.Add(23*time.Hour + 30*time.Minute)
	clock := simclock.NewVirtual(start)
	prof := genProfiles(seed, 1, period, historyDays, day0)[0]
	availCfg := avail.DefaultConfig()
	fs := durable.NewMemFS()

	boot := func(rec *durable.Recovery, st *durable.Store) (*ishare.StateManager, *ishare.Persister) {
		sm, err := ishare.NewStateManager("m0", period, availCfg, clock, prof.machine, historyDays)
		if err != nil {
			t.Fatal(err)
		}
		gw, err := ishare.NewGateway("m0", availCfg, period, clock, sm)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ishare.NewPersister(st, rec, sm, gw, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sm, p
	}

	st, rec, err := durable.Open(durable.Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotPayload != nil || len(rec.Records) != 0 {
		t.Fatal("fresh store not empty")
	}
	sm, p := boot(nil, st)

	query := func(sm *ishare.StateManager) ishare.QueryTRResp {
		resp, err := sm.QueryTR(ctx, ishare.QueryTRReq{LengthSeconds: 1800, GuestMemMB: 100})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Feed across midnight, querying after every sample. Before the
	// rollover the prediction fits over the preloaded days only; the first
	// query of the new day must see yesterday as completed history.
	sawRollover := false
	for i := 0; i < 18; i++ { // 23:35 .. 01:00
		clock.Advance(period)
		now := clock.Now()
		p.Record(now, prof.sampleAt(now))
		resp := query(sm)
		if now.Before(day0.Add(24 * time.Hour)) {
			if resp.HistoryWindows != historyDays {
				t.Fatalf("%s: history windows = %d, want %d", now.Format("15:04"), resp.HistoryWindows, historyDays)
			}
		} else {
			sawRollover = true
			if resp.HistoryWindows != historyDays+1 {
				t.Fatalf("%s: history windows = %d after rollover, want %d (completed day missing: stale history)",
					now.Format("15:04"), resp.HistoryWindows, historyDays+1)
			}
		}
	}
	if !sawRollover {
		t.Fatal("traffic never crossed midnight")
	}

	// A straggler sample aimed into the sealed day must not change the
	// answer: completed days are immutable once handed to the predictor.
	before := query(sm)
	p.Record(day0.Add(23*time.Hour+55*time.Minute), prof.sampleAt(day0.Add(23*time.Hour+55*time.Minute)))
	after := query(sm)
	if math.Float64bits(before.TR) != math.Float64bits(after.TR) || before.HistoryWindows != after.HistoryWindows {
		t.Fatalf("sealed-day straggler changed the prediction: TR %v -> %v, windows %d -> %d",
			before.TR, after.TR, before.HistoryWindows, after.HistoryWindows)
	}

	// Crash (no clean shutdown) and recover from the WAL: the restarted
	// node must answer exactly as the pre-crash node, including the
	// completed day.
	preCrash := query(sm)
	st2, rec2, err := durable.Open(durable.Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) == 0 {
		t.Fatal("recovery replayed no WAL records")
	}
	sm2, _ := boot(rec2, st2)
	recovered := query(sm2)
	if math.Float64bits(recovered.TR) != math.Float64bits(preCrash.TR) {
		t.Fatalf("recovered TR %v != pre-crash TR %v", recovered.TR, preCrash.TR)
	}
	if recovered.HistoryWindows != preCrash.HistoryWindows {
		t.Fatalf("recovered history windows %d != pre-crash %d (stale completed-day state after recovery)",
			recovered.HistoryWindows, preCrash.HistoryWindows)
	}
	if recovered.CurrentState != preCrash.CurrentState {
		t.Fatalf("recovered state %s != pre-crash %s", recovered.CurrentState, preCrash.CurrentState)
	}
}
