package fleetsim

import (
	"bytes"
	"testing"
)

// TestFleetSimDeterministic is the short-mode fleet smoke: two identically
// seeded ~1k-machine runs must produce byte-identical deterministic report
// sections, and the scenario itself must complete cleanly (no failed
// queries, a day rollover mid-traffic, churn reaped, restart converged).
func TestFleetSimDeterministic(t *testing.T) {
	cfg := Config{Machines: 1000, Workers: 4, Seed: 7}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	b1, b2 := r1.DeterministicBytes(), r2.DeterministicBytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}

	s := &r1.Sim
	if s.QueryFailures != 0 {
		t.Errorf("query failures = %d, want 0", s.QueryFailures)
	}
	if s.DayRollovers < 1 {
		t.Errorf("day rollovers = %d, want >= 1 (traffic must cross midnight)", s.DayRollovers)
	}
	if s.OutageFailures != 0 {
		t.Errorf("outage failures = %d, want 0 (replicas must cover the dead peer)", s.OutageFailures)
	}
	if s.ConvergenceRounds < 1 || s.ConvergenceRounds > 4 {
		t.Errorf("convergence rounds = %d, want 1..4", s.ConvergenceRounds)
	}
	if s.RestartEntries == 0 {
		t.Error("restarted peer recovered no entries")
	}
	if s.EntriesAfterReap >= s.EntriesBeforeReap {
		t.Errorf("reap did not shrink the registry: %d -> %d", s.EntriesBeforeReap, s.EntriesAfterReap)
	}
	if s.LeaveMachines == 0 || s.JoinMachines == 0 {
		t.Errorf("churn storm empty: -%d/+%d", s.LeaveMachines, s.JoinMachines)
	}
	if s.TrackerResolved == 0 {
		t.Error("accuracy tracker resolved nothing")
	}
	if s.TrackerEvictedMachines == 0 {
		t.Error("no tracker state evicted despite the leave storm")
	}
	u := &s.Utilization
	if u.UpFraction <= 0.5 || u.UpFraction > 1 {
		t.Errorf("up fraction = %v, want (0.5, 1]", u.UpFraction)
	}
	if u.MeanPredictedTR <= 0 || u.MeanPredictedTR > 1 {
		t.Errorf("mean predicted TR = %v, want (0, 1]", u.MeanPredictedTR)
	}
	if u.HarvestableFraction <= 0 || u.HarvestableFraction >= 1 {
		t.Errorf("harvestable fraction = %v, want (0, 1)", u.HarvestableFraction)
	}
}

// TestFleetSimEnsembleDeterministic runs the fleet with the predictor
// ensemble routing every query: two same-seed runs must produce
// byte-identical deterministic sections (which now fold each query's serving
// predictor into the transcript hash), and the report must carry a populated
// ensemble block.
func TestFleetSimEnsembleDeterministic(t *testing.T) {
	cfg := Config{Machines: 400, Workers: 4, Seed: 11, Ensemble: true}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	b1, b2 := r1.DeterministicBytes(), r2.DeterministicBytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed ensemble runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	e := r1.Sim.Ensemble
	if e == nil {
		t.Fatal("ensemble run produced no ensemble block")
	}
	if len(e.Predictors) == 0 {
		t.Error("ensemble block lists no predictors")
	}
	if e.RoutedMachines == 0 {
		t.Error("no machines acquired routing state")
	}
	var served uint64
	for _, n := range e.Served {
		served += n
	}
	if served == 0 {
		t.Error("ensemble served no queries")
	}
	if r1.Sim.QueryFailures != 0 {
		t.Errorf("query failures = %d, want 0", r1.Sim.QueryFailures)
	}
	// The non-ensemble transcript must differ only via the predictor field;
	// a plain run with the same seed must still be self-consistent.
	if r1.Sim.TranscriptFNV == "" {
		t.Error("empty transcript hash")
	}
}

// TestFleetSimValidation pins the config guard rails.
func TestFleetSimValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"one gateway", Config{Gateways: 1}},
		{"replicas ge gateways", Config{Gateways: 3, Replicas: 3}},
		{"churn past end", Config{Ticks: 10, ChurnTick: 10}},
		{"heartbeat past ttl", Config{HeartbeatEvery: 100, RegistryTTL: 10 * 60 * 1e9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
