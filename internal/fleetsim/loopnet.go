package fleetsim

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/ishare"
)

// maxLoopRequestBytes caps one in-process request. It is far above the
// production server's JSON cap because a single anti-entropy push at fleet
// scale batches tens of thousands of entries into one request.
const maxLoopRequestBytes = 256 << 20

// loopNet is the fleet's network: an ishare.Dialer that connects callers to
// registered handlers entirely in memory. Every dial spawns one goroutine
// that serves exactly one request/response exchange with the same envelope
// semantics as the JSON server (handler error -> {ok:false, error}), so the
// full production client stack — Caller, FedClient, federation routing —
// runs unmodified on top of it.
//
// The transport keeps two byte meters. Request bytes are a pure function of
// the simulated traffic and therefore belong in the deterministic report;
// response bytes include cumulative cache counters (QueryTRResp) whose
// values depend on scheduling, so they are perf-only.
type loopNet struct {
	mu       sync.RWMutex
	handlers map[string]ishare.Handler
	down     map[string]bool

	dials     atomic.Int64
	reqBytes  atomic.Int64
	respBytes atomic.Int64
}

func newLoopNet() *loopNet {
	return &loopNet{
		handlers: make(map[string]ishare.Handler),
		down:     make(map[string]bool),
	}
}

// Register installs (or replaces) the handler serving addr.
func (ln *loopNet) Register(addr string, h ishare.Handler) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.handlers[addr] = h
}

// SetDown makes dials to addr fail with a connection-refused error (a
// transport error to the Caller, so routing fails over), or restores them.
func (ln *loopNet) SetDown(addr string, down bool) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.down[addr] = down
}

// DialTimeout implements ishare.Dialer.
func (ln *loopNet) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	ln.mu.RLock()
	h, ok := ln.handlers[addr]
	isDown := ln.down[addr]
	ln.mu.RUnlock()
	if !ok || isDown {
		return nil, fmt.Errorf("loopnet: connect %s: connection refused", addr)
	}
	ln.dials.Add(1)
	c2s := newMemBuf(&ln.reqBytes)
	s2c := newMemBuf(&ln.respBytes)
	client := &memConn{r: s2c, w: c2s, addr: loopAddr(addr)}
	server := &memConn{r: c2s, w: s2c, addr: loopAddr(addr)}
	go ln.serve(server, h)
	return client, nil
}

// serve handles one exchange, mirroring the JSON server's respond():
// handler errors travel back as application errors, never as dropped
// connections.
func (ln *loopNet) serve(conn net.Conn, h ishare.Handler) {
	defer conn.Close()
	req, err := ishare.DecodeRequest(conn, maxLoopRequestBytes)
	if err != nil {
		return
	}
	payload, herr := h(req)
	resp := ishare.Response{OK: herr == nil}
	if herr != nil {
		resp.Error = herr.Error()
	} else if payload != nil {
		raw, merr := json.Marshal(payload)
		if merr != nil {
			resp = ishare.Response{Error: fmt.Sprintf("loopnet: encode response: %v", merr)}
		} else {
			resp.Payload = raw
		}
	}
	_ = json.NewEncoder(conn).Encode(resp)
}

// RequestBytes returns the bytes written by clients (requests) so far.
func (ln *loopNet) RequestBytes() int64 { return ln.reqBytes.Load() }

// ResponseBytes returns the bytes written by servers (responses) so far.
func (ln *loopNet) ResponseBytes() int64 { return ln.respBytes.Load() }

// Dials returns the number of connections opened so far.
func (ln *loopNet) Dials() int64 { return ln.dials.Load() }

// memBuf is one direction of an in-memory connection: an unbounded buffer
// with blocking reads. Writes never block, which is what makes the single
// write / single read exchange deadlock-free without real-pipe rendezvous.
type memBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
	meter  *atomic.Int64
}

func newMemBuf(meter *atomic.Int64) *memBuf {
	b := &memBuf{meter: meter}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *memBuf) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, net.ErrClosed
	}
	b.data = append(b.data, p...)
	if b.meter != nil {
		b.meter.Add(int64(len(p)))
	}
	b.cond.Broadcast()
	return len(p), nil
}

func (b *memBuf) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

func (b *memBuf) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// memConn is one endpoint of an in-memory connection.
type memConn struct {
	r, w *memBuf
	addr loopAddr
}

func (c *memConn) Read(p []byte) (int, error)  { return c.r.read(p) }
func (c *memConn) Write(p []byte) (int, error) { return c.w.write(p) }

func (c *memConn) Close() error {
	c.r.close()
	c.w.close()
	return nil
}

func (c *memConn) LocalAddr() net.Addr  { return c.addr }
func (c *memConn) RemoteAddr() net.Addr { return c.addr }

// Deadlines are accepted and ignored: exchanges are in-process and always
// terminated by the serving goroutine closing its end.
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

type loopAddr string

func (a loopAddr) Network() string { return "loop" }
func (a loopAddr) String() string  { return string(a) }
