package fleetsim

import (
	"bytes"
	"testing"

	"fgcs/internal/obs"
)

// obsTestConfig is the base scenario for the observability-plane tests:
// small enough to run three times in short mode, long enough (3 simulated
// hours) that predictions issued after the mid-run perturbation point still
// resolve before the end. λ is raised above the default because with only
// 8 behavior profiles a single profile's daily down-window resolves a
// correlated burst of failed predictions — a genuine transient Brier spike
// of ~0.3 in one batch — which a persistent-regression alarm must ride out;
// empirically the spike stays under λ for a wide band (0.35..0.65) around
// the chosen 0.5 while the armed perturbation accumulates well past it.
func obsTestConfig() Config {
	return Config{
		Machines: 800,
		Gateways: 4,
		Profiles: 8,
		Ticks:    36,
		Workers:  4,
		Seed:     5,
		Drift:    obs.DriftConfig{Lambda: 0.5},
	}
}

// TestFleetObsDeterministic is the fleet-observability acceptance test from
// the issue, in three legs:
//
//  1. Two identically seeded runs produce a byte-identical Sim section
//     including the fleet_obs block (merged counters, alerts, SLO verdicts).
//  2. A run with a seeded mid-run failure perturbation fires the
//     accuracy-drift detector; the unperturbed twin stays silent.
//  3. The aggregation sweep taken during the peer outage merges the dead
//     peer's warmed export as stale, and the merged fed-query-tr counter
//     equals the direct per-registry sum exactly.
func TestFleetObsDeterministic(t *testing.T) {
	cfg := obsTestConfig()
	r1, err := Run(cfg)
	if err != nil {
		t.Fatalf("base run 1: %v", err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatalf("base run 2: %v", err)
	}

	// Leg 1: byte determinism of the Sim section, fleet_obs included.
	b1, b2 := r1.DeterministicBytes(), r2.DeterministicBytes()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	fo := &r1.Sim.FleetObs
	if fo.PeersOK != cfg.Gateways || fo.PeersStale != 0 || fo.PeersUnreachable != 0 {
		t.Errorf("post-heal sweep = %d/%d/%d ok/stale/unreachable, want %d/0/0",
			fo.PeersOK, fo.PeersStale, fo.PeersUnreachable, cfg.Gateways)
	}
	if len(fo.GatewayRequests) == 0 {
		t.Error("merged snapshot carries no gateway request counters")
	}
	if fo.Resolved == 0 {
		t.Error("merged snapshot resolved nothing")
	}
	if fo.Resolved != r1.Sim.TrackerResolved {
		t.Errorf("merged resolved = %d, direct tracker sum = %d", fo.Resolved, r1.Sim.TrackerResolved)
	}
	if len(fo.SLO) != 1 {
		t.Fatalf("slo statuses = %d, want 1", len(fo.SLO))
	}
	if st := fo.SLO[0]; !st.OK {
		t.Errorf("healthy run violates its SLO: %s", st.Reason)
	}
	if n := fo.AlertsByKind[obs.AlertAccuracyDrift]; n != 0 {
		t.Errorf("unperturbed run fired %d accuracy-drift alerts, want 0", n)
	}

	// Leg 3 (on the base run): outage-time aggregation.
	if fo.OutagePeersStale != 1 || fo.OutagePeersUnreachable != 0 {
		t.Errorf("outage sweep = %d/%d/%d ok/stale/unreachable, want %d/1/0",
			fo.OutagePeersOK, fo.OutagePeersStale, fo.OutagePeersUnreachable, cfg.Gateways-1)
	}
	if fo.OutageMergedFedQueryTR == 0 {
		t.Error("outage sweep merged zero fed-query-tr requests")
	}
	if fo.OutageMergedFedQueryTR != fo.OutageDirectFedQueryTR {
		t.Errorf("stale-merged fed-query-tr = %d, direct registry sum = %d (must be exactly equal)",
			fo.OutageMergedFedQueryTR, fo.OutageDirectFedQueryTR)
	}

	// Leg 2: the perturbed twin must fire the drift detector.
	pcfg := cfg
	pcfg.PerturbFailRate = 0.6
	pcfg.PerturbProfile = 0
	pcfg.PerturbTick = 18
	rp, err := Run(pcfg)
	if err != nil {
		t.Fatalf("perturbed run: %v", err)
	}
	pf := &rp.Sim.FleetObs
	if pf.AlertsTotal == 0 {
		t.Fatal("perturbed run fired no alerts at all")
	}
	if n := pf.AlertsByKind[obs.AlertAccuracyDrift]; n == 0 {
		t.Errorf("perturbed run fired no accuracy-drift alert (alerts by kind: %v)", pf.AlertsByKind)
	}
	if rp.Sim.PerturbFailRate != pcfg.PerturbFailRate || rp.Sim.PerturbTick != pcfg.PerturbTick {
		t.Errorf("perturbation echo = profile %d tick %d rate %v, want profile %d tick %d rate %v",
			rp.Sim.PerturbProfile, rp.Sim.PerturbTick, rp.Sim.PerturbFailRate,
			pcfg.PerturbProfile, pcfg.PerturbTick, pcfg.PerturbFailRate)
	}
}
