package fleetsim

import (
	"fmt"
	"math"
	"time"

	"fgcs/internal/rng"
	"fgcs/internal/trace"
)

// profile is one machine behavior class. A fleet of M machines shares K
// profiles (K << M): each profile owns one preloaded history log that every
// machine of that class hands to its state manager by pointer, so history
// memory scales with K while live per-machine state scales with M — the
// same shape as a production fleet built from a few hardware/usage cohorts.
//
// A profile is a pure function of (seed, time): the preloaded history days
// and the live samples fed during the run come from the same generator, so
// the SMP predictor sees a coherent diurnal process across the history
// boundary.
type profile struct {
	id     int
	seed   uint64
	period time.Duration

	baseCPU    float64 // overnight host load, percent
	peakCPU    float64 // midday peak host load, percent
	peakHour   float64 // clock hour of the diurnal peak
	noiseAmp   float64 // per-slot load jitter, percent
	totalMem   float64 // physical memory, MB
	memSlack   float64 // fraction of memory free at zero load
	failPerDay float64 // probability of one down window per day

	// Perturbation: from perturbFrom on (when perturbRate > 0), the class
	// abandons its one-window-per-day failure structure for independent
	// per-slot outages at perturbRate — an abrupt reliability regression
	// the drift detector must catch. Still a pure function of (seed, time,
	// config): the schedule is hash-derived, never stream-drawn.
	perturbFrom time.Time
	perturbRate float64

	machine *trace.Machine // shared preloaded history (read-only)
}

// perturb arms the mid-run failure regression. Call before the run starts
// feeding samples (fleet build time), with a deterministic from.
func (p *profile) perturb(from time.Time, rate float64) {
	p.perturbFrom = from
	p.perturbRate = rate
}

// genProfiles derives n behavior classes from the fleet seed and builds
// historyDays of preloaded history per class, ending the day before
// todayMidnight.
func genProfiles(seed uint64, n int, period time.Duration, historyDays int, todayMidnight time.Time) []*profile {
	root := rng.New(seed).Split("profiles")
	out := make([]*profile, n)
	for i := range out {
		s := root.SplitN("profile", i)
		p := &profile{
			id:         i,
			seed:       s.Uint64(),
			period:     period,
			baseCPU:    s.Uniform(2, 15),
			peakCPU:    s.Uniform(25, 95),
			peakHour:   s.Uniform(9, 18),
			noiseAmp:   s.Uniform(2, 10),
			totalMem:   s.Uniform(512, 8192),
			memSlack:   s.Uniform(0.25, 0.75),
			failPerDay: s.Uniform(0.05, 0.5),
		}
		p.buildHistory(todayMidnight, historyDays)
		out[i] = p
	}
	return out
}

// sampleAt returns the class's sample for the slot containing t.
func (p *profile) sampleAt(t time.Time) trace.Sample {
	t = t.UTC()
	midnight := time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, time.UTC)
	day := midnight.Unix() / 86400
	slot := int(t.Sub(midnight) / p.period)
	if s, e, ok := p.downWindow(day); ok && slot >= s && slot < e {
		return trace.Sample{Up: false}
	}
	if p.perturbRate > 0 && !t.Before(p.perturbFrom) {
		h := mix64(p.seed ^ 0xA24BAED4963EE407 ^ uint64(day)*0x9E3779B97F4A7C15 ^ uint64(slot)*0x94D049BB133111EB)
		if unit(h) < p.perturbRate {
			return trace.Sample{Up: false}
		}
	}
	hour := float64(t.Sub(midnight)) / float64(time.Hour)
	diurnal := 0.5 * (1 + math.Cos(2*math.Pi*(hour-p.peakHour)/24))
	cpu := p.baseCPU + (p.peakCPU-p.baseCPU)*diurnal + p.noiseAmp*p.slotNoise(day, slot)
	cpu = math.Min(100, math.Max(0, cpu))
	free := p.totalMem * (p.memSlack - 0.3*cpu/100 + 0.05*p.slotNoise(day, slot+1<<20))
	free = math.Max(0, free)
	return trace.Sample{CPU: cpu, FreeMemMB: free, Up: true}
}

// downWindow returns the day's unavailability window in slot indices, if
// the class fails that day. One contiguous window per day keeps the URR
// structure the paper's semi-Markov model fits (Section 4).
func (p *profile) downWindow(day int64) (start, end int, ok bool) {
	slots := int(24 * time.Hour / p.period)
	h := mix64(p.seed ^ 0xD1B54A32D192ED03 ^ uint64(day)*0x9E3779B97F4A7C15)
	if unit(h) >= p.failPerDay {
		return 0, 0, false
	}
	h = mix64(h)
	start = int(h % uint64(slots))
	h = mix64(h)
	length := 1 + int(h%uint64(maxInt(1, slots/16)))
	end = minInt(start+length, slots)
	return start, end, true
}

// slotNoise returns deterministic jitter in [-1, 1) for a (day, slot) pair.
// It is hash-derived rather than stream-drawn so any slot can be evaluated
// out of order — history preload and live feed must agree exactly.
func (p *profile) slotNoise(day int64, slot int) float64 {
	h := mix64(p.seed ^ uint64(day)*0x9E3779B97F4A7C15 ^ uint64(slot)*0xBF58476D1CE4E5B9)
	return unit(h)*2 - 1
}

func (p *profile) buildHistory(todayMidnight time.Time, days int) {
	m := trace.NewMachine(fmt.Sprintf("profile-%03d", p.id), p.period)
	for d := days; d >= 1; d-- {
		date := todayMidnight.AddDate(0, 0, -d)
		day := trace.NewDay(date, p.period)
		for i := range day.Samples {
			day.Samples[i] = p.sampleAt(date.Add(time.Duration(i) * p.period))
		}
		if err := m.AddDay(day); err != nil {
			panic(err) // unreachable: days are appended in order
		}
	}
	p.machine = m
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit maps 64 random bits onto [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
