package obs

import (
	"testing"
	"time"
)

// feed folds n resolutions of (tr, survived) into the tracker for machine
// m01 under predictor SMP.
func feed(t *Tracker, n int, tr float64, survived bool) {
	for i := 0; i < n; i++ {
		t.RestoreResolution("m01", "SMP", tr, survived)
	}
}

func driftAlerts(alerts []Alert, kind string) []Alert {
	var out []Alert
	for _, a := range alerts {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func TestDriftSilentOnStableStream(t *testing.T) {
	tr := NewTracker()
	w := NewDriftWatcher(tr, nil, DriftConfig{})
	now := time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)
	for step := 0; step < 30; step++ {
		feed(tr, 8, 0.9, true) // Brier 0.01 per resolution, forever
		if fired := w.Step(now); len(fired) != 0 {
			t.Fatalf("step %d: stable stream fired %+v", step, fired)
		}
		now = now.Add(time.Minute)
	}
}

func TestDriftFiresOnPersistentShift(t *testing.T) {
	tr := NewTracker()
	ring := NewAlertRing(32)
	w := NewDriftWatcher(tr, ring, DriftConfig{})
	now := time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)

	// Baseline: 10 steps of well-calibrated predictions.
	for step := 0; step < 10; step++ {
		feed(tr, 8, 0.9, true)
		if fired := w.Step(now); len(fired) != 0 {
			t.Fatalf("baseline step %d fired %+v", step, fired)
		}
		now = now.Add(time.Minute)
	}

	// Regression: the same confident predictions now fail (Brier 0.81).
	var fired []Alert
	for step := 0; step < 10 && len(fired) == 0; step++ {
		feed(tr, 8, 0.9, false)
		fired = w.Step(now)
		now = now.Add(time.Minute)
	}
	drifts := driftAlerts(fired, AlertAccuracyDrift)
	if len(drifts) == 0 {
		t.Fatal("persistent Brier shift never fired the drift detector")
	}
	// Both the per-machine stream and the "_all" rollup watch the same
	// resolutions here, so the machine-scoped alert must be among them.
	var scoped *Alert
	for i := range drifts {
		if drifts[i].Machine == "m01" && drifts[i].Predictor == "SMP" {
			scoped = &drifts[i]
		}
	}
	if scoped == nil {
		t.Fatalf("no (m01, SMP)-scoped drift alert in %+v", drifts)
	}
	if scoped.Value <= scoped.Threshold {
		t.Errorf("alert value %.4f not above threshold %.4f", scoped.Value, scoped.Threshold)
	}
	if scoped.Seq == 0 {
		t.Error("ring-appended alert carries no sequence number")
	}
	if got := ring.Alerts(0); len(got) != len(fired) {
		t.Errorf("ring holds %d alerts, watcher fired %d", len(got), len(fired))
	}

	// Re-baseline: the stream stays at the degraded (but stable) level; the
	// detector must not page again every step.
	var refires int
	for step := 0; step < 20; step++ {
		feed(tr, 8, 0.9, false)
		refires += len(driftAlerts(w.Step(now), AlertAccuracyDrift))
		now = now.Add(time.Minute)
	}
	if refires != 0 {
		t.Errorf("stable post-change stream re-fired %d times", refires)
	}
}

func TestDriftMinResolvedGate(t *testing.T) {
	tr := NewTracker()
	w := NewDriftWatcher(tr, nil, DriftConfig{})
	now := time.Unix(0, 0).UTC()
	// 15 resolutions is under the default MinResolved of 16: the key is not
	// even sampled, no matter how bad the scores are.
	feed(tr, 15, 0.99, false)
	for step := 0; step < 10; step++ {
		if fired := w.Step(now); len(fired) != 0 {
			t.Fatalf("sub-MinResolved stream fired %+v", fired)
		}
	}
}

func TestDriftBatchesThinStreams(t *testing.T) {
	tr := NewTracker()
	w := NewDriftWatcher(tr, nil, DriftConfig{MinSteps: 2})
	now := time.Unix(0, 0).UTC()
	feed(tr, 16, 0.9, true) // first observation: establishes the stream
	w.Step(now)

	// Trickle fewer than MinStepResolved new resolutions per step: the
	// watcher must batch, not emit noisy single-point observations. With no
	// emissions there can be no alarm, however bad the trickle is.
	for step := 0; step < 7; step++ {
		feed(tr, 1, 0.9, false)
		if fired := w.Step(now); len(fired) != 0 {
			t.Fatalf("batched trickle fired %+v at step %d", fired, step)
		}
	}
}

func TestDriftCalibrationSkewLatches(t *testing.T) {
	tr := NewTracker()
	w := NewDriftWatcher(tr, nil, DriftConfig{CalibrationSkew: 0.2, Lambda: 100})
	now := time.Unix(0, 0).UTC()

	// Claimed 0.9 survival, observed 0.5: gap 0.4 over the 0.2 threshold.
	for i := 0; i < 16; i++ {
		tr.RestoreResolution("m01", "SMP", 0.9, i%2 == 0)
	}
	fired := driftAlerts(w.Step(now), AlertCalibrationSkew)
	if len(fired) == 0 {
		t.Fatal("0.4 calibration gap never fired against a 0.2 threshold")
	}
	// Latched: the gap persists, the alert does not re-fire.
	for step := 0; step < 5; step++ {
		for i := 0; i < 8; i++ {
			tr.RestoreResolution("m01", "SMP", 0.9, i%2 == 0)
		}
		if again := driftAlerts(w.Step(now), AlertCalibrationSkew); len(again) != 0 {
			t.Fatalf("latched skew re-fired %+v", again)
		}
	}
	// Re-arm: enough well-calibrated resolutions pull the lifetime gap under
	// half the threshold, unlatching the alert...
	for i := 0; i < 2000; i++ {
		tr.RestoreResolution("m01", "SMP", 0.9, i%10 != 0)
	}
	if again := driftAlerts(w.Step(now), AlertCalibrationSkew); len(again) != 0 {
		t.Fatalf("skew fired while under threshold: %+v", again)
	}
	// ...so a second systematic skew episode pages again.
	for i := 0; i < 4000; i++ {
		tr.RestoreResolution("m01", "SMP", 0.9, i%2 == 0)
	}
	if again := driftAlerts(w.Step(now), AlertCalibrationSkew); len(again) == 0 {
		t.Fatal("re-armed skew never re-fired")
	}
}

func TestDriftFleetOnly(t *testing.T) {
	tr := NewTracker()
	w := NewDriftWatcher(tr, nil, DriftConfig{FleetOnly: true})
	now := time.Unix(0, 0).UTC()
	for step := 0; step < 10; step++ {
		feed(tr, 8, 0.9, true)
		w.Step(now)
	}
	var fired []Alert
	for step := 0; step < 10 && len(fired) == 0; step++ {
		feed(tr, 8, 0.9, false)
		fired = w.Step(now)
	}
	if len(fired) == 0 {
		t.Fatal("fleet-only watcher never fired on a fleet-wide shift")
	}
	for _, a := range fired {
		if a.Machine != "_all" {
			t.Errorf("fleet-only watcher fired per-machine alert %+v", a)
		}
	}
}

func TestDriftNilSafety(t *testing.T) {
	var w *DriftWatcher
	if got := w.Step(time.Now()); got != nil {
		t.Errorf("nil watcher fired %+v", got)
	}
	w2 := NewDriftWatcher(nil, nil, DriftConfig{})
	if got := w2.Step(time.Now()); got != nil {
		t.Errorf("trackerless watcher fired %+v", got)
	}
}
