package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("queue_depth", "Depth.")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	// Re-registration returns the same instrument.
	if r.Counter("requests_total", "Requests served.") != c {
		t.Fatal("re-registering a counter minted a new instrument")
	}
	// Nil instruments are safe no-ops.
	var nc *Counter
	nc.Inc()
	nc.Add(7)
	if nc.Value() != 0 {
		t.Fatal("nil counter carries a value")
	}
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
	if nh.Count() != 0 || nh.Sum() != 0 {
		t.Fatal("nil histogram carries observations")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 1, 1, 1} // <=1: {0.5, 1}; <=2: {1.5}; <=4: {3}; +Inf: {100}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count/sum = %d/%g, want 5/106", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("p100 = %g, want 4 (+Inf bucket reports its lower bound)", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(9)
	sa, sb := a.snapshot(), b.snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 || sa.Sum != 11 {
		t.Fatalf("merged count/sum = %d/%g, want 3/11", sa.Count, sa.Sum)
	}
	if got := []uint64{sa.Counts[0], sa.Counts[1], sa.Counts[2]}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("merged buckets = %v", got)
	}
	other := NewHistogram([]float64{1, 3}).snapshot()
	if err := sa.Merge(other); err == nil {
		t.Fatal("merging mismatched bucket layouts should error")
	}
}

func TestRegistrySnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("reqs", "r", Label{"node", "a"}).Add(2)
	r2.Counter("reqs", "r", Label{"node", "a"}).Add(3)
	r2.Counter("reqs", "r", Label{"node", "b"}).Add(7)
	r1.Histogram("lat", "l", []float64{1}).Observe(0.5)
	r2.Histogram("lat", "l", []float64{1}).Observe(2)
	s := r1.Snapshot()
	if err := s.Merge(r2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if s.Counters[`reqs{node="a"}`] != 5 {
		t.Fatalf("merged counter = %d, want 5", s.Counters[`reqs{node="a"}`])
	}
	if s.Counters[`reqs{node="b"}`] != 7 {
		t.Fatalf("union counter = %d, want 7", s.Counters[`reqs{node="b"}`])
	}
	if h := s.Histograms["lat"]; h.Count != 2 || h.Sum != 2.5 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_requests_total", "Requests.", Label{"type", "query-tr"}).Add(12)
	r.Gauge("fgcs_up", "Up.").Set(1)
	h := r.Histogram("fgcs_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE fgcs_requests_total counter",
		`fgcs_requests_total{type="query-tr"} 12`,
		"fgcs_up 1",
		`fgcs_latency_seconds_bucket{le="0.1"} 1`,
		`fgcs_latency_seconds_bucket{le="1"} 2`,
		`fgcs_latency_seconds_bucket{le="+Inf"} 2`,
		"fgcs_latency_seconds_sum 0.55",
		"fgcs_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHotPathAllocs pins the zero-allocation guarantee of the hot-path
// operations; regressions here would undo the prediction engine's
// zero-alloc work the moment it is instrumented.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(2) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-5)
	}
}

// TestConcurrentSnapshotWhileRecord hammers the registry from writer
// goroutines while snapshots and text exposition run concurrently; run
// under -race this is the package's data-race gate.
func TestConcurrentSnapshotWhileRecord(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", []float64{0.001, 0.01, 0.1, 1})
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				g.Set(float64(i))
				h.Observe(float64((seed+i)%100) * 0.005)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if s.Counters["c"] > writers*perWriter {
				t.Errorf("counter overshot: %d", s.Counters["c"])
				return
			}
			var sb strings.Builder
			if err := r.WriteText(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := r.Snapshot()
	if s.Counters["c"] != writers*perWriter {
		t.Fatalf("final counter = %d, want %d", s.Counters["c"], writers*perWriter)
	}
	hs := s.Histograms["h"]
	if hs.Count != writers*perWriter {
		t.Fatalf("final histogram count = %d, want %d", hs.Count, writers*perWriter)
	}
	var cum uint64
	for _, n := range hs.Counts {
		cum += n
	}
	if cum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", cum, hs.Count)
	}
	if math.IsNaN(hs.Sum) {
		t.Fatal("histogram sum is NaN")
	}
}
