// Package obs is the runtime observability layer: a zero-dependency metrics
// registry (atomic counters, gauges and fixed-bucket histograms with
// mergeable snapshots) plus an online prediction-accuracy tracker that
// scores issued temporal-reliability predictions against the availability
// outcomes later observed by the monitor — the paper's Section 5 comparison
// of SMP against the linear predictors, maintained live while the system
// serves traffic instead of recomputed offline.
//
// Design constraints, in order:
//
//  1. Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe,
//     Tracker.Observe with no due predictions) allocate nothing and take no
//     locks beyond atomics, so instrumenting the prediction engine does not
//     undo its zero-alloc work.
//  2. Everything is registered up front; label sets are baked into the
//     metric identity at registration time so serving a sample never
//     formats a string.
//  3. Snapshots are plain values that merge by addition, so per-shard or
//     per-node registries can be folded into fleet-level totals.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, fixed at registration time.
type Label struct {
	Key   string
	Value string
}

// labelString renders a label set in Prometheus exposition order. extra is
// spliced in (used for histogram "le" labels).
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	s := "{"
	for i, l := range all {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + strconv.Quote(l.Value)
	}
	return s + "}"
}

// ------------------------------------------------------------- counter ----

// Counter is a monotonically increasing atomic counter. All methods are safe
// on a nil receiver (they no-op or return zero), so instrumentation points
// never need nil checks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --------------------------------------------------------------- gauge ----

// Gauge is an atomic float64 gauge (last value wins). Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// ----------------------------------------------------------- histogram ----

// Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf bucket) and tracks the running sum. Observe is lock-free and
// allocation-free; the bucket layout is fixed at construction. Nil-safe.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, updated by CAS
	count  atomic.Uint64
}

// NewHistogram builds a free-standing histogram (outside any registry) with
// the given sorted upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the histogram is small (tens
	// of buckets) so this is a handful of compares, no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot captures a consistent-enough view (each field individually
// atomic; cross-field skew is bounded by in-flight Observes).
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction, safe to share
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, mergeable with
// snapshots of histograms that share the same bucket layout.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Merge folds other into s. The bucket layouts must match.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(other.Bounds) != len(s.Bounds) {
		return fmt.Errorf("obs: merging histograms with different bucket layouts")
	}
	for i, b := range other.Bounds {
		if b != s.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bucket layouts")
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
	s.Count += other.Count
	return nil
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by linear
// interpolation within the bucket; the +Inf bucket reports its lower bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if i == len(s.Bounds) { // +Inf bucket
			return lower
		}
		upper := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lower + frac*(upper-lower)
	}
	if n := len(s.Bounds); n > 0 {
		return s.Bounds[n-1]
	}
	return 0
}

// LatencyBuckets is the default latency bucket layout (seconds): log-spaced
// from 1 µs to 10 s, which brackets everything from a cache hit to a cold
// multi-day kernel estimation or a cross-continent RPC.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
}

// ------------------------------------------------------------ registry ----

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (m *metric) id() string { return m.name + labelString(m.labels) }

// Registry holds named metrics. Registration (Counter/Gauge/Histogram)
// allocates and takes a lock; it is meant for startup. The returned
// instruments are then used lock-free. Registering the same (name, labels)
// twice returns the original instrument, so independent components can share
// a series.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byID  map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byID[m.id()]; ok {
		return existing
	}
	r.order = append(r.order, m)
	r.byID[m.id()] = m
	return m
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (nil selects LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets()
	}
	m := r.register(&metric{name: name, help: help, labels: labels, kind: kindHistogram, hist: NewHistogram(bounds)})
	return m.hist
}

// Snapshot is a mergeable point-in-time copy of a registry: counters and
// histogram buckets add, gauges keep the receiver's value when both sides
// carry the series.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			s.Counters[m.id()] = m.counter.Value()
		case kindGauge:
			s.Gauges[m.id()] = m.gauge.Value()
		case kindHistogram:
			s.Histograms[m.id()] = m.hist.snapshot()
		}
	}
	return s
}

// Merge folds other into s (series union; counters and histograms add).
func (s Snapshot) Merge(other Snapshot) error {
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		if _, ok := s.Gauges[k]; !ok {
			s.Gauges[k] = v
		}
	}
	for k, v := range other.Histograms {
		if mine, ok := s.Histograms[k]; ok {
			if err := mine.Merge(v); err != nil {
				return fmt.Errorf("%s: %w", k, err)
			}
			s.Histograms[k] = mine
		} else {
			cp := HistogramSnapshot{Bounds: v.Bounds, Counts: append([]uint64(nil), v.Counts...), Sum: v.Sum, Count: v.Count}
			s.Histograms[k] = cp
		}
	}
	return nil
}

// WriteText renders the registry in the Prometheus text exposition format,
// in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()
	seenHelp := make(map[string]bool)
	for _, m := range metrics {
		if !seenHelp[m.name] {
			seenHelp[m.name] = true
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typ); err != nil {
				return err
			}
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels), m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", m.name, labelString(m.labels), m.gauge.Value()); err != nil {
				return err
			}
		case kindHistogram:
			snap := m.hist.snapshot()
			var cum uint64
			for i, c := range snap.Counts {
				cum += c
				le := "+Inf"
				if i < len(snap.Bounds) {
					le = strconv.FormatFloat(snap.Bounds[i], 'g', -1, 64)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, labelString(m.labels, Label{"le", le}), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				m.name, labelString(m.labels), snap.Sum,
				m.name, labelString(m.labels), snap.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
