package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Serving-path SLOs, evaluated the SRE way: an error budget with
// multi-window burn rates. A burn rate of 1 means the service is consuming
// its error budget exactly as fast as the budget allows; the fast-burn page
// fires only when BOTH the short (default 5m) and long (default 1h) windows
// exceed the threshold, so a single bad scrape cannot page but a sustained
// burn cannot hide either. QPS floors and p99 ceilings ride on the same
// windows.
//
// The monitor consumes cumulative samples (request/error counters and a
// latency histogram snapshot at time T); windowed rates are deltas between
// the newest sample and the newest sample at least one window old. Feeding
// it from a virtual clock makes every derived figure deterministic, which
// is how the fleet simulator pins SLO evaluation byte-for-byte.

// SLO is one declarative serving-path objective. Zero-valued limits are
// disabled; zero-valued windows and burn thresholds take the defaults
// (5m/1h, 14.4 fast / 6 slow — the classic 30d-budget paging thresholds).
type SLO struct {
	// Name identifies the objective in statuses and gates.
	Name string `json:"name"`
	// QPSFloor is the minimum short-window throughput (0 disables).
	QPSFloor float64 `json:"qps_floor,omitempty"`
	// P99Ceiling is the maximum short-window p99 latency in seconds
	// (0 disables).
	P99Ceiling float64 `json:"p99_ceiling_seconds,omitempty"`
	// ErrorBudget is the allowed error fraction, e.g. 0.01 for 99% (0
	// disables burn-rate evaluation).
	ErrorBudget float64 `json:"error_budget,omitempty"`
	// FastBurn and SlowBurn are the paging thresholds on the burn rate.
	FastBurn float64 `json:"fast_burn,omitempty"`
	SlowBurn float64 `json:"slow_burn,omitempty"`
	// ShortWindow and LongWindow are the two evaluation windows.
	ShortWindow time.Duration `json:"short_window,omitempty"`
	LongWindow  time.Duration `json:"long_window,omitempty"`
}

func (s SLO) withDefaults() SLO {
	if s.FastBurn == 0 {
		s.FastBurn = 14.4
	}
	if s.SlowBurn == 0 {
		s.SlowBurn = 6
	}
	if s.ShortWindow == 0 {
		s.ShortWindow = 5 * time.Minute
	}
	if s.LongWindow == 0 {
		s.LongWindow = time.Hour
	}
	if s.LongWindow < s.ShortWindow {
		s.LongWindow = s.ShortWindow
	}
	return s
}

// ParseSLO parses a declarative SLO spec of the form
//
//	name:qps=50;p99=200ms;budget=0.01;fast=14.4;slow=6;short=5m;long=1h
//
// Every key is optional; unknown keys are an error.
func ParseSLO(spec string) (SLO, error) {
	name, rest, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return SLO{}, fmt.Errorf("obs: SLO spec %q: want name:key=value;...", spec)
	}
	out := SLO{Name: name}
	for _, part := range strings.Split(rest, ";") {
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return SLO{}, fmt.Errorf("obs: SLO spec %q: bad field %q", spec, part)
		}
		var err error
		switch k {
		case "qps":
			out.QPSFloor, err = strconv.ParseFloat(v, 64)
		case "p99":
			var d time.Duration
			d, err = time.ParseDuration(v)
			out.P99Ceiling = d.Seconds()
		case "budget":
			out.ErrorBudget, err = strconv.ParseFloat(v, 64)
		case "fast":
			out.FastBurn, err = strconv.ParseFloat(v, 64)
		case "slow":
			out.SlowBurn, err = strconv.ParseFloat(v, 64)
		case "short":
			out.ShortWindow, err = time.ParseDuration(v)
		case "long":
			out.LongWindow, err = time.ParseDuration(v)
		default:
			return SLO{}, fmt.Errorf("obs: SLO spec %q: unknown key %q", spec, k)
		}
		if err != nil {
			return SLO{}, fmt.Errorf("obs: SLO spec %q: field %q: %w", spec, part, err)
		}
	}
	return out, nil
}

// SLOSample is one cumulative measurement: totals as of time T, plus an
// optional cumulative latency histogram for the p99 ceiling.
type SLOSample struct {
	T        time.Time
	Requests uint64
	Errors   uint64
	Latency  *HistogramSnapshot
}

// SLOWindow is the evaluated view of one window.
type SLOWindow struct {
	// Window is the nominal window; Seconds the span actually covered
	// (shorter while history is still filling).
	Window  time.Duration `json:"window"`
	Seconds float64       `json:"seconds"`
	// QPS and ErrorRate are the windowed request rate and error fraction;
	// BurnRate is ErrorRate divided by the error budget.
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
	// P99Seconds is the windowed p99 latency (0 when no latency data).
	P99Seconds float64 `json:"p99_seconds,omitempty"`
}

// SLOStatus is the full evaluation of one SLO at a point in time.
type SLOStatus struct {
	Name  string    `json:"name"`
	Short SLOWindow `json:"short"`
	Long  SLOWindow `json:"long"`
	// BudgetConsumed is the fraction of the error budget consumed over the
	// monitor's whole lifetime (errors / (budget × requests)).
	BudgetConsumed float64 `json:"budget_consumed"`
	// QPSOK / P99OK report the floor and ceiling; FastBurnAlert and
	// SlowBurnAlert fire only when BOTH windows exceed the threshold.
	QPSOK         bool `json:"qps_ok"`
	P99OK         bool `json:"p99_ok"`
	FastBurnAlert bool `json:"fast_burn_alert"`
	SlowBurnAlert bool `json:"slow_burn_alert"`
	// OK is the rollup; Reason names the first violated condition.
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// SLOMonitor evaluates one SLO from periodically recorded cumulative
// samples. Concurrency-safe; nil-safe.
type SLOMonitor struct {
	mu      sync.Mutex
	slo     SLO
	samples []SLOSample // time-ordered, pruned past the long window
}

// NewSLOMonitor builds a monitor for the objective (defaults applied).
func NewSLOMonitor(slo SLO) *SLOMonitor {
	return &SLOMonitor{slo: slo.withDefaults()}
}

// SLO returns the monitored objective with defaults applied.
func (m *SLOMonitor) SLO() SLO {
	if m == nil {
		return SLO{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slo
}

// Record appends one cumulative sample. Out-of-order samples are dropped.
// History older than the long window is pruned, keeping one sample beyond
// the edge as the window baseline.
func (m *SLOMonitor) Record(s SLOSample) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.samples); n > 0 && !m.samples[n-1].T.Before(s.T) {
		return
	}
	m.samples = append(m.samples, s)
	edge := s.T.Add(-m.slo.LongWindow)
	cut := 0
	for cut+1 < len(m.samples) && m.samples[cut+1].T.Before(edge) {
		cut++
	}
	if cut > 0 {
		m.samples = append(m.samples[:0], m.samples[cut:]...)
	}
}

// window computes the delta view between the newest sample and the newest
// sample at least w old (falling back to the oldest retained).
func (m *SLOMonitor) window(w time.Duration) SLOWindow {
	out := SLOWindow{Window: w}
	if len(m.samples) < 2 {
		return out
	}
	newest := m.samples[len(m.samples)-1]
	edge := newest.T.Add(-w)
	base := m.samples[0]
	for _, s := range m.samples[1 : len(m.samples)-1] {
		if s.T.After(edge) {
			break
		}
		base = s
	}
	secs := newest.T.Sub(base.T).Seconds()
	if secs <= 0 {
		return out
	}
	out.Seconds = secs
	reqs := newest.Requests - base.Requests
	errs := newest.Errors - base.Errors
	out.QPS = float64(reqs) / secs
	if reqs > 0 {
		out.ErrorRate = float64(errs) / float64(reqs)
	}
	if m.slo.ErrorBudget > 0 {
		out.BurnRate = out.ErrorRate / m.slo.ErrorBudget
	}
	if newest.Latency != nil && base.Latency != nil {
		if d, ok := subtractHist(*newest.Latency, *base.Latency); ok && d.Count > 0 {
			out.P99Seconds = d.Quantile(0.99)
		}
	}
	return out
}

// subtractHist computes newest−base for cumulative snapshots sharing a
// bucket layout; counter resets (negative deltas) report not-ok.
func subtractHist(newest, base HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(newest.Bounds) != len(base.Bounds) || len(newest.Counts) != len(base.Counts) {
		return HistogramSnapshot{}, false
	}
	d := HistogramSnapshot{
		Bounds: newest.Bounds,
		Counts: make([]uint64, len(newest.Counts)),
		Sum:    newest.Sum - base.Sum,
	}
	if newest.Count < base.Count {
		return HistogramSnapshot{}, false
	}
	d.Count = newest.Count - base.Count
	for i := range newest.Counts {
		if newest.Counts[i] < base.Counts[i] {
			return HistogramSnapshot{}, false
		}
		d.Counts[i] = newest.Counts[i] - base.Counts[i]
	}
	return d, true
}

// Status evaluates the SLO over the recorded history.
func (m *SLOMonitor) Status() SLOStatus {
	if m == nil {
		return SLOStatus{OK: true}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := SLOStatus{
		Name:  m.slo.Name,
		Short: m.window(m.slo.ShortWindow),
		Long:  m.window(m.slo.LongWindow),
		QPSOK: true, P99OK: true,
	}
	if n := len(m.samples); n > 0 && m.slo.ErrorBudget > 0 && m.samples[n-1].Requests > 0 {
		newest := m.samples[n-1]
		st.BudgetConsumed = float64(newest.Errors) / (m.slo.ErrorBudget * float64(newest.Requests))
	}
	// Evaluate only once a full short window of history exists: a monitor
	// two samples into its life has rates, but no basis for paging.
	warm := st.Short.Seconds >= m.slo.ShortWindow.Seconds()
	if warm {
		if m.slo.QPSFloor > 0 && st.Short.QPS < m.slo.QPSFloor {
			st.QPSOK = false
		}
		if m.slo.P99Ceiling > 0 && st.Short.P99Seconds > m.slo.P99Ceiling {
			st.P99OK = false
		}
		if m.slo.ErrorBudget > 0 {
			st.FastBurnAlert = st.Short.BurnRate > m.slo.FastBurn && st.Long.BurnRate > m.slo.FastBurn
			st.SlowBurnAlert = st.Short.BurnRate > m.slo.SlowBurn && st.Long.BurnRate > m.slo.SlowBurn
		}
	}
	st.OK = st.QPSOK && st.P99OK && !st.FastBurnAlert && !st.SlowBurnAlert
	switch {
	case !st.QPSOK:
		st.Reason = fmt.Sprintf("QPS %.2f below floor %.2f", st.Short.QPS, m.slo.QPSFloor)
	case !st.P99OK:
		st.Reason = fmt.Sprintf("p99 %.4fs above ceiling %.4fs", st.Short.P99Seconds, m.slo.P99Ceiling)
	case st.FastBurnAlert:
		st.Reason = fmt.Sprintf("fast burn: %.2fx budget in both windows (limit %.1fx)", st.Short.BurnRate, m.slo.FastBurn)
	case st.SlowBurnAlert:
		st.Reason = fmt.Sprintf("slow burn: %.2fx budget in both windows (limit %.1fx)", st.Long.BurnRate, m.slo.SlowBurn)
	}
	return st
}
