package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// samplePeerObs builds a realistic export: counters with escaped label
// values, gauges, a histogram, accuracy sums and alerts.
func samplePeerObs(peer string) *PeerObs {
	r := NewRegistry()
	r.Counter("fgcs_gateway_requests_total", "Gateway RPCs served, by request type.",
		Label{Key: "type", Value: "query-tr"}).Add(7)
	r.Counter("fgcs_gateway_requests_total", "Gateway RPCs served, by request type.",
		Label{Key: "type", Value: `odd"quoted\value`}).Add(3)
	r.Gauge("fgcs_ring_peers", "Peers on the ring.").Set(4)
	h := r.Histogram("fgcs_query_seconds", "Query latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.5} {
		h.Observe(v)
	}

	t := NewTracker()
	base := time.Date(2026, 6, 3, 23, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		t.RestoreResolution("m01", "SMP", 0.9, i%5 != 0)
		t.RestoreResolution("m02", "LAST", 0.6, i%3 != 0)
	}

	ring := NewAlertRing(8)
	ring.Append(Alert{Kind: AlertAccuracyDrift, Machine: "m01", Predictor: "SMP",
		Value: 0.2, Threshold: 0.05, Message: "Brier mean shifted up", Time: base.Add(time.Hour)})
	ring.Append(Alert{Kind: AlertShedRate, Value: 0.5, Threshold: 0.25,
		Message: "shed half the admissions", Time: base.Add(2 * time.Hour)})

	return ExportPeerObs(peer, r, t, ring)
}

func TestObsCodecRoundTrip(t *testing.T) {
	p := samplePeerObs("gw01")
	enc := p.EncodeBinary()
	dec, err := DecodeObsSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Peer != "gw01" {
		t.Errorf("peer %q after round trip", dec.Peer)
	}
	if dec.Resolved != p.Resolved || dec.Dropped != p.Dropped {
		t.Errorf("totals %d/%d, want %d/%d", dec.Resolved, dec.Dropped, p.Resolved, p.Dropped)
	}
	if len(dec.Accuracy) != len(p.Accuracy) {
		t.Fatalf("%d accuracy keys, want %d", len(dec.Accuracy), len(p.Accuracy))
	}
	if len(dec.Alerts) != 2 || dec.Alerts[0].Kind != AlertAccuracyDrift {
		t.Fatalf("alerts %+v", dec.Alerts)
	}
	if !dec.Alerts[0].Time.Equal(p.Alerts[0].Time) {
		t.Errorf("alert time %v, want %v", dec.Alerts[0].Time, p.Alerts[0].Time)
	}
	// The encoding is canonical: re-encoding the decoded snapshot must
	// reproduce the original bytes exactly.
	if re := dec.EncodeBinary(); !bytes.Equal(re, enc) {
		t.Error("re-encoded snapshot differs from the original bytes")
	}
}

func TestObsCodecNilSources(t *testing.T) {
	p := ExportPeerObs("gw00", nil, nil, nil)
	dec, err := DecodeObsSnapshot(p.EncodeBinary())
	if err != nil {
		t.Fatalf("decode of empty export: %v", err)
	}
	if dec.Peer != "gw00" || len(dec.Metrics.Counters) != 0 || len(dec.Accuracy) != 0 || len(dec.Alerts) != 0 {
		t.Errorf("empty export round-tripped to %+v", dec)
	}
}

func TestObsDecodeRejections(t *testing.T) {
	good := samplePeerObs("gw01").EncodeBinary()

	corrupt := func(mutate func([]byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mutate(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "magic"},
		{"short", good[:3], "magic"},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"bad version", corrupt(func(b []byte) []byte { b[4] = 99; return b }), "version"},
		{"trailing bytes", append(append([]byte(nil), good...), 0), "trailing"},
		{"truncated", good[:len(good)-5], "obs:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeObsSnapshot(tc.data); err == nil {
				t.Fatal("corrupt snapshot decoded")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestObsDecodeRejectsDuplicatesAndBadClaims(t *testing.T) {
	enc := func(p *PeerObs) []byte { return p.EncodeBinary() }

	// Duplicate series cannot be produced by EncodeBinary (maps dedupe), so
	// splice them by hand: encode one series, then duplicate its bytes and
	// bump the count.
	dupCounter := func() []byte {
		p := &PeerObs{Peer: "x", Metrics: emptySnapshot()}
		p.Metrics.Counters["fgcs_x_total"] = 1
		b := enc(p)
		// Layout: magic(4) version(1) peer(len+str) counterCount(uvarint=1)
		// series... — find the count byte right after the peer string.
		i := 5 + 1 + len("x")
		if b[i] != 1 {
			panic("layout drifted")
		}
		series := b[i+1 : i+1+1+len("fgcs_x_total")+1] // len byte + name + value uvarint
		out := append([]byte(nil), b[:i]...)
		out = append(out, 2)
		out = append(out, series...)
		out = append(out, series...)
		out = append(out, b[i+1+len(series):]...)
		return out
	}
	if _, err := DecodeObsSnapshot(dupCounter()); err == nil || !strings.Contains(err.Error(), "duplicate counter") {
		t.Errorf("duplicate counter accepted: %v", err)
	}

	// Histograms with non-increasing bounds are invalid on the wire even
	// though a local registry can never build one.
	nonInc := &PeerObs{Peer: "x", Metrics: emptySnapshot()}
	nonInc.Metrics.Histograms["fgcs_h"] = HistogramSnapshot{
		Bounds: []float64{1, 1}, Counts: []uint64{0, 0, 0},
	}
	if _, err := DecodeObsSnapshot(enc(nonInc)); err == nil || !strings.Contains(err.Error(), "not increasing") {
		t.Errorf("non-increasing bounds accepted: %v", err)
	}

	// A claimed element count larger than the remaining bytes must be
	// rejected before any allocation proportional to the claim.
	big := &PeerObs{Peer: "x", Metrics: emptySnapshot()}
	b := enc(big)
	i := 5 + 1 + len("x")
	b[i] = 0xFF // counters count 127... larger than the remaining handful of bytes
	if _, err := DecodeObsSnapshot(b); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Errorf("oversized claim accepted: %v", err)
	}

	// Oversized histogram layouts are capped regardless of payload size.
	wide := &PeerObs{Peer: "x", Metrics: emptySnapshot()}
	bounds := make([]float64, maxObsBounds+1)
	for j := range bounds {
		bounds[j] = float64(j)
	}
	wide.Metrics.Histograms["fgcs_h"] = HistogramSnapshot{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
	if _, err := DecodeObsSnapshot(enc(wide)); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Errorf("over-wide histogram accepted: %v", err)
	}
}

func TestFleetMergeCommutative(t *testing.T) {
	text := func(order []string) string {
		f := NewFleetSnapshot()
		for _, peer := range order {
			f.Add(samplePeerObs(peer), PeerStatus{Status: PeerOK})
		}
		var buf bytes.Buffer
		if err := f.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ab := text([]string{"gw01", "gw02"})
	ba := text([]string{"gw02", "gw01"})
	if ab != ba {
		t.Fatalf("merge order changed the rendered fleet snapshot:\n--- A,B ---\n%s--- B,A ---\n%s", ab, ba)
	}
}

func TestFleetMergeSumsAndStatuses(t *testing.T) {
	f := NewFleetSnapshot()
	f.Add(samplePeerObs("gw01"), PeerStatus{Status: PeerOK})
	f.Add(samplePeerObs("gw02"), PeerStatus{Status: PeerStale, AgeSeconds: 30, Err: "fetch timed out"})
	f.AddUnreachable("gw03", "connection refused")

	id := `fgcs_gateway_requests_total{type="query-tr"}`
	if got := f.Metrics.Counters[id]; got != 14 {
		t.Errorf("merged counter %s = %d, want 14 (7 per peer)", id, got)
	}
	if f.Resolved != 80 {
		t.Errorf("merged resolved %d, want 80", f.Resolved)
	}
	hist := f.Metrics.Histograms[`fgcs_query_seconds`]
	if hist.Count != 8 {
		t.Errorf("merged histogram count %d, want 8", hist.Count)
	}

	// Alerts carry their origin peer after the merge.
	for _, a := range f.Alerts {
		if a.Peer != "gw01" && a.Peer != "gw02" {
			t.Errorf("merged alert not stamped with a peer: %+v", a)
		}
	}

	// Accuracy rolls up per key: each peer contributed 20 resolutions to
	// (m01, SMP).
	for _, a := range f.AccuracySums() {
		if a.Machine == "m01" && a.Predictor == "SMP" && a.Resolved != 40 {
			t.Errorf("(m01,SMP) resolved %d, want 40", a.Resolved)
		}
	}

	v := f.View(0)
	if len(v.Peers) != 3 {
		t.Fatalf("%d peer rows, want 3", len(v.Peers))
	}
	// View sorts peers by name.
	for i, want := range []string{"gw01", "gw02", "gw03"} {
		if v.Peers[i].Peer != want {
			t.Errorf("peer row %d is %q, want %q", i, v.Peers[i].Peer, want)
		}
	}
	if v.Peers[2].Status != PeerUnreachable || v.Peers[2].Err != "connection refused" {
		t.Errorf("unreachable row %+v", v.Peers[2])
	}
	if v.AlertsTotal != 4 {
		t.Errorf("alerts total %d, want 4", v.AlertsTotal)
	}
}

func TestFleetViewAlertTruncationKeepsNewest(t *testing.T) {
	f := NewFleetSnapshot()
	p := &PeerObs{Peer: "gw01", Metrics: emptySnapshot()}
	for i := 1; i <= 6; i++ {
		p.Alerts = append(p.Alerts, Alert{Seq: uint64(i), Kind: AlertShedRate})
	}
	f.Add(p, PeerStatus{Status: PeerOK})
	v := f.View(2)
	if v.AlertsTotal != 6 {
		t.Errorf("alerts total %d, want 6", v.AlertsTotal)
	}
	if len(v.Alerts) != 2 || v.Alerts[0].Seq != 5 || v.Alerts[1].Seq != 6 {
		t.Errorf("truncated alerts %+v, want the newest (seq 5, 6)", v.Alerts)
	}
}

func TestFleetMergeHistogramLayoutConflict(t *testing.T) {
	a := &PeerObs{Peer: "gw01", Metrics: emptySnapshot()}
	a.Metrics.Histograms["fgcs_h"] = HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0, 0}}
	b := &PeerObs{Peer: "gw02", Metrics: emptySnapshot()}
	b.Metrics.Histograms["fgcs_h"] = HistogramSnapshot{Bounds: []float64{2}, Counts: []uint64{0, 0}}

	f := NewFleetSnapshot()
	f.Add(a, PeerStatus{Status: PeerOK})
	f.Add(b, PeerStatus{Status: PeerOK})
	if len(f.Peers) != 2 {
		t.Fatalf("%d peer rows", len(f.Peers))
	}
	// The conflict lands on the second peer's status row; the merge itself
	// survives.
	if f.Peers[1].Err == "" {
		t.Error("histogram layout conflict not recorded on the peer status row")
	}
}

// TestFleetWriteTextConformance checks the Prometheus text exposition
// invariants the fleet renderer promises: quoted and escaped label values,
// sorted series, and cumulative histogram buckets ending in a +Inf bucket
// equal to _count, with a _sum sample alongside.
func TestFleetWriteTextConformance(t *testing.T) {
	f := NewFleetSnapshot()
	f.Add(samplePeerObs("gw01"), PeerStatus{Status: PeerOK})
	f.Add(samplePeerObs("gw02"), PeerStatus{Status: PeerOK})
	var buf bytes.Buffer
	if err := f.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	if !strings.Contains(text, "fgcs_fleet_peers 2\n") {
		t.Error("missing fgcs_fleet_peers sample")
	}
	// Label escaping: the odd value must appear quoted with escapes, as
	// strconv.Quote renders it.
	if !strings.Contains(text, `type="odd\"quoted\\value"`) {
		t.Error("label value with quote and backslash not escaped")
	}
	// Series of one metric render in sorted label order.
	odd := strings.Index(text, `fgcs_gateway_requests_total{type="odd`)
	qtr := strings.Index(text, `fgcs_gateway_requests_total{type="query-tr"}`)
	if odd < 0 || qtr < 0 || odd > qtr {
		t.Errorf("counter series not in sorted order (odd at %d, query-tr at %d)", odd, qtr)
	}

	// Histogram invariants: cumulative buckets, +Inf last and equal to
	// _count, a _sum sample present.
	var cums []uint64
	var infCum, count uint64
	sawSum := false
	lastLe := ""
	for _, line := range strings.Split(text, "\n") {
		val := line[strings.LastIndexByte(line, ' ')+1:]
		switch {
		case strings.HasPrefix(line, "fgcs_query_seconds_bucket{"):
			var cum uint64
			if _, err := fmt.Sscanf(val, "%d", &cum); err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			cums = append(cums, cum)
			start := strings.Index(line, `le="`) + 4
			lastLe = line[start : start+strings.IndexByte(line[start:], '"')]
			if lastLe == "+Inf" {
				infCum = cum
			}
		case strings.HasPrefix(line, "fgcs_query_seconds_sum"):
			sawSum = true
		case strings.HasPrefix(line, "fgcs_query_seconds_count"):
			if _, err := fmt.Sscanf(val, "%d", &count); err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
		}
	}
	if len(cums) != 4 { // 3 bounds + the implicit +Inf bucket
		t.Fatalf("%d bucket samples, want 4", len(cums))
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("bucket counts not cumulative: %v", cums)
		}
	}
	if lastLe != "+Inf" {
		t.Errorf("last bucket le=%q, want +Inf", lastLe)
	}
	if !sawSum {
		t.Error("no _sum sample for the merged histogram")
	}
	if count == 0 || infCum != count {
		t.Errorf("+Inf bucket %d != _count %d", infCum, count)
	}
}

func TestSpliceLabelSortsAndSplits(t *testing.T) {
	cases := []struct {
		labels, key, value, want string
	}{
		{"", "le", "0.1", `{le="0.1"}`},
		{`{type="a"}`, "le", "+Inf", `{le="+Inf",type="a"}`},
		{`{a="x,y",z="1"}`, "le", "5", `{a="x,y",le="5",z="1"}`},
		{`{a="quoted\"comma,inside"}`, "le", "5", `{a="quoted\"comma,inside",le="5"}`},
	}
	for _, tc := range cases {
		if got := spliceLabel(tc.labels, tc.key, tc.value); got != tc.want {
			t.Errorf("spliceLabel(%q) = %q, want %q", tc.labels, got, tc.want)
		}
	}
}
