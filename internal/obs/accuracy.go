package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracker scores temporal-reliability predictions against the availability
// outcomes later observed by the monitor. Each issued prediction claims a
// window [Start, Start+Length); the monitor feeds every classified sample
// back through Observe, and the tracker resolves a prediction as
//
//   - failed    — an unrecoverable availability state (S3/S4/S5) was
//     observed inside the window, or
//   - survived  — the window's deadline passed with no failure observed,
//
// exactly the empirical-TR definition the paper's Section 5 evaluation
// measures offline over test days. Per (machine, predictor) the tracker
// maintains cumulative and rolling accuracy, Brier score, the mean
// predicted TR against the empirical survival rate, and a 10-bucket
// calibration table.
//
// Observe with no due predictions is a mutex acquire plus a slice scan of
// the machine's pending window (usually a handful of entries) and allocates
// nothing, so it is safe to call from the monitor's sampling tick.
//
// Memory is bounded at fleet scale: rolling state grows lazily up to the
// rolling-window cap per (machine, predictor), and a RetentionPolicy
// (SetRetention + periodic EvictIdle calls) evicts machines that have gone
// idle — stopped sampling and querying, i.e. left the fleet — and enforces
// a hard machine-count cap. The "_all" aggregates are never evicted, so
// fleet-level totals survive churn.
type Tracker struct {
	mu       sync.Mutex
	machines map[string]*machineState // pending window + last activity, keyed by machine
	stats    map[trackerKey]*accStats
	keys     []trackerKey // sorted by (machine, predictor) for stable output

	maxPending int
	retention  RetentionPolicy
	resolved   uint64
	dropped    uint64
	evicted    uint64

	// resolutionSink, when set, is told about every resolved prediction so
	// the persistence layer can log it. Resolutions are collected under t.mu
	// and the sink invoked after release; on a host node Observe only runs
	// inside the persister's sample step, which serializes the sink's
	// appends against snapshots.
	resolutionSink func(machine, predictor string, tr float64, survived bool)
}

// CalibrationBuckets is the number of equal-width predicted-TR buckets in
// the calibration table.
const CalibrationBuckets = 10

// rollingWindow is the number of most-recent resolved predictions the
// rolling accuracy and Brier score are computed over.
const rollingWindow = 128

// defaultMaxPending bounds the per-machine queue of unresolved predictions;
// beyond it the oldest prediction is dropped (counted in DroppedPredictions).
const defaultMaxPending = 4096

type trackerKey struct {
	Machine   string
	Predictor string
}

// keyLess is the stable output order of t.keys.
func keyLess(a, b trackerKey) bool {
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	return a.Predictor < b.Predictor
}

type pendingPred struct {
	key      trackerKey
	tr       float64
	start    time.Time
	deadline time.Time
	failed   bool
}

// machineState is one machine's tracked state: its pending-prediction
// window and the timestamp of its most recent activity (sample observed or
// prediction issued), which drives idle eviction.
type machineState struct {
	preds      []pendingPred
	lastActive time.Time
}

// accStats accumulates resolved outcomes for one (machine, predictor).
type accStats struct {
	resolved uint64
	survived uint64
	correct  uint64 // thresholded prediction (tr >= 0.5) matched the outcome
	sumTR    float64
	brierSum float64 // sum of (tr - outcome)^2

	calibCount    [CalibrationBuckets]uint64
	calibSurvived [CalibrationBuckets]uint64
	calibSumTR    [CalibrationBuckets]float64

	// ring holds the most recent resolved predictions. It grows lazily —
	// a machine resolved a handful of times carries a handful of entries,
	// not the full window — and wraps at rollingWindow once full.
	ring     []ringEntry
	ringNext int
}

type ringEntry struct {
	tr       float64
	survived bool
}

// RetentionPolicy bounds tracker memory across fleet churn. The zero value
// retains everything (the single-node default).
type RetentionPolicy struct {
	// MaxMachines caps the number of machines with tracked state; beyond
	// it EvictIdle removes the least-recently-active machines first
	// (0 = unlimited).
	MaxMachines int
	// IdleTTL evicts a machine whose last activity is at least this old
	// at EvictIdle time — typically the registry TTL, so tracker state
	// follows registration lifetime (0 = never).
	IdleTTL time.Duration
}

// NewTracker builds an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		machines:   make(map[string]*machineState),
		stats:      make(map[trackerKey]*accStats),
		maxPending: defaultMaxPending,
	}
}

// SetRetention installs the memory-bounding policy. Enforcement is pull-
// based: the owner calls EvictIdle periodically (e.g. on the registry-TTL
// cadence); the hot RecordPrediction/Observe paths never scan.
func (t *Tracker) SetRetention(p RetentionPolicy) {
	t.mu.Lock()
	t.retention = p
	t.mu.Unlock()
}

// RecordPrediction registers one issued prediction: predictor claimed
// probability tr that machine stays available over [start, start+length).
func (t *Tracker) RecordPrediction(machine, predictor string, tr float64, start time.Time, length time.Duration) {
	if t == nil || length <= 0 {
		return
	}
	if tr < 0 {
		tr = 0
	} else if tr > 1 {
		tr = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ms, ok := t.machines[machine]
	if !ok {
		ms = &machineState{}
		t.machines[machine] = ms
	}
	if ms.lastActive.Before(start) {
		ms.lastActive = start
	}
	if len(ms.preds) >= t.maxPending {
		ms.preds = ms.preds[1:]
		t.dropped++
	}
	ms.preds = append(ms.preds, pendingPred{
		key:      trackerKey{Machine: machine, Predictor: predictor},
		tr:       tr,
		start:    start,
		deadline: start.Add(length),
	})
}

// Observe feeds one classified monitor sample: at time now the machine was
// in a recoverable state (up=true) or an unrecoverable one (up=false).
// Failures mark every pending prediction whose window covers now; any
// prediction whose deadline has passed resolves.
func (t *Tracker) Observe(machine string, now time.Time, up bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	var logged []pendingPred
	ms, ok := t.machines[machine]
	if !ok {
		t.mu.Unlock()
		return
	}
	if ms.lastActive.Before(now) {
		ms.lastActive = now
	}
	kept := ms.preds[:0]
	for i := range ms.preds {
		p := ms.preds[i]
		if !now.Before(p.deadline) {
			t.resolve(p, !p.failed)
			if t.resolutionSink != nil {
				logged = append(logged, p)
			}
			continue
		}
		if !up && !now.Before(p.start) {
			// Failure inside the window: the outcome is decided, but hold
			// the entry until its deadline so duplicate failures are cheap
			// no-ops — resolving early would double-count re-predictions.
			p.failed = true
		}
		kept = append(kept, p)
	}
	ms.preds = kept
	sink := t.resolutionSink
	t.mu.Unlock()
	if sink != nil {
		for _, p := range logged {
			sink(p.key.Machine, p.key.Predictor, p.tr, !p.failed)
		}
	}
}

// SetResolutionSink installs the persistence hook for resolved predictions.
// Call before samples start flowing.
func (t *Tracker) SetResolutionSink(fn func(machine, predictor string, tr float64, survived bool)) {
	t.mu.Lock()
	t.resolutionSink = fn
	t.mu.Unlock()
}

// RestoreResolution replays one logged resolution into the statistics, the
// exact fold resolve performed live (key plus "_all" aggregate), without
// firing the sink. Replaying the WAL's resolution records in order rebuilds
// every sum bit-for-bit because the TR values are persisted as exact
// float64 bits.
func (t *Tracker) RestoreResolution(machine, predictor string, tr float64, survived bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resolve(pendingPred{key: trackerKey{Machine: machine, Predictor: predictor}, tr: tr, failed: !survived}, survived)
}

// resolve folds one outcome into the (machine, predictor) stats and the
// all-machines aggregate. Callers hold t.mu.
func (t *Tracker) resolve(p pendingPred, survived bool) {
	t.resolved++
	for _, key := range [2]trackerKey{p.key, {Machine: "_all", Predictor: p.key.Predictor}} {
		st, ok := t.stats[key]
		if !ok {
			st = &accStats{}
			t.stats[key] = st
			// Sorted insert: at fleet scale re-sorting the whole key list
			// on every new (machine, predictor) is quadratic; a binary
			// search plus shift keeps registration linear.
			i := sort.Search(len(t.keys), func(i int) bool { return !keyLess(t.keys[i], key) })
			t.keys = append(t.keys, trackerKey{})
			copy(t.keys[i+1:], t.keys[i:])
			t.keys[i] = key
			// Every machine with stats participates in retention, even
			// when its stats arrived via RestoreResolution and no live
			// sample has touched it yet (lastActive stays zero until one
			// does, making it the first idle-eviction candidate).
			if key.Machine != "_all" {
				if _, ok := t.machines[key.Machine]; !ok {
					t.machines[key.Machine] = &machineState{}
				}
			}
		}
		st.add(p.tr, survived)
	}
}

func (st *accStats) add(tr float64, survived bool) {
	outcome := 0.0
	if survived {
		outcome = 1
		st.survived++
	}
	st.resolved++
	st.sumTR += tr
	d := tr - outcome
	st.brierSum += d * d
	if (tr >= 0.5) == survived {
		st.correct++
	}
	b := int(tr * CalibrationBuckets)
	if b >= CalibrationBuckets {
		b = CalibrationBuckets - 1
	}
	st.calibCount[b]++
	st.calibSumTR[b] += tr
	if survived {
		st.calibSurvived[b]++
	}
	if len(st.ring) < rollingWindow {
		st.ring = append(st.ring, ringEntry{tr: tr, survived: survived})
	} else {
		st.ring[st.ringNext] = ringEntry{tr: tr, survived: survived}
		st.ringNext = (st.ringNext + 1) % rollingWindow
	}
}

// EvictIdle enforces the retention policy: machines whose last activity is
// at least IdleTTL old are evicted, then the least-recently-active machines
// beyond MaxMachines. Eviction removes the machine's pending window and its
// per-machine stats; the "_all" aggregates keep every resolution ever
// folded. Pending predictions discarded by eviction count as dropped. The
// eviction order is deterministic (activity time, then machine name).
// Returns the number of machines evicted.
func (t *Tracker) EvictIdle(now time.Time) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.retention
	if p.MaxMachines <= 0 && p.IdleTTL <= 0 {
		return 0
	}
	evict := make(map[string]bool)
	type liveMachine struct {
		name string
		last time.Time
	}
	var live []liveMachine
	for name, ms := range t.machines {
		if p.IdleTTL > 0 && now.Sub(ms.lastActive) >= p.IdleTTL {
			evict[name] = true
			continue
		}
		live = append(live, liveMachine{name: name, last: ms.lastActive})
	}
	if p.MaxMachines > 0 && len(live) > p.MaxMachines {
		sort.Slice(live, func(i, j int) bool {
			if !live[i].last.Equal(live[j].last) {
				return live[i].last.Before(live[j].last)
			}
			return live[i].name < live[j].name
		})
		for _, m := range live[:len(live)-p.MaxMachines] {
			evict[m.name] = true
		}
	}
	if len(evict) == 0 {
		return 0
	}
	for name := range evict {
		t.dropped += uint64(len(t.machines[name].preds))
		delete(t.machines, name)
	}
	kept := t.keys[:0]
	for _, k := range t.keys {
		if evict[k.Machine] {
			delete(t.stats, k)
			continue
		}
		kept = append(kept, k)
	}
	t.keys = kept
	t.evicted += uint64(len(evict))
	return len(evict)
}

// Machines reports the number of machines with tracked state (pending
// predictions or per-machine stats; the "_all" aggregate is not a machine).
func (t *Tracker) Machines() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.machines)
}

// EvictedMachines reports the total machines removed by EvictIdle.
func (t *Tracker) EvictedMachines() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// CalibrationBucket is one row of the calibration table: of the predictions
// whose TR fell in [Lo, Hi), MeanTR is their average claim and Empirical the
// observed survival rate.
type CalibrationBucket struct {
	Lo        float64 `json:"lo"`
	Hi        float64 `json:"hi"`
	Count     uint64  `json:"count"`
	MeanTR    float64 `json:"mean_tr"`
	Empirical float64 `json:"empirical"`
}

// AccuracyStats is the resolved-outcome summary for one (machine,
// predictor) pair. Machine "_all" aggregates every machine.
type AccuracyStats struct {
	Machine   string `json:"machine"`
	Predictor string `json:"predictor"`
	// Resolved counts predictions whose window outcome has been observed;
	// Survived how many of those windows passed with no failure.
	Resolved uint64 `json:"resolved"`
	Survived uint64 `json:"survived"`
	// MeanTR is the average predicted TR; Empirical the observed survival
	// rate Survived/Resolved — the two quantities the paper compares.
	MeanTR    float64 `json:"mean_tr"`
	Empirical float64 `json:"empirical"`
	// Brier is the mean squared error of the probabilistic prediction
	// (lower is better; 0.25 is the score of a coin flip).
	Brier float64 `json:"brier"`
	// Accuracy is the fraction of predictions whose 0.5-thresholded claim
	// matched the outcome.
	Accuracy float64 `json:"accuracy"`
	// RollingBrier and RollingAccuracy cover only the most recent
	// RollingWindowSize resolved predictions.
	RollingBrier    float64 `json:"rolling_brier"`
	RollingAccuracy float64 `json:"rolling_accuracy"`
	// Calibration is the 10-bucket reliability table.
	Calibration []CalibrationBucket `json:"calibration,omitempty"`
}

// RollingWindowSize reports how many resolved predictions back the rolling
// statistics.
func RollingWindowSize() int { return rollingWindow }

func (st *accStats) summary(key trackerKey) AccuracyStats {
	out := AccuracyStats{
		Machine:   key.Machine,
		Predictor: key.Predictor,
		Resolved:  st.resolved,
		Survived:  st.survived,
	}
	if st.resolved > 0 {
		n := float64(st.resolved)
		out.MeanTR = st.sumTR / n
		out.Empirical = float64(st.survived) / n
		out.Brier = st.brierSum / n
		out.Accuracy = float64(st.correct) / n
	}
	if len(st.ring) > 0 {
		var brier float64
		var correct int
		for i := 0; i < len(st.ring); i++ {
			e := st.ring[i]
			outcome := 0.0
			if e.survived {
				outcome = 1
			}
			d := e.tr - outcome
			brier += d * d
			if (e.tr >= 0.5) == e.survived {
				correct++
			}
		}
		out.RollingBrier = brier / float64(len(st.ring))
		out.RollingAccuracy = float64(correct) / float64(len(st.ring))
	}
	for b := 0; b < CalibrationBuckets; b++ {
		cb := CalibrationBucket{
			Lo:    float64(b) / CalibrationBuckets,
			Hi:    float64(b+1) / CalibrationBuckets,
			Count: st.calibCount[b],
		}
		if cb.Count > 0 {
			cb.MeanTR = st.calibSumTR[b] / float64(cb.Count)
			cb.Empirical = float64(st.calibSurvived[b]) / float64(cb.Count)
		}
		out.Calibration = append(out.Calibration, cb)
	}
	return out
}

// rollingBrier computes the Brier score over the ring and the number of
// entries backing it. Callers hold t.mu.
func (st *accStats) rollingBrier() (float64, int) {
	if len(st.ring) == 0 {
		return 0, 0
	}
	var sum float64
	for i := 0; i < len(st.ring); i++ {
		e := st.ring[i]
		outcome := 0.0
		if e.survived {
			outcome = 1
		}
		d := e.tr - outcome
		sum += d * d
	}
	return sum / float64(len(st.ring)), len(st.ring)
}

// RollingScore returns the rolling-window Brier score for one (machine,
// predictor) and the number of resolved predictions backing it (0 when
// nothing resolved yet). This is the selection signal the ensemble router
// reads per query, so it is a mutex acquire plus a bounded ring scan and
// allocates nothing.
func (t *Tracker) RollingScore(machine, predictor string) (brier float64, n int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[trackerKey{Machine: machine, Predictor: predictor}]
	if !ok {
		return 0, 0
	}
	return st.rollingBrier()
}

// RouteScore is one predictor's routing signal for one machine: the rolling
// Brier score, how many resolved predictions back it, and the cumulative
// resolved count (monotonic — the router's dwell clock, which must keep
// advancing after the rolling ring saturates).
type RouteScore struct {
	// Brier is the rolling-window Brier score (meaningless when N is 0).
	Brier float64
	// N is the number of rolling entries backing Brier (at most
	// RollingWindowSize).
	N int
	// Resolved is the cumulative resolved-prediction count.
	Resolved uint64
}

// RouteScores fills out[i] with the routing signal of predictors[i] on the
// machine, under one lock acquisition. out must be at least as long as
// predictors; entries for unseen (machine, predictor) pairs are zeroed.
// This is the ensemble router's per-query read, so it allocates nothing.
func (t *Tracker) RouteScores(machine string, predictors []string, out []RouteScore) {
	if t == nil {
		for i := range predictors {
			out[i] = RouteScore{}
		}
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, p := range predictors {
		st, ok := t.stats[trackerKey{Machine: machine, Predictor: p}]
		if !ok {
			out[i] = RouteScore{}
			continue
		}
		brier, n := st.rollingBrier()
		out[i] = RouteScore{Brier: brier, N: n, Resolved: st.resolved}
	}
}

// WinCounts reports, for each predictor, the number of machines on which
// that predictor currently holds the best (lowest) rolling Brier score, and
// the number of machines where any predictor was eligible. Only predictors
// with at least minResolved rolling entries compete on a machine; ties go to
// the lexicographically smallest predictor name so the result is
// deterministic. The "_all" aggregate rows are excluded. Counts (rather than
// rates) let fleet-level callers merge the tallies of many trackers before
// dividing.
func (t *Tracker) WinCounts(minResolved int) (wins map[string]uint64, machines int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	wins = make(map[string]uint64)
	bestName := ""
	bestBrier := 0.0
	flush := func() {
		if bestName != "" {
			wins[bestName]++
			machines++
		}
		bestName = ""
	}
	current := ""
	for _, key := range t.keys { // sorted by (machine, predictor)
		if key.Machine == "_all" {
			continue
		}
		if key.Machine != current {
			flush()
			current = key.Machine
		}
		brier, n := t.stats[key].rollingBrier()
		if n < minResolved || n == 0 {
			continue
		}
		if bestName == "" || brier < bestBrier {
			bestName, bestBrier = key.Predictor, brier
		}
	}
	flush()
	return wins, machines
}

// WinRates reports, for each predictor, the fraction of machines on which
// that predictor currently holds the best (lowest) rolling Brier score —
// WinCounts normalized by the eligible-machine count. Machines with no
// eligible predictor do not count toward the denominator.
func (t *Tracker) WinRates(minResolved int) map[string]float64 {
	if t == nil {
		return nil
	}
	wins, machines := t.WinCounts(minResolved)
	if machines == 0 {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(wins))
	for name, w := range wins {
		out[name] = float64(w) / float64(machines)
	}
	return out
}

// Stats returns the summary for one (machine, predictor), zero-valued when
// nothing resolved yet. Machine "_all" aggregates across machines.
func (t *Tracker) Stats(machine, predictor string) AccuracyStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stats[trackerKey{Machine: machine, Predictor: predictor}]
	if !ok {
		return AccuracyStats{Machine: machine, Predictor: predictor}
	}
	return st.summary(trackerKey{Machine: machine, Predictor: predictor})
}

// All returns every (machine, predictor) summary in sorted order.
func (t *Tracker) All() []AccuracyStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]AccuracyStats, 0, len(t.keys))
	for _, key := range t.keys {
		out = append(out, t.stats[key].summary(key))
	}
	return out
}

// Pending reports the number of unresolved predictions across machines.
func (t *Tracker) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ms := range t.machines {
		n += len(ms.preds)
	}
	return n
}

// Resolved reports the total number of resolved predictions (each counted
// once, not per aggregate).
func (t *Tracker) Resolved() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resolved
}

// DroppedPredictions reports predictions evicted unresolved by the
// per-machine pending cap.
func (t *Tracker) DroppedPredictions() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteText renders the per-(machine, predictor) accuracy series in the
// Prometheus text exposition format, complementing Registry.WriteText on a
// /metrics endpoint. Calibration tables are omitted here (they are served
// via the QueryStats RPC); the headline series are enough for dashboards.
func (t *Tracker) WriteText(w io.Writer) error {
	all := t.All()
	t.mu.Lock()
	pending := 0
	for _, ms := range t.machines {
		pending += len(ms.preds)
	}
	resolved, dropped := t.resolved, t.dropped
	t.mu.Unlock()
	if _, err := fmt.Fprintf(w,
		"# HELP fgcs_accuracy_pending_predictions Unresolved TR predictions awaiting their window outcome.\n"+
			"# TYPE fgcs_accuracy_pending_predictions gauge\nfgcs_accuracy_pending_predictions %d\n"+
			"# HELP fgcs_accuracy_resolved_total TR predictions matched against an observed outcome.\n"+
			"# TYPE fgcs_accuracy_resolved_total counter\nfgcs_accuracy_resolved_total %d\n"+
			"# HELP fgcs_accuracy_dropped_total Predictions evicted unresolved by the pending cap.\n"+
			"# TYPE fgcs_accuracy_dropped_total counter\nfgcs_accuracy_dropped_total %d\n",
		pending, resolved, dropped); err != nil {
		return err
	}
	if len(all) == 0 {
		return nil
	}
	series := []struct {
		name, help string
		value      func(AccuracyStats) string
	}{
		{"fgcs_accuracy_resolved", "Resolved predictions per machine and predictor.",
			func(s AccuracyStats) string { return strconv.FormatUint(s.Resolved, 10) }},
		{"fgcs_accuracy_mean_tr", "Mean predicted temporal reliability.",
			func(s AccuracyStats) string { return strconv.FormatFloat(s.MeanTR, 'g', -1, 64) }},
		{"fgcs_accuracy_empirical_tr", "Observed survival rate of predicted windows.",
			func(s AccuracyStats) string { return strconv.FormatFloat(s.Empirical, 'g', -1, 64) }},
		{"fgcs_accuracy_brier", "Cumulative Brier score (lower is better).",
			func(s AccuracyStats) string { return strconv.FormatFloat(s.Brier, 'g', -1, 64) }},
		{"fgcs_accuracy_rolling_brier", "Brier score over the rolling window.",
			func(s AccuracyStats) string { return strconv.FormatFloat(s.RollingBrier, 'g', -1, 64) }},
		{"fgcs_accuracy_correct_rate", "Fraction of 0.5-thresholded predictions matching the outcome.",
			func(s AccuracyStats) string { return strconv.FormatFloat(s.Accuracy, 'g', -1, 64) }},
	}
	for _, sr := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", sr.name, sr.help, sr.name); err != nil {
			return err
		}
		for _, s := range all {
			labels := labelString([]Label{{"machine", s.Machine}, {"predictor", s.Predictor}})
			if _, err := fmt.Fprintf(w, "%s%s %s\n", sr.name, labels, sr.value(s)); err != nil {
				return err
			}
		}
	}
	return nil
}
