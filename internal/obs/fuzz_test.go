package obs

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeObsSnapshot hammers the peer-obs wire decoder — the code path a
// federated gateway runs on every query-obs response from a (possibly
// compromised) peer — with arbitrary bytes. No input may panic it, and any
// input it accepts must re-encode to a canonical fixpoint: encode(decode(x))
// decodes again and re-encodes byte-identically.
func FuzzDecodeObsSnapshot(f *testing.F) {
	// A full export: counters, gauges, a histogram, accuracy sums, alerts.
	f.Add(samplePeerObs("gw01").EncodeBinary())
	// A completely empty export from nil sources.
	f.Add(ExportPeerObs("", nil, nil, nil).EncodeBinary())
	// Alerts only, including an awkward escaped message and zero time.
	ring := NewAlertRing(4)
	ring.Append(Alert{Kind: AlertBreakerFlap, Message: `flap "rate" > 3\step`,
		Time: time.Date(2026, 6, 4, 1, 2, 3, 4, time.UTC)})
	ring.Append(Alert{Kind: AlertShedRate})
	f.Add(ExportPeerObs("gw02", nil, nil, ring).EncodeBinary())
	// Truncations and corruptions of a valid snapshot.
	good := samplePeerObs("gw03").EncodeBinary()
	f.Add(good[:len(good)/2])
	f.Add(append(append([]byte(nil), good...), 0x00))
	f.Add([]byte("FGOS"))
	f.Add([]byte{'F', 'G', 'O', 'S', 1, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeObsSnapshot(data)
		if err != nil {
			return
		}
		enc := p.EncodeBinary()
		q, err := DecodeObsSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot rejected: %v", err)
		}
		if again := q.EncodeBinary(); !bytes.Equal(again, enc) {
			t.Fatalf("canonical encoding is not a fixpoint:\n%x\n%x", enc, again)
		}
		// An accepted snapshot must also merge without panicking, however
		// adversarial its contents.
		fs := NewFleetSnapshot()
		fs.Add(p, PeerStatus{Status: PeerOK})
		fs.Add(q, PeerStatus{Status: PeerStale, AgeSeconds: 1})
		var buf bytes.Buffer
		if err := fs.WriteText(&buf); err != nil {
			t.Fatalf("merged fuzz snapshot failed to render: %v", err)
		}
	})
}
