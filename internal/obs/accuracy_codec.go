package obs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary snapshot of a Tracker's resolved statistics, for the durable
// snapshot payload. Pending (unresolved) predictions are deliberately not
// included: their outcome windows are tied to a live monitor, and a restart
// abandons them — the prediction is simply re-issued by the next query.
// Sums are stored as exact float64 bits, so a restored tracker reports
// bit-identical statistics.

var accMagic = [4]byte{'F', 'G', 'A', 'T'}

// accVersion is the tracker snapshot format version.
const accVersion = 1

func appendAccString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readAccString(p []byte) (string, []byte, error) {
	n, vn := binary.Uvarint(p)
	if vn <= 0 || n > uint64(len(p)-vn) {
		return "", nil, fmt.Errorf("obs: malformed string in tracker snapshot")
	}
	return string(p[vn : vn+int(n)]), p[vn+int(n):], nil
}

func readAccUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("obs: malformed varint in tracker snapshot")
	}
	return v, p[n:], nil
}

func readAccFloat(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("obs: short float in tracker snapshot")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
}

// ExportBinary serializes the tracker's resolved statistics.
func (t *Tracker) ExportBinary() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := append([]byte(nil), accMagic[:]...)
	buf = append(buf, accVersion)
	buf = binary.AppendUvarint(buf, t.resolved)
	buf = binary.AppendUvarint(buf, t.dropped)
	buf = binary.AppendUvarint(buf, uint64(len(t.keys)))
	for _, key := range t.keys {
		st := t.stats[key]
		buf = appendAccString(buf, key.Machine)
		buf = appendAccString(buf, key.Predictor)
		buf = binary.AppendUvarint(buf, st.resolved)
		buf = binary.AppendUvarint(buf, st.survived)
		buf = binary.AppendUvarint(buf, st.correct)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.sumTR))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.brierSum))
		for b := 0; b < CalibrationBuckets; b++ {
			buf = binary.AppendUvarint(buf, st.calibCount[b])
			buf = binary.AppendUvarint(buf, st.calibSurvived[b])
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.calibSumTR[b]))
		}
		buf = binary.AppendUvarint(buf, uint64(len(st.ring)))
		buf = binary.AppendUvarint(buf, uint64(st.ringNext))
		// Occupied entries live at indices [0, len(ring)): the ring grows
		// lazily, so before it wraps those are exactly the filled slots,
		// and once it wraps its length is the whole window.
		for i := 0; i < len(st.ring); i++ {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.ring[i].tr))
			if st.ring[i].survived {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// RestoreBinary replaces the tracker's resolved statistics with a snapshot
// produced by ExportBinary. Pending predictions are untouched (normally
// empty at restore time).
func (t *Tracker) RestoreBinary(data []byte) error {
	if len(data) < 5 || [4]byte(data[:4]) != accMagic {
		return fmt.Errorf("obs: bad tracker snapshot magic")
	}
	if data[4] != accVersion {
		return fmt.Errorf("obs: tracker snapshot version %d", data[4])
	}
	p := data[5:]
	var err error
	var resolved, dropped, nkeys uint64
	if resolved, p, err = readAccUvarint(p); err != nil {
		return err
	}
	if dropped, p, err = readAccUvarint(p); err != nil {
		return err
	}
	if nkeys, p, err = readAccUvarint(p); err != nil {
		return err
	}
	if nkeys > uint64(len(p)) {
		return fmt.Errorf("obs: tracker snapshot claims %d keys in %d bytes", nkeys, len(p))
	}
	stats := make(map[trackerKey]*accStats, nkeys)
	keys := make([]trackerKey, 0, nkeys)
	for k := uint64(0); k < nkeys; k++ {
		var key trackerKey
		if key.Machine, p, err = readAccString(p); err != nil {
			return err
		}
		if key.Predictor, p, err = readAccString(p); err != nil {
			return err
		}
		st := &accStats{}
		if st.resolved, p, err = readAccUvarint(p); err != nil {
			return err
		}
		if st.survived, p, err = readAccUvarint(p); err != nil {
			return err
		}
		if st.correct, p, err = readAccUvarint(p); err != nil {
			return err
		}
		if st.sumTR, p, err = readAccFloat(p); err != nil {
			return err
		}
		if st.brierSum, p, err = readAccFloat(p); err != nil {
			return err
		}
		for b := 0; b < CalibrationBuckets; b++ {
			if st.calibCount[b], p, err = readAccUvarint(p); err != nil {
				return err
			}
			if st.calibSurvived[b], p, err = readAccUvarint(p); err != nil {
				return err
			}
			if st.calibSumTR[b], p, err = readAccFloat(p); err != nil {
				return err
			}
		}
		var ringLen, ringNext uint64
		if ringLen, p, err = readAccUvarint(p); err != nil {
			return err
		}
		if ringNext, p, err = readAccUvarint(p); err != nil {
			return err
		}
		if ringLen > rollingWindow || ringNext >= rollingWindow {
			return fmt.Errorf("obs: tracker snapshot ring out of range")
		}
		st.ring = make([]ringEntry, ringLen)
		// The wrap cursor only means anything once the ring is full; a
		// partially-filled ring appends at its length (snapshots from the
		// fixed-array format stored the append position here).
		if int(ringLen) == rollingWindow {
			st.ringNext = int(ringNext)
		}
		for i := 0; i < len(st.ring); i++ {
			if st.ring[i].tr, p, err = readAccFloat(p); err != nil {
				return err
			}
			if len(p) < 1 {
				return fmt.Errorf("obs: short ring entry in tracker snapshot")
			}
			st.ring[i].survived = p[0] == 1
			p = p[1:]
		}
		if _, dup := stats[key]; dup {
			return fmt.Errorf("obs: duplicate key in tracker snapshot")
		}
		stats[key] = st
		keys = append(keys, key)
	}
	if len(p) != 0 {
		return fmt.Errorf("obs: trailing bytes in tracker snapshot")
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Machine != keys[j].Machine {
			return keys[i].Machine < keys[j].Machine
		}
		return keys[i].Predictor < keys[j].Predictor
	})
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resolved = resolved
	t.dropped = dropped
	t.stats = stats
	t.keys = keys
	// Restored machines join the retention scan (zero activity until a
	// live sample or prediction touches them); existing pending windows
	// are untouched.
	for _, key := range keys {
		if key.Machine == "_all" {
			continue
		}
		if _, ok := t.machines[key.Machine]; !ok {
			t.machines[key.Machine] = &machineState{}
		}
	}
	return nil
}
