package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Alert kinds emitted by the observability plane. Each kind names the signal
// that crossed its threshold; the Alert carries the observed value and the
// threshold so dashboards never need to re-derive either.
const (
	// AlertAccuracyDrift fires when the Page–Hinkley detector over a
	// (machine, predictor) Brier stream decides the prediction error's mean
	// has shifted upward — the predictor got worse, not just unlucky.
	AlertAccuracyDrift = "accuracy-drift"
	// AlertCalibrationSkew fires when a predictor's mean claimed TR and the
	// empirically observed survival rate drift apart beyond the configured
	// gap — the predictor is systematically over- or under-promising.
	AlertCalibrationSkew = "calibration-skew"
	// AlertShedRate fires when the server sheds more than the configured
	// fraction of admissions over an evaluation step.
	AlertShedRate = "shed-rate"
	// AlertBreakerFlap fires when circuit breakers open repeatedly within an
	// evaluation step — a peer or machine is oscillating, not merely down.
	AlertBreakerFlap = "breaker-flap"
)

// Alert is one typed observability event. Alerts are values: immutable once
// appended, mergeable across peers (the Peer field is stamped at aggregation
// time), and small enough to ship in every query-obs response.
type Alert struct {
	// Seq is the ring-local monotonic sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// Kind is one of the Alert* constants.
	Kind string `json:"kind"`
	// Peer is the reporting peer, stamped during fleet aggregation (empty on
	// the originating node).
	Peer string `json:"peer,omitempty"`
	// Machine and Predictor scope accuracy alerts; operational alerts leave
	// them empty.
	Machine   string `json:"machine,omitempty"`
	Predictor string `json:"predictor,omitempty"`
	// Value is the observed statistic and Threshold the configured limit it
	// crossed.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Message is a one-line human rendering of the condition.
	Message string `json:"message"`
	// Time is when the detector fired.
	Time time.Time `json:"time"`
}

// defaultAlertCap bounds the alert ring when the caller passes no capacity.
const defaultAlertCap = 256

// maxAlertCap is the hard ceiling on ring capacity, shared with the binary
// decoder so an untrusted peer cannot make us retain an unbounded backlog.
const maxAlertCap = 65536

// AlertRing is a bounded, concurrency-safe ring of the most recent alerts.
// Appends never block and never grow beyond the capacity; older alerts fall
// off. All methods are nil-safe so instrumentation points need no checks.
type AlertRing struct {
	mu    sync.Mutex
	buf   []Alert
	cap   int
	next  uint64 // total appended; next Seq is next+1
	onNew func(Alert)
}

// NewAlertRing builds a ring holding up to capacity alerts (<=0 selects the
// default of 256; capped at 65536).
func NewAlertRing(capacity int) *AlertRing {
	if capacity <= 0 {
		capacity = defaultAlertCap
	}
	if capacity > maxAlertCap {
		capacity = maxAlertCap
	}
	return &AlertRing{cap: capacity}
}

// OnAppend installs a hook invoked (outside the ring lock) for every appended
// alert — the flight-recorder WARN bridge. Install before traffic starts.
func (r *AlertRing) OnAppend(fn func(Alert)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onNew = fn
	r.mu.Unlock()
}

// Append stamps the alert with the next sequence number, stores it, and
// returns the stamped copy. On a nil ring it returns the alert unstamped.
func (r *AlertRing) Append(a Alert) Alert {
	if r == nil {
		return a
	}
	r.mu.Lock()
	r.next++
	a.Seq = r.next
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, a)
	} else {
		r.buf[int((r.next-1)%uint64(r.cap))] = a
	}
	fn := r.onNew
	r.mu.Unlock()
	if fn != nil {
		fn(a)
	}
	return a
}

// Alerts returns the retained alerts in sequence order, oldest first. A
// limit > 0 keeps only the newest limit entries.
func (r *AlertRing) Alerts(limit int) []Alert {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Alert, 0, len(r.buf))
	if len(r.buf) < r.cap {
		out = append(out, r.buf...)
	} else {
		start := int(r.next % uint64(r.cap))
		out = append(out, r.buf[start:]...)
		out = append(out, r.buf[:start]...)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Total reports how many alerts have ever been appended (retained or not).
func (r *AlertRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// AlertsHandler serves the ring as a JSON array, oldest first. Mount it at
// /alerts. A nil ring serves an empty array.
func AlertsHandler(r *AlertRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		alerts := r.Alerts(0)
		if alerts == nil {
			alerts = []Alert{}
		}
		_ = json.NewEncoder(w).Encode(alerts)
	})
}
