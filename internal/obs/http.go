package obs

import (
	"fmt"
	"net/http"
)

// Handler serves the registry (and, when non-nil, the accuracy tracker)
// in the Prometheus text exposition format. Mount it at /metrics.
func Handler(r *Registry, t *Tracker) http.Handler {
	return FleetHandler(r, t, nil)
}

// FleetHandler serves the local registry and tracker like Handler, and
// additionally answers ?scope=fleet with the merged fleet snapshot obtained
// from the fetch callback (a federated peer wires its fan-out here). With a
// nil fetch, fleet scope answers 404.
func FleetHandler(r *Registry, t *Tracker, fleet func(*http.Request) (*FleetSnapshot, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("scope") == "fleet" {
			if fleet == nil {
				http.Error(w, "fleet scope not available on this node", http.StatusNotFound)
				return
			}
			fs, err := fleet(req)
			if err != nil {
				http.Error(w, fmt.Sprintf("fleet aggregation: %v", err), http.StatusBadGateway)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = fs.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r != nil {
			if err := r.WriteText(w); err != nil {
				return
			}
		}
		if t != nil {
			_ = t.WriteText(w)
		}
	})
}

// HealthHandler answers liveness: 200 as long as the process serves HTTP.
// Mount it at /healthz.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyHandler answers readiness: 200 when check returns nil, 503 with the
// reason otherwise. Mount it at /readyz; wire check to the node's readiness
// predicate (WAL recovered, registry synced, ring converged).
func ReadyHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, fmt.Sprintf("not ready: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
}
