package obs

import (
	"net/http"
)

// Handler serves the registry (and, when non-nil, the accuracy tracker)
// in the Prometheus text exposition format. Mount it at /metrics.
func Handler(r *Registry, t *Tracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r != nil {
			if err := r.WriteText(w); err != nil {
				return
			}
		}
		if t != nil {
			_ = t.WriteText(w)
		}
	})
}
