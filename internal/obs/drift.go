package obs

import (
	"fmt"
	"math"
	"time"
)

// Accuracy-drift detection: an online Page–Hinkley test over each
// (machine, predictor) Brier stream, plus the "_all" fleet aggregates.
//
// The Page–Hinkley test (a one-sided CUSUM) watches a stream x_1, x_2, ...
// and maintains m_T = Σ (x_t − mean_t − δ) together with its running minimum
// M_T; the statistic PH = m_T − M_T measures how far the recent mean has
// risen above the historical one, discounted by the insensitivity δ. PH
// exceeding λ means the Brier score — the prediction error — has genuinely
// shifted upward, which is exactly the signal the ensemble router (ROADMAP
// item 1) needs to stop trusting a predictor.
//
// One observation x_t is the mean Brier of the resolutions that arrived
// since the previous emitted observation; a step emits nothing until at
// least MinStepResolved resolutions have accumulated, so thin streams are
// batched rather than fed one noisy point at a time. Built from cumulative
// sums (not the rolling ring), the stream is invariant to resolution
// interleaving across machines and therefore byte-deterministic in the
// fleet simulator.

// DriftConfig tunes the detector. The zero value of every field selects the
// documented default; the zero config watches per-machine streams and fleet
// aggregates alike.
type DriftConfig struct {
	// Delta is the Page–Hinkley insensitivity δ: mean shifts smaller than
	// this are ignored (default 0.005 Brier).
	Delta float64
	// Lambda is the alarm threshold λ on the PH statistic (default 0.05).
	Lambda float64
	// MinSteps is the minimum number of emitted observations before a
	// stream may alarm (default 6) — a fresh stream must establish a
	// baseline first.
	MinSteps int
	// MinResolved ignores keys with fewer lifetime resolutions
	// (default 16).
	MinResolved uint64
	// MinStepResolved batches at least this many new resolutions into one
	// observation (default 8).
	MinStepResolved uint64
	// FleetOnly restricts watching to the "_all" aggregate streams,
	// skipping per-machine keys (default false: watch both).
	FleetOnly bool
	// CalibrationSkew, when > 0, also fires a calibration-skew alert when
	// |mean claimed TR − empirical survival| exceeds it for a key with at
	// least MinResolved resolutions. The alert latches and re-arms only
	// after the gap falls back under half the threshold.
	CalibrationSkew float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Delta == 0 {
		c.Delta = 0.005
	}
	if c.Lambda == 0 {
		c.Lambda = 0.05
	}
	if c.MinSteps == 0 {
		c.MinSteps = 6
	}
	if c.MinResolved == 0 {
		c.MinResolved = 16
	}
	if c.MinStepResolved == 0 {
		c.MinStepResolved = 8
	}
	return c
}

// phState is the Page–Hinkley accumulator for one stream.
type phState struct {
	n     int     // emitted observations
	mean  float64 // running mean of x
	mT    float64 // Σ (x − mean − δ)
	minMT float64 // running min of mT

	lastResolved uint64  // cumulative counters at the last emitted observation
	lastBrier    float64 //
	skewFired    bool    // calibration-skew latch
	stamp        uint64  // last Step that saw this key, for eviction sweeps
}

// DriftWatcher runs the Page–Hinkley test over a Tracker's accuracy streams
// and appends typed alerts to a ring. Step is the only entry point; call it
// periodically (each simulator tick, or every evaluation interval on a live
// node). Detector state follows tracker retention: keys evicted from the
// tracker are swept from the watcher.
type DriftWatcher struct {
	t    *Tracker
	ring *AlertRing
	cfg  DriftConfig

	states map[trackerKey]*phState
	steps  uint64
}

// NewDriftWatcher builds a watcher over t that appends alerts to ring (which
// may be nil; Step still reports fired alerts to its caller).
func NewDriftWatcher(t *Tracker, ring *AlertRing, cfg DriftConfig) *DriftWatcher {
	return &DriftWatcher{t: t, ring: ring, cfg: cfg.withDefaults(), states: make(map[trackerKey]*phState)}
}

// driftSample is one key's cumulative accuracy counters, captured under the
// tracker lock.
type driftSample struct {
	key       trackerKey
	resolved  uint64
	brierSum  float64
	meanTR    float64
	empirical float64
}

// driftSamples snapshots the watched keys in sorted order. Cumulative sums
// only: they are order-invariant under concurrent resolution, unlike the
// rolling ring of the "_all" aggregates.
func (t *Tracker) driftSamples(fleetOnly bool, minResolved uint64) []driftSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]driftSample, 0, len(t.keys))
	for _, key := range t.keys {
		if fleetOnly && key.Machine != "_all" {
			continue
		}
		st := t.stats[key]
		if st.resolved < minResolved {
			continue
		}
		s := driftSample{key: key, resolved: st.resolved, brierSum: st.brierSum}
		n := float64(st.resolved)
		s.meanTR = st.sumTR / n
		s.empirical = float64(st.survived) / n
		out = append(out, s)
	}
	return out
}

// Step evaluates every watched stream once and returns the alerts fired (in
// sorted key order, so a single-threaded caller gets deterministic output).
// Nil-safe.
func (w *DriftWatcher) Step(now time.Time) []Alert {
	if w == nil || w.t == nil {
		return nil
	}
	w.steps++
	samples := w.t.driftSamples(w.cfg.FleetOnly, w.cfg.MinResolved)
	var fired []Alert
	for _, s := range samples {
		ph, ok := w.states[s.key]
		if !ok {
			ph = &phState{}
			w.states[s.key] = ph
		}
		ph.stamp = w.steps
		if a, did := w.stepKey(ph, s, now); did {
			fired = append(fired, a)
		}
		if a, did := w.checkSkew(ph, s, now); did {
			fired = append(fired, a)
		}
	}
	// Sweep detector state for keys the tracker has evicted. Only worth the
	// scan when evictions actually outpaced the live key set.
	if len(w.states) > 2*len(samples)+16 {
		for k, st := range w.states {
			if st.stamp != w.steps {
				delete(w.states, k)
			}
		}
	}
	return fired
}

// stepKey advances one stream's Page–Hinkley state and fires at most one
// drift alert.
func (w *DriftWatcher) stepKey(ph *phState, s driftSample, now time.Time) (Alert, bool) {
	dr := s.resolved - ph.lastResolved
	if dr < w.cfg.MinStepResolved && ph.lastResolved != 0 {
		return Alert{}, false // batch until enough new resolutions arrived
	}
	if dr == 0 {
		return Alert{}, false
	}
	x := (s.brierSum - ph.lastBrier) / float64(dr)
	ph.lastResolved = s.resolved
	ph.lastBrier = s.brierSum
	ph.n++
	ph.mean += (x - ph.mean) / float64(ph.n)
	ph.mT += x - ph.mean - w.cfg.Delta
	if ph.mT < ph.minMT {
		ph.minMT = ph.mT
	}
	stat := ph.mT - ph.minMT
	if ph.n < w.cfg.MinSteps || stat <= w.cfg.Lambda {
		return Alert{}, false
	}
	a := w.emit(Alert{
		Kind:      AlertAccuracyDrift,
		Machine:   s.key.Machine,
		Predictor: s.key.Predictor,
		Value:     stat,
		Threshold: w.cfg.Lambda,
		Message: fmt.Sprintf("Brier mean shifted up: window %.4f vs baseline %.4f (PH %.4f > λ %.4f)",
			x, ph.mean, stat, w.cfg.Lambda),
		Time: now,
	})
	// Re-baseline: after an alarm the stream starts fresh at the post-change
	// level, so a sustained (but stable) degradation fires once, not every
	// step.
	ph.n, ph.mean, ph.mT, ph.minMT = 0, 0, 0, 0
	return a, true
}

// checkSkew fires the latched calibration-skew alert when claimed and
// observed survival diverge.
func (w *DriftWatcher) checkSkew(ph *phState, s driftSample, now time.Time) (Alert, bool) {
	if w.cfg.CalibrationSkew <= 0 {
		return Alert{}, false
	}
	gap := math.Abs(s.meanTR - s.empirical)
	if ph.skewFired {
		if gap < w.cfg.CalibrationSkew/2 {
			ph.skewFired = false
		}
		return Alert{}, false
	}
	if gap <= w.cfg.CalibrationSkew {
		return Alert{}, false
	}
	ph.skewFired = true
	a := w.emit(Alert{
		Kind:      AlertCalibrationSkew,
		Machine:   s.key.Machine,
		Predictor: s.key.Predictor,
		Value:     gap,
		Threshold: w.cfg.CalibrationSkew,
		Message: fmt.Sprintf("claimed TR %.4f vs empirical %.4f: gap %.4f exceeds %.4f",
			s.meanTR, s.empirical, gap, w.cfg.CalibrationSkew),
		Time: now,
	})
	return a, true
}

func (w *DriftWatcher) emit(a Alert) Alert {
	if w.ring != nil {
		return w.ring.Append(a)
	}
	return a
}
