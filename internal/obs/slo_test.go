package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	s, err := ParseSLO("query:qps=50;p99=200ms;budget=0.01;fast=10;slow=4;short=2m;long=30m")
	if err != nil {
		t.Fatal(err)
	}
	want := SLO{Name: "query", QPSFloor: 50, P99Ceiling: 0.2, ErrorBudget: 0.01,
		FastBurn: 10, SlowBurn: 4, ShortWindow: 2 * time.Minute, LongWindow: 30 * time.Minute}
	if s != want {
		t.Errorf("parsed %+v, want %+v", s, want)
	}

	// Omitted keys and the monitor's defaults.
	s, err = ParseSLO("serve:budget=0.001")
	if err != nil {
		t.Fatal(err)
	}
	d := NewSLOMonitor(s).SLO()
	if d.FastBurn != 14.4 || d.SlowBurn != 6 || d.ShortWindow != 5*time.Minute || d.LongWindow != time.Hour {
		t.Errorf("defaults not applied: %+v", d)
	}

	for _, bad := range []string{
		"",                  // no name
		"noseparator",       // no colon
		":qps=1",            // empty name
		"x:qps",             // field without '='
		"x:zzz=1",           // unknown key
		"x:qps=not-a-float", // bad value
		"x:p99=12",          // bad duration
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}

// sloFeed drives a monitor with one cumulative sample per period, computing
// the running totals from per-period request/error counts.
type sloFeed struct {
	m    *SLOMonitor
	t    time.Time
	reqs uint64
	errs uint64
}

func (f *sloFeed) step(period time.Duration, reqs, errs uint64, latency ...*HistogramSnapshot) {
	f.t = f.t.Add(period)
	f.reqs += reqs
	f.errs += errs
	s := SLOSample{T: f.t, Requests: f.reqs, Errors: f.errs}
	if len(latency) > 0 {
		s.Latency = latency[0]
	}
	f.m.Record(s)
}

func TestSLOWarmupGate(t *testing.T) {
	m := NewSLOMonitor(SLO{Name: "q", QPSFloor: 100, ShortWindow: 5 * time.Minute})
	f := &sloFeed{m: m, t: time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)}
	// Two samples one minute apart: rates exist (1 QPS, far under the floor)
	// but the short window has not filled — no basis for paging yet.
	f.step(time.Minute, 60, 0)
	f.step(time.Minute, 60, 0)
	st := m.Status()
	if st.Short.QPS == 0 {
		t.Fatal("no windowed QPS after two samples")
	}
	if !st.OK || !st.QPSOK {
		t.Errorf("monitor paged during warmup: %+v", st)
	}
	// More minutes fill the window; now the floor applies.
	for i := 0; i < 5; i++ {
		f.step(time.Minute, 60, 0)
	}
	st = m.Status()
	if st.QPSOK || st.OK {
		t.Errorf("1 QPS passed a 100 QPS floor after warmup: %+v", st)
	}
	if !strings.Contains(st.Reason, "QPS") {
		t.Errorf("reason %q does not name the QPS floor", st.Reason)
	}
}

func TestSLOBurnRateBothWindows(t *testing.T) {
	slo := SLO{Name: "q", ErrorBudget: 0.01, ShortWindow: 5 * time.Minute, LongWindow: time.Hour}
	m := NewSLOMonitor(slo)
	f := &sloFeed{m: m, t: time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)}

	// One hour of clean traffic, then a short error burst: the short window
	// burns hot but the long window stays calm — the page must NOT fire
	// (single-window alerting is exactly what multi-window burn prevents).
	for i := 0; i < 60; i++ {
		f.step(time.Minute, 600, 0)
	}
	for i := 0; i < 5; i++ {
		f.step(time.Minute, 600, 120) // 20% errors: burn 20x in the short window
	}
	st := m.Status()
	if st.Short.BurnRate < 14.4 {
		t.Fatalf("short-window burn %.1f, want hot (>14.4)", st.Short.BurnRate)
	}
	if st.FastBurnAlert {
		t.Errorf("fast burn paged on a short-window-only burst: %+v", st)
	}

	// Sustain the burn for the rest of the hour: now both windows agree.
	for i := 0; i < 60; i++ {
		f.step(time.Minute, 600, 120)
	}
	st = m.Status()
	if !st.FastBurnAlert || st.OK {
		t.Errorf("sustained 20x burn never paged: %+v", st)
	}
	if !strings.Contains(st.Reason, "fast burn") {
		t.Errorf("reason %q does not name the fast burn", st.Reason)
	}
	if st.BudgetConsumed <= 0 {
		t.Error("no lifetime budget consumption reported")
	}

	// Slow-burn band: between SlowBurn (6) and FastBurn (14.4).
	m2 := NewSLOMonitor(slo)
	f2 := &sloFeed{m: m2, t: f.t}
	for i := 0; i < 120; i++ {
		f2.step(time.Minute, 600, 60) // 10% errors: burn 10x
	}
	st = m2.Status()
	if st.FastBurnAlert {
		t.Errorf("10x burn tripped the 14.4x fast page: %+v", st)
	}
	if !st.SlowBurnAlert || st.OK {
		t.Errorf("sustained 10x burn never tripped the 6x slow page: %+v", st)
	}
}

func TestSLOP99Ceiling(t *testing.T) {
	m := NewSLOMonitor(SLO{Name: "q", P99Ceiling: 0.05, ShortWindow: 5 * time.Minute})
	f := &sloFeed{m: m, t: time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)}

	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	snap := func() *HistogramSnapshot { s := h.snapshot(); return &s }
	for i := 0; i < 6; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(0.005) // everything fast
		}
		f.step(time.Minute, 100, 0, snap())
	}
	st := m.Status()
	if !st.P99OK || !st.OK {
		t.Fatalf("fast traffic failed the p99 ceiling: %+v", st)
	}
	if st.Short.P99Seconds <= 0 {
		t.Fatal("no windowed p99 computed from the latency histogram")
	}

	// Latency moves to ~80ms: the windowed p99 (interpolated in the
	// 0.01..0.1 bucket) crosses the 50ms ceiling.
	for i := 0; i < 6; i++ {
		for j := 0; j < 100; j++ {
			h.Observe(0.08)
		}
		f.step(time.Minute, 100, 0, snap())
	}
	st = m.Status()
	if st.P99OK || st.OK {
		t.Errorf("slow traffic passed the p99 ceiling: %+v", st)
	}
	if !strings.Contains(st.Reason, "p99") {
		t.Errorf("reason %q does not name the p99 ceiling", st.Reason)
	}
}

func TestSLORecordOrderingAndResets(t *testing.T) {
	m := NewSLOMonitor(SLO{Name: "q", ErrorBudget: 0.01, ShortWindow: 5 * time.Minute})
	base := time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)
	m.Record(SLOSample{T: base.Add(10 * time.Minute), Requests: 1000})
	// Out-of-order and duplicate-timestamp samples are dropped, so the
	// window math never sees time running backwards.
	m.Record(SLOSample{T: base.Add(5 * time.Minute), Requests: 2000})
	m.Record(SLOSample{T: base.Add(10 * time.Minute), Requests: 3000})
	m.Record(SLOSample{T: base.Add(11 * time.Minute), Requests: 1060})
	st := m.Status()
	if st.Short.Seconds != 60 {
		t.Errorf("window spans %.0fs, want 60 (stale samples must be dropped)", st.Short.Seconds)
	}
	if st.Short.QPS != 1 {
		t.Errorf("windowed QPS %.2f, want 1.00", st.Short.QPS)
	}

	// A latency histogram that shrinks between samples (counter reset after
	// a restart) must not produce a bogus p99.
	m2 := NewSLOMonitor(SLO{Name: "q", P99Ceiling: 0.05, ShortWindow: time.Minute})
	big := HistogramSnapshot{Bounds: []float64{0.01, 0.1}, Counts: []uint64{50, 50, 0}, Sum: 5, Count: 100}
	small := HistogramSnapshot{Bounds: []float64{0.01, 0.1}, Counts: []uint64{1, 1, 0}, Sum: 0.1, Count: 2}
	m2.Record(SLOSample{T: base, Requests: 100, Latency: &big})
	m2.Record(SLOSample{T: base.Add(2 * time.Minute), Requests: 200, Latency: &small})
	if st := m2.Status(); st.Short.P99Seconds != 0 {
		t.Errorf("counter reset produced p99 %.4fs, want 0", st.Short.P99Seconds)
	}
}

func TestSLOPruneKeepsWindowBaseline(t *testing.T) {
	m := NewSLOMonitor(SLO{Name: "q", ShortWindow: time.Minute, LongWindow: 5 * time.Minute})
	f := &sloFeed{m: m, t: time.Date(2026, 6, 4, 0, 0, 0, 0, time.UTC)}
	// Feed far past the long window: pruning must keep one sample beyond the
	// edge so the long window always spans its full width.
	for i := 0; i < 120; i++ {
		f.step(30*time.Second, 30, 0)
	}
	st := m.Status()
	if st.Long.Seconds < (5 * time.Minute).Seconds() {
		t.Errorf("long window spans %.0fs after pruning, want >= 300", st.Long.Seconds)
	}
	if st.Long.QPS != 1 {
		t.Errorf("long-window QPS %.2f, want 1.00", st.Long.QPS)
	}
}

func TestSLONilMonitor(t *testing.T) {
	var m *SLOMonitor
	m.Record(SLOSample{T: time.Now()})
	if st := m.Status(); !st.OK {
		t.Errorf("nil monitor not OK: %+v", st)
	}
}
