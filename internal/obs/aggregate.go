package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// Fleet aggregation: one peer's observability state as a mergeable value.
// A PeerObs carries the metrics-registry snapshot (counters sum, histograms
// merge bucket-wise), the accuracy tracker's raw sums (which merge by
// addition — derived figures like Brier are recomputed after the fold), and
// the peer's recent alerts. The binary codec is versioned and canonical:
// series and keys are encoded in sorted order, so equal states encode to
// equal bytes, which is what the merge-commutativity and fleet-determinism
// tests pin.

// Peer fetch statuses recorded in a merged fleet snapshot. A peer that
// cannot be reached is never silently dropped: its row is marked stale
// (cached data merged) or unreachable (nothing to merge).
const (
	PeerOK          = "ok"
	PeerStale       = "stale"
	PeerUnreachable = "unreachable"
)

// AccSums is the mergeable accuracy state for one (machine, predictor) key:
// the tracker's raw sums, without the derived ratios. Two AccSums for the
// same key merge by field-wise addition. The rolling-window ring is
// deliberately absent — rolling statistics do not merge across peers.
type AccSums struct {
	Machine   string  `json:"machine"`
	Predictor string  `json:"predictor"`
	Resolved  uint64  `json:"resolved"`
	Survived  uint64  `json:"survived"`
	Correct   uint64  `json:"correct"`
	SumTR     float64 `json:"sum_tr"`
	BrierSum  float64 `json:"brier_sum"`

	CalibCount    [CalibrationBuckets]uint64  `json:"calib_count"`
	CalibSurvived [CalibrationBuckets]uint64  `json:"calib_survived"`
	CalibSumTR    [CalibrationBuckets]float64 `json:"calib_sum_tr"`
}

// merge adds other's sums into a.
func (a *AccSums) merge(other AccSums) {
	a.Resolved += other.Resolved
	a.Survived += other.Survived
	a.Correct += other.Correct
	a.SumTR += other.SumTR
	a.BrierSum += other.BrierSum
	for b := 0; b < CalibrationBuckets; b++ {
		a.CalibCount[b] += other.CalibCount[b]
		a.CalibSurvived[b] += other.CalibSurvived[b]
		a.CalibSumTR[b] += other.CalibSumTR[b]
	}
}

// Stats derives the reportable summary from the sums. Rolling figures stay
// zero: they are per-node state and do not survive a merge.
func (a AccSums) Stats(calibration bool) AccuracyStats {
	out := AccuracyStats{
		Machine:   a.Machine,
		Predictor: a.Predictor,
		Resolved:  a.Resolved,
		Survived:  a.Survived,
	}
	if a.Resolved > 0 {
		n := float64(a.Resolved)
		out.MeanTR = a.SumTR / n
		out.Empirical = float64(a.Survived) / n
		out.Brier = a.BrierSum / n
		out.Accuracy = float64(a.Correct) / n
	}
	if calibration {
		for b := 0; b < CalibrationBuckets; b++ {
			cb := CalibrationBucket{
				Lo:    float64(b) / CalibrationBuckets,
				Hi:    float64(b+1) / CalibrationBuckets,
				Count: a.CalibCount[b],
			}
			if cb.Count > 0 {
				cb.MeanTR = a.CalibSumTR[b] / float64(cb.Count)
				cb.Empirical = float64(a.CalibSurvived[b]) / float64(cb.Count)
			}
			out.Calibration = append(out.Calibration, cb)
		}
	}
	return out
}

// ExportSums returns the tracker's totals plus every (machine, predictor)
// key's raw sums in sorted key order — the mergeable form of the accuracy
// state, as shipped in a PeerObs.
func (t *Tracker) ExportSums() (resolved, dropped uint64, sums []AccSums) {
	if t == nil {
		return 0, 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sums = make([]AccSums, 0, len(t.keys))
	for _, key := range t.keys {
		st := t.stats[key]
		sums = append(sums, AccSums{
			Machine:       key.Machine,
			Predictor:     key.Predictor,
			Resolved:      st.resolved,
			Survived:      st.survived,
			Correct:       st.correct,
			SumTR:         st.sumTR,
			BrierSum:      st.brierSum,
			CalibCount:    st.calibCount,
			CalibSurvived: st.calibSurvived,
			CalibSumTR:    st.calibSumTR,
		})
	}
	return t.resolved, t.dropped, sums
}

// PeerObs is one peer's exported observability state: mergeable metrics,
// mergeable accuracy sums, and the recent alert ring.
type PeerObs struct {
	// Peer is the exporting peer's identity.
	Peer string
	// Metrics is the registry snapshot (counters, gauges, histograms).
	Metrics Snapshot
	// Resolved and Dropped are the tracker totals; Accuracy the per-key
	// sums in sorted order.
	Resolved uint64
	Dropped  uint64
	Accuracy []AccSums
	// Alerts is the peer's retained alert ring, oldest first.
	Alerts []Alert
}

// ExportPeerObs assembles a peer's export from its registry, tracker and
// alert ring (each may be nil).
func ExportPeerObs(peer string, r *Registry, t *Tracker, alerts *AlertRing) *PeerObs {
	p := &PeerObs{Peer: peer}
	if r != nil {
		p.Metrics = r.Snapshot()
	} else {
		p.Metrics = emptySnapshot()
	}
	p.Resolved, p.Dropped, p.Accuracy = t.ExportSums()
	p.Alerts = alerts.Alerts(0)
	return p
}

func emptySnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// ------------------------------------------------------------ binary codec

var obsMagic = [4]byte{'F', 'G', 'O', 'S'}

// obsVersion is the peer-obs snapshot format version.
const obsVersion = 1

// maxObsBounds caps the histogram bucket count a decoded snapshot may claim.
const maxObsBounds = 4096

func sortedKeysU64(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysF64(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysHist(m map[string]HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EncodeBinary serializes the export in the versioned FGOS format. The
// encoding is canonical: series, keys and alerts appear in sorted order, so
// equal states produce identical bytes.
func (p *PeerObs) EncodeBinary() []byte {
	buf := append([]byte(nil), obsMagic[:]...)
	buf = append(buf, obsVersion)
	buf = appendAccString(buf, p.Peer)

	buf = binary.AppendUvarint(buf, uint64(len(p.Metrics.Counters)))
	for _, k := range sortedKeysU64(p.Metrics.Counters) {
		buf = appendAccString(buf, k)
		buf = binary.AppendUvarint(buf, p.Metrics.Counters[k])
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Metrics.Gauges)))
	for _, k := range sortedKeysF64(p.Metrics.Gauges) {
		buf = appendAccString(buf, k)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Metrics.Gauges[k]))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Metrics.Histograms)))
	for _, k := range sortedKeysHist(p.Metrics.Histograms) {
		h := p.Metrics.Histograms[k]
		buf = appendAccString(buf, k)
		buf = binary.AppendUvarint(buf, uint64(len(h.Bounds)))
		for _, b := range h.Bounds {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
		}
		for _, c := range h.Counts {
			buf = binary.AppendUvarint(buf, c)
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Sum))
		buf = binary.AppendUvarint(buf, h.Count)
	}

	buf = binary.AppendUvarint(buf, p.Resolved)
	buf = binary.AppendUvarint(buf, p.Dropped)
	buf = binary.AppendUvarint(buf, uint64(len(p.Accuracy)))
	for _, a := range p.Accuracy {
		buf = appendAccString(buf, a.Machine)
		buf = appendAccString(buf, a.Predictor)
		buf = binary.AppendUvarint(buf, a.Resolved)
		buf = binary.AppendUvarint(buf, a.Survived)
		buf = binary.AppendUvarint(buf, a.Correct)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.SumTR))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.BrierSum))
		for b := 0; b < CalibrationBuckets; b++ {
			buf = binary.AppendUvarint(buf, a.CalibCount[b])
			buf = binary.AppendUvarint(buf, a.CalibSurvived[b])
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.CalibSumTR[b]))
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(p.Alerts)))
	for _, a := range p.Alerts {
		buf = binary.AppendUvarint(buf, a.Seq)
		buf = appendAccString(buf, a.Kind)
		buf = appendAccString(buf, a.Machine)
		buf = appendAccString(buf, a.Predictor)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Value))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Threshold))
		buf = appendAccString(buf, a.Message)
		buf = binary.AppendUvarint(buf, uint64(a.Time.UnixNano()))
	}
	return buf
}

// DecodeObsSnapshot parses a PeerObs encoded by EncodeBinary. The decoder
// trusts nothing: every claimed count is bounded by the bytes that remain,
// series may not repeat, histogram layouts are size-capped, and trailing
// bytes are rejected.
func DecodeObsSnapshot(data []byte) (*PeerObs, error) {
	if len(data) < 5 || [4]byte(data[:4]) != obsMagic {
		return nil, fmt.Errorf("obs: bad obs snapshot magic")
	}
	if data[4] != obsVersion {
		return nil, fmt.Errorf("obs: obs snapshot version %d", data[4])
	}
	p := data[5:]
	out := &PeerObs{Metrics: emptySnapshot()}
	var err error
	if out.Peer, p, err = readAccString(p); err != nil {
		return nil, err
	}

	var n uint64
	if n, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("obs: obs snapshot claims %d counters in %d bytes", n, len(p))
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v uint64
		if k, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if v, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if _, dup := out.Metrics.Counters[k]; dup {
			return nil, fmt.Errorf("obs: duplicate counter series %q", k)
		}
		out.Metrics.Counters[k] = v
	}

	if n, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("obs: obs snapshot claims %d gauges in %d bytes", n, len(p))
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v float64
		if k, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if v, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		if _, dup := out.Metrics.Gauges[k]; dup {
			return nil, fmt.Errorf("obs: duplicate gauge series %q", k)
		}
		out.Metrics.Gauges[k] = v
	}

	if n, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("obs: obs snapshot claims %d histograms in %d bytes", n, len(p))
	}
	for i := uint64(0); i < n; i++ {
		var k string
		if k, p, err = readAccString(p); err != nil {
			return nil, err
		}
		var nb uint64
		if nb, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if nb > maxObsBounds || nb > uint64(len(p))/8 {
			return nil, fmt.Errorf("obs: obs snapshot histogram claims %d bounds in %d bytes", nb, len(p))
		}
		h := HistogramSnapshot{Bounds: make([]float64, nb), Counts: make([]uint64, nb+1)}
		for j := range h.Bounds {
			if h.Bounds[j], p, err = readAccFloat(p); err != nil {
				return nil, err
			}
			if j > 0 && h.Bounds[j] <= h.Bounds[j-1] {
				return nil, fmt.Errorf("obs: obs snapshot histogram bounds not increasing")
			}
		}
		for j := range h.Counts {
			if h.Counts[j], p, err = readAccUvarint(p); err != nil {
				return nil, err
			}
		}
		if h.Sum, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		if h.Count, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if _, dup := out.Metrics.Histograms[k]; dup {
			return nil, fmt.Errorf("obs: duplicate histogram series %q", k)
		}
		out.Metrics.Histograms[k] = h
	}

	if out.Resolved, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if out.Dropped, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("obs: obs snapshot claims %d accuracy keys in %d bytes", n, len(p))
	}
	seen := make(map[trackerKey]bool, n)
	out.Accuracy = make([]AccSums, 0, n)
	for i := uint64(0); i < n; i++ {
		var a AccSums
		if a.Machine, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if a.Predictor, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if a.Resolved, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if a.Survived, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if a.Correct, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if a.SumTR, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		if a.BrierSum, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		for b := 0; b < CalibrationBuckets; b++ {
			if a.CalibCount[b], p, err = readAccUvarint(p); err != nil {
				return nil, err
			}
			if a.CalibSurvived[b], p, err = readAccUvarint(p); err != nil {
				return nil, err
			}
			if a.CalibSumTR[b], p, err = readAccFloat(p); err != nil {
				return nil, err
			}
		}
		key := trackerKey{Machine: a.Machine, Predictor: a.Predictor}
		if seen[key] {
			return nil, fmt.Errorf("obs: duplicate accuracy key in obs snapshot")
		}
		seen[key] = true
		out.Accuracy = append(out.Accuracy, a)
	}

	if n, p, err = readAccUvarint(p); err != nil {
		return nil, err
	}
	if n > maxAlertCap || n > uint64(len(p)) {
		return nil, fmt.Errorf("obs: obs snapshot claims %d alerts in %d bytes", n, len(p))
	}
	out.Alerts = make([]Alert, 0, n)
	for i := uint64(0); i < n; i++ {
		var a Alert
		if a.Seq, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		if a.Kind, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if a.Machine, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if a.Predictor, p, err = readAccString(p); err != nil {
			return nil, err
		}
		if a.Value, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		if a.Threshold, p, err = readAccFloat(p); err != nil {
			return nil, err
		}
		if a.Message, p, err = readAccString(p); err != nil {
			return nil, err
		}
		var ns uint64
		if ns, p, err = readAccUvarint(p); err != nil {
			return nil, err
		}
		a.Time = time.Unix(0, int64(ns)).UTC()
		out.Alerts = append(out.Alerts, a)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("obs: trailing bytes in obs snapshot")
	}
	return out, nil
}

// ------------------------------------------------------------ fleet merge

// PeerStatus is one peer's row in a merged fleet snapshot: how its data was
// obtained, or why it is missing.
type PeerStatus struct {
	Peer string `json:"peer"`
	// Status is PeerOK, PeerStale (cached export merged; see AgeSeconds) or
	// PeerUnreachable (nothing merged).
	Status string `json:"status"`
	// AgeSeconds is how old the merged data is for a stale peer.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	// Err is the fetch error for stale and unreachable peers.
	Err string `json:"err,omitempty"`
}

// FleetSnapshot is the merged fleet-level view: counters summed, histograms
// merged bucket-wise, accuracy sums rolled up per key, every peer's alerts
// stamped with its identity, and a status row per peer.
type FleetSnapshot struct {
	Peers    []PeerStatus
	Metrics  Snapshot
	Resolved uint64
	Dropped  uint64
	Alerts   []Alert

	acc map[trackerKey]*AccSums
}

// NewFleetSnapshot builds an empty merge target.
func NewFleetSnapshot() *FleetSnapshot {
	return &FleetSnapshot{Metrics: emptySnapshot(), acc: make(map[trackerKey]*AccSums)}
}

// Add merges one peer's export under the given status row. Alerts are
// stamped with the peer identity. Histogram layout conflicts are recorded
// on the status row rather than aborting the merge.
func (f *FleetSnapshot) Add(p *PeerObs, status PeerStatus) {
	if status.Peer == "" {
		status.Peer = p.Peer
	}
	if err := f.Metrics.Merge(p.Metrics); err != nil && status.Err == "" {
		status.Err = err.Error()
	}
	f.Resolved += p.Resolved
	f.Dropped += p.Dropped
	for _, a := range p.Accuracy {
		key := trackerKey{Machine: a.Machine, Predictor: a.Predictor}
		if cur, ok := f.acc[key]; ok {
			cur.merge(a)
		} else {
			cp := a
			f.acc[key] = &cp
		}
	}
	for _, a := range p.Alerts {
		a.Peer = status.Peer
		f.Alerts = append(f.Alerts, a)
	}
	f.Peers = append(f.Peers, status)
}

// AddUnreachable records a peer that could not be fetched and has no cached
// data — marked, never silently dropped.
func (f *FleetSnapshot) AddUnreachable(peer, errMsg string) {
	f.Peers = append(f.Peers, PeerStatus{Peer: peer, Status: PeerUnreachable, Err: errMsg})
}

// AccuracySums returns the merged per-key sums in sorted key order.
func (f *FleetSnapshot) AccuracySums() []AccSums {
	keys := make([]trackerKey, 0, len(f.acc))
	for k := range f.acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	out := make([]AccSums, 0, len(keys))
	for _, k := range keys {
		out = append(out, *f.acc[k])
	}
	return out
}

// FleetView is the JSON operator summary of a merged fleet snapshot, served
// over query-obs and rendered by `isharec stats -fleet`.
type FleetView struct {
	Peers []PeerStatus `json:"peers"`
	// Counters is every merged counter series (fixed-cardinality series
	// only; nothing here is per-machine).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Resolved and Dropped are the fleet accuracy totals; Accuracy the
	// "_all" per-predictor rollup.
	Resolved uint64          `json:"resolved"`
	Dropped  uint64          `json:"dropped"`
	Accuracy []AccuracyStats `json:"accuracy,omitempty"`
	// Alerts are the merged alerts (newest kept when truncated) and
	// AlertsTotal the pre-truncation count.
	Alerts      []Alert `json:"alerts,omitempty"`
	AlertsTotal int     `json:"alerts_total"`
}

// View assembles the operator summary. maxAlerts > 0 keeps only the newest
// alerts (after the deterministic peer/seq sort).
func (f *FleetSnapshot) View(maxAlerts int) FleetView {
	v := FleetView{
		Peers:    append([]PeerStatus(nil), f.Peers...),
		Counters: make(map[string]uint64, len(f.Metrics.Counters)),
		Resolved: f.Resolved,
		Dropped:  f.Dropped,
	}
	sort.Slice(v.Peers, func(i, j int) bool { return v.Peers[i].Peer < v.Peers[j].Peer })
	for k, c := range f.Metrics.Counters {
		v.Counters[k] = c
	}
	for _, a := range f.AccuracySums() {
		if a.Machine == "_all" {
			v.Accuracy = append(v.Accuracy, a.Stats(false))
		}
	}
	v.Alerts = sortedAlerts(f.Alerts)
	v.AlertsTotal = len(v.Alerts)
	if maxAlerts > 0 && len(v.Alerts) > maxAlerts {
		v.Alerts = v.Alerts[len(v.Alerts)-maxAlerts:]
	}
	return v
}

func sortedAlerts(alerts []Alert) []Alert {
	out := append([]Alert(nil), alerts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteText renders the merged snapshot in the Prometheus text exposition
// format. Everything is emitted in sorted order — peers, series, alert
// kinds — so the rendering is a deterministic function of the merged state
// regardless of merge order (the commutativity property the tests pin).
// Merged registry series carry no HELP/TYPE header (the merge sees series
// ids, not registration metadata); the fleet-meta and accuracy series do.
func (f *FleetSnapshot) WriteText(w io.Writer) error {
	peers := append([]PeerStatus(nil), f.Peers...)
	sort.Slice(peers, func(i, j int) bool { return peers[i].Peer < peers[j].Peer })
	counts := map[string]int{}
	for _, p := range peers {
		counts[p.Status]++
	}
	if _, err := fmt.Fprintf(w,
		"# HELP fgcs_fleet_peers Peers contributing to this merged snapshot, by fetch status.\n"+
			"# TYPE fgcs_fleet_peers gauge\n"+
			"fgcs_fleet_peers %d\n"+
			"fgcs_fleet_peers_ok %d\nfgcs_fleet_peers_stale %d\nfgcs_fleet_peers_unreachable %d\n",
		len(peers), counts[PeerOK], counts[PeerStale], counts[PeerUnreachable]); err != nil {
		return err
	}
	for _, p := range peers {
		if _, err := fmt.Fprintf(w, "fgcs_fleet_peer_status%s 1\n",
			labelString([]Label{{"peer", p.Peer}, {"status", p.Status}})); err != nil {
			return err
		}
	}
	for _, k := range sortedKeysU64(f.Metrics.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, f.Metrics.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeysF64(f.Metrics.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %s\n", k, formatFloat(f.Metrics.Gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeysHist(f.Metrics.Histograms) {
		if err := writeHistText(w, k, f.Metrics.Histograms[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# HELP fgcs_accuracy_resolved_total TR predictions matched against an observed outcome (fleet total).\n"+
			"# TYPE fgcs_accuracy_resolved_total counter\nfgcs_accuracy_resolved_total %d\n"+
			"# HELP fgcs_accuracy_dropped_total Predictions evicted unresolved (fleet total).\n"+
			"# TYPE fgcs_accuracy_dropped_total counter\nfgcs_accuracy_dropped_total %d\n",
		f.Resolved, f.Dropped); err != nil {
		return err
	}
	sums := f.AccuracySums()
	if len(sums) > 0 {
		series := []struct {
			name, help string
			value      func(AccuracyStats) string
		}{
			{"fgcs_accuracy_resolved", "Resolved predictions per machine and predictor (fleet merge).",
				func(s AccuracyStats) string { return strconv.FormatUint(s.Resolved, 10) }},
			{"fgcs_accuracy_mean_tr", "Mean predicted temporal reliability (fleet merge).",
				func(s AccuracyStats) string { return formatFloat(s.MeanTR) }},
			{"fgcs_accuracy_empirical_tr", "Observed survival rate of predicted windows (fleet merge).",
				func(s AccuracyStats) string { return formatFloat(s.Empirical) }},
			{"fgcs_accuracy_brier", "Cumulative Brier score (fleet merge; lower is better).",
				func(s AccuracyStats) string { return formatFloat(s.Brier) }},
		}
		for _, sr := range series {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", sr.name, sr.help, sr.name); err != nil {
				return err
			}
			for _, a := range sums {
				s := a.Stats(false)
				labels := labelString([]Label{{"machine", s.Machine}, {"predictor", s.Predictor}})
				if _, err := fmt.Fprintf(w, "%s%s %s\n", sr.name, labels, sr.value(s)); err != nil {
					return err
				}
			}
		}
	}
	byKind := map[string]int{}
	for _, a := range f.Alerts {
		byKind[a.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if _, err := fmt.Fprintf(w,
		"# HELP fgcs_fleet_alerts Merged alerts retained across peers, by kind.\n"+
			"# TYPE fgcs_fleet_alerts gauge\nfgcs_fleet_alerts %d\n", len(f.Alerts)); err != nil {
		return err
	}
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "fgcs_fleet_alerts_kind%s %d\n",
			labelString([]Label{{"kind", k}}), byKind[k]); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeHistText renders one histogram series with the cumulative _bucket /
// _sum / _count invariants of the exposition format.
func writeHistText(w io.Writer, id string, h HistogramSnapshot) error {
	// The merged series id already carries the label set ("name{...}"); to
	// splice in the le label the id is split back into name and labels.
	name, labels := splitSeriesID(id)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = strconv.FormatFloat(h.Bounds[i], 'g', -1, 64)
		}
		lab := spliceLabel(labels, "le", le)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lab, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, labels, formatFloat(h.Sum), name, labels, h.Count)
	return err
}

// splitSeriesID separates "name{labels}" into name and "{labels}" (labels
// may be empty).
func splitSeriesID(id string) (name, labels string) {
	for i := 0; i < len(id); i++ {
		if id[i] == '{' {
			return id[:i], id[i:]
		}
	}
	return id, ""
}

// spliceLabel inserts key="value" into a rendered label block, keeping the
// exposition's sorted-key order.
func spliceLabel(labels, key, value string) string {
	pair := key + "=" + strconv.Quote(value)
	if labels == "" {
		return "{" + pair + "}"
	}
	inner := labels[1 : len(labels)-1]
	// Insert before the first existing key that sorts after ours; label
	// values are quoted, so scanning for top-level commas is unambiguous
	// only because keys precede every quote. A simple split on `,` between
	// pairs is safe here: series ids are produced by labelString, which
	// quotes values (commas inside values stay inside quotes), so reuse a
	// quote-aware scan.
	parts := splitLabelPairs(inner)
	out := make([]string, 0, len(parts)+1)
	inserted := false
	for _, p := range parts {
		if !inserted && p > pair {
			out = append(out, pair)
			inserted = true
		}
		out = append(out, p)
	}
	if !inserted {
		out = append(out, pair)
	}
	s := "{"
	for i, p := range out {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s + "}"
}

// splitLabelPairs splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
