package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC)

func TestTrackerResolvesSurvivalAndFailure(t *testing.T) {
	tr := NewTracker()
	// Window 1 survives; window 2 sees a failure mid-window.
	tr.RecordPrediction("m1", "SMP", 0.9, t0, time.Hour)
	tr.RecordPrediction("m1", "SMP", 0.8, t0.Add(2*time.Hour), time.Hour)
	if tr.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", tr.Pending())
	}
	// Samples inside window 1: all up.
	tr.Observe("m1", t0.Add(30*time.Minute), true)
	// Deadline of window 1 passes.
	tr.Observe("m1", t0.Add(61*time.Minute), true)
	// Failure inside window 2, then its deadline.
	tr.Observe("m1", t0.Add(2*time.Hour+10*time.Minute), false)
	tr.Observe("m1", t0.Add(3*time.Hour+time.Minute), true)

	s := tr.Stats("m1", "SMP")
	if s.Resolved != 2 || s.Survived != 1 {
		t.Fatalf("resolved/survived = %d/%d, want 2/1", s.Resolved, s.Survived)
	}
	if s.Empirical != 0.5 {
		t.Fatalf("empirical = %g, want 0.5", s.Empirical)
	}
	wantMean := (0.9 + 0.8) / 2
	if math.Abs(s.MeanTR-wantMean) > 1e-12 {
		t.Fatalf("mean TR = %g, want %g", s.MeanTR, wantMean)
	}
	wantBrier := ((0.9-1)*(0.9-1) + (0.8-0)*(0.8-0)) / 2
	if math.Abs(s.Brier-wantBrier) > 1e-12 {
		t.Fatalf("brier = %g, want %g", s.Brier, wantBrier)
	}
	if s.Accuracy != 0.5 { // 0.9 matched survival, 0.8 missed the failure
		t.Fatalf("accuracy = %g, want 0.5", s.Accuracy)
	}
	// The aggregate mirrors the single machine.
	if agg := tr.Stats("_all", "SMP"); agg.Resolved != 2 || agg.Survived != 1 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending after resolution = %d, want 0", tr.Pending())
	}
}

func TestTrackerFailureBeforeWindowDoesNotCount(t *testing.T) {
	tr := NewTracker()
	tr.RecordPrediction("m1", "SMP", 1, t0, time.Hour)
	// A failure before the window opens must not condemn the prediction.
	tr.Observe("m1", t0.Add(-time.Minute), false)
	tr.Observe("m1", t0.Add(time.Hour), true)
	s := tr.Stats("m1", "SMP")
	if s.Resolved != 1 || s.Survived != 1 {
		t.Fatalf("resolved/survived = %d/%d, want 1/1", s.Resolved, s.Survived)
	}
}

func TestTrackerPerPredictorSeparation(t *testing.T) {
	tr := NewTracker()
	tr.RecordPrediction("m1", "SMP", 0.9, t0, time.Hour)
	tr.RecordPrediction("m1", "LAST", 0.1, t0, time.Hour)
	tr.Observe("m1", t0.Add(time.Hour), true)
	if s := tr.Stats("m1", "SMP"); s.Brier >= 0.02 {
		t.Fatalf("SMP brier = %g, want small", s.Brier)
	}
	if s := tr.Stats("m1", "LAST"); s.Brier <= 0.5 {
		t.Fatalf("LAST brier = %g, want large", s.Brier)
	}
	all := tr.All()
	if len(all) != 4 { // (m1, _all) x (SMP, LAST)
		t.Fatalf("All() returned %d summaries, want 4", len(all))
	}
}

func TestTrackerCalibration(t *testing.T) {
	tr := NewTracker()
	// 10 predictions at 0.85, 8 of which survive: bucket 8 should show
	// mean TR 0.85 against empirical 0.8.
	for i := 0; i < 10; i++ {
		start := t0.Add(time.Duration(i) * 2 * time.Hour)
		tr.RecordPrediction("m1", "SMP", 0.85, start, time.Hour)
		if i < 2 {
			tr.Observe("m1", start.Add(30*time.Minute), false)
		}
		tr.Observe("m1", start.Add(time.Hour), true)
	}
	s := tr.Stats("m1", "SMP")
	b := s.Calibration[8]
	if b.Count != 10 {
		t.Fatalf("bucket count = %d, want 10 (%+v)", b.Count, s.Calibration)
	}
	if math.Abs(b.MeanTR-0.85) > 1e-12 || math.Abs(b.Empirical-0.8) > 1e-12 {
		t.Fatalf("bucket mean/empirical = %g/%g, want 0.85/0.8", b.MeanTR, b.Empirical)
	}
}

func TestTrackerRollingWindow(t *testing.T) {
	tr := NewTracker()
	n := rollingWindow + 40
	// First 40 predictions are confidently wrong, the rest confidently
	// right: the rolling Brier forgets the bad start, the cumulative one
	// remembers it.
	for i := 0; i < n; i++ {
		start := t0.Add(time.Duration(i) * 2 * time.Hour)
		tr.RecordPrediction("m1", "SMP", 1, start, time.Hour)
		if i < 40 {
			tr.Observe("m1", start.Add(30*time.Minute), false)
		}
		tr.Observe("m1", start.Add(time.Hour+time.Second), true)
	}
	s := tr.Stats("m1", "SMP")
	if s.RollingBrier != 0 {
		t.Fatalf("rolling brier = %g, want 0", s.RollingBrier)
	}
	if s.Brier == 0 {
		t.Fatal("cumulative brier forgot the early misses")
	}
	if s.RollingAccuracy != 1 {
		t.Fatalf("rolling accuracy = %g, want 1", s.RollingAccuracy)
	}
}

func TestTrackerPendingCap(t *testing.T) {
	tr := NewTracker()
	tr.maxPending = 8
	for i := 0; i < 20; i++ {
		tr.RecordPrediction("m1", "SMP", 0.5, t0.Add(time.Duration(i)*time.Minute), time.Hour)
	}
	if tr.Pending() != 8 {
		t.Fatalf("pending = %d, want capped at 8", tr.Pending())
	}
	if tr.DroppedPredictions() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.DroppedPredictions())
	}
}

func TestTrackerObserveNoPendingAllocs(t *testing.T) {
	tr := NewTracker()
	tr.RecordPrediction("m1", "SMP", 0.5, t0, time.Hour)
	tr.Observe("m1", t0.Add(2*time.Hour), true) // drain
	when := t0.Add(3 * time.Hour)
	if n := testing.AllocsPerRun(1000, func() { tr.Observe("m1", when, true) }); n != 0 {
		t.Fatalf("Observe with no due predictions allocates %v/op", n)
	}
}

// BenchmarkTrackerObserveNoDue measures the monitor-tick cost of feeding a
// sample through a tracker with pending-but-not-due predictions — the
// steady state between a query and its window's deadline.
func BenchmarkTrackerObserveNoDue(b *testing.B) {
	tr := NewTracker()
	for i := 0; i < 8; i++ {
		tr.RecordPrediction("m1", "SMP", 0.5, t0.Add(24*time.Hour), time.Hour)
	}
	when := t0.Add(time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe("m1", when, true)
	}
}

func TestTrackerWriteText(t *testing.T) {
	tr := NewTracker()
	tr.RecordPrediction("m1", "SMP", 0.75, t0, time.Hour)
	tr.Observe("m1", t0.Add(time.Hour), true)
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"fgcs_accuracy_resolved_total 1",
		`fgcs_accuracy_mean_tr{machine="m1",predictor="SMP"} 0.75`,
		`fgcs_accuracy_empirical_tr{machine="m1",predictor="SMP"} 1`,
		`fgcs_accuracy_brier{machine="_all",predictor="SMP"} 0.0625`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracker exposition missing %q:\n%s", want, out)
		}
	}
}

// TestTrackerConcurrentSnapshotWhileRecord exercises record/observe/stat
// paths concurrently; under -race this is the tracker's data-race gate.
func TestTrackerConcurrentSnapshotWhileRecord(t *testing.T) {
	tr := NewTracker()
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			machine := string(rune('a' + w))
			for i := 0; i < 2000; i++ {
				start := t0.Add(time.Duration(i) * time.Minute)
				tr.RecordPrediction(machine, "SMP", 0.5, start, 30*time.Second)
				tr.Observe(machine, start.Add(time.Minute), i%3 != 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			_ = tr.All()
			_ = tr.Pending()
			var sb strings.Builder
			_ = tr.WriteText(&sb)
		}
	}()
	wg.Wait()
	<-done
	var total uint64
	for _, s := range tr.All() {
		if s.Machine == "_all" {
			total += s.Resolved
		}
	}
	// Each iteration's observation lands past its own prediction's
	// deadline, so every prediction resolves.
	want := uint64(writers * 2000)
	if total != want {
		t.Fatalf("aggregate resolved = %d, want %d", total, want)
	}
}
