package obs

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestTrackerChurnBounded drives 100k distinct machines through the tracker
// in waves — each wave registers predictions, observes their outcomes, then
// leaves the fleet — and checks that retention holds both the machine count
// and the heap flat. Without eviction, per-machine state accretes forever
// (the regression this test pins: ~100k machines x 6 predictors of rolling
// state used to survive the machines' departure).
func TestTrackerChurnBounded(t *testing.T) {
	const (
		totalMachines = 100_000
		waveSize      = 10_000
		maxMachines   = 5_000
		idleTTL       = time.Hour
	)
	tr := NewTracker()
	tr.SetRetention(RetentionPolicy{MaxMachines: maxMachines, IdleTTL: idleTTL})

	now := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	heapAt := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	var heapAfterFirstWaves uint64
	for wave := 0; wave < totalMachines/waveSize; wave++ {
		for i := 0; i < waveSize; i++ {
			name := fmt.Sprintf("m%05d-%02d", i, wave)
			for _, pred := range [3]string{"SMP", "LAST", "MA"} {
				tr.RecordPrediction(name, pred, 0.75, now, 10*time.Minute)
			}
			// One mid-window sample, then one past the deadline: resolves
			// all three predictions as survived.
			tr.Observe(name, now.Add(5*time.Minute), true)
			tr.Observe(name, now.Add(11*time.Minute), true)
		}
		// The whole wave departs: time moves past the idle TTL and the
		// owner runs its periodic eviction sweep.
		now = now.Add(2 * idleTTL)
		tr.EvictIdle(now)
		if got := tr.Machines(); got > maxMachines {
			t.Fatalf("wave %d: %d machines tracked, cap %d", wave, got, maxMachines)
		}
		if wave == 1 {
			heapAfterFirstWaves = heapAt()
		}
	}

	heapEnd := heapAt()
	if heapAfterFirstWaves > 0 && heapEnd > heapAfterFirstWaves+8<<20 {
		t.Fatalf("heap grew across churn: %d -> %d bytes (limit +8MiB)", heapAfterFirstWaves, heapEnd)
	}
	if got := tr.EvictedMachines(); got == 0 {
		t.Fatal("no machines evicted over a 100k churn run")
	}
	// The fleet-wide aggregates survive eviction: every resolution ever
	// folded is still counted.
	all := tr.Stats("_all", "SMP")
	if all.Resolved != totalMachines {
		t.Fatalf("_all SMP resolved = %d, want %d", all.Resolved, totalMachines)
	}
	if tr.Resolved() != 3*totalMachines {
		t.Fatalf("resolved = %d, want %d", tr.Resolved(), 3*totalMachines)
	}
}
