// Package core is the high-level entry point to the paper's contribution:
// given the monitor history of a machine, predict its temporal reliability —
// the probability that it remains available to a guest job throughout a
// future time window.
//
// It wraps the full pipeline (state classification in package avail,
// semi-Markov estimation and the Equation (3) solver in package smp, window
// and history selection in package predict) behind a small API:
//
//	m, _ := trace.LoadFile("lab-01.trace")
//	p, _ := core.NewPredictor(m, core.Options{})
//	tr, _ := p.TRAt(time.Now(), 2*time.Hour)
//
// For the live-system integration (gateway, monitor, scheduler daemons) see
// package ishare; for the evaluation harnesses see package experiments.
package core

import (
	"fmt"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/predict"
	"fgcs/internal/smp"
	"fgcs/internal/trace"
)

// Options configures a Predictor.
type Options struct {
	// Model is the availability-model configuration; zero value selects
	// the paper's testbed defaults (Th1 20%, Th2 60%, 1 min suspend
	// limit, 100 MB guest).
	Model avail.Config
	// HistoryDays bounds the day pool per prediction (N most recent
	// same-type days; 0 = all available).
	HistoryDays int
	// Smoothing adds a pseudo-count to the kernel estimate; 0 reproduces
	// the paper's plain statistics.
	Smoothing float64
	// Censoring selects the censored-sojourn policy (default: the
	// Kaplan–Meier hazard estimator).
	Censoring smp.CensorMode
	// Estimation selects restart (default) or absorb trajectory
	// extraction.
	Estimation predict.Estimation
}

// Predictor predicts temporal reliability for one machine from its history.
type Predictor struct {
	machine *trace.Machine
	smp     predict.SMP
}

// NewPredictor builds a predictor over a machine's monitor history.
func NewPredictor(m *trace.Machine, opts Options) (*Predictor, error) {
	if m == nil || len(m.Days) == 0 {
		return nil, fmt.Errorf("core: machine history is empty")
	}
	cfg := opts.Model
	if cfg == (avail.Config{}) {
		cfg = avail.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		machine: m,
		smp: predict.SMP{
			Cfg:         cfg,
			HistoryDays: opts.HistoryDays,
			Smoothing:   opts.Smoothing,
			Censoring:   opts.Censoring,
			Estimation:  opts.Estimation,
		},
	}, nil
}

// Machine returns the underlying history.
func (p *Predictor) Machine() *trace.Machine { return p.machine }

// Config returns the availability-model configuration in use.
func (p *Predictor) Config() avail.Config { return p.smp.Cfg }

// TR predicts the temporal reliability of a window on a day of the given
// type, pooling the machine's history days of that type.
func (p *Predictor) TR(dayType trace.DayType, w predict.Window) (predict.Prediction, error) {
	days := p.machine.DaysOfType(dayType)
	if len(days) == 0 {
		return predict.Prediction{}, fmt.Errorf("core: no %s history for %s", dayType, p.machine.ID)
	}
	return p.smp.Predict(days, w)
}

// TRFrom predicts TR given the machine's known current state (S1 or S2) —
// the live scheduler query.
func (p *Predictor) TRFrom(dayType trace.DayType, w predict.Window, init avail.State) (float64, error) {
	days := p.machine.DaysOfType(dayType)
	if len(days) == 0 {
		return 0, fmt.Errorf("core: no %s history for %s", dayType, p.machine.ID)
	}
	return p.smp.PredictFrom(days, w, init)
}

// TRAt predicts the reliability of running a job of the given length
// starting at the given wall-clock time, using the history days strictly
// before that time. Windows crossing midnight are clipped at midnight (the
// day-structured estimator pools same-clock windows).
func (p *Predictor) TRAt(start time.Time, jobLength time.Duration) (float64, error) {
	if jobLength <= 0 {
		return 0, fmt.Errorf("core: non-positive job length")
	}
	start = start.UTC()
	midnight := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, time.UTC)
	offset := start.Sub(midnight).Truncate(p.machine.Period)
	length := jobLength.Truncate(p.machine.Period)
	if length < p.machine.Period {
		length = p.machine.Period
	}
	if offset+length > 24*time.Hour {
		length = 24*time.Hour - offset
	}
	w := predict.Window{Start: offset, Length: length}
	dayType := trace.TypeOfDate(midnight)
	var days []*trace.Day
	for _, d := range p.machine.Days {
		if d.Date.Before(midnight) && d.Type() == dayType {
			days = append(days, d)
		}
	}
	if len(days) == 0 {
		return 0, fmt.Errorf("core: no %s history before %v", dayType, midnight)
	}
	pred, err := p.smp.Predict(days, w)
	if err != nil {
		return 0, err
	}
	return pred.TR, nil
}

// Events returns the machine's unavailability occurrences per day — the
// Section 6.1 statistics.
func (p *Predictor) Events() map[string][]avail.Event {
	out := make(map[string][]avail.Event, len(p.machine.Days))
	for _, d := range p.machine.Days {
		out[d.Date.Format("2006-01-02")] = avail.Events(d, p.smp.Cfg)
	}
	return out
}
