package core

import (
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/predict"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

var monday = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

func machineWithDailyFailure(days int) *trace.Machine {
	m := trace.NewMachine("test", trace.DefaultPeriod)
	for i := 0; i < days; i++ {
		d := trace.NewDay(monday.AddDate(0, 0, i), trace.DefaultPeriod)
		for j := range d.Samples {
			d.Samples[j] = trace.Sample{CPU: 5, FreeMemMB: 400, Up: true}
		}
		if i%2 == 0 && d.Type() == trace.Weekday {
			lo := d.IndexAt(9 * time.Hour)
			hi := d.IndexAt(9*time.Hour + 30*time.Minute)
			for j := lo; j < hi; j++ {
				d.Samples[j].Up = false
			}
		}
		if err := m.AddDay(d); err != nil {
			panic(err)
		}
	}
	return m
}

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, Options{}); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := NewPredictor(trace.NewMachine("x", time.Second), Options{}); err == nil {
		t.Fatal("empty machine accepted")
	}
	m := machineWithDailyFailure(5)
	bad := Options{Model: avail.Config{Th1: 90, Th2: 10, SuspendLimit: time.Minute}}
	if _, err := NewPredictor(m, bad); err == nil {
		t.Fatal("invalid model config accepted")
	}
	p, err := NewPredictor(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().Th1 != 20 || p.Config().Th2 != 60 {
		t.Fatalf("default config not applied: %+v", p.Config())
	}
	if p.Machine() != m {
		t.Fatal("Machine accessor wrong")
	}
}

func TestPredictorTR(t *testing.T) {
	p, err := NewPredictor(machineWithDailyFailure(14), Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	pred, err := p.TR(trace.Weekday, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TR <= 0 || pred.TR >= 1 {
		t.Fatalf("TR = %v, want strictly inside (0,1) for a half-failing machine", pred.TR)
	}
	// A window away from the failure hour is fully reliable.
	calm, err := p.TR(trace.Weekday, predict.Window{Start: 1 * time.Hour, Length: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if calm.TR != 1 {
		t.Fatalf("calm-window TR = %v, want 1", calm.TR)
	}
}

func TestPredictorTRFrom(t *testing.T) {
	p, _ := NewPredictor(machineWithDailyFailure(14), Options{})
	w := predict.Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	tr, err := p.TRFrom(trace.Weekday, w, avail.S1)
	if err != nil {
		t.Fatal(err)
	}
	if tr < 0 || tr > 1 {
		t.Fatalf("TR = %v", tr)
	}
	if _, err := p.TRFrom(trace.Weekday, w, avail.S3); err == nil {
		t.Fatal("failure initial state accepted")
	}
}

func TestPredictorTRAt(t *testing.T) {
	p, _ := NewPredictor(machineWithDailyFailure(14), Options{})
	// Predict for the Friday of the second week at 08:30.
	at := monday.AddDate(0, 0, 11).Add(8*time.Hour + 30*time.Minute)
	tr, err := p.TRAt(at, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tr <= 0 || tr >= 1 {
		t.Fatalf("TRAt = %v", tr)
	}
	// Midnight-crossing job lengths clip instead of erroring.
	if _, err := p.TRAt(monday.AddDate(0, 0, 11).Add(23*time.Hour), 10*time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := p.TRAt(at, 0); err == nil {
		t.Fatal("zero job length accepted")
	}
	// No history before the first day.
	if _, err := p.TRAt(monday.Add(time.Hour), time.Hour); err == nil {
		t.Fatal("prediction without prior history accepted")
	}
}

func TestPredictorEvents(t *testing.T) {
	p, _ := NewPredictor(machineWithDailyFailure(6), Options{})
	events := p.Events()
	if len(events) != 6 {
		t.Fatalf("days = %d", len(events))
	}
	total := 0
	for _, evs := range events {
		total += len(evs)
	}
	if total == 0 {
		t.Fatal("no events found")
	}
}

func TestPredictorOnGeneratedTrace(t *testing.T) {
	params := workload.DefaultParams()
	params.Machines = 1
	params.Days = 28
	ds, err := workload.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPredictor(ds.Machines[0], Options{HistoryDays: 8})
	if err != nil {
		t.Fatal(err)
	}
	at := params.Start.AddDate(0, 0, 21).Add(9 * time.Hour) // a weekday
	tr, err := p.TRAt(at, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if tr < 0 || tr > 1 {
		t.Fatalf("TR = %v", tr)
	}
}
