// Package simclock provides a clock abstraction so that daemons, monitors and
// experiments can run either against the wall clock or against a
// deterministic simulated clock.
//
// The paper's monitoring and prediction pipeline is driven by periodic
// sampling (every 6 seconds over three months). Reproducing those experiments
// in real time is infeasible, so every component in this repository that
// needs time takes a Clock. Tests and experiments use a *Virtual clock that
// advances instantaneously and fires timers in deterministic order; the live
// daemons in cmd/ use the Real clock.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the fire time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic simulated clock. Time only moves when Advance
// (or AdvanceTo/Run) is called; timers created with After fire in timestamp
// order as the clock passes them. A Virtual clock is safe for concurrent use.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64 // tie-breaker so equal deadlines fire FIFO
}

type vtimer struct {
	at  time.Time
	seq uint64
	ch  chan time.Time
}

type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*vtimer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// NewVirtual returns a Virtual clock initialized to start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1, so a fired
// timer never blocks the advancing goroutine.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.timers, &vtimer{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Sleep blocks the calling goroutine until the clock has been advanced past
// the deadline by some other goroutine.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// Advance moves the clock forward by d, firing every timer whose deadline is
// reached, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is not after Now),
// firing due timers in deadline order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return
	}
	for len(v.timers) > 0 && !v.timers[0].at.After(t) {
		tm := heap.Pop(&v.timers).(*vtimer)
		v.now = tm.at
		tm.ch <- tm.at
	}
	v.now = t
}

// PendingTimers reports how many timers are armed but not yet fired.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// NextDeadline returns the deadline of the earliest pending timer. The second
// result is false when no timer is pending.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return time.Time{}, false
	}
	return v.timers[0].at, true
}

// RunUntilIdle advances the clock timer-by-timer until no timers remain or
// the limit deadline is reached, whichever comes first. It returns the final
// clock reading. It is useful for driving monitor daemons in tests.
func (v *Virtual) RunUntilIdle(limit time.Time) time.Time {
	for {
		next, ok := v.NextDeadline()
		if !ok || next.After(limit) {
			v.AdvanceTo(limit)
			return v.Now()
		}
		v.AdvanceTo(next)
	}
}
