package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), epoch)
	}
	v.Advance(90 * time.Second)
	if want := epoch.Add(90 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvanceToBackwardsIsNoop(t *testing.T) {
	v := NewVirtual(epoch)
	v.Advance(time.Hour)
	v.AdvanceTo(epoch) // earlier than now
	if want := epoch.Add(time.Hour); !v.Now().Equal(want) {
		t.Fatalf("clock moved backwards to %v", v.Now())
	}
}

func TestVirtualAfterFiresInOrder(t *testing.T) {
	v := NewVirtual(epoch)
	c2 := v.After(2 * time.Second)
	c1 := v.After(1 * time.Second)
	c3 := v.After(3 * time.Second)
	v.Advance(5 * time.Second)
	t1 := <-c1
	t2 := <-c2
	t3 := <-c3
	if !t1.Equal(epoch.Add(1 * time.Second)) {
		t.Errorf("timer1 fired at %v", t1)
	}
	if !t2.Equal(epoch.Add(2 * time.Second)) {
		t.Errorf("timer2 fired at %v", t2)
	}
	if !t3.Equal(epoch.Add(3 * time.Second)) {
		t.Errorf("timer3 fired at %v", t3)
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(epoch)
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestVirtualAfterNotFiredEarly(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(10 * time.Second)
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestVirtualEqualDeadlinesFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	first := v.After(time.Second)
	second := v.After(time.Second)
	done := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); <-first; done <- 1 }()
	// Ensure the first goroutine is likely waiting before the second.
	go func() { defer wg.Done(); <-second; done <- 2 }()
	v.Advance(time.Second)
	wg.Wait()
	close(done)
	n := 0
	for range done {
		n++
	}
	if n != 2 {
		t.Fatalf("expected both timers to fire, got %d", n)
	}
}

func TestVirtualSleepWakes(t *testing.T) {
	v := NewVirtual(epoch)
	woke := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(woke)
	}()
	// Wait for the sleeper to arm its timer.
	for v.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Minute)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
}

func TestVirtualSleepNonPositiveReturns(t *testing.T) {
	v := NewVirtual(epoch)
	v.Sleep(0)
	v.Sleep(-time.Second)
}

func TestNextDeadline(t *testing.T) {
	v := NewVirtual(epoch)
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline reported a timer on an empty clock")
	}
	v.After(42 * time.Second)
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(epoch.Add(42*time.Second)) {
		t.Fatalf("NextDeadline = %v, %v", dl, ok)
	}
}

func TestRunUntilIdle(t *testing.T) {
	v := NewVirtual(epoch)
	var fired []time.Time
	var mu sync.Mutex
	for i := 1; i <= 3; i++ {
		ch := v.After(time.Duration(i) * time.Minute)
		go func() {
			tm := <-ch
			mu.Lock()
			fired = append(fired, tm)
			mu.Unlock()
		}()
	}
	limit := epoch.Add(10 * time.Minute)
	end := v.RunUntilIdle(limit)
	if !end.Equal(limit) {
		t.Fatalf("RunUntilIdle ended at %v, want %v", end, limit)
	}
	// Give receiver goroutines a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(fired)
		mu.Unlock()
		if n == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != 3 {
		t.Fatalf("fired %d timers, want 3", len(fired))
	}
}

func TestRunUntilIdleStopsAtLimit(t *testing.T) {
	v := NewVirtual(epoch)
	ch := v.After(time.Hour)
	v.RunUntilIdle(epoch.Add(time.Minute))
	select {
	case <-ch:
		t.Fatal("timer beyond the limit fired")
	default:
	}
	if v.PendingTimers() != 1 {
		t.Fatalf("PendingTimers = %d, want 1", v.PendingTimers())
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now too far in the past: %v", now)
	}
	start := time.Now()
	c.Sleep(5 * time.Millisecond)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Real.Sleep returned early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After never fired")
	}
}
