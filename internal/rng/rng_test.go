package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 times", same)
	}
}

func TestSplitStability(t *testing.T) {
	a := New(7).Split("workload")
	b := New(7).Split("workload")
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not stable")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split("a")
	before := parent.state
	for i := 0; i < 10; i++ {
		child.Uint64()
	}
	if parent.state != before {
		t.Fatal("consuming a child stream advanced the parent")
	}
	other := parent.Split("b")
	if child.Uint64() == other.Uint64() {
		t.Fatal("children with different labels produced identical values")
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(11)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		v := parent.SplitN("machine", i).Uint64()
		if seen[v] {
			t.Fatalf("SplitN collision at index %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[s.Intn(7)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("Intn never produced %d", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniform(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 8)
		if v < 5 || v >= 8 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformInt(t *testing.T) {
	s := New(13)
	if got := s.UniformInt(4, 4); got != 4 {
		t.Fatalf("UniformInt with empty range = %d, want 4", got)
	}
	for i := 0; i < 1000; i++ {
		v := s.UniformInt(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("UniformInt out of range: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("Exp mean %v, want ~10", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(19)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Normal(4, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-4) > 0.05 {
		t.Fatalf("Normal mean %v, want ~4", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance %v, want ~4", variance)
	}
}

func TestParetoLowerBound(t *testing.T) {
	s := New(23)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal non-positive: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestCategoricalWeights(t *testing.T) {
	s := New(37)
	counts := [3]int{}
	const n = 90000
	for i := 0; i < n; i++ {
		counts[s.Categorical([]float64{1, 2, 3})]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Categorical index %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
