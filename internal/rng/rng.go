// Package rng provides seeded, splittable pseudo-random streams and the
// distributions used by the workload generator and the contention simulator.
//
// Every experiment in this repository must be reproducible from a single
// seed, and independent subsystems (per-machine workloads, per-day spike
// processes, reboot processes, ...) must draw from statistically independent
// streams so that changing how many values one subsystem consumes does not
// perturb another. Stream implements that with a SplitMix64-style state that
// can be forked by label.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random stream. The zero value is not
// valid; use New or Split.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	s := &Stream{state: seed}
	// Warm up so that small, similar seeds diverge immediately.
	s.next()
	s.next()
	return s
}

// Split forks an independent child stream identified by label. Splitting is
// stable: the same parent seed and label always yield the same child, and the
// parent's own sequence is not consumed.
func (s *Stream) Split(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(mix(s.state ^ h.Sum64()))
}

// SplitN forks an independent child stream identified by label and an index,
// for families of streams such as per-day or per-machine processes.
func (s *Stream) SplitN(label string, n int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return New(mix(s.state ^ h.Sum64() ^ (uint64(n)+1)*0x9E3779B97F4A7C15))
}

// next advances the SplitMix64 state and returns 64 random bits.
func (s *Stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 { return s.next() }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.next() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// UniformDur returns a uniform value in [lo, hi) of whole units.
func (s *Stream) UniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.Intn(hi-lo)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (s *Stream) Exp(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box–Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) variate: heavy-tailed durations such as
// user think times and session lengths.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Categorical draws an index with probability proportional to weights[i].
// It panics if weights is empty or sums to a non-positive value.
func (s *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative categorical weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("rng: invalid categorical weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
