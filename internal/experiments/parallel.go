package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount is the configured evaluation parallelism (0 = GOMAXPROCS).
var workerCount atomic.Int64

// SetWorkers bounds the worker pool the Run* sweeps fan their per-machine
// evaluations across. Zero or negative restores the default
// (runtime.GOMAXPROCS). All results are merged in machine order, so every
// sweep is bit-identical to its serial execution regardless of the setting.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers reports the effective worker-pool width.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) across the configured worker
// pool. fn must write only to its own index's output slot; callers reduce
// the indexed outputs serially afterwards to keep results deterministic.
func parallelFor(n int, fn func(i int)) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
