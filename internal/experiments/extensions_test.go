package experiments

import (
	"fmt"
	"testing"

	"fgcs/internal/avail"
	"fgcs/internal/trace"
)

func TestHeterogeneousTestbed(t *testing.T) {
	ds, err := HeterogeneousTestbed(14, []float64{1.4, 0.4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Machines) != 2 {
		t.Fatalf("machines = %d", len(ds.Machines))
	}
	if ds.Machines[0].ID != "lab-01" || ds.Machines[1].ID != "lab-02" {
		t.Fatalf("ids = %s %s", ds.Machines[0].ID, ds.Machines[1].ID)
	}
	// The busy machine must accumulate more unavailability than the
	// quiet one.
	cfg := avail.DefaultConfig()
	count := func(m *trace.Machine) int {
		total := 0
		for _, d := range m.Days {
			total += avail.CountEvents(d, cfg)
		}
		return total
	}
	busy, quiet := count(ds.Machines[0]), count(ds.Machines[1])
	if busy <= quiet {
		t.Fatalf("busy machine has %d events, quiet has %d", busy, quiet)
	}
	if _, err := HeterogeneousTestbed(0, []float64{1}, 1); err == nil {
		t.Fatal("zero days accepted")
	}
}

func TestRunX1SchedulingBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("placement sweep is slow")
	}
	ds, err := HeterogeneousTestbed(56, DefaultTestbedScales, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultX1Config()
	cfg.HistoryDays = 28
	rows, err := RunX1(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]X1Row{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.Completed+r.Killed == 0 {
			t.Fatalf("%s placed no jobs", r.Policy)
		}
	}
	// Ordering claims: oracle >= tr-aware > both oblivious baselines.
	if byName["oracle"].Completed < byName["tr-aware"].Completed {
		t.Errorf("oracle (%d) below tr-aware (%d)", byName["oracle"].Completed, byName["tr-aware"].Completed)
	}
	for _, base := range []string{"round-robin", "random"} {
		if byName["tr-aware"].Completed <= byName[base].Completed {
			t.Errorf("tr-aware (%d) not above %s (%d)",
				byName["tr-aware"].Completed, base, byName[base].Completed)
		}
	}
}

func TestRunX1Errors(t *testing.T) {
	ds := getTrace(t)
	one := &trace.Dataset{Machines: ds.Machines[:1]}
	if _, err := RunX1(one, DefaultX1Config()); err == nil {
		t.Fatal("single machine accepted")
	}
	cfg := DefaultX1Config()
	cfg.HistoryDays = 100000
	if _, err := RunX1(ds, cfg); err == nil {
		t.Fatal("history beyond trace accepted")
	}
}

func TestRunX2PoolSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("pool sweep is slow")
	}
	ds := getTrace(t)
	rows, err := RunX2(ds, avail.DefaultConfig(), []int{2, 10, 0}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Windows == 0 {
			t.Fatalf("pool N=%d scored no windows", r.HistoryDays)
		}
		if r.AvgErr < 0 || r.MaxErr < r.AvgErr {
			t.Fatalf("pool N=%d stats inconsistent: %+v", r.HistoryDays, r)
		}
	}
	// A tiny pool (2 days) must not beat the full pool on average: two
	// days cannot estimate the failure statistics.
	if rows[0].AvgErr < rows[2].AvgErr*0.8 {
		t.Errorf("N=2 (%v) implausibly better than all-days (%v)", rows[0].AvgErr, rows[2].AvgErr)
	}
}

func TestRunA1Variants(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	ds := getTrace(t)
	rows, err := RunA1(ds, avail.DefaultConfig(), []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != "hazard+restart (default)" {
		t.Fatalf("first variant = %s", rows[0].Variant)
	}
	for _, r := range rows {
		for li, e := range r.AvgErr {
			if e < 0 {
				t.Fatalf("%s length %d: negative error", r.Variant, li)
			}
		}
	}
}

func TestRunX3EnterpriseExpectation(t *testing.T) {
	if testing.Short() {
		t.Skip("dual-testbed sweep is slow")
	}
	rows, err := RunX3(2, 42, 3, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]X3Row{}
	for _, r := range rows {
		byKey[r.Profile+"/"+fmtHours(r.WindowHours)] = r
		if r.Windows == 0 {
			t.Fatalf("%s %vh scored no windows", r.Profile, r.WindowHours)
		}
	}
	// The paper's Section 8 expectation: the prediction performs well on
	// the enterprise testbed too — within 2.5x of the lab accuracy at
	// short windows (it is usually comparable or better).
	lab, ent := byKey["lab/1"], byKey["enterprise/1"]
	if ent.AvgErr > 2.5*lab.AvgErr+0.05 {
		t.Errorf("enterprise 1h error %v far above lab %v", ent.AvgErr, lab.AvgErr)
	}
}

func fmtHours(h float64) string {
	if h == float64(int(h)) {
		return fmt.Sprintf("%d", int(h))
	}
	return fmt.Sprintf("%g", h)
}
