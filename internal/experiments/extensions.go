package experiments

// Extension experiments beyond the paper's figures: the scheduling benefit
// its introduction motivates (X1), the sensitivity to the history-day pool
// N (X2, a companion to Figure 6), and the estimator-design ablation (A1)
// for the choices documented in DESIGN.md §4.

import (
	"fmt"

	"fgcs/internal/avail"
	"fgcs/internal/predict"
	"fgcs/internal/rng"
	"fgcs/internal/smp"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

// ------------------------------------------------------------------ X1 ----

// X1Row reports one placement policy's outcome over the job stream.
type X1Row struct {
	Policy string
	// Completed and Killed count job outcomes.
	Completed, Killed int
	// WastedHours is the compute lost to kills.
	WastedHours float64
}

// X1Config tunes the scheduling study.
type X1Config struct {
	Cfg avail.Config
	// HistoryDays is how many days of log back the first placement.
	HistoryDays int
	// JobHours is the guest jobs' length.
	JobHours int
	// StartHours are the submission times per test day.
	StartHours []int
	Seed       uint64
}

// DefaultX1Config mirrors the motivating scenario: 3-hour compute jobs
// submitted through the day.
func DefaultX1Config() X1Config {
	return X1Config{
		Cfg:         avail.DefaultConfig(),
		HistoryDays: 45,
		JobHours:    3,
		StartHours:  []int{9, 13, 17},
		Seed:        11,
	}
}

// RunX1 quantifies the benefit the paper's introduction promises: proactive,
// prediction-driven job placement versus prediction-oblivious baselines.
// Four policies place the identical job stream on the identical recorded
// futures:
//
//	oracle:      picks a machine whose window actually survives (upper bound);
//	tr-aware:    picks the machine with the highest predicted TR;
//	round-robin: cycles through machines;
//	random:      uniform choice.
func RunX1(ds *trace.Dataset, cfg X1Config) ([]X1Row, error) {
	if len(ds.Machines) < 2 {
		return nil, fmt.Errorf("experiments: X1 needs at least two machines")
	}
	days := len(ds.Machines[0].Days)
	if cfg.HistoryDays >= days {
		return nil, fmt.Errorf("experiments: history (%d) swallows the trace (%d days)", cfg.HistoryDays, days)
	}
	p := predict.SMP{Cfg: cfg.Cfg}
	engine := predict.NewEngine(predict.EngineConfig{Workers: Workers()})
	r := rng.New(cfg.Seed)
	rows := []X1Row{{Policy: "oracle"}, {Policy: "tr-aware"}, {Policy: "round-robin"}, {Policy: "random"}}
	rr := 0
	for dayIdx := cfg.HistoryDays; dayIdx < days; dayIdx++ {
		if ds.Machines[0].Days[dayIdx].Type() != trace.Weekday {
			continue
		}
		// Each machine's weekday history up to this day is shared by all of
		// the day's submissions.
		hists := make([][]*trace.Day, len(ds.Machines))
		for mi, m := range ds.Machines {
			for _, d := range m.Days[:dayIdx] {
				if d.Type() == trace.Weekday {
					hists[mi] = append(hists[mi], d)
				}
			}
		}
		for _, hour := range cfg.StartHours {
			w, ok := windowFor(float64(hour), float64(cfg.JobHours))
			if !ok {
				continue
			}
			// Ground truth per machine.
			survives := make([]bool, len(ds.Machines))
			for mi, m := range ds.Machines {
				day := m.Days[dayIdx]
				survives[mi] = avail.WindowSurvives(day.Window(w.Start, w.Length), cfg.Cfg, day.Period)
			}
			// Policy picks.
			oracle := -1
			for mi, ok := range survives {
				if ok {
					oracle = mi
					break
				}
			}
			if oracle < 0 {
				oracle = 0 // no machine survives: the oracle fails too
			}
			// The tr-aware scheduler queries every machine at once — the
			// engine fans the batch across its workers, and the strict >
			// keeps the first-best-machine tie-breaking of the serial loop.
			reqs := make([]predict.BatchRequest, len(ds.Machines))
			for mi, m := range ds.Machines {
				reqs[mi] = predict.BatchRequest{Machine: m.ID, History: hists[mi], Window: w}
			}
			best, bestTR := 0, -1.0
			for mi, res := range engine.PredictBatch(p, reqs) {
				if res.Err != nil {
					continue
				}
				if res.Prediction.TR > bestTR {
					best, bestTR = mi, res.Prediction.TR
				}
			}
			picks := []int{oracle, best, rr % len(ds.Machines), r.Intn(len(ds.Machines))}
			rr++
			for pi, pick := range picks {
				if survives[pick] {
					rows[pi].Completed++
				} else {
					rows[pi].Killed++
					// Chargeable waste: on average half the job ran
					// before the kill.
					rows[pi].WastedHours += float64(cfg.JobHours) / 2
				}
			}
		}
	}
	return rows, nil
}

// HeterogeneousTestbed generates a testbed whose machines differ in how
// heavily they are used (different activity scales), the situation in which
// availability-aware placement actually has something to choose between.
// The scheduler sees only the monitor histories, never the scales.
func HeterogeneousTestbed(days int, scales []float64, seed uint64) (*trace.Dataset, error) {
	ds := &trace.Dataset{}
	for i, scale := range scales {
		p := workload.DefaultParams()
		p.Machines = 1
		p.Days = days
		p.Seed = seed + uint64(i)*7919
		p.ActivityScale = scale
		one, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		one.Machines[0].ID = fmt.Sprintf("lab-%02d", i+1)
		ds.Machines = append(ds.Machines, one.Machines[0])
	}
	return ds, nil
}

// DefaultTestbedScales is the X1 machine mix: two busy machines near the
// door, two normal, two quiet corner machines.
var DefaultTestbedScales = []float64{1.5, 1.3, 1.0, 1.0, 0.5, 0.35}

// ------------------------------------------------------------------ X2 ----

// X2Row reports accuracy for one history-pool size N.
type X2Row struct {
	// HistoryDays is N (0 = all available training days).
	HistoryDays int
	// AvgErr and MaxErr summarize the relative TR error over the window set.
	AvgErr, MaxErr float64
	Windows        int
}

// RunX2 sweeps the "most recent N same-type days" pool size of Section 4.2
// — the knob the paper leaves implicit — over the Figure 5 weekday window
// set (a trimmed start grid keeps it tractable).
func RunX2(ds *trace.Dataset, cfg avail.Config, pools []int, lengthsHours []float64) ([]X2Row, error) {
	starts := []int{0, 4, 8, 12, 16, 20}
	// The weekday half split depends only on the machine, not the pool size.
	splits := make([]trace.Split, len(ds.Machines))
	for mi, m := range ds.Machines {
		sp, err := trace.SplitHalf(m, trace.Weekday)
		if err != nil {
			return nil, err
		}
		splits[mi] = sp
	}
	var rows []X2Row
	for _, n := range pools {
		p := predict.SMP{Cfg: cfg, HistoryDays: n}
		outs := make([][]float64, len(ds.Machines))
		parallelFor(len(ds.Machines), func(mi int) {
			for _, h := range lengthsHours {
				for _, start := range starts {
					w, ok := windowFor(float64(start), h)
					if !ok {
						continue
					}
					ev, err := predict.EvaluateSMP(p, splits[mi], w)
					if err != nil || ev.TREmp == 0 {
						continue
					}
					outs[mi] = append(outs[mi], ev.RelErr)
				}
			}
		})
		var errs []float64
		for _, out := range outs {
			errs = append(errs, out...)
		}
		s := stats.Summarize(errs)
		rows = append(rows, X2Row{HistoryDays: n, AvgErr: s.Mean, MaxErr: s.Max, Windows: s.N})
	}
	return rows, nil
}

// ------------------------------------------------------------------ A1 ----

// A1Row reports one estimator variant's accuracy.
type A1Row struct {
	Variant string
	// AvgErr per window length, aligned with the lengths passed in.
	AvgErr []float64
}

// RunA1 scores the estimator-design ablation of DESIGN.md §4: every
// combination of censoring policy and trajectory-extraction mode on the
// Figure 5 weekday window set.
func RunA1(ds *trace.Dataset, cfg avail.Config, lengthsHours []float64) ([]A1Row, error) {
	starts := []int{0, 4, 8, 12, 16, 20}
	variants := []struct {
		name string
		cen  smp.CensorMode
		est  predict.Estimation
	}{
		{"hazard+restart (default)", smp.CensorHazard, predict.EstimateRestart},
		{"hazard+absorb", smp.CensorHazard, predict.EstimateAbsorb},
		{"ignore+restart", smp.CensorIgnore, predict.EstimateRestart},
		{"survival+restart", smp.CensorSurvival, predict.EstimateRestart},
	}
	// The weekday half split depends only on the machine, not the variant.
	splits := make([]trace.Split, len(ds.Machines))
	for mi, m := range ds.Machines {
		sp, err := trace.SplitHalf(m, trace.Weekday)
		if err != nil {
			return nil, err
		}
		splits[mi] = sp
	}
	var rows []A1Row
	for _, v := range variants {
		p := predict.SMP{Cfg: cfg, Censoring: v.cen, Estimation: v.est}
		row := A1Row{Variant: v.name, AvgErr: make([]float64, len(lengthsHours))}
		for li, h := range lengthsHours {
			outs := make([][]float64, len(ds.Machines))
			parallelFor(len(ds.Machines), func(mi int) {
				for _, start := range starts {
					w, ok := windowFor(float64(start), h)
					if !ok {
						continue
					}
					ev, err := predict.EvaluateSMP(p, splits[mi], w)
					if err != nil || ev.TREmp == 0 {
						continue
					}
					outs[mi] = append(outs[mi], ev.RelErr)
				}
			})
			var errs []float64
			for _, out := range outs {
				errs = append(errs, out...)
			}
			row.AvgErr[li] = stats.Mean(errs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ------------------------------------------------------------------ X3 ----

// X3Row is one accuracy row of the enterprise-profile study.
type X3Row struct {
	Profile     string
	WindowHours float64
	AvgErr      float64
	Windows     int
}

// RunX3 reproduces the paper's future-work expectation (Section 8): the
// prediction should also perform well on "a testbed containing enterprise
// desktop resources". It generates both testbed profiles with otherwise
// identical settings and runs the Figure 5 accuracy methodology on the
// windows where guest jobs would actually be placed — start times inside
// working hours (enterprise desktops are powered off overnight, so windows
// anchored there have no recoverable start and windows crossing the daily
// shutdown have an empirical TR pinned at 0).
func RunX3(machines, days int, seed uint64, lengthsHours []float64) ([]X3Row, error) {
	var rows []X3Row
	for _, profile := range []workload.Profile{workload.ProfileLab, workload.ProfileEnterprise} {
		p := workload.DefaultParams()
		p.Machines = machines
		p.Days = days
		p.Seed = seed
		p.Profile = profile
		ds, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		cfg := DefaultF5Config(trace.Weekday)
		cfg.LengthsHours = lengthsHours
		cfg.StartHours = []int{9, 10, 11, 12, 13}
		f5, err := RunF5(ds, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range f5 {
			rows = append(rows, X3Row{
				Profile:     profile.String(),
				WindowHours: r.WindowHours,
				AvgErr:      r.Err.Mean,
				Windows:     r.Windows,
			})
		}
	}
	return rows, nil
}
