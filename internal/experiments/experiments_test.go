package experiments

import (
	"math"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

// testTrace caches a small generated dataset shared by the tests.
var testTrace *trace.Dataset

func getTrace(t *testing.T) *trace.Dataset {
	t.Helper()
	if testTrace == nil {
		p := workload.DefaultParams()
		p.Machines = 2
		p.Days = 56
		ds, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		testTrace = ds
	}
	return testTrace
}

func TestRunF4ShapeAndCost(t *testing.T) {
	ds := getTrace(t)
	rows, exp, err := RunF4(ds.Machines[0], avail.DefaultConfig(), []float64{0.5, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ops <= rows[i-1].Ops {
			t.Fatalf("solver ops not increasing: %v", rows)
		}
		if rows[i].TR < 0 || rows[i].TR > 1 {
			t.Fatalf("TR out of range: %v", rows[i].TR)
		}
	}
	// Ops are quadratic in window length: the 4h/0.5h ratio must far
	// exceed linear growth.
	if rows[3].Ops < 8*rows[0].Ops {
		t.Fatalf("ops growth not superlinear: %d -> %d", rows[0].Ops, rows[3].Ops)
	}
	// The wall-clock exponent is too noisy to assert on a loaded test
	// machine; assert the deterministic ops exponent instead and only
	// log the measured wall exponent.
	t.Logf("wall-clock cost exponent: %v (paper: 1.85)", exp)
	var xs, ys []float64
	for _, r := range rows {
		xs = append(xs, r.WindowHours)
		ys = append(ys, float64(r.Ops))
	}
	opsExp, err := stats.PowerLawExponent(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if opsExp < 1.5 {
		t.Errorf("ops exponent = %v, want ~2 (the superlinear Figure 4 shape)", opsExp)
	}
	if _, _, err := RunF4(trace.NewMachine("empty", time.Second), avail.DefaultConfig(), []float64{1}); err == nil {
		t.Fatal("empty machine accepted")
	}
}

func TestRunF5Basics(t *testing.T) {
	ds := getTrace(t)
	cfg := DefaultF5Config(trace.Weekday)
	cfg.LengthsHours = []float64{1, 3}
	cfg.StartHours = []int{2, 8, 14, 20}
	rows, err := RunF5(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Windows == 0 {
			t.Fatalf("no windows contributed at %vh", r.WindowHours)
		}
		if math.IsNaN(r.Err.Mean) || r.Err.Mean < 0 {
			t.Fatalf("bad error summary: %+v", r.Err)
		}
		if r.Err.Min > r.Err.Mean || r.Err.Mean > r.Err.Max {
			t.Fatalf("summary ordering broken: %+v", r.Err)
		}
	}
	if _, err := RunF5(&trace.Dataset{}, cfg); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRunF5AccuracyHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	// The paper's headline: short-window prediction accuracy well above
	// 73%. Verify 1-hour windows average below 25% relative error.
	ds := getTrace(t)
	cfg := DefaultF5Config(trace.Weekday)
	cfg.LengthsHours = []float64{1}
	rows, err := RunF5(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err.Mean > 0.25 {
		t.Errorf("1h average relative error %v too high", rows[0].Err.Mean)
	}
}

func TestRunF6CoversRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio sweep is slow")
	}
	ds := getTrace(t)
	rows, err := RunF6(ds, avail.DefaultConfig(), []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 ratios", len(rows))
	}
	for i, r := range rows {
		if r.TrainParts != i+1 || r.TestParts != 9-i {
			t.Fatalf("ratio row %d = %d:%d", i, r.TrainParts, r.TestParts)
		}
		if r.MaxAvg < 0 || r.Max < r.MaxAvg {
			t.Fatalf("row %d stats inconsistent: %+v", i, r)
		}
	}
}

func TestRunF7SMPBeatsTimeSeriesLongTerm(t *testing.T) {
	if testing.Short() {
		t.Skip("model comparison is slow")
	}
	ds := getTrace(t)
	cfg := DefaultF7Config()
	cfg.LengthsHours = []float64{1, 5}
	rows, err := RunF7(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want SMP + 5 baselines", len(rows))
	}
	if rows[0].Model != "SMP" {
		t.Fatalf("first row = %s", rows[0].Model)
	}
	// The paper's central comparison: at the long horizon the SMP's max
	// error is below every linear time-series model's.
	smpErr := rows[0].MaxErr[1]
	for _, r := range rows[1:] {
		if r.MaxErr[1] <= smpErr {
			t.Errorf("%s long-window max error %v not worse than SMP %v", r.Model, r.MaxErr[1], smpErr)
		}
	}
	if _, err := RunF7(&trace.Dataset{}, cfg); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestRunF8NoiseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep is slow")
	}
	ds := getTrace(t)
	cfg := DefaultF8Config()
	cfg.NoiseCounts = []int{0, 4, 10}
	cfg.LengthsHours = []float64{1, 10}
	rows, err := RunF8(ds.Machines[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Zero noise: zero discrepancy.
	for _, d := range rows[0].Discrepancy {
		if d != 0 {
			t.Fatalf("discrepancy without noise: %v", rows[0].Discrepancy)
		}
	}
	// Noise must move the prediction for the short quiet window.
	if rows[2].Discrepancy[0] == 0 {
		t.Error("10 injected occurrences left the 1h prediction unchanged")
	}
	// Discrepancy grows with the amount of injected noise at every
	// window length (see EXPERIMENTS.md for how this relates to the
	// paper's Figure 8, including the deviation on long windows).
	for li := range cfg.LengthsHours {
		if rows[1].Discrepancy[li] >= rows[2].Discrepancy[li]+0.15 {
			t.Errorf("length %vh: discrepancy fell from %v (4 noise) to %v (10 noise)",
				cfg.LengthsHours[li], rows[1].Discrepancy[li], rows[2].Discrepancy[li])
		}
		if rows[1].Discrepancy[li] == 0 {
			t.Errorf("length %vh: 4 injected occurrences caused no discrepancy", cfg.LengthsHours[li])
		}
	}
}

func TestRunS6Counts(t *testing.T) {
	ds := getTrace(t)
	rows := RunS6(ds, avail.DefaultConfig())
	if len(rows) != len(ds.Machines) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Events <= 0 {
			t.Fatalf("%s has no events", r.MachineID)
		}
		sum := 0
		for _, c := range r.ByState {
			sum += c
		}
		if sum != r.Events {
			t.Fatalf("%s: per-state sum %d != total %d", r.MachineID, sum, r.Events)
		}
	}
}

func TestRunS7Overhead(t *testing.T) {
	res, err := RunS7(5000, trace.DefaultPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 5000 || res.PerSample <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The sampling path must cost far less than 1% of the 6 s period.
	if res.PeriodFraction > 0.01 {
		t.Errorf("monitoring overhead %v of the period, want < 1%%", res.PeriodFraction)
	}
	if _, err := RunS7(0, time.Second); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestWindowFor(t *testing.T) {
	if _, ok := windowFor(8, 2); !ok {
		t.Fatal("valid window rejected")
	}
	if _, ok := windowFor(20, 10); ok {
		t.Fatal("overflowing window accepted")
	}
}
