// Package experiments regenerates the paper's evaluation: every figure of
// Section 7 (F4 cost, F5 accuracy, F6 training-ratio sensitivity, F7
// comparison against linear time-series models, F8 noise robustness) plus
// the Section 6.1 trace statistics (S6) and the Section 7.1 monitoring
// overhead (S7). The Section 3.2 contention studies (E1, E2) live in
// package host.
//
// Each Run* function returns the rows of the corresponding figure; cmd/
// experiments prints them and EXPERIMENTS.md records the measured outcomes
// next to the paper's.
package experiments

import (
	"fmt"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/monitor"
	"fgcs/internal/predict"
	"fgcs/internal/rng"
	"fgcs/internal/smp"
	"fgcs/internal/stats"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

// DefaultLengthsHours are the window lengths of Figures 5-8.
var DefaultLengthsHours = []float64{1, 2, 3, 5, 10}

// windowFor builds the prediction window, returning false when it does not
// fit inside a day.
func windowFor(startHour, lengthHours float64) (predict.Window, bool) {
	w := predict.Window{
		Start:  time.Duration(startHour * float64(time.Hour)),
		Length: time.Duration(lengthHours * float64(time.Hour)),
	}
	return w, w.Validate() == nil
}

// ------------------------------------------------------------------ F4 ----

// F4Row is one point of Figure 4: the computational cost of predicting over
// a window of the given length.
type F4Row struct {
	WindowHours float64
	// QHTime is the time to compute the SMP parameters Q and H from the
	// history windows.
	QHTime time.Duration
	// TotalTime additionally includes solving Equation (3) for TR.
	TotalTime time.Duration
	// Ops is the solver's multiply-accumulate count.
	Ops int64
	// TR is the computed reliability (to keep the work observable).
	TR float64
}

// RunF4 measures prediction cost on one machine's weekday history for
// windows starting at 08:00. It returns the rows and the fitted power-law
// exponent of total time vs. window length (the paper reports 1.85).
func RunF4(m *trace.Machine, cfg avail.Config, hours []float64) ([]F4Row, float64, error) {
	days := m.DaysOfType(trace.Weekday)
	if len(days) == 0 {
		return nil, 0, fmt.Errorf("experiments: no weekday history")
	}
	period := m.Period
	var rows []F4Row
	for _, h := range hours {
		w, ok := windowFor(8, h)
		if !ok {
			continue
		}
		units := w.Units(period)

		// Phase 1: Q and H (sojourn extraction + kernel estimation).
		startQH := time.Now()
		var seqs [][]avail.Sojourn
		for _, d := range days {
			seqs = append(seqs, avail.ExtractSojourns(d.Window(w.Start, w.Length), cfg, period))
		}
		kernel, err := smp.Estimator{Horizon: units}.Estimate(seqs)
		if err != nil {
			return nil, 0, err
		}
		qhTime := time.Since(startQH)

		// Phase 2: the TR solve.
		res, err := kernel.Solve(avail.S1, units)
		if err != nil {
			return nil, 0, err
		}
		total := time.Since(startQH)
		rows = append(rows, F4Row{WindowHours: h, QHTime: qhTime, TotalTime: total, Ops: res.Ops, TR: res.TR})
	}
	var xs, ys []float64
	for _, r := range rows {
		xs = append(xs, r.WindowHours)
		ys = append(ys, float64(r.TotalTime))
	}
	exp, err := stats.PowerLawExponent(xs, ys)
	if err != nil {
		exp = 0
	}
	return rows, exp, nil
}

// ------------------------------------------------------------------ F5 ----

// F5Row is one point of Figure 5: relative TR prediction error for a window
// length, aggregated over start times (0:00-23:00) and machines.
type F5Row struct {
	WindowHours float64
	Err         stats.Summary
	// Windows is how many (machine, start) windows contributed; Skipped
	// counts windows dropped because they do not fit in a day, have no
	// usable test days, or have an empirical TR of zero (the relative
	// error is undefined there).
	Windows, Skipped int
}

// F5Config tunes the accuracy sweep.
type F5Config struct {
	Cfg          avail.Config
	DayType      trace.DayType
	LengthsHours []float64
	StartHours   []int
	// TrainParts and TestParts set the split ratio (paper default 1:1;
	// Figure 6 sweeps it).
	TrainParts, TestParts int
}

// DefaultF5Config mirrors the paper: all 24 start times, the standard
// lengths, a 50/50 chronological split.
func DefaultF5Config(t trace.DayType) F5Config {
	starts := make([]int, 24)
	for i := range starts {
		starts[i] = i
	}
	return F5Config{
		Cfg:          avail.DefaultConfig(),
		DayType:      t,
		LengthsHours: DefaultLengthsHours,
		StartHours:   starts,
		TrainParts:   1,
		TestParts:    1,
	}
}

// RunF5 reproduces Figure 5: for every machine and start time it trains the
// SMP predictor on the first part of the trace and scores the relative TR
// error on the rest. The per-machine evaluations run across the package's
// worker pool (SetWorkers); outputs are merged in machine order, so the
// summary statistics are bit-identical to a serial run.
func RunF5(ds *trace.Dataset, cfg F5Config) ([]F5Row, error) {
	if len(ds.Machines) == 0 {
		return nil, fmt.Errorf("experiments: empty dataset")
	}
	p := predict.SMP{Cfg: cfg.Cfg}
	// The chronological split depends only on the machine and the ratio —
	// compute it once instead of once per window length.
	splits := make([]trace.Split, len(ds.Machines))
	for mi, m := range ds.Machines {
		sp, err := trace.SplitRatio(m, cfg.DayType, cfg.TrainParts, cfg.TestParts)
		if err != nil {
			return nil, err
		}
		splits[mi] = sp
	}
	var rows []F5Row
	type machineOut struct {
		errs    []float64
		skipped int
	}
	for _, h := range cfg.LengthsHours {
		outs := make([]machineOut, len(ds.Machines))
		parallelFor(len(ds.Machines), func(mi int) {
			out := &outs[mi]
			for _, start := range cfg.StartHours {
				w, ok := windowFor(float64(start), h)
				if !ok {
					out.skipped++
					continue
				}
				ev, err := predict.EvaluateSMP(p, splits[mi], w)
				if err != nil || ev.TREmp == 0 {
					out.skipped++
					continue
				}
				out.errs = append(out.errs, ev.RelErr)
			}
		})
		var errs []float64
		skipped := 0
		for _, out := range outs {
			errs = append(errs, out.errs...)
			skipped += out.skipped
		}
		rows = append(rows, F5Row{WindowHours: h, Err: stats.Summarize(errs), Windows: len(errs), Skipped: skipped})
	}
	return rows, nil
}

// ------------------------------------------------------------------ F6 ----

// F6Row is one point of Figure 6: error statistics for one train:test ratio.
type F6Row struct {
	TrainParts, TestParts int
	// MaxAvg is the maximum over window lengths of the average error
	// ("max-average error over 240 time windows").
	MaxAvg float64
	// Max is the overall maximum error.
	Max float64
}

// RunF6 reproduces Figure 6: the Figure 5 weekday sweep at training ratios
// 1:9 through 9:1.
func RunF6(ds *trace.Dataset, cfg avail.Config, lengthsHours []float64) ([]F6Row, error) {
	var rows []F6Row
	for train := 1; train <= 9; train++ {
		fcfg := DefaultF5Config(trace.Weekday)
		fcfg.Cfg = cfg
		fcfg.LengthsHours = lengthsHours
		fcfg.TrainParts, fcfg.TestParts = train, 10-train
		f5, err := RunF5(ds, fcfg)
		if err != nil {
			return nil, err
		}
		row := F6Row{TrainParts: train, TestParts: 10 - train}
		for _, r := range f5 {
			if r.Err.Mean > row.MaxAvg {
				row.MaxAvg = r.Err.Mean
			}
			if r.Windows > 0 && r.Err.Max > row.Max {
				row.Max = r.Err.Max
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ------------------------------------------------------------------ F7 ----

// F7Row is one curve of Figure 7: the maximum prediction error of one
// algorithm across machines, per window length.
type F7Row struct {
	Model string
	// MaxErr[i] corresponds to LengthsHours[i]; NaN-free: windows with
	// undefined error are skipped.
	MaxErr []float64
}

// F7Config tunes the comparison.
type F7Config struct {
	Cfg          avail.Config
	StartHour    int
	LengthsHours []float64
}

// DefaultF7Config mirrors the paper's representative case: windows starting
// at 08:00 on weekdays.
func DefaultF7Config() F7Config {
	return F7Config{Cfg: avail.DefaultConfig(), StartHour: 8, LengthsHours: DefaultLengthsHours}
}

// RunF7 reproduces Figure 7: SMP versus the Table 1 linear time-series
// models, scored by the maximum relative error across machines. Machines are
// evaluated in parallel; the max-reduction runs serially in machine order.
func RunF7(ds *trace.Dataset, cfg F7Config) ([]F7Row, error) {
	if len(ds.Machines) == 0 {
		return nil, fmt.Errorf("experiments: empty dataset")
	}
	smpPred := predict.SMP{Cfg: cfg.Cfg}
	suite := timeseries.ReferenceSuite()
	rows := []F7Row{{Model: smpPred.Name(), MaxErr: make([]float64, len(cfg.LengthsHours))}}
	for _, f := range suite {
		rows = append(rows, F7Row{Model: f.Name(), MaxErr: make([]float64, len(cfg.LengthsHours))})
	}
	// The weekday half split depends only on the machine.
	splits := make([]trace.Split, len(ds.Machines))
	for mi, m := range ds.Machines {
		sp, err := trace.SplitHalf(m, trace.Weekday)
		if err != nil {
			return nil, err
		}
		splits[mi] = sp
	}
	for li, h := range cfg.LengthsHours {
		w, ok := windowFor(float64(cfg.StartHour), h)
		if !ok {
			continue
		}
		// outs[mi][0] is the SMP error, outs[mi][1+fi] the fi-th model's;
		// -1 marks an unusable window (errors are non-negative).
		outs := make([][]float64, len(ds.Machines))
		parallelFor(len(ds.Machines), func(mi int) {
			errs := make([]float64, 1+len(suite))
			for i := range errs {
				errs[i] = -1
			}
			sp := splits[mi]
			if ev, err := predict.EvaluateSMP(smpPred, sp, w); err == nil && ev.TREmp > 0 {
				errs[0] = ev.RelErr
			}
			for fi, f := range suite {
				ts := predict.TimeSeries{Cfg: cfg.Cfg, Fitter: f}
				if ev, err := predict.EvaluateTimeSeries(ts, sp, w); err == nil && ev.TREmp > 0 {
					errs[1+fi] = ev.RelErr
				}
			}
			outs[mi] = errs
		})
		for _, errs := range outs {
			for ri := range rows {
				if errs[ri] > rows[ri].MaxErr[li] {
					rows[ri].MaxErr[li] = errs[ri]
				}
			}
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ F8 ----

// F8Row is one noise level of Figure 8.
type F8Row struct {
	Noise int
	// Discrepancy[i] is the relative difference between the noisy and
	// clean predictions for LengthsHours[i].
	Discrepancy []float64
}

// F8Config tunes the robustness study.
type F8Config struct {
	Cfg          avail.Config
	StartHour    int
	LengthsHours []float64
	NoiseCounts  []int
	Spec         trace.NoiseSpec
	// HistoryDays is the N of "most recent N weekdays" the SMP estimator
	// pools; the injections target exactly those days.
	HistoryDays int
	Seed        uint64
}

// DefaultF8Config mirrors the paper: unavailability occurrences inserted
// around 08:00 am — when unavailability is otherwise very rare — into
// weekday training logs, holding times U[60 s, 1800 s], 0-10 instances,
// predictions over windows starting at 08:00.
func DefaultF8Config() F8Config {
	return F8Config{
		Cfg:          avail.DefaultConfig(),
		StartHour:    8,
		LengthsHours: DefaultLengthsHours,
		NoiseCounts:  []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Spec: trace.NoiseSpec{
			// Strictly inside the evaluated windows: starts in
			// (8:02, 8:18), holding 60-1800 s.
			Around: 8*time.Hour + 10*time.Minute,
			Jitter: 8 * time.Minute,
		},
		HistoryDays: 10,
		Seed:        7,
	}
}

// RunF8 reproduces Figure 8 on one machine: inject noise into the most
// recent weekday training logs and measure the prediction discrepancy
// against the clean prediction.
func RunF8(m *trace.Machine, cfg F8Config) ([]F8Row, error) {
	sp, err := trace.SplitHalf(m, trace.Weekday)
	if err != nil {
		return nil, err
	}
	p := predict.SMP{Cfg: cfg.Cfg, HistoryDays: cfg.HistoryDays}
	clean := make([]float64, len(cfg.LengthsHours))
	for li, h := range cfg.LengthsHours {
		w, ok := windowFor(float64(cfg.StartHour), h)
		if !ok {
			return nil, fmt.Errorf("experiments: window %vh at %d:00 does not fit", h, cfg.StartHour)
		}
		pred, err := p.Predict(sp.Train, w)
		if err != nil {
			return nil, err
		}
		clean[li] = pred.TR
	}
	var rows []F8Row
	for _, count := range cfg.NoiseCounts {
		noisy := trace.CloneDays(sp.Train)
		// Target the most recent days — the ones inside the predictor's
		// history horizon.
		target := noisy
		if cfg.HistoryDays > 0 && len(target) > cfg.HistoryDays {
			target = target[len(target)-cfg.HistoryDays:]
		}
		r := rng.New(cfg.Seed).SplitN("noise", count)
		if _, err := trace.InjectNoise(target, count, cfg.Spec, r); err != nil {
			return nil, err
		}
		row := F8Row{Noise: count, Discrepancy: make([]float64, len(cfg.LengthsHours))}
		for li, h := range cfg.LengthsHours {
			w, _ := windowFor(float64(cfg.StartHour), h)
			pred, err := p.Predict(noisy, w)
			if err != nil {
				return nil, err
			}
			row.Discrepancy[li] = stats.RelativeError(pred.TR, clean[li])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ------------------------------------------------------------------ S6 ----

// S6Row summarizes one machine's unavailability statistics (Section 6.1).
type S6Row struct {
	MachineID string
	Days      int
	Events    int
	ByState   map[avail.State]int
}

// RunS6 counts unavailability occurrences per machine.
func RunS6(ds *trace.Dataset, cfg avail.Config) []S6Row {
	var rows []S6Row
	for _, m := range ds.Machines {
		row := S6Row{MachineID: m.ID, Days: len(m.Days), ByState: map[avail.State]int{}}
		for _, d := range m.Days {
			for _, e := range avail.Events(d, cfg) {
				row.Events++
				row.ByState[e.State]++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ------------------------------------------------------------------ S7 ----

// S7Result reports the monitoring overhead (Section 7.1).
type S7Result struct {
	// PerSample is the mean cost of one sampling tick (source read +
	// recording + heartbeat-free path).
	PerSample time.Duration
	// PeriodFraction is PerSample divided by the sampling period: the
	// monitor's CPU overhead (paper: < 1%).
	PeriodFraction float64
	Samples        int
}

// RunS7 measures the cost of the monitor's sampling path against an
// in-memory recorder.
func RunS7(samples int, period time.Duration) (S7Result, error) {
	if samples <= 0 {
		return S7Result{}, fmt.Errorf("experiments: need positive sample count")
	}
	rec := monitor.NewRecorder("overhead-test", period, 0)
	mon, err := monitor.New(monitor.Config{Period: period}, monitor.StaticSource{CPU: 25, FreeMemMB: 300}, rec)
	if err != nil {
		return S7Result{}, err
	}
	base := time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)
	start := time.Now()
	for i := 0; i < samples; i++ {
		mon.Tick(base.Add(time.Duration(i) * period))
	}
	elapsed := time.Since(start)
	per := elapsed / time.Duration(samples)
	return S7Result{
		PerSample:      per,
		PeriodFraction: float64(per) / float64(period),
		Samples:        samples,
	}, nil
}
