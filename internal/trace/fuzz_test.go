package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the binary decoder against corrupt archives: it
// must reject or parse, never panic or over-allocate.
func FuzzReadBinary(f *testing.F) {
	ds := randomDataset(1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-encode cleanly.
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dataset failed: %v", err)
		}
	})
}

// FuzzReadText does the same for the text decoder.
func FuzzReadText(f *testing.F) {
	ds := randomDataset(2)
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("fgcs-trace 1\nmachine m 6\nday 0\n1 2 1\n")
	f.Add("fgcs-trace 1\n# nothing else\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dataset failed: %v", err)
		}
	})
}
