package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the binary decoder against corrupt archives: it
// must reject or parse, never panic or over-allocate.
func FuzzReadBinary(f *testing.F) {
	ds := randomDataset(1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must survive a full encode/decode round trip —
		// the format is its own specification.
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dataset failed: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}

// FuzzReadText does the same for the text decoder.
func FuzzReadText(f *testing.F) {
	ds := randomDataset(2)
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("fgcs-trace 1\nmachine m 6\nday 0\n1 2 1\n")
	f.Add("fgcs-trace 1\n# nothing else\n")
	f.Add("")
	f.Add("fgcs-trace 1\nmachine m 6\nday 1124668800\n# comment\n5 400 1\n90 10 0\n")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("re-encode of parsed dataset failed: %v", err)
		}
		if _, err := ReadText(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("round trip rejected: %v\ninput: %q\nre-encoded: %q", err, data, out.Bytes())
		}
	})
}
