package trace

import (
	"fmt"
	"time"

	"fgcs/internal/rng"
)

// NoiseKind selects how an injected unavailability occurrence is written
// into the log.
type NoiseKind int

const (
	// NoiseURR marks the machine as down (state S5) for the holding time.
	NoiseURR NoiseKind = iota
	// NoiseCPU saturates the host CPU load (driving the classifier to S3)
	// for the holding time.
	NoiseCPU
	// NoiseMem drops free memory to zero (driving the classifier to S4)
	// for the holding time.
	NoiseMem
)

// NoiseSpec describes the Section 7.3 noise-injection procedure: irregular
// occurrences of unavailability inserted around a time of day when
// unavailability is otherwise rare (8:00 am in the paper).
type NoiseSpec struct {
	// Around is the offset from midnight around which occurrences are
	// inserted. Defaults to 8h.
	Around time.Duration
	// Jitter is the maximum absolute deviation of each occurrence's start
	// from Around. Defaults to 30 minutes, keeping all injections inside
	// the same one-hour band as the paper.
	Jitter time.Duration
	// MinHold and MaxHold bound the uniformly drawn holding time of the
	// injected failure state. Defaults: 60 s and 1800 s.
	MinHold, MaxHold time.Duration
	// Kind selects the injected failure state. Defaults to NoiseURR.
	Kind NoiseKind
}

func (s *NoiseSpec) defaults() {
	if s.Around == 0 {
		s.Around = 8 * time.Hour
	}
	if s.Jitter == 0 {
		s.Jitter = 30 * time.Minute
	}
	if s.MinHold == 0 {
		s.MinHold = 60 * time.Second
	}
	if s.MaxHold == 0 {
		s.MaxHold = 1800 * time.Second
	}
}

// InjectNoise inserts count occurrences of unavailability into the given
// training days (round-robin across days), mutating them in place. It
// returns the offsets at which occurrences were inserted. Days must be
// non-empty.
func InjectNoise(days []*Day, count int, spec NoiseSpec, r *rng.Stream) ([]time.Duration, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("trace: no days to inject noise into")
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: negative noise count")
	}
	spec.defaults()
	offsets := make([]time.Duration, 0, count)
	for k := 0; k < count; k++ {
		day := days[k%len(days)]
		start := spec.Around + time.Duration(r.Uniform(-float64(spec.Jitter), float64(spec.Jitter)))
		hold := time.Duration(r.Uniform(float64(spec.MinHold), float64(spec.MaxHold)))
		injectOne(day, start, hold, spec.Kind)
		offsets = append(offsets, start)
	}
	return offsets, nil
}

func injectOne(day *Day, start, hold time.Duration, kind NoiseKind) {
	lo := day.IndexAt(start)
	hi := day.IndexAt(start + hold)
	if hi <= lo {
		hi = lo + 1
	}
	if hi > len(day.Samples) {
		hi = len(day.Samples)
	}
	for i := lo; i < hi; i++ {
		switch kind {
		case NoiseURR:
			day.Samples[i].Up = false
		case NoiseCPU:
			day.Samples[i].CPU = 100
		case NoiseMem:
			day.Samples[i].FreeMemMB = 0
		}
	}
}

// CloneDays deep-copies a slice of days, so noise can be injected without
// mutating the original dataset.
func CloneDays(days []*Day) []*Day {
	out := make([]*Day, len(days))
	for i, d := range days {
		out[i] = d.Clone()
	}
	return out
}
