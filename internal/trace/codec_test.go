package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"fgcs/internal/rng"
)

// randomDataset builds an arbitrary small dataset from a seed, for round-trip
// property tests.
func randomDataset(seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{}
	nm := 1 + r.Intn(3)
	for i := 0; i < nm; i++ {
		period := time.Duration(1+r.Intn(10)) * time.Second
		m := NewMachine(string(rune('a'+i))+"-host", period)
		nd := 1 + r.Intn(4)
		for j := 0; j < nd; j++ {
			d := &Day{Date: monday.AddDate(0, 0, j), Period: period}
			ns := r.Intn(50)
			for k := 0; k < ns; k++ {
				d.Samples = append(d.Samples, Sample{
					CPU:       math.Round(r.Uniform(0, 100)*100) / 100,
					FreeMemMB: math.Round(r.Uniform(0, 512)*100) / 100,
					Up:        r.Bool(0.95),
				})
			}
			if err := m.AddDay(d); err != nil {
				panic(err)
			}
		}
		ds.Machines = append(ds.Machines, m)
	}
	return ds
}

func datasetsEqual(a, b *Dataset, tol float64) bool {
	if len(a.Machines) != len(b.Machines) {
		return false
	}
	for i := range a.Machines {
		ma, mb := a.Machines[i], b.Machines[i]
		if ma.ID != mb.ID || ma.Period != mb.Period || len(ma.Days) != len(mb.Days) {
			return false
		}
		for j := range ma.Days {
			da, db := ma.Days[j], mb.Days[j]
			if da.Date.Unix() != db.Date.Unix() || len(da.Samples) != len(db.Samples) {
				return false
			}
			for k := range da.Samples {
				sa, sb := da.Samples[k], db.Samples[k]
				if sa.Up != sb.Up ||
					math.Abs(sa.CPU-sb.CPU) > tol ||
					math.Abs(sa.FreeMemMB-sb.FreeMemMB) > tol {
					return false
				}
			}
		}
	}
	return true
}

func TestBinaryRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		ds := randomDataset(seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ds); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		// Binary uses float32; allow that quantization.
		return datasetsEqual(ds, got, 1e-3)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		ds := randomDataset(seed)
		var buf bytes.Buffer
		if err := WriteText(&buf, ds); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return datasetsEqual(ds, got, 0)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid magic, truncated body.
	if _, err := ReadBinary(bytes.NewReader([]byte(binaryMagic))); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		"fgcs-trace 1\nday 123\n",            // day before machine
		"fgcs-trace 1\nmachine m 6\n1 2 3\n", // sample before day
		"fgcs-trace 1\nmachine m 0\n",        // zero period
		"fgcs-trace 1\nmachine m 6\nday notanumber\n",   // bad date
		"fgcs-trace 1\nmachine m 6\nday 0\nx y z\n",     // bad sample
		"fgcs-trace 1\nmachine m 6\nday 0\n1 2\n",       // short sample
		"fgcs-trace 1\nmachine m\n",                     // malformed machine
		"fgcs-trace 1\nmachine m 6\nday 86400\nday 0\n", // out-of-order days
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("malformed input accepted: %q", c)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "fgcs-trace 1\n# comment\nmachine m 6\n\nday 0\n10 100 1\n"
	ds, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Machines) != 1 || len(ds.Machines[0].Days[0].Samples) != 1 {
		t.Fatal("comment/blank handling wrong")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	ds := randomDataset(1234)
	for _, name := range []string{"trace.bin", "trace.txt"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, ds); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tol := 0.0
		if name == "trace.bin" {
			tol = 1e-3
		}
		if !datasetsEqual(ds, got, tol) {
			t.Fatalf("%s round trip mismatch", name)
		}
	}
	if err := SaveFile("/nonexistent-dir/x.bin", ds); err == nil {
		t.Fatal("bad path accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveLoadGzip(t *testing.T) {
	dir := t.TempDir()
	ds := randomDataset(777)
	path := filepath.Join(dir, "trace.bin.gz")
	if err := SaveFile(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(ds, got, 1e-3) {
		t.Fatal("gzip round trip mismatch")
	}
	// A non-gzip file with a .gz name must error, not crash.
	bad := filepath.Join(dir, "bad.gz")
	if err := SaveFile(filepath.Join(dir, "plain.bin"), ds); err != nil {
		t.Fatal(err)
	}
	if err := copyFile(filepath.Join(dir, "plain.bin"), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("non-gzip content with .gz extension accepted")
	}
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

func TestGzipActuallyCompresses(t *testing.T) {
	// A day of real-looking samples must compress substantially.
	d := NewDay(monday, DefaultPeriod)
	for i := range d.Samples {
		d.Samples[i] = Sample{CPU: float64(i%7) * 10, FreeMemMB: 300, Up: true}
	}
	m := NewMachine("z", DefaultPeriod)
	if err := m.AddDay(d); err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Machines: []*Machine{m}}
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.bin")
	zipped := filepath.Join(dir, "a.bin.gz")
	if err := SaveFile(plain, ds); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(zipped, ds); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size()*4 > ps.Size() {
		t.Fatalf("gzip size %d not much smaller than plain %d", zs.Size(), ps.Size())
	}
}
