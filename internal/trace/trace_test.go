package trace

import (
	"testing"
	"time"
)

var monday = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC) // a Monday

func TestTypeOfDate(t *testing.T) {
	if TypeOfDate(monday) != Weekday {
		t.Fatal("Monday should be a weekday")
	}
	sat := time.Date(2005, 8, 27, 0, 0, 0, 0, time.UTC)
	sun := time.Date(2005, 8, 28, 0, 0, 0, 0, time.UTC)
	if TypeOfDate(sat) != Weekend || TypeOfDate(sun) != Weekend {
		t.Fatal("Saturday/Sunday should be weekends")
	}
	if Weekday.String() != "weekday" || Weekend.String() != "weekend" {
		t.Fatal("DayType strings wrong")
	}
}

func TestNewDayShape(t *testing.T) {
	d := NewDay(monday, DefaultPeriod)
	if d.Len() != 14400 {
		t.Fatalf("full day at 6s = %d samples, want 14400", d.Len())
	}
	for _, s := range d.Samples[:10] {
		if !s.Up {
			t.Fatal("fresh day samples should start Up")
		}
	}
	if d.Type() != Weekday {
		t.Fatal("day type wrong")
	}
}

func TestNewDayPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDay(monday, 0)
}

func TestIndexAtAndWindow(t *testing.T) {
	d := NewDay(monday, time.Minute)
	if d.Len() != 1440 {
		t.Fatalf("minute-day = %d samples", d.Len())
	}
	if d.IndexAt(-time.Hour) != 0 {
		t.Fatal("negative offset should clamp to 0")
	}
	if d.IndexAt(8*time.Hour) != 480 {
		t.Fatalf("IndexAt(8h) = %d", d.IndexAt(8*time.Hour))
	}
	if d.IndexAt(48*time.Hour) != 1440 {
		t.Fatal("past-end offset should clamp to Len")
	}
	w := d.Window(8*time.Hour, 2*time.Hour)
	if len(w) != 120 {
		t.Fatalf("2h window at 1min = %d samples", len(w))
	}
	if len(d.Window(23*time.Hour, 5*time.Hour)) != 60 {
		t.Fatal("window past midnight should truncate")
	}
	if len(d.Window(5*time.Hour, -time.Hour)) != 0 {
		t.Fatal("negative-length window should be empty")
	}
}

func TestDayClone(t *testing.T) {
	d := NewDay(monday, time.Minute)
	c := d.Clone()
	c.Samples[0].CPU = 99
	if d.Samples[0].CPU == 99 {
		t.Fatal("Clone aliases sample storage")
	}
}

func TestMachineAddDayOrdering(t *testing.T) {
	m := NewMachine("lab-01", time.Minute)
	d1 := NewDay(monday, time.Minute)
	d2 := NewDay(monday.AddDate(0, 0, 1), time.Minute)
	if err := m.AddDay(d1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDay(d2); err != nil {
		t.Fatal(err)
	}
	if err := m.AddDay(d1.Clone()); err == nil {
		t.Fatal("out-of-order day accepted")
	}
	bad := NewDay(monday.AddDate(0, 0, 2), time.Second)
	if err := m.AddDay(bad); err == nil {
		t.Fatal("mismatched period accepted")
	}
}

func TestMachineDaysOfType(t *testing.T) {
	m := NewMachine("lab-01", time.Minute)
	for i := 0; i < 14; i++ {
		if err := m.AddDay(NewDay(monday.AddDate(0, 0, i), time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	wd := m.DaysOfType(Weekday)
	we := m.DaysOfType(Weekend)
	if len(wd) != 10 || len(we) != 4 {
		t.Fatalf("weekdays=%d weekends=%d, want 10/4", len(wd), len(we))
	}
	for i := 1; i < len(wd); i++ {
		if !wd[i].Date.After(wd[i-1].Date) {
			t.Fatal("DaysOfType broke chronological order")
		}
	}
}

func TestDatasetHelpers(t *testing.T) {
	m1 := NewMachine("a", time.Minute)
	m2 := NewMachine("b", time.Minute)
	_ = m1.AddDay(NewDay(monday, time.Minute))
	_ = m2.AddDay(NewDay(monday, time.Minute))
	_ = m2.AddDay(NewDay(monday.AddDate(0, 0, 1), time.Minute))
	ds := &Dataset{Machines: []*Machine{m1, m2}}
	if ds.MachineDays() != 3 {
		t.Fatalf("MachineDays = %d", ds.MachineDays())
	}
	if ds.Find("b") != m2 || ds.Find("zzz") != nil {
		t.Fatal("Find wrong")
	}
	c := ds.Clone()
	c.Machines[0].Days[0].Samples[0].CPU = 42
	if ds.Machines[0].Days[0].Samples[0].CPU == 42 {
		t.Fatal("Dataset.Clone aliases storage")
	}
}

func TestSplitRatio(t *testing.T) {
	m := NewMachine("lab-01", time.Minute)
	for i := 0; i < 70; i++ { // 10 weeks: 50 weekdays, 20 weekend days
		_ = m.AddDay(NewDay(monday.AddDate(0, 0, i), time.Minute))
	}
	sp, err := SplitHalf(m, Weekday)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 25 || len(sp.Test) != 25 {
		t.Fatalf("half split = %d/%d", len(sp.Train), len(sp.Test))
	}
	// Chronological: all training days precede all test days.
	if !sp.Train[len(sp.Train)-1].Date.Before(sp.Test[0].Date) {
		t.Fatal("split is not chronological")
	}
	for _, ratio := range [][2]int{{1, 9}, {3, 7}, {6, 4}, {9, 1}} {
		sp, err := SplitRatio(m, Weekday, ratio[0], ratio[1])
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if len(sp.Train) == 0 || len(sp.Test) == 0 {
			t.Fatalf("ratio %v produced an empty side", ratio)
		}
		if len(sp.Train)+len(sp.Test) != 50 {
			t.Fatalf("ratio %v lost days", ratio)
		}
	}
	sp64, _ := SplitRatio(m, Weekday, 6, 4)
	if len(sp64.Train) != 30 {
		t.Fatalf("6:4 of 50 days = %d train, want 30", len(sp64.Train))
	}
}

func TestSplitRatioErrors(t *testing.T) {
	m := NewMachine("lab-01", time.Minute)
	if _, err := SplitRatio(m, Weekday, 1, 1); err == nil {
		t.Fatal("empty machine accepted")
	}
	_ = m.AddDay(NewDay(monday, time.Minute))
	if _, err := SplitRatio(m, Weekday, 0, 1); err == nil {
		t.Fatal("zero ratio accepted")
	}
	// Single day: train gets it, test empty is unavoidable; ensure no panic.
	sp, err := SplitRatio(m, Weekday, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 1 {
		t.Fatalf("single-day split train=%d", len(sp.Train))
	}
}
