// Package trace models the history logs produced by the resource monitor:
// per-machine, per-day series of host-resource-usage samples (total host CPU
// load, free memory, machine-up flag) taken at a fixed period (6 seconds in
// the paper's testbed).
//
// The package also provides the dataset manipulations the evaluation
// methodology of Sections 6 and 7 needs: chronological train/test splits at
// arbitrary ratios, weekday/weekend partitioning, window extraction, and the
// noise-injection procedure of Section 7.3.
package trace

import (
	"fmt"
	"time"
)

// DefaultPeriod is the monitoring period used throughout the paper.
const DefaultPeriod = 6 * time.Second

// Sample is one observation of host resource usage. These are exactly the
// observable parameters of Section 3.1: quantities obtainable without special
// privileges on the host.
type Sample struct {
	// CPU is the total CPU usage of all host processes, in percent (0-100).
	CPU float64
	// FreeMemMB is the free physical memory available to a guest process,
	// in megabytes.
	FreeMemMB float64
	// Up reports whether the machine (and its FGCS services) was reachable
	// when the sample was due. A false value is an occurrence of URR:
	// either the owner revoked the resource or the machine failed.
	Up bool
}

// DayType distinguishes weekday from weekend logs; the SMP estimator only
// pools history from days of the same type (Section 4.2).
type DayType int

const (
	Weekday DayType = iota
	Weekend
)

// String returns "weekday" or "weekend".
func (t DayType) String() string {
	if t == Weekend {
		return "weekend"
	}
	return "weekday"
}

// TypeOfDate returns the DayType of a calendar date.
func TypeOfDate(date time.Time) DayType {
	switch date.Weekday() {
	case time.Saturday, time.Sunday:
		return Weekend
	default:
		return Weekday
	}
}

// Day is one calendar day of samples for one machine.
type Day struct {
	// Date is midnight (local) of the day the samples belong to.
	Date time.Time
	// Period is the sampling period.
	Period time.Duration
	// Samples holds one Sample per period, Samples[i] taken at
	// Date + i*Period. A full day at the 6 s default has 14400 samples.
	Samples []Sample
}

// NewDay allocates a Day covering the full 24 hours at the given period.
// All samples start as Up with zero load; callers fill them in.
func NewDay(date time.Time, period time.Duration) *Day {
	if period <= 0 {
		panic("trace: non-positive period")
	}
	n := int(24 * time.Hour / period)
	d := &Day{Date: date, Period: period, Samples: make([]Sample, n)}
	for i := range d.Samples {
		d.Samples[i].Up = true
	}
	return d
}

// Type returns the day's DayType.
func (d *Day) Type() DayType { return TypeOfDate(d.Date) }

// Len returns the number of samples in the day.
func (d *Day) Len() int { return len(d.Samples) }

// IndexAt returns the sample index corresponding to an offset from midnight,
// clamped into [0, Len()].
func (d *Day) IndexAt(offset time.Duration) int {
	if offset < 0 {
		return 0
	}
	i := int(offset / d.Period)
	if i > len(d.Samples) {
		i = len(d.Samples)
	}
	return i
}

// Window returns the sub-series of samples covering [start, start+length)
// offsets from midnight. The returned slice aliases the day's storage.
func (d *Day) Window(start, length time.Duration) []Sample {
	lo := d.IndexAt(start)
	hi := d.IndexAt(start + length)
	if hi < lo {
		hi = lo
	}
	return d.Samples[lo:hi]
}

// Clone returns a deep copy of the day.
func (d *Day) Clone() *Day {
	c := &Day{Date: d.Date, Period: d.Period}
	c.Samples = append([]Sample(nil), d.Samples...)
	return c
}

// Machine is the full log of one host machine: consecutive days of samples.
type Machine struct {
	// ID identifies the machine (host name in the testbed).
	ID string
	// Period is the sampling period shared by all days.
	Period time.Duration
	// Days are ordered chronologically.
	Days []*Day
}

// NewMachine returns an empty machine log.
func NewMachine(id string, period time.Duration) *Machine {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Machine{ID: id, Period: period}
}

// AddDay appends a day to the log. Days must be appended in chronological
// order and share the machine's period.
func (m *Machine) AddDay(d *Day) error {
	if d.Period != m.Period {
		return fmt.Errorf("trace: day period %v does not match machine period %v", d.Period, m.Period)
	}
	if n := len(m.Days); n > 0 && !d.Date.After(m.Days[n-1].Date) {
		return fmt.Errorf("trace: day %v out of order", d.Date)
	}
	m.Days = append(m.Days, d)
	return nil
}

// DaysOfType returns the machine's days restricted to one DayType,
// chronological order preserved.
func (m *Machine) DaysOfType(t DayType) []*Day {
	var out []*Day
	for _, d := range m.Days {
		if d.Type() == t {
			out = append(out, d)
		}
	}
	return out
}

// Clone returns a deep copy of the machine log.
func (m *Machine) Clone() *Machine {
	c := NewMachine(m.ID, m.Period)
	for _, d := range m.Days {
		c.Days = append(c.Days, d.Clone())
	}
	return c
}

// Dataset is a collection of machine logs: the testbed trace.
type Dataset struct {
	Machines []*Machine
}

// MachineDays returns the total number of machine-days in the dataset.
func (ds *Dataset) MachineDays() int {
	n := 0
	for _, m := range ds.Machines {
		n += len(m.Days)
	}
	return n
}

// Find returns the machine with the given ID, or nil.
func (ds *Dataset) Find(id string) *Machine {
	for _, m := range ds.Machines {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (ds *Dataset) Clone() *Dataset {
	c := &Dataset{}
	for _, m := range ds.Machines {
		c.Machines = append(c.Machines, m.Clone())
	}
	return c
}
