package trace

import "fmt"

// Split is a chronological partition of a machine log into a training prefix
// and a test suffix, the methodology of Section 7.2 ("dividing its trace data
// into two equal parts and choosing the first half as the training set").
type Split struct {
	Train []*Day
	Test  []*Day
}

// SplitRatio splits the days of one DayType chronologically so that the
// training set holds trainParts/(trainParts+testParts) of them, reproducing
// the ratio sweep of Figure 6 (1:9 ... 9:1). The training size is rounded to
// the nearest day and clamped so that both sides are non-empty whenever the
// machine has at least two days of the requested type.
func SplitRatio(m *Machine, t DayType, trainParts, testParts int) (Split, error) {
	if trainParts <= 0 || testParts <= 0 {
		return Split{}, fmt.Errorf("trace: invalid split ratio %d:%d", trainParts, testParts)
	}
	days := m.DaysOfType(t)
	n := len(days)
	if n == 0 {
		return Split{}, fmt.Errorf("trace: machine %s has no %s days", m.ID, t)
	}
	k := (n*trainParts + (trainParts+testParts)/2) / (trainParts + testParts)
	if k < 1 {
		k = 1
	}
	if k >= n && n > 1 {
		k = n - 1
	}
	return Split{Train: days[:k], Test: days[k:]}, nil
}

// SplitHalf is the 5:5 split used for the headline accuracy results.
func SplitHalf(m *Machine, t DayType) (Split, error) {
	return SplitRatio(m, t, 1, 1)
}
