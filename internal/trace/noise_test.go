package trace

import (
	"testing"
	"time"

	"fgcs/internal/rng"
)

func TestInjectNoiseURR(t *testing.T) {
	d := NewDay(monday, DefaultPeriod)
	r := rng.New(1)
	offsets, err := InjectNoise([]*Day{d}, 1, NoiseSpec{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 1 {
		t.Fatalf("offsets = %v", offsets)
	}
	// The injected occurrence must be inside the 8:00 ± 30 min band.
	if offsets[0] < 7*time.Hour+30*time.Minute || offsets[0] > 8*time.Hour+30*time.Minute {
		t.Fatalf("offset %v outside the paper's 8:00 am band", offsets[0])
	}
	down := 0
	for _, s := range d.Samples {
		if !s.Up {
			down++
		}
	}
	// Holding time is uniform in [60 s, 1800 s] → 10..300 samples at 6 s.
	if down < 10 || down > 300 {
		t.Fatalf("down samples = %d, outside [10, 300]", down)
	}
}

func TestInjectNoiseKinds(t *testing.T) {
	r := rng.New(2)
	for _, kind := range []NoiseKind{NoiseCPU, NoiseMem} {
		d := NewDay(monday, DefaultPeriod)
		for i := range d.Samples {
			d.Samples[i].FreeMemMB = 300
		}
		if _, err := InjectNoise([]*Day{d}, 2, NoiseSpec{Kind: kind}, r); err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, s := range d.Samples {
			switch kind {
			case NoiseCPU:
				hit = hit || s.CPU == 100
			case NoiseMem:
				hit = hit || s.FreeMemMB == 0
			}
		}
		if !hit {
			t.Fatalf("kind %v left no trace", kind)
		}
	}
}

func TestInjectNoiseRoundRobin(t *testing.T) {
	days := []*Day{NewDay(monday, DefaultPeriod), NewDay(monday.AddDate(0, 0, 1), DefaultPeriod)}
	r := rng.New(3)
	if _, err := InjectNoise(days, 4, NoiseSpec{}, r); err != nil {
		t.Fatal(err)
	}
	for i, d := range days {
		down := 0
		for _, s := range d.Samples {
			if !s.Up {
				down++
			}
		}
		if down == 0 {
			t.Fatalf("day %d received no injections under round-robin", i)
		}
	}
}

func TestInjectNoiseErrors(t *testing.T) {
	r := rng.New(4)
	if _, err := InjectNoise(nil, 1, NoiseSpec{}, r); err == nil {
		t.Fatal("empty day list accepted")
	}
	d := NewDay(monday, DefaultPeriod)
	if _, err := InjectNoise([]*Day{d}, -1, NoiseSpec{}, r); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := InjectNoise([]*Day{d}, 0, NoiseSpec{}, r); err != nil {
		t.Fatal("zero count should be a no-op, not an error")
	}
}

func TestInjectNoiseMinimumOneSample(t *testing.T) {
	// Even a tiny holding time must flip at least one sample.
	d := NewDay(monday, DefaultPeriod)
	r := rng.New(5)
	spec := NoiseSpec{MinHold: time.Nanosecond, MaxHold: 2 * time.Nanosecond}
	if _, err := InjectNoise([]*Day{d}, 1, spec, r); err != nil {
		t.Fatal(err)
	}
	down := 0
	for _, s := range d.Samples {
		if !s.Up {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("down samples = %d, want exactly 1", down)
	}
}

func TestCloneDays(t *testing.T) {
	d := NewDay(monday, DefaultPeriod)
	clones := CloneDays([]*Day{d})
	clones[0].Samples[0].Up = false
	if !d.Samples[0].Up {
		t.Fatal("CloneDays aliases storage")
	}
}
