package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// The binary trace format is what the state manager archives on disk: a
// magic header followed by machines, days and fixed-width samples. The text
// format is a line-oriented human-readable equivalent used by the CLI tools.

const binaryMagic = "FGCSTRC1"

// WriteBinary encodes the dataset in the compact binary format.
func WriteBinary(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ds.Machines))); err != nil {
		return err
	}
	for _, m := range ds.Machines {
		if len(m.ID) > math.MaxUint16 {
			return fmt.Errorf("trace: machine id too long")
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(m.ID))); err != nil {
			return err
		}
		if _, err := bw.WriteString(m.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, m.Period.Nanoseconds()); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.Days))); err != nil {
			return err
		}
		for _, d := range m.Days {
			if err := binary.Write(bw, binary.LittleEndian, d.Date.Unix()); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(d.Samples))); err != nil {
				return err
			}
			for _, s := range d.Samples {
				up := uint8(0)
				if s.Up {
					up = 1
				}
				rec := sampleRec{CPU: float32(s.CPU), Mem: float32(s.FreeMemMB), Up: up}
				if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

type sampleRec struct {
	CPU float32
	Mem float32
	Up  uint8
}

// ReadBinary decodes a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var nm uint32
	if err := binary.Read(br, binary.LittleEndian, &nm); err != nil {
		return nil, err
	}
	ds := &Dataset{}
	for i := uint32(0); i < nm; i++ {
		var idLen uint16
		if err := binary.Read(br, binary.LittleEndian, &idLen); err != nil {
			return nil, err
		}
		id := make([]byte, idLen)
		if _, err := io.ReadFull(br, id); err != nil {
			return nil, err
		}
		var periodNS int64
		if err := binary.Read(br, binary.LittleEndian, &periodNS); err != nil {
			return nil, err
		}
		if periodNS <= 0 {
			return nil, fmt.Errorf("trace: invalid period %d", periodNS)
		}
		m := NewMachine(string(id), time.Duration(periodNS))
		var nd uint32
		if err := binary.Read(br, binary.LittleEndian, &nd); err != nil {
			return nil, err
		}
		for j := uint32(0); j < nd; j++ {
			var unix int64
			if err := binary.Read(br, binary.LittleEndian, &unix); err != nil {
				return nil, err
			}
			var ns uint32
			if err := binary.Read(br, binary.LittleEndian, &ns); err != nil {
				return nil, err
			}
			if plausible := 7 * 24 * time.Hour / m.Period; plausible < math.MaxUint32 && ns > uint32(plausible) {
				return nil, fmt.Errorf("trace: implausible sample count %d", ns)
			}
			// Grow the sample slice as records actually arrive rather than
			// trusting the declared count: a corrupt or hostile header must
			// not be able to demand a multi-gigabyte allocation up front.
			capHint := ns
			if capHint > 1<<16 {
				capHint = 1 << 16
			}
			d := &Day{Date: time.Unix(unix, 0).UTC(), Period: m.Period, Samples: make([]Sample, 0, capHint)}
			for k := uint32(0); k < ns; k++ {
				var rec sampleRec
				if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
					return nil, err
				}
				d.Samples = append(d.Samples, Sample{CPU: float64(rec.CPU), FreeMemMB: float64(rec.Mem), Up: rec.Up != 0})
			}
			if err := m.AddDay(d); err != nil {
				return nil, err
			}
		}
		ds.Machines = append(ds.Machines, m)
	}
	return ds, nil
}

// WriteText encodes the dataset in the line-oriented text format:
//
//	fgcs-trace 1
//	machine <id> <period-seconds>
//	day <unix-seconds>
//	<cpu> <free-mem-mb> <0|1>
//	...
func WriteText(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "fgcs-trace 1")
	for _, m := range ds.Machines {
		fmt.Fprintf(bw, "machine %s %g\n", m.ID, m.Period.Seconds())
		for _, d := range m.Days {
			fmt.Fprintf(bw, "day %d\n", d.Date.Unix())
			for _, s := range d.Samples {
				up := 0
				if s.Up {
					up = 1
				}
				fmt.Fprintf(bw, "%g %g %d\n", s.CPU, s.FreeMemMB, up)
			}
		}
	}
	return bw.Flush()
}

// ReadText decodes a dataset written by WriteText.
func ReadText(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if strings.TrimSpace(sc.Text()) != "fgcs-trace 1" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	ds := &Dataset{}
	var m *Machine
	var d *Day
	line := 1
	flushDay := func() error {
		if d == nil {
			return nil
		}
		if m == nil {
			return fmt.Errorf("trace: day without machine")
		}
		err := m.AddDay(d)
		d = nil
		return err
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "machine":
			if err := flushDay(); err != nil {
				return nil, err
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed machine line", line)
			}
			sec, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || sec <= 0 {
				return nil, fmt.Errorf("trace: line %d: bad period %q", line, fields[2])
			}
			period := time.Duration(sec * float64(time.Second))
			// Guard the float->Duration conversion: an absurdly large
			// period overflows int64 into garbage (possibly negative).
			if period <= 0 || sec > (292*365*24*time.Hour).Seconds() {
				return nil, fmt.Errorf("trace: line %d: period %q out of range", line, fields[2])
			}
			m = NewMachine(fields[1], period)
			ds.Machines = append(ds.Machines, m)
		case "day":
			if err := flushDay(); err != nil {
				return nil, err
			}
			if m == nil {
				return nil, fmt.Errorf("trace: line %d: day before machine", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: malformed day line", line)
			}
			unix, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad date %q", line, fields[1])
			}
			d = &Day{Date: time.Unix(unix, 0).UTC(), Period: m.Period}
		default:
			if d == nil {
				return nil, fmt.Errorf("trace: line %d: sample before day", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: malformed sample line", line)
			}
			cpu, err1 := strconv.ParseFloat(fields[0], 64)
			mem, err2 := strconv.ParseFloat(fields[1], 64)
			up, err3 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("trace: line %d: bad sample", line)
			}
			d.Samples = append(d.Samples, Sample{CPU: cpu, FreeMemMB: mem, Up: up == 1})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flushDay(); err != nil {
		return nil, err
	}
	return ds, nil
}

// SaveFile writes the dataset to path, choosing the codec by extension:
// ".txt" for text, ".gz" for gzip-compressed binary (what the state manager
// archives — a machine-day of float32 samples compresses ~10x), anything
// else for plain binary.
func SaveFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".txt":
		if err := WriteText(f, ds); err != nil {
			return err
		}
	case ".gz":
		zw := gzip.NewWriter(f)
		if err := WriteBinary(zw, ds); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	default:
		if err := WriteBinary(f, ds); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadFile reads a dataset from path, choosing the codec by extension.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch filepath.Ext(path) {
	case ".txt":
		return ReadText(f)
	case ".gz":
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip: %w", err)
		}
		defer zr.Close()
		return ReadBinary(zr)
	default:
		return ReadBinary(f)
	}
}
