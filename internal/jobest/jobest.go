// Package jobest estimates a guest job's execution time and memory usage
// from the history of similar runs — the two quantities the paper's job
// scheduler feeds into the temporal-reliability query (Section 5.1, citing
// run-time prediction [14] and memory-usage estimation [11] as existing
// techniques).
//
// The estimator follows the template approach of that literature: jobs are
// grouped into classes (application + input signature), and a new job's
// requirements are predicted from the distribution of its class's past
// runs — an upper quantile for execution time (under-estimating the window
// makes the TR query optimistic) and the observed maximum plus a safety
// margin for memory (under-estimating memory turns into an S4 kill).
package jobest

import (
	"fmt"
	"sort"
	"sync"
)

// Run records one completed execution of a job class.
type Run struct {
	// WorkSeconds is the pure compute time the run needed.
	WorkSeconds float64
	// MemMB is the peak resident set observed.
	MemMB float64
}

// Config tunes the estimates.
type Config struct {
	// TimeQuantile is the execution-time quantile reported (default 0.75).
	TimeQuantile float64
	// MemMarginFrac is the safety margin added to the observed maximum
	// memory (default 0.10).
	MemMarginFrac float64
	// MinRuns is how many runs a class needs before estimates are
	// offered (default 3).
	MinRuns int
}

func (c Config) withDefaults() Config {
	if c.TimeQuantile <= 0 || c.TimeQuantile >= 1 {
		c.TimeQuantile = 0.75
	}
	if c.MemMarginFrac < 0 {
		c.MemMarginFrac = 0
	}
	if c.MemMarginFrac == 0 {
		c.MemMarginFrac = 0.10
	}
	if c.MinRuns <= 0 {
		c.MinRuns = 3
	}
	return c
}

// Estimator accumulates run history per job class and answers estimates.
// It is safe for concurrent use.
type Estimator struct {
	cfg Config

	mu   sync.Mutex
	runs map[string][]Run
}

// New creates an estimator.
func New(cfg Config) *Estimator {
	return &Estimator{cfg: cfg.withDefaults(), runs: make(map[string][]Run)}
}

// Record adds a completed run to a class's history.
func (e *Estimator) Record(class string, r Run) error {
	if class == "" {
		return fmt.Errorf("jobest: empty class")
	}
	if r.WorkSeconds <= 0 || r.MemMB < 0 {
		return fmt.Errorf("jobest: invalid run %+v", r)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runs[class] = append(e.runs[class], r)
	return nil
}

// Runs reports how many runs a class has accumulated.
func (e *Estimator) Runs(class string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.runs[class])
}

// Estimate is a job-requirements prediction.
type Estimate struct {
	// WorkSeconds is the execution-time estimate (the TR query's window
	// length).
	WorkSeconds float64
	// MemMB is the working-set estimate (the TR query's S4 threshold).
	MemMB float64
	// Runs is the class history size backing the estimate.
	Runs int
}

// ErrUnknownClass is returned when a class has too little history.
type ErrUnknownClass struct {
	Class string
	Runs  int
	Need  int
}

// Error implements error.
func (e ErrUnknownClass) Error() string {
	return fmt.Sprintf("jobest: class %q has %d runs, need %d", e.Class, e.Runs, e.Need)
}

// Estimate predicts the requirements of a new job of the given class.
func (e *Estimator) Estimate(class string) (Estimate, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	runs := e.runs[class]
	if len(runs) < e.cfg.MinRuns {
		return Estimate{}, ErrUnknownClass{Class: class, Runs: len(runs), Need: e.cfg.MinRuns}
	}
	times := make([]float64, len(runs))
	maxMem := 0.0
	for i, r := range runs {
		times[i] = r.WorkSeconds
		if r.MemMB > maxMem {
			maxMem = r.MemMB
		}
	}
	sort.Float64s(times)
	// Linear-interpolated quantile.
	pos := e.cfg.TimeQuantile * float64(len(times)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	t := times[lo]
	if lo+1 < len(times) {
		t = times[lo]*(1-frac) + times[lo+1]*frac
	}
	return Estimate{
		WorkSeconds: t,
		MemMB:       maxMem * (1 + e.cfg.MemMarginFrac),
		Runs:        len(runs),
	}, nil
}

// Classes lists the classes with enough history for estimates, sorted.
func (e *Estimator) Classes() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for c, runs := range e.runs {
		if len(runs) >= e.cfg.MinRuns {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
