package jobest

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"fgcs/internal/rng"
)

func TestRecordValidation(t *testing.T) {
	e := New(Config{})
	if err := e.Record("", Run{WorkSeconds: 1}); err == nil {
		t.Fatal("empty class accepted")
	}
	if err := e.Record("a", Run{WorkSeconds: 0}); err == nil {
		t.Fatal("zero work accepted")
	}
	if err := e.Record("a", Run{WorkSeconds: 1, MemMB: -1}); err == nil {
		t.Fatal("negative memory accepted")
	}
	if err := e.Record("a", Run{WorkSeconds: 1, MemMB: 10}); err != nil {
		t.Fatal(err)
	}
	if e.Runs("a") != 1 || e.Runs("b") != 0 {
		t.Fatal("run counting wrong")
	}
}

func TestEstimateNeedsHistory(t *testing.T) {
	e := New(Config{MinRuns: 3})
	_ = e.Record("sim", Run{WorkSeconds: 100, MemMB: 50})
	_ = e.Record("sim", Run{WorkSeconds: 110, MemMB: 55})
	_, err := e.Estimate("sim")
	var unknown ErrUnknownClass
	if !errors.As(err, &unknown) {
		t.Fatalf("err = %v, want ErrUnknownClass", err)
	}
	if unknown.Runs != 2 || unknown.Need != 3 {
		t.Fatalf("error detail = %+v", unknown)
	}
	_ = e.Record("sim", Run{WorkSeconds: 120, MemMB: 60})
	if _, err := e.Estimate("sim"); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateQuantileAndMemMargin(t *testing.T) {
	e := New(Config{TimeQuantile: 0.5, MemMarginFrac: 0.2})
	for _, w := range []float64{100, 200, 300, 400, 500} {
		if err := e.Record("mc", Run{WorkSeconds: w, MemMB: w / 2}); err != nil {
			t.Fatal(err)
		}
	}
	est, err := e.Estimate("mc")
	if err != nil {
		t.Fatal(err)
	}
	if est.WorkSeconds != 300 {
		t.Fatalf("median work = %v, want 300", est.WorkSeconds)
	}
	if math.Abs(est.MemMB-250*1.2) > 1e-9 {
		t.Fatalf("mem = %v, want max 250 + 20%%", est.MemMB)
	}
	if est.Runs != 5 {
		t.Fatalf("runs = %d", est.Runs)
	}
}

func TestEstimateUpperQuantileDefault(t *testing.T) {
	e := New(Config{})
	for _, w := range []float64{10, 20, 30, 40, 50} {
		_ = e.Record("c", Run{WorkSeconds: w, MemMB: 1})
	}
	est, err := e.Estimate("c")
	if err != nil {
		t.Fatal(err)
	}
	// P75 of 10..50 = 40.
	if est.WorkSeconds != 40 {
		t.Fatalf("P75 = %v, want 40", est.WorkSeconds)
	}
}

func TestClasses(t *testing.T) {
	e := New(Config{MinRuns: 2})
	_ = e.Record("b", Run{WorkSeconds: 1, MemMB: 1})
	_ = e.Record("b", Run{WorkSeconds: 1, MemMB: 1})
	_ = e.Record("a", Run{WorkSeconds: 1, MemMB: 1})
	_ = e.Record("a", Run{WorkSeconds: 1, MemMB: 1})
	_ = e.Record("tiny", Run{WorkSeconds: 1, MemMB: 1})
	got := e.Classes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("classes = %v", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	e := New(Config{MinRuns: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = e.Record("par", Run{WorkSeconds: float64(1 + i), MemMB: 10})
				_, _ = e.Estimate("par")
			}
		}(g)
	}
	wg.Wait()
	if e.Runs("par") != 800 {
		t.Fatalf("runs = %d", e.Runs("par"))
	}
}

// Property: estimates are never below the class minimum nor above the class
// maximum (time), and memory always covers the observed maximum.
func TestEstimateBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		e := New(Config{})
		n := 3 + r.Intn(30)
		minW, maxW, maxM := math.Inf(1), 0.0, 0.0
		for i := 0; i < n; i++ {
			w := r.Uniform(1, 10000)
			m := r.Uniform(0, 512)
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
			if m > maxM {
				maxM = m
			}
			if err := e.Record("p", Run{WorkSeconds: w, MemMB: m}); err != nil {
				return false
			}
		}
		est, err := e.Estimate("p")
		if err != nil {
			return false
		}
		return est.WorkSeconds >= minW-1e-9 && est.WorkSeconds <= maxW+1e-9 &&
			est.MemMB >= maxM-1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
