package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzMaxRecord caps claimed record lengths during fuzzing so a lying length
// prefix can never translate into a large allocation.
const fuzzMaxRecord = 1 << 16

// segSeeds builds the checked-in seed corpus for FuzzReadSegment: a valid
// sealed segment, a torn tail, a bad CRC with valid data after it, and an
// oversize claimed length.
func segSeeds() map[string][]byte {
	valid := appendSegmentHeader(nil, 3)
	valid = appendRecordFrame(valid, RecSample, []byte("sample-payload"))
	valid = appendRecordFrame(valid, RecRegister, []byte("lab-01"))
	valid = appendRecordFrame(valid, recSeal, nil)

	torn := appendSegmentHeader(nil, 0)
	torn = appendRecordFrame(torn, RecSample, []byte("kept"))
	torn = append(torn, appendRecordFrame(nil, RecSample, []byte("cut-mid-frame"))[:7]...)

	badcrc := appendSegmentHeader(nil, 1)
	badcrc = appendRecordFrame(badcrc, RecSample, []byte("first"))
	start := len(badcrc)
	badcrc = appendRecordFrame(badcrc, RecSample, []byte("damaged"))
	badcrc[start+3] ^= 0x10
	badcrc = appendRecordFrame(badcrc, RecSample, []byte("after"))

	oversize := appendSegmentHeader(nil, 2)
	oversize = append(oversize, 0xFF, 0xFF, 0xFF, 0x7F, RecSample, 0x00)

	return map[string][]byte{
		"valid":           valid,
		"truncated-tail":  torn,
		"bad-crc":         badcrc,
		"oversize-length": oversize,
	}
}

// snapSeeds builds the checked-in seed corpus for FuzzReadSnapshot.
func snapSeeds() map[string][]byte {
	valid := encodeSnapshot(4, 1234, []byte("application-state"))

	truncated := encodeSnapshot(1, 99, []byte("soon-cut"))
	truncated = truncated[:len(truncated)-6]

	badcrc := encodeSnapshot(2, 77, []byte("flip-me"))
	badcrc[len(badcrc)/2] ^= 0x01

	oversize := append([]byte(nil), snapMagic[:]...)
	oversize = append(oversize, snapVersion, 0x01, 0x02, 0xFF, 0xFF, 0xFF, 0x7F, 0xAA)

	return map[string][]byte{
		"valid":           valid,
		"truncated-tail":  truncated,
		"bad-crc":         badcrc,
		"oversize-length": oversize,
	}
}

// FuzzReadSegment hammers the segment reader with arbitrary bytes under both
// active- and sealed-segment policies. Invariants: never panics, never
// reports Valid beyond the input, and truncation is idempotent — re-reading
// the valid prefix as an active segment yields the same records with nothing
// torn.
func FuzzReadSegment(f *testing.F) {
	for _, seed := range segSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, last := range []bool{true, false} {
			var recs []Record
			scan, err := ReadSegment(data, last, fuzzMaxRecord, func(off int64, r Record) error {
				recs = append(recs, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
				return nil
			})
			if scan.Valid > int64(len(data)) {
				t.Fatalf("Valid %d beyond input %d", scan.Valid, len(data))
			}
			if err != nil {
				continue
			}
			if last && scan.TornBytes != len(data)-int(scan.Valid) {
				t.Fatalf("torn accounting off: %d torn, %d trailing", scan.TornBytes, len(data)-int(scan.Valid))
			}
			if scan.Valid < segHeaderLen {
				continue
			}
			var again []Record
			scan2, err := ReadSegment(data[:scan.Valid], true, fuzzMaxRecord, func(off int64, r Record) error {
				again = append(again, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
				return nil
			})
			if err != nil || scan2.TornBytes != 0 {
				t.Fatalf("valid prefix does not re-read cleanly: %v (torn %d)", err, scan2.TornBytes)
			}
			if len(again) != len(recs) {
				t.Fatalf("re-read of valid prefix yields %d records, first pass %d", len(again), len(recs))
			}
			for i := range recs {
				if recs[i].Type != again[i].Type || !bytes.Equal(recs[i].Payload, again[i].Payload) {
					t.Fatalf("record %d differs between passes", i)
				}
			}
		}
	})
}

// FuzzReadSnapshot hammers the snapshot reader. Invariants: never panics,
// and anything that decodes re-encodes byte-identically (the format is
// canonical), so a decoded snapshot can always be re-persisted.
func FuzzReadSnapshot(f *testing.F) {
	for _, seed := range snapSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, off, payload, err := ReadSnapshot(data)
		if err != nil {
			return
		}
		if again := encodeSnapshot(seq, off, payload); !bytes.Equal(again, data) {
			t.Fatalf("snapshot encoding not canonical:\ngot  %x\nwant %x", again, data)
		}
	})
}

// TestFuzzSeedCorpusCheckedIn pins the generated seed corpora to the files
// under testdata/fuzz so `go test` (without -fuzz) replays them and CI
// notices drift between the generators above and the checked-in bytes.
// Regenerate with FGCS_REGEN_CORPUS=1 go test ./internal/durable/ -run
// TestFuzzSeedCorpusCheckedIn.
func TestFuzzSeedCorpusCheckedIn(t *testing.T) {
	for target, seeds := range map[string]map[string][]byte{
		"FuzzReadSegment":  segSeeds(),
		"FuzzReadSnapshot": snapSeeds(),
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if os.Getenv("FGCS_REGEN_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, data := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
				if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		for name, data := range seeds {
			got, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatalf("%s/%s missing (regenerate with FGCS_REGEN_CORPUS=1): %v", target, name, err)
			}
			want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if string(got) != want {
				t.Fatalf("%s/%s drifted from its generator", target, name)
			}
		}
	}
}
