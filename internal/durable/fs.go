// Package durable is the persistence substrate: an append-only segment log
// (WAL) of CRC32C-framed binary records plus periodic snapshots written with
// atomic rename-into-place. A Store recovers on open by loading the newest
// valid snapshot and replaying the log tail after it, tolerating a torn tail
// (a crash mid-append) by truncation while refusing silently-corrupt
// middles. All file access goes through the FS interface so tests and the
// crash-injection harness can run against a deterministic in-memory
// filesystem with seeded fault hooks (kill-at-byte-offset, bit flips) in the
// style of internal/faultnet.
package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is a writable file handle: appends, durability barrier, close.
type File interface {
	// Write appends p. A short write reports an error.
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle. It does not imply Sync.
	Close() error
}

// FS is the narrow filesystem surface the store runs on: a single flat
// directory of named files. OSFS implements it on a real directory, MemFS in
// memory; CrashFS wraps either with fault injection.
type FS interface {
	// Append opens name for appending, creating it when absent.
	Append(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Truncate shortens name to size bytes.
	Truncate(name string, size int64) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// List returns every file name in the directory, sorted.
	List() ([]string, error)
	// SyncDir flushes the directory itself, making file creations durable.
	// File.Sync persists a file's bytes but not its directory entry: without
	// a directory fsync a power loss can drop a freshly created file whole,
	// taking fsync-acknowledged contents with it. Rename implies it.
	SyncDir() error
}

// ErrCrashed is returned by a CrashFS once its kill offset has been reached:
// the simulated process is dead and every further operation fails.
var ErrCrashed = errors.New("durable: injected crash")

// OSFS is the production FS: a flat directory on the real filesystem.
// Rename fsyncs the directory afterwards so the rename itself is durable —
// the pattern that makes snapshot publication atomic on crash.
type OSFS struct {
	// Dir is the backing directory, created by NewOSFS.
	Dir string
}

// NewOSFS creates dir (and parents) and returns an FS rooted there.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &OSFS{Dir: dir}, nil
}

func (fs *OSFS) path(name string) string { return filepath.Join(fs.Dir, name) }

// Append implements FS.
func (fs *OSFS) Append(name string) (File, error) {
	return os.OpenFile(fs.path(name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (fs *OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(fs.path(name)) }

// Truncate implements FS.
func (fs *OSFS) Truncate(name string, size int64) error { return os.Truncate(fs.path(name), size) }

// Rename implements FS, fsyncing the directory so the new name survives a
// power loss.
func (fs *OSFS) Rename(oldname, newname string) error {
	if err := os.Rename(fs.path(oldname), fs.path(newname)); err != nil {
		return err
	}
	return fs.SyncDir()
}

// SyncDir implements FS: fsync the backing directory so the dirents of
// freshly created or renamed files are on stable storage.
func (fs *OSFS) SyncDir() error {
	d, err := os.Open(fs.Dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error { return os.Remove(fs.path(name)) }

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemFS is a deterministic in-memory FS for tests and the crash harness. It
// distinguishes written from synced bytes and created from dir-synced
// files: SyncedOnly() models what a power loss before the next Sync/SyncDir
// would leave behind, and Corrupt flips stored bits to model silent media
// damage.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int  // bytes guaranteed durable
	linked bool // dirent guaranteed durable (SyncDir or Rename happened)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, ok := h.fs.files[h.name]
	if !ok {
		return 0, fmt.Errorf("durable: write to removed file %q", h.name)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if f, ok := h.fs.files[h.name]; ok {
		f.synced = len(f.data)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }

// Append implements FS.
func (fs *MemFS) Append(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &memFile{}
	}
	return &memHandle{fs: fs, name: name}, nil
}

// ReadFile implements FS.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, os.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

// Truncate implements FS.
func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return os.ErrNotExist
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("durable: truncate %q to %d out of range", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// Rename implements FS. Like OSFS.Rename it implies a directory sync: the
// new name's dirent is durable afterwards.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return os.ErrNotExist
	}
	delete(fs.files, oldname)
	f.linked = true
	fs.files[newname] = f
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return os.ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// List implements FS.
func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: every existing file's dirent becomes durable.
func (fs *MemFS) SyncDir() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.linked = true
	}
	return nil
}

// SyncedOnly returns the power-loss image of the filesystem: only files
// whose dirent was made durable (SyncDir or Rename) survive, each truncated
// to its synced byte count. Recovering from this image instead of the MemFS
// itself models a power cut rather than a process kill — nothing the page
// cache held survives.
func (fs *MemFS) SyncedOnly() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewMemFS()
	for name, f := range fs.files {
		if !f.linked {
			continue
		}
		out.files[name] = &memFile{
			data:   append([]byte(nil), f.data[:f.synced]...),
			synced: f.synced,
			linked: true,
		}
	}
	return out
}

// Corrupt XORs mask into byte off of name, simulating silent media damage at
// rest. It reports whether the byte existed.
func (fs *MemFS) Corrupt(name string, off int, mask byte) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok || off < 0 || off >= len(f.data) || mask == 0 {
		return false
	}
	f.data[off] ^= mask
	return true
}

// Size returns the byte length of name (-1 when absent).
func (fs *MemFS) Size(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return int64(len(f.data))
	}
	return -1
}

// CrashFS wraps an FS with a faultnet-style kill switch: the Nth byte
// written through it (counted across all files) is the last one persisted —
// the write in flight keeps its prefix, then every subsequent operation
// fails with ErrCrashed, exactly as if the process died mid-write. KillAt<0
// disables the fault. The wrapper is deterministic: the same operation
// sequence with the same KillAt crashes at the same byte.
type CrashFS struct {
	inner FS

	mu      sync.Mutex
	killAt  int64 // total bytes after which writes die; -1 = never
	written int64
	crashed bool
}

// NewCrashFS wraps inner, killing writes once killAt total bytes have been
// persisted through the wrapper (killAt < 0 = never).
func NewCrashFS(inner FS, killAt int64) *CrashFS {
	return &CrashFS{inner: inner, killAt: killAt}
}

// Crashed reports whether the kill offset has been reached.
func (fs *CrashFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// BytesWritten reports total bytes persisted through the wrapper.
func (fs *CrashFS) BytesWritten() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.written
}

func (fs *CrashFS) check() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	return nil
}

type crashHandle struct {
	fs    *CrashFS
	inner File
}

func (h *crashHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	if h.fs.crashed {
		h.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	allow := len(p)
	kill := false
	if h.fs.killAt >= 0 && h.fs.written+int64(len(p)) > h.fs.killAt {
		allow = int(h.fs.killAt - h.fs.written)
		kill = true
		h.fs.crashed = true
	}
	h.fs.written += int64(allow)
	h.fs.mu.Unlock()
	if allow > 0 {
		if n, err := h.inner.Write(p[:allow]); err != nil {
			return n, err
		}
	}
	if kill {
		// The dying write still hits the media for its prefix.
		_ = h.inner.Sync()
		return allow, ErrCrashed
	}
	return allow, nil
}

func (h *crashHandle) Sync() error {
	if err := h.fs.check(); err != nil {
		return err
	}
	return h.inner.Sync()
}

func (h *crashHandle) Close() error { return h.inner.Close() }

// Append implements FS.
func (fs *CrashFS) Append(name string) (File, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	f, err := fs.inner.Append(name)
	if err != nil {
		return nil, err
	}
	return &crashHandle{fs: fs, inner: f}, nil
}

// ReadFile implements FS.
func (fs *CrashFS) ReadFile(name string) ([]byte, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	return fs.inner.ReadFile(name)
}

// Truncate implements FS.
func (fs *CrashFS) Truncate(name string, size int64) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.inner.Truncate(name, size)
}

// Rename implements FS.
func (fs *CrashFS) Rename(oldname, newname string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (fs *CrashFS) Remove(name string) error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.inner.Remove(name)
}

// List implements FS.
func (fs *CrashFS) List() ([]string, error) {
	if err := fs.check(); err != nil {
		return nil, err
	}
	return fs.inner.List()
}

// SyncDir implements FS.
func (fs *CrashFS) SyncDir() error {
	if err := fs.check(); err != nil {
		return err
	}
	return fs.inner.SyncDir()
}

// isTmp reports whether name is a leftover temp file from an interrupted
// snapshot publication.
func isTmp(name string) bool { return strings.HasSuffix(name, ".tmp") }
