package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"fgcs/internal/rng"
)

// crashCfg is the store shape the crash harness uses: small segments force
// rotations inside the sweep, and two retained snapshots exercise pruning.
func crashCfg(fs FS) Config {
	return Config{FS: fs, SegmentBytes: 512, KeepSnapshots: 2, Sync: SyncAlways}
}

// runWorkload drives a fixed, seeded append/snapshot sequence against fs
// until it completes or the FS crashes. It returns every record payload whose
// Append was attempted, in order, and how many of those were acknowledged
// (returned nil). Snapshot payloads encode the number of records they cover,
// so recovery can be checked without replaying application logic.
func runWorkload(fs FS, seed uint64) (attempted [][]byte, acked int) {
	rs := rng.New(seed)
	st, _, err := Open(crashCfg(fs))
	if err != nil {
		return nil, 0
	}
	defer st.Close()
	const n = 120
	for i := 0; i < n; i++ {
		// Varying payload sizes move record boundaries around so the byte
		// sweep cuts through lengths, types, payloads and checksums alike.
		payload := []byte(fmt.Sprintf("r-%04d-%0*x", i, 1+int(rs.Uint64()%9), rs.Uint64()&0xFFFF))
		attempted = append(attempted, payload)
		if err := st.Append(RecSample, payload); err != nil {
			return attempted, acked
		}
		acked++
		if (i+1)%17 == 0 {
			snap := binary.AppendUvarint(nil, uint64(i+1))
			if err := st.WriteSnapshot(snap); err != nil {
				return attempted, acked
			}
		}
	}
	return attempted, acked
}

// verifyPrefixConsistent opens the surviving state and checks the recovered
// record sequence is a prefix of the attempted one that includes every
// acknowledged record: nothing acknowledged lost, nothing invented, order
// preserved. It returns the recovered record count.
func verifyPrefixConsistent(t *testing.T, fs FS, attempted [][]byte, acked int, label string) int {
	t.Helper()
	st, rec, err := Open(crashCfg(fs))
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer st.Close()
	base := 0
	if rec.SnapshotPayload != nil {
		v, vn := binary.Uvarint(rec.SnapshotPayload)
		if vn <= 0 {
			t.Fatalf("%s: unreadable snapshot payload", label)
		}
		base = int(v)
	}
	total := base + len(rec.Records)
	if total < acked {
		t.Fatalf("%s: lost acknowledged records: recovered %d, acked %d", label, total, acked)
	}
	if total > len(attempted) {
		t.Fatalf("%s: invented records: recovered %d, attempted %d", label, total, len(attempted))
	}
	for j, r := range rec.Records {
		if r.Type != RecSample || !bytes.Equal(r.Payload, attempted[base+j]) {
			t.Fatalf("%s: replayed record %d diverges from attempted sequence", label, base+j)
		}
	}
	return total
}

// dumpFS captures the complete byte state of a MemFS for determinism checks.
func dumpFS(t *testing.T, fs *MemFS) map[string][]byte {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(names))
	for _, n := range names {
		data, err := fs.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = data
	}
	return out
}

// crashCycle runs the seeded workload killed at byte offset killAt, recovers,
// verifies prefix-consistency, and returns the post-recovery FS dump plus the
// recovered record count.
func crashCycle(t *testing.T, seed uint64, killAt int64) (map[string][]byte, int) {
	t.Helper()
	mem := NewMemFS()
	cfs := NewCrashFS(mem, killAt)
	attempted, acked := runWorkload(cfs, seed)
	if !cfs.Crashed() {
		t.Fatalf("killAt=%d: workload finished without crashing", killAt)
	}
	label := fmt.Sprintf("killAt=%d", killAt)
	n := verifyPrefixConsistent(t, mem, attempted, acked, label)
	return dumpFS(t, mem), n
}

// TestCrashKillAnywhere is the kill-anywhere property test: the seeded
// workload is killed at EVERY byte offset it ever writes, and each survivor
// state must recover prefix-consistently. This is the `make crash` gate.
func TestCrashKillAnywhere(t *testing.T) {
	const seed = 20260809
	// Measure the workload's full byte footprint with the fault disabled.
	probe := NewCrashFS(NewMemFS(), -1)
	attempted, acked := runWorkload(probe, seed)
	total := probe.BytesWritten()
	if acked != len(attempted) || total < 1000 {
		t.Fatalf("probe run: acked %d/%d, %d bytes", acked, len(attempted), total)
	}
	verifyPrefixConsistent(t, probe, attempted, acked, "no-crash")
	for killAt := int64(0); killAt < total; killAt++ {
		crashCycle(t, seed, killAt)
	}
}

// TestPowerLossKillAnywhere is the power-cut variant of kill-anywhere:
// recovery runs against the synced-only image of the filesystem — what the
// media holds when the page cache dies with the machine — instead of the
// full in-memory state a process kill leaves behind. Under SyncAlways every
// acknowledged record must still recover: record bytes are fsynced per
// append, and each new segment's directory entry is fsynced before any
// record is acknowledged into it (without that dir fsync a power loss drops
// a freshly rotated segment whole).
func TestPowerLossKillAnywhere(t *testing.T) {
	const seed = 20260809
	probe := NewCrashFS(NewMemFS(), -1)
	attempted, acked := runWorkload(probe, seed)
	total := probe.BytesWritten()
	if acked != len(attempted) || total < 1000 {
		t.Fatalf("probe run: acked %d/%d, %d bytes", acked, len(attempted), total)
	}
	for killAt := int64(0); killAt < total; killAt++ {
		mem := NewMemFS()
		cfs := NewCrashFS(mem, killAt)
		attempted, acked := runWorkload(cfs, seed)
		if !cfs.Crashed() {
			t.Fatalf("killAt=%d: workload finished without crashing", killAt)
		}
		label := fmt.Sprintf("powerloss killAt=%d", killAt)
		verifyPrefixConsistent(t, mem.SyncedOnly(), attempted, acked, label)
	}
}

// TestCrashRecoveryDeterministic pins byte-determinism: the same seed and
// kill offset must yield byte-identical surviving files and the same
// recovered count, run after run.
func TestCrashRecoveryDeterministic(t *testing.T) {
	const seed = 20260809
	probe := NewCrashFS(NewMemFS(), -1)
	runWorkload(probe, seed)
	total := probe.BytesWritten()
	rs := rng.New(seed).Split("killpoints")
	for i := 0; i < 8; i++ {
		killAt := int64(rs.Uint64() % uint64(total))
		d1, n1 := crashCycle(t, seed, killAt)
		d2, n2 := crashCycle(t, seed, killAt)
		if n1 != n2 {
			t.Fatalf("killAt=%d: recovered %d then %d records", killAt, n1, n2)
		}
		if len(d1) != len(d2) {
			t.Fatalf("killAt=%d: file sets differ: %d vs %d", killAt, len(d1), len(d2))
		}
		for name, data := range d1 {
			if !bytes.Equal(data, d2[name]) {
				t.Fatalf("killAt=%d: file %s differs between runs", killAt, name)
			}
		}
	}
}

// TestCrashThenContinue checks a recovered store is fully usable: appends
// land after the truncated tail and survive the next recovery.
func TestCrashThenContinue(t *testing.T) {
	const seed = 99
	probe := NewCrashFS(NewMemFS(), -1)
	runWorkload(probe, seed)
	total := probe.BytesWritten()
	rs := rng.New(seed).Split("continue")
	for i := 0; i < 16; i++ {
		killAt := int64(rs.Uint64() % uint64(total))
		mem := NewMemFS()
		cfs := NewCrashFS(mem, killAt)
		attempted, acked := runWorkload(cfs, seed)
		st, rec, err := Open(crashCfg(mem))
		if err != nil {
			t.Fatalf("killAt=%d: recovery: %v", killAt, err)
		}
		if err := st.Append(RecSample, []byte("post-crash")); err != nil {
			t.Fatalf("killAt=%d: append after recovery: %v", killAt, err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// The new record lands right after the recovered prefix, which may be
		// shorter than the attempted sequence when the crash cut unacked tail
		// records away.
		base := 0
		if rec.SnapshotPayload != nil {
			v, _ := binary.Uvarint(rec.SnapshotPayload)
			base = int(v)
		}
		prefix := base + len(rec.Records)
		if prefix < acked {
			t.Fatalf("killAt=%d: recovered %d < acked %d", killAt, prefix, acked)
		}
		expected := append(append([][]byte{}, attempted[:prefix]...), []byte("post-crash"))
		got := verifyPrefixConsistent(t, mem, expected, prefix+1, "continue")
		if got != prefix+1 {
			t.Fatalf("killAt=%d: recovered %d records after continue, want %d", killAt, got, prefix+1)
		}
	}
}

// TestBitFlipNeverFabricates injects single-bit flips at every byte of a
// cleanly closed store and requires one of exactly two outcomes: recovery
// refuses (ErrCorrupt), or the recovered sequence is still a prefix of what
// was written — damage may cost the tail record, but never yields invented
// or reordered history and never panics.
func TestBitFlipNeverFabricates(t *testing.T) {
	const seed = 7
	baseFS := NewMemFS()
	attempted, acked := runWorkload(baseFS, seed)
	if acked != len(attempted) {
		t.Fatal("base workload did not complete")
	}
	names, _ := baseFS.List()
	rs := rng.New(seed).Split("bitflips")
	refused, tolerated := 0, 0
	for _, name := range names {
		size := int(baseFS.Size(name))
		for off := 0; off < size; off++ {
			mask := byte(1 << (rs.Uint64() % 8))
			// Rebuild pristine state, then flip one bit at rest.
			mem := NewMemFS()
			runWorkload(mem, seed)
			if !mem.Corrupt(name, off, mask) {
				t.Fatalf("flip %s@%d failed", name, off)
			}
			st, rec, err := Open(crashCfg(mem))
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrClosed) {
					t.Fatalf("flip %s@%d: unexpected error class: %v", name, off, err)
				}
				refused++
				continue
			}
			st.Close()
			base := 0
			if rec.SnapshotPayload != nil {
				v, vn := binary.Uvarint(rec.SnapshotPayload)
				if vn <= 0 {
					t.Fatalf("flip %s@%d: snapshot payload mangled silently", name, off)
				}
				base = int(v)
			}
			if base+len(rec.Records) > len(attempted) {
				t.Fatalf("flip %s@%d: invented records", name, off)
			}
			for j, r := range rec.Records {
				if !bytes.Equal(r.Payload, attempted[base+j]) {
					t.Fatalf("flip %s@%d: silently altered record %d", name, off, base+j)
				}
			}
			tolerated++
		}
	}
	if refused == 0 || tolerated == 0 {
		t.Fatalf("flip sweep degenerate: %d refused, %d tolerated", refused, tolerated)
	}
}
