package durable

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// SyncPolicy selects when the store issues fsync barriers on the WAL.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged write is
	// durable. The default, and what the crash harness assumes.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs on rotation, snapshot and Close only; a crash may
	// lose the unsynced suffix (still recovered prefix-consistently).
	SyncBatch
	// SyncNever leaves flushing entirely to the OS.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values (always, batch, off) to a
// policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off", "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or off)", s)
}

// Config configures a Store.
type Config struct {
	// FS is the backing filesystem (required).
	FS FS
	// SegmentBytes rotates the active segment once it exceeds this size
	// (0 = 4 MiB).
	SegmentBytes int64
	// MaxRecordBytes caps a single record frame (0 = DefaultMaxRecordBytes).
	MaxRecordBytes int
	// KeepSnapshots retains this many newest snapshots; older ones and the
	// segments only they need are pruned after each successful snapshot
	// (0 = 2).
	KeepSnapshots int
	// Sync is the WAL fsync policy.
	Sync SyncPolicy
	// BestEffort opens the store even when every retained snapshot fails
	// validation and the surviving segments provably do not reach back to
	// the start of history — a state Open normally refuses with ErrCorrupt,
	// because the segment replay alone reconstructs only part of the state
	// the snapshots held. The recovered state is the valid segment suffix:
	// an explicit operator salvage switch, never the default.
	BestEffort bool
}

// Recovery reports what Open reconstructed from the data directory.
type Recovery struct {
	// SnapshotPayload is the newest valid snapshot's application state (nil
	// when no snapshot was usable).
	SnapshotPayload []byte
	// SnapshotSeq / SnapshotOffset is the WAL position the snapshot covers.
	SnapshotSeq    uint64
	SnapshotOffset int64
	// Records is the replayed WAL tail: every record appended after the
	// snapshot position, in order.
	Records []Record
	// TornBytes counts bytes truncated from the active segment's torn tail.
	TornBytes int
	// SnapshotsSkipped counts corrupt snapshots passed over before a valid
	// (or no) snapshot was chosen.
	SnapshotsSkipped int
	// Segments counts WAL segment files scanned.
	Segments int
}

// Store is an append-only segment WAL plus snapshot retention over one FS
// directory. Appends are framed with CRC32C and a seal record closes each
// rotated segment; WriteSnapshot publishes application state atomically at
// the current WAL position and prunes state older than the retention
// window. A Store is safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.Mutex
	cur    File
	curSeq uint64
	curOff int64
	buf    []byte
	closed bool
}

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("durable: store closed")

// Open recovers a store from cfg.FS: it loads the newest snapshot that
// validates (falling back to older ones when damaged), replays the WAL tail
// after the snapshot position, truncates a torn tail in the active segment,
// and leaves the store ready to append. Unexplained damage — a bad checksum
// with valid data after it, a sealed segment that fails validation, a gap in
// the segment sequence — returns ErrCorrupt and refuses to open.
func Open(cfg Config) (*Store, *Recovery, error) {
	if cfg.FS == nil {
		return nil, nil, fmt.Errorf("durable: Config.FS is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.MaxRecordBytes <= 0 {
		cfg.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if cfg.KeepSnapshots <= 0 {
		cfg.KeepSnapshots = 2
	}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, nil, err
	}
	var segs []uint64
	var snaps []string
	for _, name := range names {
		if isTmp(name) {
			// Interrupted snapshot publication; the rename never happened.
			_ = cfg.FS.Remove(name)
			continue
		}
		if seq, ok := parseSegmentName(name); ok {
			segs = append(segs, seq)
			continue
		}
		if _, _, ok := parseSnapshotName(name); ok {
			snaps = append(snaps, name)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	// Newest snapshot first; fall back on damage.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rec := &Recovery{}
	for _, name := range snaps {
		data, err := cfg.FS.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		seq, off, payload, err := ReadSnapshot(data)
		if err != nil {
			rec.SnapshotsSkipped++
			continue
		}
		rec.SnapshotPayload = append([]byte(nil), payload...)
		rec.SnapshotSeq, rec.SnapshotOffset = seq, off
		break
	}
	if len(snaps) > 0 && rec.SnapshotPayload == nil && !cfg.BestEffort {
		// Every retained snapshot failed validation. Replaying the surviving
		// segments is only complete when they reach back to segment 0 (the
		// start of history); otherwise pruned history existed solely in the
		// snapshots and proceeding would silently serve partial state.
		if len(segs) == 0 || segs[0] != 0 {
			return nil, nil, fmt.Errorf("%w: all %d snapshots failed validation and the WAL does not reach back to segment 0 (set Config.BestEffort to salvage the segment suffix)", ErrCorrupt, rec.SnapshotsSkipped)
		}
	}

	st := &Store{cfg: cfg}
	// Scan segments at or after the snapshot position. Sequence numbers must
	// be contiguous from there: a missing middle segment is lost history.
	scanFrom := rec.SnapshotSeq
	var scan []uint64
	for _, seq := range segs {
		if seq >= scanFrom {
			scan = append(scan, seq)
		}
	}
	if rec.SnapshotPayload != nil {
		if len(scan) == 0 || scan[0] != rec.SnapshotSeq {
			return nil, nil, fmt.Errorf("%w: snapshot covers segment %d but it is missing", ErrCorrupt, rec.SnapshotSeq)
		}
	}
	for i, seq := range scan {
		if i > 0 && seq != scan[i-1]+1 {
			return nil, nil, fmt.Errorf("%w: segment sequence gap %d -> %d", ErrCorrupt, scan[i-1], seq)
		}
	}
	var lastScan SegmentScan
	lastIdx := len(scan) - 1
	for i, seq := range scan {
		data, err := cfg.FS.ReadFile(segmentName(seq))
		if err != nil {
			return nil, nil, err
		}
		last := i == lastIdx
		from := int64(segHeaderLen)
		if rec.SnapshotPayload != nil && seq == rec.SnapshotSeq {
			from = rec.SnapshotOffset
		}
		sc, err := ReadSegment(data, last, cfg.MaxRecordBytes, func(off int64, r Record) error {
			if off >= from {
				rec.Records = append(rec.Records, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		if sc.Seq != seq && sc.Valid >= segHeaderLen {
			return nil, nil, fmt.Errorf("%w: segment file %s claims seq %d", ErrCorrupt, segmentName(seq), sc.Seq)
		}
		rec.Segments++
		if last {
			lastScan = sc
			if sc.TornBytes > 0 {
				rec.TornBytes = sc.TornBytes
				if sc.Valid < segHeaderLen {
					// The crash cut the segment header itself: nothing was
					// ever durable here. Drop the file; it is recreated
					// below with a clean header under the same seq.
					if err := cfg.FS.Remove(segmentName(seq)); err != nil {
						return nil, nil, err
					}
				} else if err := cfg.FS.Truncate(segmentName(seq), sc.Valid); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	switch {
	case len(scan) == 0:
		// Fresh directory (or everything pruned): start at the segment after
		// the snapshot position so positions keep increasing monotonically.
		start := rec.SnapshotSeq
		if rec.SnapshotPayload != nil {
			start++
		}
		if err := st.openSegment(start); err != nil {
			return nil, nil, err
		}
	case lastScan.Valid < segHeaderLen:
		// The active segment's header was torn away; reuse its seq.
		if err := st.openSegment(scan[lastIdx]); err != nil {
			return nil, nil, err
		}
	case lastScan.Sealed:
		// Crash between sealing a segment and opening the next: resume in a
		// fresh one.
		if err := st.openSegment(scan[lastIdx] + 1); err != nil {
			return nil, nil, err
		}
	default:
		f, err := cfg.FS.Append(segmentName(scan[lastIdx]))
		if err != nil {
			return nil, nil, err
		}
		st.cur = f
		st.curSeq = scan[lastIdx]
		st.curOff = lastScan.Valid
	}
	return st, rec, nil
}

// openSegment starts a fresh segment file with the given seq and writes its
// header. Callers hold st.mu (or own st exclusively during Open).
func (st *Store) openSegment(seq uint64) error {
	f, err := st.cfg.FS.Append(segmentName(seq))
	if err != nil {
		return err
	}
	hdr := appendSegmentHeader(st.buf[:0], seq)
	if _, err := f.Write(hdr); err != nil {
		_ = f.Close()
		return err
	}
	if st.cfg.Sync != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
		// Sync covers the file's bytes, not its directory entry: without a
		// directory fsync a power loss can drop the freshly created segment
		// whole, taking every record later fsync-acknowledged into it.
		if err := st.cfg.FS.SyncDir(); err != nil {
			_ = f.Close()
			return err
		}
	}
	st.cur = f
	st.curSeq = seq
	st.curOff = segHeaderLen
	return nil
}

// Append durably logs one record. With SyncAlways a nil return means the
// record is on stable storage; with weaker policies it is at least in the
// OS. The reserved seal type is rejected.
func (st *Store) Append(typ byte, payload []byte) error {
	if typ == recSeal {
		return fmt.Errorf("durable: record type %#x is reserved", typ)
	}
	if 1+len(payload) > st.cfg.MaxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds cap %d", len(payload), st.cfg.MaxRecordBytes)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	st.buf = appendRecordFrame(st.buf[:0], typ, payload)
	if st.curOff+int64(len(st.buf)) > st.cfg.SegmentBytes && st.curOff > segHeaderLen {
		if err := st.rotate(); err != nil {
			return err
		}
		// rotate reuses st.buf for the seal and header; reframe.
		st.buf = appendRecordFrame(st.buf[:0], typ, payload)
	}
	if _, err := st.cur.Write(st.buf); err != nil {
		return err
	}
	st.curOff += int64(len(st.buf))
	if st.cfg.Sync == SyncAlways {
		return st.cur.Sync()
	}
	return nil
}

// rotate seals the active segment and opens the next one. Callers hold
// st.mu.
func (st *Store) rotate() error {
	seal := appendRecordFrame(st.buf[:0], recSeal, nil)
	if _, err := st.cur.Write(seal); err != nil {
		return err
	}
	if st.cfg.Sync != SyncNever {
		if err := st.cur.Sync(); err != nil {
			return err
		}
	}
	if err := st.cur.Close(); err != nil {
		return err
	}
	return st.openSegment(st.curSeq + 1)
}

// Position returns the current WAL position: the (segment, offset) the next
// append will land at.
func (st *Store) Position() (seq uint64, offset int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.curSeq, st.curOff
}

// WriteSnapshot publishes payload as a snapshot of all state up to the
// current WAL position, atomically, then prunes snapshots beyond the
// retention window and the segments only they kept alive. The store is
// locked for the duration, so the position is exact: every record appended
// before the call is covered, every one after it will be replayed on top.
// This is only correct when no mutation can slip between the caller's state
// export and this call — callers whose WAL appends happen outside the lock
// that guards the export must use WriteSnapshotAt instead.
func (st *Store) WriteSnapshot(payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.writeSnapshotLocked(st.curSeq, st.curOff, payload)
}

// WriteSnapshotAt publishes payload as a snapshot of all state up to the WAL
// position (seq, offset), which the caller captured with Position() BEFORE
// exporting the state payload encodes. Capturing the position first closes
// the export/append race: a record appended before the captured position
// belongs to a mutation applied before the capture (components mutate, then
// log), so the export already includes it; a record appended at or after
// the position is replayed on top during recovery, which is safe because
// restores are idempotent upserts. A position ahead of the WAL is rejected.
func (st *Store) WriteSnapshotAt(seq uint64, offset int64, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if seq > st.curSeq || (seq == st.curSeq && offset > st.curOff) {
		return fmt.Errorf("durable: snapshot position %d/%d is ahead of the WAL at %d/%d", seq, offset, st.curSeq, st.curOff)
	}
	return st.writeSnapshotLocked(seq, offset, payload)
}

// writeSnapshotLocked publishes an encoded snapshot at (seq, offset) and
// prunes. Callers hold st.mu with seq/offset at or before the current
// position.
func (st *Store) writeSnapshotLocked(seq uint64, offset int64, payload []byte) error {
	if st.cfg.Sync != SyncNever {
		// The snapshot claims to cover the log up to (seq, offset); make the
		// tail durable first. Sealed segments were already synced at rotation,
		// so the active segment is the only sync needed.
		if err := st.cur.Sync(); err != nil {
			return err
		}
	}
	name := snapshotName(seq, offset)
	if err := writeSnapshotFile(st.cfg.FS, name, encodeSnapshot(seq, offset, payload)); err != nil {
		return err
	}
	st.prune()
	return nil
}

// prune removes snapshots beyond KeepSnapshots and segments older than every
// kept snapshot. Failures are ignored: retention is advisory, correctness
// never depends on it. Callers hold st.mu.
func (st *Store) prune() {
	names, err := st.cfg.FS.List()
	if err != nil {
		return
	}
	type snap struct {
		name string
		seq  uint64
	}
	var snaps []snap
	var segs []uint64
	for _, name := range names {
		if seq, _, ok := parseSnapshotName(name); ok {
			snaps = append(snaps, snap{name: name, seq: seq})
		} else if seq, ok := parseSegmentName(name); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name > snaps[j].name })
	keepFrom := uint64(0)
	for i, s := range snaps {
		if i < st.cfg.KeepSnapshots {
			if i == st.cfg.KeepSnapshots-1 || i == len(snaps)-1 {
				keepFrom = s.seq
			}
			continue
		}
		_ = st.cfg.FS.Remove(s.name)
	}
	if len(snaps) == 0 {
		return
	}
	for _, seq := range segs {
		if seq < keepFrom {
			_ = st.cfg.FS.Remove(segmentName(seq))
		}
	}
}

// Sync forces an fsync barrier on the active segment regardless of policy.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	return st.cur.Sync()
}

// Close syncs and closes the WAL. Further operations return ErrClosed.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	err := st.cur.Sync()
	if cerr := st.cur.Close(); err == nil {
		err = cerr
	}
	return err
}
