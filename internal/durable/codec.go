package durable

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"fgcs/internal/trace"
)

// Record types used by the iShare components. The seal type 0xFF is
// reserved by the store.
const (
	// RecSample is one quantized, delta-encoded monitor sample.
	RecSample byte = 0x01
	// RecRegister upserts one registry entry (machine, addr, absolute
	// expiry).
	RecRegister byte = 0x02
	// RecUnregister removes one registry entry.
	RecUnregister byte = 0x03
	// RecSubmitKey logs one accepted submit: idempotency key -> job ID. An
	// empty key still advances the job-ID counter on replay.
	RecSubmitKey byte = 0x04
	// RecAccuracy is one resolved accuracy-tracker outcome.
	RecAccuracy byte = 0x05
)

// Sample quantization: CPU in 0.01% units, free memory in 1/16 MB units,
// timestamps in milliseconds. QuantizeSample is applied on the ingest path
// before a sample is either logged or fed to the state manager, so live
// state and replayed state are bit-identical — the property the crash
// harness pins with restart-and-requery QueryTR equality.
const (
	cpuUnit = 100.0 // CPU percent -> 0.01% integer units
	memUnit = 16.0  // MB -> 1/16 MB integer units
)

// QuantizeSample rounds a sample to the WAL's storage precision.
func QuantizeSample(s trace.Sample) trace.Sample {
	s.CPU = math.Round(s.CPU*cpuUnit) / cpuUnit
	s.FreeMemMB = math.Round(s.FreeMemMB*memUnit) / memUnit
	return s
}

// QuantizeTime rounds a timestamp to the WAL's millisecond precision (UTC).
func QuantizeTime(t time.Time) time.Time {
	return time.UnixMilli(t.UnixMilli()).UTC()
}

// Sample record layout: flags byte (bit0 up, bit1 absolute), then three
// zigzag uvarints — time, CPU and memory — absolute in the first record
// after a coder Reset, deltas against the previous record otherwise. At the
// paper's 6 s cadence a steady-state sample is 4-7 bytes against 25+ naive.
const (
	sampleFlagUp       = 0x01
	sampleFlagAbsolute = 0x02
)

// SampleCoder delta-encodes and decodes sample records. Encoding state
// chains across records; Reset starts a new chain (emitting an absolute
// record next), which the persistence layer does at every snapshot so a
// replay starting there never needs state from before the snapshot. The
// zero value is ready to use and starts absolute.
type SampleCoder struct {
	primed  bool
	lastMs  int64
	lastCPU int64
	lastMem int64
}

// Reset drops the delta chain: the next encoded record is absolute, and the
// next decoded record must be.
func (c *SampleCoder) Reset() { *c = SampleCoder{} }

// Encode appends the record payload for (t, s) to buf. The sample should
// already be quantized (QuantizeSample); Encode quantizes again to be safe.
func (c *SampleCoder) Encode(buf []byte, t time.Time, s trace.Sample) []byte {
	ms := t.UnixMilli()
	cpu := int64(math.Round(s.CPU * cpuUnit))
	mem := int64(math.Round(s.FreeMemMB * memUnit))
	flags := byte(0)
	if s.Up {
		flags |= sampleFlagUp
	}
	if !c.primed {
		flags |= sampleFlagAbsolute
		buf = append(buf, flags)
		buf = binary.AppendVarint(buf, ms)
		buf = binary.AppendVarint(buf, cpu)
		buf = binary.AppendVarint(buf, mem)
	} else {
		buf = append(buf, flags)
		buf = binary.AppendVarint(buf, ms-c.lastMs)
		buf = binary.AppendVarint(buf, cpu-c.lastCPU)
		buf = binary.AppendVarint(buf, mem-c.lastMem)
	}
	c.primed = true
	c.lastMs, c.lastCPU, c.lastMem = ms, cpu, mem
	return buf
}

// Decode parses one sample record payload, advancing the coder's chain
// state. A delta record with no preceding absolute record fails: it means
// replay started mid-chain, which the snapshot/Reset protocol rules out.
func (c *SampleCoder) Decode(p []byte) (time.Time, trace.Sample, error) {
	if len(p) < 1 {
		return time.Time{}, trace.Sample{}, fmt.Errorf("durable: empty sample record")
	}
	flags := p[0]
	rest := p[1:]
	var vals [3]int64
	for i := range vals {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return time.Time{}, trace.Sample{}, fmt.Errorf("durable: malformed sample record")
		}
		vals[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return time.Time{}, trace.Sample{}, fmt.Errorf("durable: trailing bytes in sample record")
	}
	if flags&sampleFlagAbsolute != 0 {
		c.lastMs, c.lastCPU, c.lastMem = vals[0], vals[1], vals[2]
	} else {
		if !c.primed {
			return time.Time{}, trace.Sample{}, fmt.Errorf("durable: delta sample record without a base")
		}
		c.lastMs += vals[0]
		c.lastCPU += vals[1]
		c.lastMem += vals[2]
	}
	c.primed = true
	s := trace.Sample{
		CPU:       float64(c.lastCPU) / cpuUnit,
		FreeMemMB: float64(c.lastMem) / memUnit,
		Up:        flags&sampleFlagUp != 0,
	}
	return time.UnixMilli(c.lastMs).UTC(), s, nil
}

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readString consumes a length-prefixed string, bounding the claimed length
// by the bytes actually present.
func readString(p []byte) (string, []byte, error) {
	n, vn := binary.Uvarint(p)
	if vn <= 0 || n > uint64(len(p)-vn) {
		return "", nil, fmt.Errorf("durable: malformed string field")
	}
	return string(p[vn : vn+int(n)]), p[vn+int(n):], nil
}

// EncodeRegister appends a registry-upsert payload: machine, addr and the
// absolute expiry in unix milliseconds (0 = never expires).
func EncodeRegister(buf []byte, machine, addr string, expiresUnixMs int64) []byte {
	buf = appendString(buf, machine)
	buf = appendString(buf, addr)
	return binary.AppendVarint(buf, expiresUnixMs)
}

// DecodeRegister parses a RecRegister payload.
func DecodeRegister(p []byte) (machine, addr string, expiresUnixMs int64, err error) {
	if machine, p, err = readString(p); err != nil {
		return "", "", 0, err
	}
	if addr, p, err = readString(p); err != nil {
		return "", "", 0, err
	}
	v, n := binary.Varint(p)
	if n <= 0 || len(p) != n {
		return "", "", 0, fmt.Errorf("durable: malformed register record")
	}
	return machine, addr, v, nil
}

// EncodeUnregister appends a registry-removal payload.
func EncodeUnregister(buf []byte, machine string) []byte {
	return appendString(buf, machine)
}

// DecodeUnregister parses a RecUnregister payload.
func DecodeUnregister(p []byte) (machine string, err error) {
	machine, rest, err := readString(p)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("durable: malformed unregister record")
	}
	return machine, nil
}

// EncodeSubmitKey appends an accepted-submit payload: the idempotency key
// (may be empty) and the job ID it mapped to.
func EncodeSubmitKey(buf []byte, key, jobID string) []byte {
	buf = appendString(buf, key)
	return appendString(buf, jobID)
}

// DecodeSubmitKey parses a RecSubmitKey payload.
func DecodeSubmitKey(p []byte) (key, jobID string, err error) {
	if key, p, err = readString(p); err != nil {
		return "", "", err
	}
	if jobID, p, err = readString(p); err != nil {
		return "", "", err
	}
	if len(p) != 0 {
		return "", "", fmt.Errorf("durable: malformed submit-key record")
	}
	return key, jobID, nil
}

// EncodeAccuracy appends a resolved-prediction payload: the (machine,
// predictor) key, the predicted TR (exact float64 bits, so restored tracker
// sums match the live ones bit for bit) and the observed outcome.
func EncodeAccuracy(buf []byte, machine, predictor string, tr float64, survived bool) []byte {
	buf = appendString(buf, machine)
	buf = appendString(buf, predictor)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tr))
	if survived {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// DecodeAccuracy parses a RecAccuracy payload.
func DecodeAccuracy(p []byte) (machine, predictor string, tr float64, survived bool, err error) {
	if machine, p, err = readString(p); err != nil {
		return "", "", 0, false, err
	}
	if predictor, p, err = readString(p); err != nil {
		return "", "", 0, false, err
	}
	if len(p) != 9 {
		return "", "", 0, false, fmt.Errorf("durable: malformed accuracy record")
	}
	tr = math.Float64frombits(binary.LittleEndian.Uint64(p))
	return machine, predictor, tr, p[8] == 1, nil
}
