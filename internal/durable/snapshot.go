package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Snapshot file layout:
//
//	magic "FGSP" | version byte
//	uvarint seq | uvarint offset      WAL position the payload covers
//	uvarint len(payload) | payload    opaque application state
//	crc32c uint32 LE                  over everything above
//
// The file is written under a .tmp name, synced, then renamed into place, so
// a snapshot either exists whole or not at all; its name carries the same
// (seq, offset) as the header so recovery can order candidates without
// opening them.

var snapMagic = [4]byte{'F', 'G', 'S', 'P'}

// snapVersion is the on-disk snapshot format version.
const snapVersion = 1

// snapshotName names the snapshot covering WAL position (seq, offset).
func snapshotName(seq uint64, offset int64) string {
	return fmt.Sprintf("snap-%016x-%016x.snap", seq, uint64(offset))
}

// segmentName names the WAL segment with the given sequence number.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", seq)
}

// parseSnapshotName extracts (seq, offset) from a snapshot file name.
func parseSnapshotName(name string) (seq uint64, offset int64, ok bool) {
	var s, o uint64
	if n, err := fmt.Sscanf(name, "snap-%016x-%016x.snap", &s, &o); err != nil || n != 2 {
		return 0, 0, false
	}
	return s, int64(o), true
}

// parseSegmentName extracts the sequence number from a segment file name.
func parseSegmentName(name string) (seq uint64, ok bool) {
	var s uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.seg", &s); err != nil || n != 1 {
		return 0, false
	}
	return s, true
}

// encodeSnapshot frames payload as a snapshot covering (seq, offset).
func encodeSnapshot(seq uint64, offset int64, payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+32)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, snapVersion)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(offset))
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf, castagnoli)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// ReadSnapshot validates a snapshot file and returns the WAL position it
// covers and its payload (aliasing data). Any damage — bad magic, claimed
// length beyond the file, checksum mismatch — returns ErrCorrupt; snapshots
// are published atomically, so unlike the active segment there is no torn
// state to tolerate. The claimed payload length is checked against the
// actual file size before use, so the reader never allocates from untrusted
// counts.
func ReadSnapshot(data []byte) (seq uint64, offset int64, payload []byte, err error) {
	if len(data) < 5 {
		return 0, 0, nil, fmt.Errorf("%w: short snapshot", ErrCorrupt)
	}
	if [4]byte(data[:4]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if data[4] != snapVersion {
		return 0, 0, nil, fmt.Errorf("%w: snapshot version %d", ErrCorrupt, data[4])
	}
	rest := data[5:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: malformed snapshot seq", ErrCorrupt)
	}
	rest = rest[n:]
	off, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: malformed snapshot offset", ErrCorrupt)
	}
	rest = rest[n:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: malformed snapshot length", ErrCorrupt)
	}
	rest = rest[n:]
	if plen > uint64(len(rest)) {
		return 0, 0, nil, fmt.Errorf("%w: snapshot payload length %d beyond file", ErrCorrupt, plen)
	}
	if len(rest) != int(plen)+4 {
		return 0, 0, nil, fmt.Errorf("%w: snapshot trailing garbage", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(rest[plen:])
	if crc32.Checksum(data[:len(data)-4], castagnoli) != want {
		return 0, 0, nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return seq, int64(off), rest[:plen], nil
}

// writeSnapshotFile publishes an encoded snapshot atomically: tmp file,
// sync, rename into place.
func writeSnapshotFile(fs FS, name string, encoded []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Append(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(encoded); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, name)
}
