package durable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"fgcs/internal/trace"
)

// reopen closes nothing (the store may be dead) and opens a fresh store over
// the same FS.
func reopen(t *testing.T, fs FS, cfg Config) (*Store, *Recovery) {
	t.Helper()
	cfg.FS = fs
	st, rec, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st, rec
}

func TestStoreRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st, rec := reopen(t, fs, Config{})
	if rec.SnapshotPayload != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		if err := st.Append(RecRegister, payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, Record{Type: RecRegister, Payload: payload})
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, rec2 := reopen(t, fs, Config{})
	defer st2.Close()
	if rec2.TornBytes != 0 {
		t.Fatalf("clean close reported torn bytes: %d", rec2.TornBytes)
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
}

func TestStoreRotationAndSealedSegments(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments force many rotations.
	cfg := Config{SegmentBytes: 256}
	st, _ := reopen(t, fs, cfg)
	n := 200
	for i := 0; i < n; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("s-%04d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	seq, _ := st.Position()
	if seq < 5 {
		t.Fatalf("expected several rotations, at segment %d", seq)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, rec := reopen(t, fs, cfg)
	defer st2.Close()
	if len(rec.Records) != n {
		t.Fatalf("replayed %d records across %d segments, want %d", len(rec.Records), rec.Segments, n)
	}
	if rec.Segments != int(seq)+1 {
		t.Fatalf("scanned %d segments, want %d", rec.Segments, seq+1)
	}
}

func TestSnapshotCoversTailAndPrunes(t *testing.T) {
	fs := NewMemFS()
	cfg := Config{SegmentBytes: 256, KeepSnapshots: 1}
	st, _ := reopen(t, fs, cfg)
	for i := 0; i < 50; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("pre-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("state-at-50")); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for i := 0; i < 7; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := reopen(t, fs, cfg)
	defer st2.Close()
	if string(rec.SnapshotPayload) != "state-at-50" {
		t.Fatalf("snapshot payload %q", rec.SnapshotPayload)
	}
	if len(rec.Records) != 7 {
		t.Fatalf("replayed %d records after snapshot, want 7", len(rec.Records))
	}
	if string(rec.Records[0].Payload) != "post-0" {
		t.Fatalf("first replayed record %q", rec.Records[0].Payload)
	}
	// Pruning removed the pre-snapshot segments.
	names, _ := fs.List()
	segs := 0
	for _, n := range names {
		if seq, ok := parseSegmentName(n); ok {
			segs++
			if seq < rec.SnapshotSeq {
				t.Fatalf("segment %d below snapshot seq %d survived pruning", seq, rec.SnapshotSeq)
			}
		}
	}
	if segs == 0 {
		t.Fatal("no segments left at all")
	}
}

func TestSnapshotFallbackOnCorruptNewest(t *testing.T) {
	fs := NewMemFS()
	cfg := Config{KeepSnapshots: 2}
	st, _ := reopen(t, fs, cfg)
	if err := st.Append(RecSample, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(RecSample, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the newest snapshot.
	names, _ := fs.List()
	for i := len(names) - 1; i >= 0; i-- {
		if _, _, ok := parseSnapshotName(names[i]); ok {
			if !fs.Corrupt(names[i], int(fs.Size(names[i]))/2, 0x40) {
				t.Fatal("corrupt failed")
			}
			break
		}
	}
	st2, rec := reopen(t, fs, cfg)
	defer st2.Close()
	if string(rec.SnapshotPayload) != "old" {
		t.Fatalf("fallback snapshot payload %q, want old", rec.SnapshotPayload)
	}
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped = %d", rec.SnapshotsSkipped)
	}
	// Replay after the old snapshot must include record "b".
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "b" {
		t.Fatalf("replayed %v", rec.Records)
	}
}

// TestWriteSnapshotAtReplaysTailFromPosition pins the WriteSnapshotAt
// contract that closes the export/append race: a record appended between
// the position capture and the snapshot write is replayed on recovery,
// never hidden behind the snapshot offset.
func TestWriteSnapshotAtReplaysTailFromPosition(t *testing.T) {
	fs := NewMemFS()
	st, _ := reopen(t, fs, Config{})
	if err := st.Append(RecRegister, []byte("covered")); err != nil {
		t.Fatal(err)
	}
	seq, off := st.Position()
	// The interleaving the submit/register sinks produce: the component
	// mutated and logged after the snapshot captured its position.
	if err := st.Append(RecRegister, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshotAt(seq, off, []byte("state")); err != nil {
		t.Fatalf("WriteSnapshotAt: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := reopen(t, fs, Config{})
	defer st2.Close()
	if string(rec.SnapshotPayload) != "state" {
		t.Fatalf("snapshot payload %q", rec.SnapshotPayload)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "in-flight" {
		t.Fatalf("replayed %v, want just the in-flight record", rec.Records)
	}
	// A position ahead of the WAL is rejected outright.
	if err := st2.WriteSnapshotAt(seq+1, 0, []byte("x")); err == nil {
		t.Fatal("snapshot position ahead of the WAL accepted")
	}
}

// TestAllSnapshotsCorruptRefuses pins the refusal policy: when every
// retained snapshot fails validation and pruning already removed the
// history only they covered, Open must refuse rather than silently serve
// the surviving segment suffix as full state. Config.BestEffort is the
// explicit operator salvage override.
func TestAllSnapshotsCorruptRefuses(t *testing.T) {
	fs := NewMemFS()
	cfg := Config{SegmentBytes: 128, KeepSnapshots: 1}
	st, _ := reopen(t, fs, cfg)
	for i := 0; i < 40; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("full-state")); err != nil {
		t.Fatal(err)
	}
	if seq, _ := st.Position(); seq == 0 {
		t.Fatal("no rotation: the test needs pruned history")
	}
	_ = st.Close()
	if _, err := fs.ReadFile(segmentName(0)); err == nil {
		t.Fatal("segment 0 survived pruning; the WAL still covers full history")
	}
	names, _ := fs.List()
	nsnaps := 0
	for _, name := range names {
		if _, _, ok := parseSnapshotName(name); ok {
			if !fs.Corrupt(name, int(fs.Size(name))/2, 0x20) {
				t.Fatal("corrupt failed")
			}
			nsnaps++
		}
	}
	if nsnaps == 0 {
		t.Fatal("no snapshots on disk")
	}
	if _, _, err := Open(Config{FS: fs, SegmentBytes: 128, KeepSnapshots: 1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with every snapshot corrupt: %v, want ErrCorrupt", err)
	}
	st2, rec, err := Open(Config{FS: fs, SegmentBytes: 128, KeepSnapshots: 1, BestEffort: true})
	if err != nil {
		t.Fatalf("best-effort open: %v", err)
	}
	defer st2.Close()
	if rec.SnapshotPayload != nil || rec.SnapshotsSkipped != nsnaps || len(rec.Records) == 0 {
		t.Fatalf("salvage shape: snapshot=%v skipped=%d records=%d",
			rec.SnapshotPayload != nil, rec.SnapshotsSkipped, len(rec.Records))
	}
}

// TestAllSnapshotsCorruptFullWALProceeds: when the WAL still reaches back
// to segment 0, losing every snapshot costs nothing — replay from genesis
// rebuilds complete state — so Open proceeds without any override.
func TestAllSnapshotsCorruptFullWALProceeds(t *testing.T) {
	fs := NewMemFS()
	st, _ := reopen(t, fs, Config{})
	for i := 0; i < 10; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	names, _ := fs.List()
	for _, name := range names {
		if _, _, ok := parseSnapshotName(name); ok {
			if !fs.Corrupt(name, int(fs.Size(name))/2, 0x04) {
				t.Fatal("corrupt failed")
			}
		}
	}
	st2, rec := reopen(t, fs, Config{})
	defer st2.Close()
	if rec.SnapshotPayload != nil || rec.SnapshotsSkipped != 1 {
		t.Fatalf("recovery shape: snapshot=%v skipped=%d", rec.SnapshotPayload != nil, rec.SnapshotsSkipped)
	}
	if len(rec.Records) != 10 {
		t.Fatalf("replayed %d records from genesis, want 10", len(rec.Records))
	}
}

func TestTornTailTruncates(t *testing.T) {
	for cut := 1; cut <= 12; cut++ {
		fs := NewMemFS()
		st, _ := reopen(t, fs, Config{})
		if err := st.Append(RecSample, []byte("first")); err != nil {
			t.Fatal(err)
		}
		if err := st.Append(RecSample, []byte("second-record")); err != nil {
			t.Fatal(err)
		}
		_ = st.Close()
		name := segmentName(0)
		size := fs.Size(name)
		if err := fs.Truncate(name, size-int64(cut)); err != nil {
			t.Fatal(err)
		}
		st2, rec := reopen(t, fs, Config{})
		if rec.TornBytes == 0 {
			t.Fatalf("cut=%d: no torn bytes reported", cut)
		}
		if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "first" {
			t.Fatalf("cut=%d: replayed %v, want just first", cut, rec.Records)
		}
		// The store keeps appending where the valid prefix ended.
		if err := st2.Append(RecSample, []byte("third")); err != nil {
			t.Fatalf("cut=%d: append after torn recovery: %v", cut, err)
		}
		_ = st2.Close()
		st3, rec3 := reopen(t, fs, Config{})
		if len(rec3.Records) != 2 || string(rec3.Records[1].Payload) != "third" {
			t.Fatalf("cut=%d: second recovery replayed %v", cut, rec3.Records)
		}
		_ = st3.Close()
	}
}

func TestCorruptMiddleRefuses(t *testing.T) {
	fs := NewMemFS()
	st, _ := reopen(t, fs, Config{})
	for i := 0; i < 10; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = st.Close()
	// Flip a bit in the middle of the segment: a record with valid data
	// after it fails its checksum, which no torn write can explain.
	name := segmentName(0)
	if !fs.Corrupt(name, int(fs.Size(name))/2, 0x01) {
		t.Fatal("corrupt failed")
	}
	_, _, err := Open(Config{FS: fs})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt middle: %v, want ErrCorrupt", err)
	}
}

func TestCorruptSealedSegmentRefuses(t *testing.T) {
	fs := NewMemFS()
	cfg := Config{SegmentBytes: 128}
	st, _ := reopen(t, fs, cfg)
	for i := 0; i < 40; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("rec-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seq, _ := st.Position()
	if seq == 0 {
		t.Fatal("no rotation happened")
	}
	_ = st.Close()
	// Damage the tail of a sealed (non-active) segment: even tail damage is
	// refused there, because sealed segments are immutable.
	name := segmentName(0)
	if !fs.Corrupt(name, int(fs.Size(name))-2, 0x80) {
		t.Fatal("corrupt failed")
	}
	_, _, err := Open(Config{FS: fs, SegmentBytes: 128})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt sealed segment: %v, want ErrCorrupt", err)
	}
}

func TestOversizeLengthRefuses(t *testing.T) {
	fs := NewMemFS()
	st, _ := reopen(t, fs, Config{})
	if err := st.Append(RecSample, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	// Append a frame claiming an absurd length followed by real-looking
	// bytes; the reader must reject it without allocating the claim.
	f, err := fs.Append(segmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0xFF, 0xFF, 0xFF, 0x7F, 0x01, 0xAB, 0xCD, 0xEF, 0x12}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_, _, err = Open(Config{FS: fs})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with oversize length: %v, want ErrCorrupt", err)
	}
}

func TestCleanShutdownNeedsNoReplayAfterSnapshot(t *testing.T) {
	fs := NewMemFS()
	st, _ := reopen(t, fs, Config{})
	for i := 0; i < 20; i++ {
		if err := st.Append(RecSample, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("final")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := reopen(t, fs, Config{})
	defer st2.Close()
	if len(rec.Records) != 0 || rec.TornBytes != 0 {
		t.Fatalf("clean shutdown still needed replay: %d records, %d torn bytes",
			len(rec.Records), rec.TornBytes)
	}
	if string(rec.SnapshotPayload) != "final" {
		t.Fatalf("snapshot payload %q", rec.SnapshotPayload)
	}
}

func TestStoreOSFS(t *testing.T) {
	dir := t.TempDir()
	osfs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := reopen(t, osfs, Config{SegmentBytes: 512})
	for i := 0; i < 60; i++ {
		if err := st.Append(RecSample, []byte(fmt.Sprintf("os-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot([]byte("os-state")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(RecSample, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := reopen(t, osfs, Config{SegmentBytes: 512})
	defer st2.Close()
	if string(rec.SnapshotPayload) != "os-state" {
		t.Fatalf("snapshot payload %q", rec.SnapshotPayload)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "tail" {
		t.Fatalf("replayed %v", rec.Records)
	}
}

func TestSampleCoderRoundTrip(t *testing.T) {
	var enc, dec SampleCoder
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var buf []byte
	type rec struct {
		t time.Time
		s trace.Sample
	}
	var want []rec
	var frames [][]byte
	for i := 0; i < 500; i++ {
		ts := base.Add(time.Duration(i) * 6 * time.Second)
		s := QuantizeSample(trace.Sample{
			CPU:       float64(i%101) + 0.37,
			FreeMemMB: 1000 + float64(i%50)*3.3,
			Up:        i%7 != 0,
		})
		buf = enc.Encode(buf[:0], ts, s)
		frames = append(frames, append([]byte(nil), buf...))
		want = append(want, rec{t: QuantizeTime(ts), s: s})
		if i == 250 {
			enc.Reset() // snapshot boundary mid-stream
		}
	}
	for i, frame := range frames {
		ts, s, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !ts.Equal(want[i].t) || s != want[i].s {
			t.Fatalf("record %d: got (%v %+v) want (%v %+v)", i, ts, s, want[i].t, want[i].s)
		}
	}
	// Replay starting at the reset point needs no earlier state.
	var dec2 SampleCoder
	if _, _, err := dec2.Decode(frames[251]); err != nil {
		t.Fatalf("decode at reset boundary: %v", err)
	}
	// A delta record with no base is rejected.
	var dec3 SampleCoder
	if _, _, err := dec3.Decode(frames[5]); err == nil {
		t.Fatal("delta record without base decoded")
	}
}

func TestComponentCodecsRoundTrip(t *testing.T) {
	m, a, exp, err := DecodeRegister(EncodeRegister(nil, "lab-01", "10.0.0.1:7070", 1234567))
	if err != nil || m != "lab-01" || a != "10.0.0.1:7070" || exp != 1234567 {
		t.Fatalf("register round trip: %q %q %d %v", m, a, exp, err)
	}
	m, err = DecodeUnregister(EncodeUnregister(nil, "lab-02"))
	if err != nil || m != "lab-02" {
		t.Fatalf("unregister round trip: %q %v", m, err)
	}
	k, id, err := DecodeSubmitKey(EncodeSubmitKey(nil, "key-9", "lab-01-job-3"))
	if err != nil || k != "key-9" || id != "lab-01-job-3" {
		t.Fatalf("submit-key round trip: %q %q %v", k, id, err)
	}
	m, p, tr, sv, err := DecodeAccuracy(EncodeAccuracy(nil, "lab-01", "SMP", 0.8125, true))
	if err != nil || m != "lab-01" || p != "SMP" || tr != 0.8125 || !sv {
		t.Fatalf("accuracy round trip: %q %q %v %v %v", m, p, tr, sv, err)
	}
	// Malformed inputs error rather than panic.
	if _, _, _, err := DecodeRegister([]byte{0xFF}); err == nil {
		t.Fatal("bad register decoded")
	}
	if _, _, err := DecodeSubmitKey([]byte{0x05, 'a'}); err == nil {
		t.Fatal("bad submit-key decoded")
	}
}
