package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Segment file layout:
//
//	magic "FGWS" | version byte | seq uint64 BE          (13-byte header)
//	record*                                              (see below)
//
// Record frame, mirroring the frame.go wire idiom (uvarint lengths, trailing
// checksum):
//
//	uvarint n        n = 1 + len(payload)
//	type byte
//	payload          n-1 bytes
//	crc32c uint32 LE over the whole frame so far (length bytes included)
//
// A rotation seals the segment with a zero-payload record of the reserved
// seal type; every segment but the active (highest-seq) one must end with
// it. The checksum polynomial is Castagnoli, the same one storage systems
// use for torn-write detection.

var segMagic = [4]byte{'F', 'G', 'W', 'S'}

// segVersion is the on-disk segment format version.
const segVersion = 1

// segHeaderLen is the byte length of a segment header.
const segHeaderLen = 4 + 1 + 8

// recSeal marks the end of a sealed (rotated) segment. The type is reserved:
// Append rejects it.
const recSeal = 0xFF

// DefaultMaxRecordBytes caps one record's frame; reads treat larger claimed
// lengths as corruption rather than allocating from untrusted input.
const DefaultMaxRecordBytes = 1 << 20

// castagnoli is the CRC32C table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports checksummed state that is damaged in a way a torn tail
// cannot explain — a bad record with valid data after it, a sealed segment
// that fails validation, an impossible length. Recovery refuses to proceed
// rather than silently drop acknowledged history.
var ErrCorrupt = errors.New("durable: corrupt state")

// Record is one WAL entry: an application-defined type byte plus an opaque
// payload.
type Record struct {
	// Type tags the payload codec (see the Rec* constants in codec.go).
	Type byte
	// Payload is the encoded record body.
	Payload []byte
}

// appendSegmentHeader appends a segment header for seq.
func appendSegmentHeader(buf []byte, seq uint64) []byte {
	buf = append(buf, segMagic[:]...)
	buf = append(buf, segVersion)
	return binary.BigEndian.AppendUint64(buf, seq)
}

// parseSegmentHeader validates a header and returns its seq.
func parseSegmentHeader(data []byte) (uint64, error) {
	if len(data) < segHeaderLen {
		return 0, fmt.Errorf("%w: short segment header", ErrCorrupt)
	}
	if [4]byte(data[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if data[4] != segVersion {
		return 0, fmt.Errorf("%w: segment version %d", ErrCorrupt, data[4])
	}
	return binary.BigEndian.Uint64(data[5:13]), nil
}

// appendRecordFrame appends one framed record (lengths, type, payload,
// CRC32C trailer) to buf.
func appendRecordFrame(buf []byte, typ byte, payload []byte) []byte {
	start := len(buf)
	buf = binary.AppendUvarint(buf, uint64(1+len(payload)))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// SegmentScan is the outcome of reading one segment file.
type SegmentScan struct {
	// Seq is the segment's sequence number from its header.
	Seq uint64
	// Valid is the byte offset just past the last good record (records plus
	// header); the file is consistent up to here.
	Valid int64
	// TornBytes counts trailing bytes past Valid attributable to a torn
	// write (only ever non-zero for the active segment).
	TornBytes int
	// Sealed reports a clean rotation seal at the end.
	Sealed bool
}

// ReadSegment scans one segment file, streaming each good record to fn with
// its start offset. last marks the active (highest-seq) segment: only there
// is trailing damage treated as a torn write — reported via TornBytes so the
// store can truncate — and only when nothing but the damage follows. Damage
// in a sealed segment, or a bad record with more data after it, returns
// ErrCorrupt: that cannot be a torn append, someone altered bytes at rest.
// Record payloads passed to fn alias data; callers copy what they keep.
// Claimed lengths above maxRecord (0 = DefaultMaxRecordBytes) are rejected
// without allocating, so the reader is safe on untrusted input.
func ReadSegment(data []byte, last bool, maxRecord int, fn func(off int64, r Record) error) (SegmentScan, error) {
	if maxRecord <= 0 {
		maxRecord = DefaultMaxRecordBytes
	}
	var scan SegmentScan
	if len(data) < segHeaderLen {
		if last {
			// A crash while writing the very first header of a fresh
			// segment: nothing durable was acknowledged in it yet.
			scan.TornBytes = len(data)
			return scan, nil
		}
		return scan, fmt.Errorf("%w: short sealed segment", ErrCorrupt)
	}
	seq, err := parseSegmentHeader(data)
	if err != nil {
		return scan, err
	}
	scan.Seq = seq
	off := int64(segHeaderLen)
	// torn classifies trailing damage: a torn write in the active segment is
	// truncated, anything else refuses.
	torn := func(reason string) (SegmentScan, error) {
		if last && !scan.Sealed {
			scan.Valid = off
			scan.TornBytes = len(data) - int(off)
			return scan, nil
		}
		return scan, fmt.Errorf("%w: %s at offset %d of segment %d", ErrCorrupt, reason, off, seq)
	}
	for int(off) < len(data) {
		if scan.Sealed {
			// Data after a seal cannot come from an append — appends go to
			// the next segment once this one is sealed.
			return scan, fmt.Errorf("%w: data after seal in segment %d", ErrCorrupt, seq)
		}
		rest := data[off:]
		n, vn := binary.Uvarint(rest)
		if vn <= 0 {
			if vn == 0 {
				// Incomplete varint at EOF: a cut mid-length-prefix.
				return torn("truncated record length")
			}
			return scan, fmt.Errorf("%w: malformed record length at offset %d of segment %d", ErrCorrupt, off, seq)
		}
		if n == 0 || n > uint64(maxRecord) {
			// A truncating cut shortens data, it never rewrites the length
			// bytes — an impossible length is corruption wherever it sits.
			return scan, fmt.Errorf("%w: record length %d out of range at offset %d of segment %d", ErrCorrupt, n, off, seq)
		}
		frame := vn + int(n) + 4
		if frame > len(rest) {
			return torn("truncated record")
		}
		want := binary.LittleEndian.Uint32(rest[frame-4 : frame])
		if crc32.Checksum(rest[:frame-4], castagnoli) != want {
			if last && int(off)+frame == len(data) {
				// Bad checksum on the final record with nothing after it:
				// indistinguishable from a partially persisted final sector.
				return torn("checksum mismatch on tail record")
			}
			return scan, fmt.Errorf("%w: checksum mismatch at offset %d of segment %d", ErrCorrupt, off, seq)
		}
		typ := rest[vn]
		if typ == recSeal {
			if n != 1 {
				return scan, fmt.Errorf("%w: seal record with payload in segment %d", ErrCorrupt, seq)
			}
			scan.Sealed = true
			off += int64(frame)
			scan.Valid = off
			continue
		}
		if fn != nil {
			if err := fn(off, Record{Type: typ, Payload: rest[vn+1 : vn+int(n)]}); err != nil {
				return scan, err
			}
		}
		off += int64(frame)
		scan.Valid = off
	}
	scan.Valid = off
	if !last && !scan.Sealed {
		return scan, fmt.Errorf("%w: segment %d is not sealed but is not the active segment", ErrCorrupt, seq)
	}
	return scan, nil
}
