// Package avail implements the paper's multi-state resource availability
// model (Section 3, Figure 1): five states derived from observable host
// resource usage, the threshold-based classifier with the transient-excursion
// rule, sojourn extraction for semi-Markov estimation, and the empirical
// temporal-reliability measurement used by the evaluation.
package avail

import (
	"fmt"
	"time"

	"fgcs/internal/trace"
)

// State is one of the five availability states of Figure 1.
type State int

const (
	// S1: full resource availability for the guest process (host CPU load
	// below Th1).
	S1 State = iota + 1
	// S2: resource availability for the guest process at lowest priority
	// (host CPU load between Th1 and Th2).
	S2
	// S3: CPU unavailability (UEC) — host CPU load steadily above Th2; any
	// guest process must be terminated.
	S3
	// S4: memory thrashing (UEC) — not enough free memory for the guest
	// working set.
	S4
	// S5: machine unavailability (URR) — the resource was revoked or the
	// machine failed.
	S5
)

// NumStates is the size of the state space.
const NumStates = 5

// String returns the canonical state name.
func (s State) String() string {
	switch s {
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	case S4:
		return "S4"
	case S5:
		return "S5"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Failure reports whether the state is unrecoverable for a guest process
// (S3, S4 or S5). Even if host load later drops or the machine rejoins, the
// guest process has already been killed or migrated off (Section 3.3).
func (s State) Failure() bool { return s >= S3 }

// Recoverable reports whether a guest process can continue in this state.
func (s State) Recoverable() bool { return s == S1 || s == S2 }

// Config holds the model parameters derived from the empirical studies of
// Section 3.2.
type Config struct {
	// Th1 and Th2 are the host-CPU-load thresholds (percent). Below Th1
	// the guest runs at default priority (S1); between Th1 and Th2 it must
	// be reniced to the lowest priority (S2); steadily above Th2 it must
	// be terminated (S3). The paper's Linux testbed uses 20 and 60.
	Th1, Th2 float64
	// SuspendLimit is how long the host load may transiently exceed Th2
	// (with the guest suspended) before the guest is terminated: 1 minute
	// in the paper's experiments. Excursions shorter than this stay in
	// S1/S2 per the state definitions of Section 3.3.
	SuspendLimit time.Duration
	// GuestMemMB is the working-set size of the guest process. Free
	// memory below this value means the guest cannot fit without
	// thrashing (S4).
	GuestMemMB float64
}

// DefaultConfig returns the testbed parameters of Section 3.3 with a
// representative guest working set (the SPEC CPU2000 applications used in the
// paper range from 29 to 193 MB).
func DefaultConfig() Config {
	return Config{Th1: 20, Th2: 60, SuspendLimit: time.Minute, GuestMemMB: 100}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	if c.Th1 < 0 || c.Th2 > 100 || c.Th1 >= c.Th2 {
		return fmt.Errorf("avail: invalid thresholds Th1=%g Th2=%g", c.Th1, c.Th2)
	}
	if c.SuspendLimit <= 0 {
		return fmt.Errorf("avail: non-positive suspend limit")
	}
	if c.GuestMemMB < 0 {
		return fmt.Errorf("avail: negative guest memory")
	}
	return nil
}

// SuspendUnits converts the suspend limit into sampling periods, rounding up
// so that an excursion is only "steady" once the full limit has elapsed.
// The gateway's online kill rule and the offline classifier both use this,
// so a guest is killed exactly when the classifier would report S3.
func (c Config) SuspendUnits(period time.Duration) int {
	if period <= 0 {
		panic("avail: non-positive period")
	}
	u := int((c.SuspendLimit + period - 1) / period)
	if u < 1 {
		u = 1
	}
	return u
}

// rawLevel is the per-sample classification before the transient rule is
// applied. highCPU marks samples above Th2 that may yet be attributed to the
// surrounding recoverable state.
type rawLevel int

const (
	rawS1 rawLevel = iota
	rawS2
	rawHigh
	rawS4
	rawS5
)

func (c Config) raw(s trace.Sample) rawLevel {
	switch {
	case !s.Up:
		return rawS5
	case s.FreeMemMB < c.GuestMemMB:
		return rawS4
	case s.CPU > c.Th2:
		return rawHigh
	case s.CPU >= c.Th1:
		return rawS2
	default:
		return rawS1
	}
}

// Classify labels every sample of a window with its availability state,
// applying the transient-excursion rule: a maximal run of samples above Th2
// that is shorter than the suspend limit is attributed to the neighboring
// recoverable state (the guest is merely suspended, per the S1/S2
// definitions); a run reaching the limit is CPU unavailability (S3) from the
// start of the run. Classification does not stop at failures — use
// ExtractSojourns for the absorbed view the SMP estimator needs.
func Classify(samples []trace.Sample, cfg Config, period time.Duration) []State {
	return ClassifyInto(nil, samples, cfg, period)
}

// ClassifyInto is Classify writing into dst's storage when it is large
// enough, so callers on hot paths (the prediction engine) can classify
// repeatedly without allocating. It always returns the classified slice,
// which aliases dst when dst had sufficient capacity. Each sample's raw
// level is computed exactly once, in a single pass.
func ClassifyInto(dst []State, samples []trace.Sample, cfg Config, period time.Duration) []State {
	n := len(samples)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]State, n)
	}
	if n == 0 {
		return dst
	}
	limit := cfg.SuspendUnits(period)
	i := 0
	for i < n {
		switch cfg.raw(samples[i]) {
		case rawS1:
			dst[i] = S1
			i++
		case rawS2:
			dst[i] = S2
			i++
		case rawS4:
			dst[i] = S4
			i++
		case rawS5:
			dst[i] = S5
			i++
		case rawHigh:
			j := i
			for j+1 < n && cfg.raw(samples[j+1]) == rawHigh {
				j++
			}
			j++ // j is now one past the end of the high run
			var st State
			if j-i >= limit {
				st = S3
			} else {
				st = attributeTransient(samples, dst, cfg, i, j)
			}
			for k := i; k < j; k++ {
				dst[k] = st
			}
			i = j
		}
	}
	return dst
}

// attributeTransient decides which recoverable state absorbs a transient
// high-CPU run spanning [i, j). Preference order: the state immediately
// before the run, then the raw level immediately after, then S2 (the
// conservative choice when the excursion has no recoverable neighbor).
func attributeTransient(samples []trace.Sample, out []State, cfg Config, i, j int) State {
	if i > 0 && out[i-1].Recoverable() {
		return out[i-1]
	}
	if j < len(samples) {
		switch cfg.raw(samples[j]) {
		case rawS1:
			return S1
		case rawS2:
			return S2
		}
	}
	return S2
}

// Sojourn is one visit to a state: the state and its holding time measured in
// sampling periods. Holding times are the raw material for the H matrix of
// the semi-Markov model.
type Sojourn struct {
	State State
	Units int
}

// Duration converts the holding time back to wall time.
func (s Sojourn) Duration(period time.Duration) time.Duration {
	return time.Duration(s.Units) * period
}

// ExtractSojourns compresses the classified window into a sequence of
// sojourns, stopping after the first failure state: S3, S4 and S5 are
// unrecoverable for a guest job, so the semi-Markov process is absorbed
// there (Figure 3's sparsity). The final sojourn of a window that never
// fails is right-censored: the state was still occupied when the window
// ended.
func ExtractSojourns(samples []trace.Sample, cfg Config, period time.Duration) []Sojourn {
	states := Classify(samples, cfg, period)
	var out []Sojourn
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		out = append(out, Sojourn{State: states[i], Units: j - i})
		if states[i].Failure() {
			break
		}
		i = j
	}
	return out
}

// ExtractTrajectories splits the classified window into semi-Markov
// trajectories for parameter estimation. A guest job is absorbed by the
// first failure, but the MACHINE recovers and keeps generating statistics:
// each failure ends one trajectory (contributing its transition) and the
// next recoverable samples start a fresh one. This harvests every
// unavailability occurrence in the window for Q and H, which is what makes
// the estimates robust — an injected noise event is one more observation
// among many, not the sole fate of its window (Section 7.3).
func ExtractTrajectories(samples []trace.Sample, cfg Config, period time.Duration) [][]Sojourn {
	return AppendTrajectories(nil, samples, cfg, period)
}

// AppendTrajectories is ExtractTrajectories appending into a caller-supplied
// outer buffer, so loops that harvest trajectories from many history windows
// reuse one backing array for the sequence list instead of growing a fresh
// one per window.
func AppendTrajectories(dst [][]Sojourn, samples []trace.Sample, cfg Config, period time.Duration) [][]Sojourn {
	states := Classify(samples, cfg, period)
	return appendTrajectoriesFromStates(dst, states)
}

// appendTrajectoriesFromStates splits a classified window into trajectories
// (see ExtractTrajectories) and appends them to dst.
func appendTrajectoriesFromStates(dst [][]Sojourn, states []State) [][]Sojourn {
	var cur []Sojourn
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		st := states[i]
		if st.Failure() {
			if len(cur) > 0 {
				// The failure run (possibly spanning multiple failure
				// states) ends the current trajectory with a single
				// absorbing sojourn.
				k := j
				for k < len(states) && states[k].Failure() {
					k++
				}
				cur = append(cur, Sojourn{State: st, Units: k - i})
				dst = append(dst, cur)
				cur = nil
				i = k
				continue
			}
			// Failure with no preceding recoverable sojourn (window
			// starts failed): skip it.
			i = j
			continue
		}
		cur = append(cur, Sojourn{State: st, Units: j - i})
		i = j
	}
	if len(cur) > 0 {
		dst = append(dst, cur)
	}
	return dst
}

// WindowSurvives reports whether a guest job running throughout the window
// would never encounter a failure state — the event whose probability is the
// temporal reliability TR.
func WindowSurvives(samples []trace.Sample, cfg Config, period time.Duration) bool {
	for _, s := range ExtractSojourns(samples, cfg, period) {
		if s.State.Failure() {
			return false
		}
	}
	return true
}

// InitialState returns the availability state at the start of the window.
// The boolean reports whether the state is recoverable, i.e. whether a guest
// job could be started at all.
func InitialState(samples []trace.Sample, cfg Config, period time.Duration) (State, bool) {
	if len(samples) == 0 {
		return S1, true
	}
	states := Classify(samples, cfg, period)
	return states[0], states[0].Recoverable()
}

// Event is one occurrence of resource unavailability in a day: the data
// recorded by the testbed monitoring of Section 6.1 (start, end, failure
// state).
type Event struct {
	State State
	// Start and End are offsets from midnight.
	Start, End time.Duration
}

// Events scans a full day and returns every entry into a failure state from
// a recoverable state — the "occurrences of unavailability" whose per-machine
// counts (405-453 over three months) motivate the paper's prediction work.
// Unlike ExtractSojourns, scanning continues after failures: the machine
// recovers even though any individual guest job would not.
func Events(day *trace.Day, cfg Config) []Event {
	states := Classify(day.Samples, cfg, day.Period)
	var out []Event
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		if states[i].Failure() && (i == 0 || states[i-1].Recoverable()) {
			// Merge the consecutive failure-state run(s) into one event
			// spanning until the next recoverable sample.
			k := j
			for k < len(states) && states[k].Failure() {
				k++
			}
			out = append(out, Event{
				State: states[i],
				Start: time.Duration(i) * day.Period,
				End:   time.Duration(k) * day.Period,
			})
			i = k
			continue
		}
		i = j
	}
	return out
}

// CountEvents returns the number of unavailability occurrences in a day.
func CountEvents(day *trace.Day, cfg Config) int { return len(Events(day, cfg)) }
