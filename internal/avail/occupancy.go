package avail

import (
	"time"

	"fgcs/internal/trace"
)

// Occupancy is the fraction of time spent in each availability state
// (indexed by State-1). The recoverable share Occupancy[S1-1]+Occupancy[S2-1]
// is the machine's effective capacity for guest jobs — the quantity earlier
// CPU-availability studies measured without the state structure.
type Occupancy [NumStates]float64

// Recoverable returns the fraction of time a guest job could run.
func (o Occupancy) Recoverable() float64 { return o[S1-1] + o[S2-1] }

// Of returns the fraction for a state.
func (o Occupancy) Of(s State) float64 {
	if s < S1 || s > S5 {
		return 0
	}
	return o[s-1]
}

// StateOccupancy classifies the samples and returns the time fraction per
// state. An empty input returns the zero Occupancy.
func StateOccupancy(samples []trace.Sample, cfg Config, period time.Duration) Occupancy {
	var o Occupancy
	states := Classify(samples, cfg, period)
	if len(states) == 0 {
		return o
	}
	for _, s := range states {
		o[s-1]++
	}
	inv := 1 / float64(len(states))
	for i := range o {
		o[i] *= inv
	}
	return o
}

// HourlyOccupancy computes per-clock-hour occupancies over a set of days —
// the diurnal availability profile the SMP's same-clock-window pooling
// exploits.
func HourlyOccupancy(days []*trace.Day, cfg Config) [24]Occupancy {
	var out [24]Occupancy
	var counts [24]float64
	for _, d := range days {
		for h := 0; h < 24; h++ {
			w := d.Window(time.Duration(h)*time.Hour, time.Hour)
			if len(w) == 0 {
				continue
			}
			o := StateOccupancy(w, cfg, d.Period)
			for i := range o {
				out[h][i] += o[i]
			}
			counts[h]++
		}
	}
	for h := 0; h < 24; h++ {
		if counts[h] > 0 {
			for i := range out[h] {
				out[h][i] /= counts[h]
			}
		}
	}
	return out
}
