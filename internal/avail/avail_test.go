package avail

import (
	"testing"
	"testing/quick"
	"time"

	"fgcs/internal/rng"
	"fgcs/internal/trace"
)

var monday = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

const period = trace.DefaultPeriod // 6 s

// mk builds a sample series from (cpu, mem, up) triples.
func mk(cpu []float64, memMB float64, up bool) []trace.Sample {
	out := make([]trace.Sample, len(cpu))
	for i, c := range cpu {
		out[i] = trace.Sample{CPU: c, FreeMemMB: memMB, Up: up}
	}
	return out
}

func rep(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestStateStringAndPredicates(t *testing.T) {
	cases := []struct {
		s    State
		name string
		fail bool
	}{
		{S1, "S1", false}, {S2, "S2", false}, {S3, "S3", true}, {S4, "S4", true}, {S5, "S5", true},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String(%d) = %q", c.s, c.s.String())
		}
		if c.s.Failure() != c.fail {
			t.Errorf("%v.Failure() = %v", c.s, c.s.Failure())
		}
		if c.s.Recoverable() == c.fail {
			t.Errorf("%v.Recoverable() = %v", c.s, c.s.Recoverable())
		}
	}
	if State(0).String() != "State(0)" {
		t.Error("unknown state string wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Th1: 60, Th2: 20, SuspendLimit: time.Minute},
		{Th1: -5, Th2: 50, SuspendLimit: time.Minute},
		{Th1: 20, Th2: 120, SuspendLimit: time.Minute},
		{Th1: 20, Th2: 60, SuspendLimit: 0},
		{Th1: 20, Th2: 60, SuspendLimit: time.Minute, GuestMemMB: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClassifyBasicLevels(t *testing.T) {
	cfg := DefaultConfig()
	samples := []trace.Sample{
		{CPU: 5, FreeMemMB: 300, Up: true},   // S1
		{CPU: 20, FreeMemMB: 300, Up: true},  // S2 (Th1 inclusive)
		{CPU: 60, FreeMemMB: 300, Up: true},  // S2 (Th2 inclusive)
		{CPU: 45, FreeMemMB: 50, Up: true},   // S4: below guest WS of 100 MB
		{CPU: 45, FreeMemMB: 300, Up: false}, // S5
	}
	got := Classify(samples, cfg, period)
	want := []State{S1, S2, S2, S4, S5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClassifyTransientExcursionStaysRecoverable(t *testing.T) {
	cfg := DefaultConfig()
	// 5 samples of low load, 5 samples (30 s < 1 min) above Th2, 5 low.
	cpu := append(append(rep(10, 5), rep(90, 5)...), rep(10, 5)...)
	states := Classify(mk(cpu, 300, true), cfg, period)
	for i, s := range states {
		if s != S1 {
			t.Fatalf("sample %d = %v, want S1 (transient excursion must not fail)", i, s)
		}
	}
}

func TestClassifyTransientInheritsS2(t *testing.T) {
	cfg := DefaultConfig()
	cpu := append(append(rep(40, 5), rep(90, 5)...), rep(40, 5)...)
	states := Classify(mk(cpu, 300, true), cfg, period)
	for i, s := range states {
		if s != S2 {
			t.Fatalf("sample %d = %v, want S2", i, s)
		}
	}
}

func TestClassifySustainedHighIsS3(t *testing.T) {
	cfg := DefaultConfig()
	// 10 samples (60 s = limit) above Th2 → S3 from the start of the run.
	cpu := append(rep(10, 5), rep(90, 10)...)
	states := Classify(mk(cpu, 300, true), cfg, period)
	for i := 0; i < 5; i++ {
		if states[i] != S1 {
			t.Fatalf("sample %d = %v, want S1", i, states[i])
		}
	}
	for i := 5; i < 15; i++ {
		if states[i] != S3 {
			t.Fatalf("sample %d = %v, want S3", i, states[i])
		}
	}
}

func TestClassifyLeadingTransientUsesFollowingState(t *testing.T) {
	cfg := DefaultConfig()
	cpu := append(rep(90, 3), rep(10, 5)...) // transient at window start, then S1
	states := Classify(mk(cpu, 300, true), cfg, period)
	if states[0] != S1 {
		t.Fatalf("leading transient = %v, want S1 (from following state)", states[0])
	}
	// With nothing recoverable around, fall back to S2.
	states = Classify(mk(rep(90, 3), 300, true), cfg, period)
	if states[0] != S2 {
		t.Fatalf("isolated transient = %v, want S2", states[0])
	}
}

func TestClassifyTransientBetweenFailures(t *testing.T) {
	cfg := DefaultConfig()
	// Down, short high excursion, down: neighbors are failures, so the
	// excursion must fall back to S2, not inherit S5.
	samples := mk(rep(90, 3), 300, true)
	down := trace.Sample{CPU: 0, FreeMemMB: 300, Up: false}
	seq := append([]trace.Sample{down}, samples...)
	seq = append(seq, down)
	states := Classify(seq, cfg, period)
	if states[0] != S5 || states[len(states)-1] != S5 {
		t.Fatal("down samples misclassified")
	}
	for i := 1; i < len(states)-1; i++ {
		if states[i] != S2 {
			t.Fatalf("excursion sample %d = %v, want S2", i, states[i])
		}
	}
}

func TestClassifyEmpty(t *testing.T) {
	if got := Classify(nil, DefaultConfig(), period); len(got) != 0 {
		t.Fatal("non-empty result for empty input")
	}
}

func TestSuspendUnitsRoundsUp(t *testing.T) {
	cfg := DefaultConfig() // 1 min
	if u := cfg.SuspendUnits(7 * time.Second); u != 9 {
		t.Fatalf("suspendUnits(7s) = %d, want 9 (ceil 60/7)", u)
	}
	if u := cfg.SuspendUnits(time.Minute); u != 1 {
		t.Fatalf("suspendUnits(1m) = %d, want 1", u)
	}
}

func TestExtractSojournsAbsorbsAtFirstFailure(t *testing.T) {
	cfg := DefaultConfig()
	cpu := append(append(rep(10, 5), rep(40, 3)...), rep(90, 15)...)
	cpu = append(cpu, rep(10, 7)...) // recovery after failure must be ignored
	sojs := ExtractSojourns(mk(cpu, 300, true), cfg, period)
	if len(sojs) != 3 {
		t.Fatalf("sojourns = %v", sojs)
	}
	want := []Sojourn{{S1, 5}, {S2, 3}, {S3, 15}}
	for i := range want {
		if sojs[i] != want[i] {
			t.Fatalf("sojourn %d = %v, want %v", i, sojs[i], want[i])
		}
	}
	if sojs[2].Duration(period) != 90*time.Second {
		t.Fatalf("Duration = %v", sojs[2].Duration(period))
	}
}

func TestWindowSurvives(t *testing.T) {
	cfg := DefaultConfig()
	if !WindowSurvives(mk(rep(10, 100), 300, true), cfg, period) {
		t.Fatal("idle window should survive")
	}
	cpu := append(rep(10, 5), rep(90, 20)...)
	if WindowSurvives(mk(cpu, 300, true), cfg, period) {
		t.Fatal("sustained overload should fail")
	}
	samples := mk(rep(10, 5), 300, true)
	samples[2].Up = false
	if WindowSurvives(samples, cfg, period) {
		t.Fatal("URR should fail")
	}
}

func TestInitialState(t *testing.T) {
	cfg := DefaultConfig()
	st, ok := InitialState(mk(rep(10, 5), 300, true), cfg, period)
	if st != S1 || !ok {
		t.Fatalf("InitialState = %v %v", st, ok)
	}
	st, ok = InitialState(mk(rep(40, 5), 300, true), cfg, period)
	if st != S2 || !ok {
		t.Fatalf("InitialState = %v %v", st, ok)
	}
	st, ok = InitialState(mk(rep(90, 20), 300, true), cfg, period)
	if st != S3 || ok {
		t.Fatalf("InitialState = %v %v", st, ok)
	}
	st, ok = InitialState(nil, cfg, period)
	if st != S1 || !ok {
		t.Fatalf("InitialState(empty) = %v %v", st, ok)
	}
}

func TestEventsCountsAndMerges(t *testing.T) {
	cfg := DefaultConfig()
	d := trace.NewDay(monday, period)
	for i := range d.Samples {
		d.Samples[i].CPU = 10
		d.Samples[i].FreeMemMB = 300
	}
	// Event 1: sustained CPU overload (S3) at 02:00 for 5 minutes.
	lo := d.IndexAt(2 * time.Hour)
	for i := lo; i < lo+50; i++ {
		d.Samples[i].CPU = 95
	}
	// Event 2: reboot (S5) at 10:00 directly followed by memory pressure
	// (S4) — must merge into ONE unavailability occurrence.
	lo = d.IndexAt(10 * time.Hour)
	for i := lo; i < lo+30; i++ {
		d.Samples[i].Up = false
	}
	for i := lo + 30; i < lo+60; i++ {
		d.Samples[i].FreeMemMB = 10
	}
	events := Events(d, cfg)
	if len(events) != 2 {
		t.Fatalf("events = %d (%v), want 2", len(events), events)
	}
	if events[0].State != S3 {
		t.Fatalf("event 0 state = %v", events[0].State)
	}
	if events[0].Start != 2*time.Hour {
		t.Fatalf("event 0 start = %v", events[0].Start)
	}
	if events[0].End-events[0].Start != 5*time.Minute {
		t.Fatalf("event 0 length = %v", events[0].End-events[0].Start)
	}
	if events[1].State != S5 {
		t.Fatalf("event 1 state = %v (first failure state of the merged run)", events[1].State)
	}
	if CountEvents(d, cfg) != 2 {
		t.Fatal("CountEvents mismatch")
	}
}

func TestEventsTransientNotCounted(t *testing.T) {
	cfg := DefaultConfig()
	d := trace.NewDay(monday, period)
	for i := range d.Samples {
		d.Samples[i].CPU = 10
		d.Samples[i].FreeMemMB = 300
	}
	lo := d.IndexAt(14 * time.Hour)
	for i := lo; i < lo+5; i++ { // 30 s < 1 min: transient
		d.Samples[i].CPU = 99
	}
	if n := CountEvents(d, cfg); n != 0 {
		t.Fatalf("transient excursion counted as %d events", n)
	}
}

// Property: classification conserves length, sojourn units sum to the window
// length up to absorption, and transient excursions never yield S3.
func TestClassifyProperties(t *testing.T) {
	cfg := DefaultConfig()
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(400)
		samples := make([]trace.Sample, n)
		for i := range samples {
			samples[i] = trace.Sample{
				CPU:       r.Uniform(0, 100),
				FreeMemMB: r.Uniform(0, 400),
				Up:        r.Bool(0.97),
			}
		}
		states := Classify(samples, cfg, period)
		if len(states) != n {
			return false
		}
		for _, s := range states {
			if s < S1 || s > S5 {
				return false
			}
		}
		sojs := ExtractSojourns(samples, cfg, period)
		total := 0
		for i, s := range sojs {
			if s.Units <= 0 {
				return false
			}
			total += s.Units
			if s.State.Failure() && i != len(sojs)-1 {
				return false // failure must be terminal
			}
			if i > 0 && sojs[i-1].State == s.State {
				return false // consecutive sojourns must differ
			}
		}
		if len(sojs) > 0 && sojs[len(sojs)-1].State.Failure() {
			if total > n {
				return false
			}
		} else if total != n {
			return false
		}
		// Survival consistency.
		failed := len(sojs) > 0 && sojs[len(sojs)-1].State.Failure()
		return WindowSurvives(samples, cfg, period) == !failed
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: short high-CPU runs never produce S3; runs at or past the limit
// always do.
func TestTransientRuleProperty(t *testing.T) {
	cfg := DefaultConfig()
	limit := cfg.SuspendUnits(period)
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		runLen := 1 + r.Intn(2*limit)
		cpu := append(rep(10, 3), rep(95, runLen)...)
		cpu = append(cpu, rep(10, 3)...)
		states := Classify(mk(cpu, 300, true), cfg, period)
		hasS3 := false
		for _, s := range states {
			if s == S3 {
				hasS3 = true
			}
		}
		return hasS3 == (runLen >= limit)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtractTrajectoriesRestartsAfterFailure(t *testing.T) {
	cfg := DefaultConfig()
	// S1(5) -> S3(15) -> S1(4) -> S2(3) -> [end]
	cpu := append(append(append(rep(10, 5), rep(90, 15)...), rep(10, 4)...), rep(40, 3)...)
	trajs := ExtractTrajectories(mk(cpu, 300, true), cfg, period)
	if len(trajs) != 2 {
		t.Fatalf("trajectories = %d (%v), want 2", len(trajs), trajs)
	}
	want0 := []Sojourn{{S1, 5}, {S3, 15}}
	for i, w := range want0 {
		if trajs[0][i] != w {
			t.Fatalf("traj 0 sojourn %d = %v, want %v", i, trajs[0][i], w)
		}
	}
	want1 := []Sojourn{{S1, 4}, {S2, 3}}
	for i, w := range want1 {
		if trajs[1][i] != w {
			t.Fatalf("traj 1 sojourn %d = %v, want %v", i, trajs[1][i], w)
		}
	}
}

func TestExtractTrajectoriesMergesConsecutiveFailures(t *testing.T) {
	cfg := DefaultConfig()
	// S1, then S3 directly followed by S5: one absorbing sojourn spanning
	// both failure runs.
	samples := mk(append(rep(10, 5), rep(90, 12)...), 300, true)
	down := mk(rep(0, 7), 300, false)
	samples = append(samples, down...)
	trajs := ExtractTrajectories(samples, cfg, period)
	if len(trajs) != 1 {
		t.Fatalf("trajectories = %d, want 1", len(trajs))
	}
	last := trajs[0][len(trajs[0])-1]
	if last.State != S3 || last.Units != 19 {
		t.Fatalf("absorbing sojourn = %v, want S3 spanning 19 units", last)
	}
}

func TestExtractTrajectoriesWindowStartsFailed(t *testing.T) {
	cfg := DefaultConfig()
	// Down at the start, then recoverable: the leading failure has no
	// preceding trajectory and must be dropped.
	samples := mk(rep(0, 6), 300, false)
	samples = append(samples, mk(rep(10, 8), 300, true)...)
	trajs := ExtractTrajectories(samples, cfg, period)
	if len(trajs) != 1 {
		t.Fatalf("trajectories = %d, want 1", len(trajs))
	}
	if trajs[0][0].State != S1 || trajs[0][0].Units != 8 {
		t.Fatalf("trajectory = %v", trajs[0])
	}
}

func TestExtractTrajectoriesEmptyAndAllFailed(t *testing.T) {
	cfg := DefaultConfig()
	if trajs := ExtractTrajectories(nil, cfg, period); len(trajs) != 0 {
		t.Fatal("empty input produced trajectories")
	}
	if trajs := ExtractTrajectories(mk(rep(0, 10), 300, false), cfg, period); len(trajs) != 0 {
		t.Fatal("all-down window produced trajectories")
	}
}

// Property: trajectory units are conserved — the sum over all trajectories
// plus skipped leading/post-failure failure runs equals the window length,
// and within a trajectory only the last sojourn may be a failure.
func TestExtractTrajectoriesProperty(t *testing.T) {
	cfg := DefaultConfig()
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		samples := make([]trace.Sample, n)
		for i := range samples {
			samples[i] = trace.Sample{
				CPU:       r.Uniform(0, 100),
				FreeMemMB: r.Uniform(0, 400),
				Up:        r.Bool(0.9),
			}
		}
		total := 0
		for _, traj := range ExtractTrajectories(samples, cfg, period) {
			if len(traj) == 0 {
				return false
			}
			for i, s := range traj {
				if s.Units <= 0 {
					return false
				}
				total += s.Units
				if s.State.Failure() && i != len(traj)-1 {
					return false
				}
				if i > 0 && traj[i-1].State == s.State {
					return false
				}
			}
		}
		return total <= n
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSuspendUnitsPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DefaultConfig().SuspendUnits(0)
}

func TestStateOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	samples := append(mk(rep(10, 6), 300, true), mk(rep(40, 3), 300, true)...)
	samples = append(samples, trace.Sample{CPU: 10, FreeMemMB: 300, Up: false})
	o := StateOccupancy(samples, cfg, period)
	near := func(a, b float64) bool { return a > b-1e-9 && a < b+1e-9 }
	if !near(o.Of(S1), 0.6) || !near(o.Of(S2), 0.3) || !near(o.Of(S5), 0.1) {
		t.Fatalf("occupancy = %+v", o)
	}
	if got := o.Recoverable(); !near(got, 0.9) {
		t.Fatalf("Recoverable = %v", got)
	}
	if o.Of(State(0)) != 0 || o.Of(State(9)) != 0 {
		t.Fatal("out-of-range state must be 0")
	}
	var zero Occupancy
	if StateOccupancy(nil, cfg, period) != zero {
		t.Fatal("empty input occupancy not zero")
	}
}

func TestStateOccupancySumsToOne(t *testing.T) {
	cfg := DefaultConfig()
	r := rng.New(9)
	samples := make([]trace.Sample, 500)
	for i := range samples {
		samples[i] = trace.Sample{CPU: r.Uniform(0, 100), FreeMemMB: r.Uniform(0, 400), Up: r.Bool(0.9)}
	}
	o := StateOccupancy(samples, cfg, period)
	sum := 0.0
	for _, f := range o {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("occupancy sum = %v", sum)
	}
}

func TestHourlyOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	d := trace.NewDay(monday, period)
	for i := range d.Samples {
		d.Samples[i] = trace.Sample{CPU: 5, FreeMemMB: 300, Up: true}
	}
	// Hour 14 is fully loaded (S2 band).
	lo, hi := d.IndexAt(14*time.Hour), d.IndexAt(15*time.Hour)
	for i := lo; i < hi; i++ {
		d.Samples[i].CPU = 40
	}
	hours := HourlyOccupancy([]*trace.Day{d, d.Clone()}, cfg)
	if hours[14].Of(S2) != 1 {
		t.Fatalf("hour 14 = %+v", hours[14])
	}
	if hours[3].Of(S1) != 1 {
		t.Fatalf("hour 3 = %+v", hours[3])
	}
}
