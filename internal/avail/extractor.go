package avail

import (
	"time"

	"fgcs/internal/trace"
)

// Extractor accumulates semi-Markov training sequences from a series of
// history windows using reusable buffers: the classification scratch, a flat
// sojourn arena, and the sequence list are all retained across Reset calls,
// so a long-lived extractor (e.g. one held in a prediction engine's
// sync.Pool) performs no per-query allocations at steady state. Each window
// is classified exactly once; the initial state needed for the empirical
// initial-state distribution falls out of the same pass instead of a second
// classification.
//
// The zero value is not usable; call NewExtractor or Reset first. Extractors
// are not safe for concurrent use.
type Extractor struct {
	cfg    Config
	period time.Duration
	states []State     // classification scratch, reused per window
	arena  []Sojourn   // flat storage for all sojourns of all sequences
	spans  [][2]int    // [start, end) arena ranges, one per sequence
	seqs   [][]Sojourn // materialized views into arena (built by Seqs)
}

// NewExtractor returns an extractor for the given model configuration and
// sampling period.
func NewExtractor(cfg Config, period time.Duration) *Extractor {
	e := &Extractor{}
	e.Reset(cfg, period)
	return e
}

// Reset discards accumulated sequences (keeping buffer capacity) and
// reconfigures the extractor.
func (e *Extractor) Reset(cfg Config, period time.Duration) {
	e.cfg = cfg
	e.period = period
	e.arena = e.arena[:0]
	e.spans = e.spans[:0]
	e.seqs = e.seqs[:0]
}

// AddWindow classifies one history window and appends its training
// sequences to the accumulated set: every restart trajectory when absorb is
// false (EstimateRestart semantics — see ExtractTrajectories), or the single
// absorbed sojourn sequence when absorb is true (ExtractSojourns semantics).
// It returns the window's initial availability state and whether that state
// is recoverable. Empty windows contribute nothing and report an
// unrecoverable start.
func (e *Extractor) AddWindow(samples []trace.Sample, absorb bool) (State, bool) {
	if len(samples) == 0 {
		return S1, false
	}
	e.states = ClassifyInto(e.states, samples, e.cfg, e.period)
	states := e.states
	if absorb {
		start := len(e.arena)
		for i := 0; i < len(states); {
			j := i
			for j < len(states) && states[j] == states[i] {
				j++
			}
			e.arena = append(e.arena, Sojourn{State: states[i], Units: j - i})
			if states[i].Failure() {
				break
			}
			i = j
		}
		e.spans = append(e.spans, [2]int{start, len(e.arena)})
		return states[0], states[0].Recoverable()
	}
	curStart := -1
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		st := states[i]
		if st.Failure() {
			if curStart >= 0 {
				// The failure run (possibly spanning multiple failure
				// states) ends the current trajectory with a single
				// absorbing sojourn.
				k := j
				for k < len(states) && states[k].Failure() {
					k++
				}
				e.arena = append(e.arena, Sojourn{State: st, Units: k - i})
				e.spans = append(e.spans, [2]int{curStart, len(e.arena)})
				curStart = -1
				i = k
				continue
			}
			// Failure with no preceding recoverable sojourn: skip it.
			i = j
			continue
		}
		if curStart < 0 {
			curStart = len(e.arena)
		}
		e.arena = append(e.arena, Sojourn{State: st, Units: j - i})
		i = j
	}
	if curStart >= 0 {
		e.spans = append(e.spans, [2]int{curStart, len(e.arena)})
	}
	return states[0], states[0].Recoverable()
}

// Seqs materializes the accumulated sequences. The returned slices alias the
// extractor's arena and stay valid until the next Reset; callers must not
// retain them past that.
func (e *Extractor) Seqs() [][]Sojourn {
	e.seqs = e.seqs[:0]
	for _, sp := range e.spans {
		e.seqs = append(e.seqs, e.arena[sp[0]:sp[1]:sp[1]])
	}
	return e.seqs
}
