package faultnet

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections on ln and echoes everything back.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
}

func TestDialRefusalDeterminism(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	outcomes := func(seed uint64) []bool {
		n := New(seed, Config{DialFailProb: 0.5})
		var out []bool
		for i := 0; i < 40; i++ {
			c, err := n.DialTimeout("tcp", addr, time.Second)
			out = append(out, err == nil)
			if c != nil {
				c.Close()
			}
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dial %d: outcome differs across runs with same seed", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("dial failures = %d/%d, want a mix at p=0.5", fails, len(a))
	}
	// A different seed yields a different schedule.
	c := outcomes(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical dial schedules")
	}
}

func TestTraceByteDeterminism(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	run := func() string {
		n := New(42, Config{DialFailProb: 0.3, ResetProb: 0.2, CorruptProb: 0.2, PartialWriteProb: 0.1})
		for i := 0; i < 30; i++ {
			c, err := n.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				continue
			}
			_, _ = c.Write([]byte("ping ping ping ping\n"))
			buf := make([]byte, 64)
			_, _ = c.Read(buf)
			c.Close()
		}
		n.Partition(addr)
		_, _ = n.DialTimeout("tcp", addr, time.Second)
		n.Heal(addr)
		return strings.Join(n.Trace(), "\n")
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("traces differ across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestPartition(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	n := New(1, Config{})
	c, err := n.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	n.Partition(addr)
	if !n.Partitioned(addr) {
		t.Fatal("Partitioned = false after Partition")
	}
	if _, err := n.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial to partitioned peer succeeded")
	} else {
		var inj *ErrInjected
		if !errors.As(err, &inj) || inj.Why != "partitioned" {
			t.Fatalf("err = %v, want injected partition", err)
		}
	}
	n.Heal(addr)
	c, err = n.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
	if n.DialFailures() != 1 {
		t.Fatalf("DialFailures = %d, want 1", n.DialFailures())
	}
}

func TestMidStreamReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	// ResetProb 1: every connection is planned to reset on read or write.
	n := New(3, Config{ResetProb: 1, MaxFaultOffset: 8})
	sawErr := false
	for i := 0; i < 10; i++ {
		c, err := n.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("0123456789abcdef0123456789abcdef\n")
		if _, err := c.Write(msg); err != nil {
			sawErr = true
			c.Close()
			continue
		}
		buf := make([]byte, len(msg)*2)
		for {
			if _, err := c.Read(buf); err != nil {
				if !errors.Is(err, io.EOF) {
					sawErr = true
				}
				break
			}
		}
		c.Close()
	}
	if !sawErr {
		t.Fatal("no mid-stream reset surfaced with ResetProb=1")
	}
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	n := New(11, Config{CorruptProb: 1, MaxFaultOffset: 16})
	c, err := n.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("abcdefghijklmnopqrstuvwxyz")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if got[i] != msg[i] {
			diff++
			if got[i] != msg[i]^0xFF {
				t.Fatalf("byte %d corrupted to %x, want %x", i, got[i], msg[i]^0xFF)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted bytes = %d, want exactly 1", diff)
	}
}

func TestListenerSideFaults(t *testing.T) {
	n := New(5, Config{ResetProb: 1, MaxFaultOffset: 4})
	ln, err := n.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	sawErr := false
	for i := 0; i < 10 && !sawErr; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte("0123456789abcdef\n")
		_, _ = c.Write(msg)
		buf := make([]byte, 64)
		if _, err := c.Read(buf); err != nil && !errors.Is(err, io.EOF) {
			sawErr = true
		}
		// A server-side reset can also surface as EOF or a write error on
		// the client; either way the echo must be cut short.
		if err == nil {
			c.Close()
		}
	}
	if !sawErr {
		t.Skip("server-side resets surfaced as EOF only on this platform")
	}
}

func TestDialLatency(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	n := New(9, Config{DialLatency: 20 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 5; i++ {
		c, err := n.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if time.Since(start) == 0 {
		t.Fatal("no latency injected")
	}
}

func TestPeerConfigOverride(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()
	n := New(2, Config{DialFailProb: 1})
	n.SetPeerConfig(addr, Config{}) // this peer is exempt
	c, err := n.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("exempt peer dial failed: %v", err)
	}
	c.Close()
}
