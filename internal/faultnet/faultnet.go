// Package faultnet injects reproducible network faults underneath the
// iShare control plane. The paper's premise is that FGCS resources fail
// constantly; this package makes the *network* fail just as deterministically
// so the runtime's retry, circuit-breaker and liveness machinery can be
// driven through every failure mode in tests.
//
// A Network wraps dialing and listening. Every fault decision is drawn from
// a seeded, splittable RNG stream keyed by (peer address, operation index),
// so a test that performs the same sequence of operations observes the same
// faults on every run — the decision trace is byte-identical for a fixed
// seed. Per-connection faults (mid-stream resets, corruption, partial
// writes) are planned once at connection establishment and trigger at fixed
// *byte offsets*, which makes them independent of how the kernel chunks
// reads and writes.
//
// Supported fault modes:
//
//   - dial refusal (connection refused) with probability DialFailProb
//   - injected dial latency, uniform in [0, DialLatency)
//   - mid-stream connection reset after a planned number of bytes read
//     or written (ResetProb)
//   - partial write: a write delivers only a prefix and then errors
//     (PartialWriteProb)
//   - byte corruption: one read byte is flipped at a planned offset
//     (CorruptProb)
//   - full per-peer partitions via Partition/Heal: every dial to the peer
//     fails immediately until healed, and established connections to the
//     peer are severed — so pooled, long-lived connections observe the
//     partition too, not just fresh dials
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"fgcs/internal/rng"
)

// Config sets fault probabilities. All probabilities are in [0, 1]; the zero
// value injects nothing and passes traffic through untouched.
type Config struct {
	// DialFailProb is the probability a dial attempt is refused outright.
	DialFailProb float64
	// DialLatency, when positive, delays each successful dial by a
	// uniform duration in [0, DialLatency).
	DialLatency time.Duration
	// ResetProb is the probability an established connection is reset
	// mid-stream after a planned byte offset (read or write side, chosen
	// per connection).
	ResetProb float64
	// PartialWriteProb is the probability a connection delivers only a
	// prefix of one write and then fails.
	PartialWriteProb float64
	// CorruptProb is the probability one byte read from the connection is
	// flipped at a planned offset.
	CorruptProb float64
	// MaxFaultOffset bounds the planned byte offset for mid-stream faults
	// (default 128; iShare messages are short JSON lines).
	MaxFaultOffset int
}

func (c Config) maxOffset() int {
	if c.MaxFaultOffset <= 0 {
		return 128
	}
	return c.MaxFaultOffset
}

// ErrInjected marks every error produced by fault injection, so tests and
// retry layers can tell injected faults from real network trouble.
type ErrInjected struct {
	Op   string // "dial", "read", "write"
	Addr string
	Why  string
}

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("faultnet: injected %s fault to %s: %s", e.Op, e.Addr, e.Why)
}

// Timeout reports false; injected faults are hard failures, not timeouts.
func (e *ErrInjected) Timeout() bool { return false }

// connMode is the planned fate of one connection.
type connMode int

const (
	modeClean connMode = iota
	modeResetRead
	modeResetWrite
	modePartialWrite
	modeCorrupt
)

func (m connMode) String() string {
	switch m {
	case modeClean:
		return "clean"
	case modeResetRead:
		return "reset-read"
	case modeResetWrite:
		return "reset-write"
	case modePartialWrite:
		return "partial-write"
	case modeCorrupt:
		return "corrupt"
	}
	return "?"
}

// Network is a deterministic fault-injecting transport. It is safe for
// concurrent use; determinism of the decision trace additionally requires
// that the operations themselves happen in a deterministic order (e.g. a
// single-threaded client loop).
type Network struct {
	mu          sync.Mutex
	seed        uint64
	cfg         Config
	alias       map[string]string // concrete addr -> logical peer name
	peerCfg     map[string]Config // per-peer overrides
	partitioned map[string]bool
	dialSeq     map[string]uint64 // per-addr dial attempt counter
	acceptSeq   map[string]uint64 // per-listener accept counter
	open        map[*conn]struct{}
	trace       []string
	dialFails   int
}

// New returns a Network seeded for reproducible fault schedules.
func New(seed uint64, cfg Config) *Network {
	return &Network{
		seed:        seed,
		cfg:         cfg,
		alias:       make(map[string]string),
		peerCfg:     make(map[string]Config),
		partitioned: make(map[string]bool),
		dialSeq:     make(map[string]uint64),
		acceptSeq:   make(map[string]uint64),
		open:        make(map[*conn]struct{}),
	}
}

// Alias keys all fault decisions for addr by a stable logical name: RNG
// streams, per-peer overrides, partitions and trace lines use the name
// instead of the concrete address. Tests that listen on ephemeral ports
// alias each address to a fixed name so the fault schedule — and the
// decision trace — is byte-identical across runs regardless of which ports
// the kernel hands out. SetPeerConfig, Partition, Heal and Partitioned then
// take the logical name.
func (n *Network) Alias(addr, name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alias[addr] = name
}

// key resolves a concrete address to its fault-schedule key. Callers hold
// n.mu.
func (n *Network) key(addr string) string {
	if name, ok := n.alias[addr]; ok {
		return name
	}
	return addr
}

// SetPeerConfig overrides the fault profile for one peer address.
func (n *Network) SetPeerConfig(addr string, cfg Config) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peerCfg[n.key(addr)] = cfg
}

// Partition cuts all future dials to addr until Heal and severs every
// established connection to it, so long-lived pooled connections observe
// the partition instead of riding it out.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	key := n.key(addr)
	n.partitioned[key] = true
	n.trace = append(n.trace, fmt.Sprintf("partition %s", key))
	var sever []*conn
	for c := range n.open {
		if c.addr == key {
			sever = append(sever, c)
			delete(n.open, c)
		}
	}
	n.mu.Unlock()
	// Close outside the lock: conn.Close re-enters the network to
	// unregister itself.
	for _, c := range sever {
		_ = c.Conn.Close()
	}
}

// Heal restores dials to addr.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, n.key(addr))
	n.trace = append(n.trace, fmt.Sprintf("heal %s", n.key(addr)))
}

// Partitioned reports whether addr is currently cut off.
func (n *Network) Partitioned(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[n.key(addr)]
}

// Trace returns a copy of the decision log: one line per fault decision, in
// the order the decisions were made. For a fixed seed and a deterministic
// operation sequence the trace is byte-identical across runs.
func (n *Network) Trace() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.trace))
	copy(out, n.trace)
	return out
}

// DialFailures counts injected dial refusals (including partition refusals).
func (n *Network) DialFailures() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dialFails
}

func (n *Network) cfgFor(addr string) Config {
	if c, ok := n.peerCfg[addr]; ok {
		return c
	}
	return n.cfg
}

// planConn draws a connection's fate from its dedicated stream. Callers hold
// n.mu.
func planConn(s *rng.Stream, cfg Config) (connMode, int) {
	u := s.Float64()
	off := s.Intn(cfg.maxOffset()) + 1
	switch {
	case u < cfg.ResetProb/2:
		return modeResetRead, off
	case u < cfg.ResetProb:
		return modeResetWrite, off
	case u < cfg.ResetProb+cfg.PartialWriteProb:
		return modePartialWrite, off
	case u < cfg.ResetProb+cfg.PartialWriteProb+cfg.CorruptProb:
		return modeCorrupt, off
	}
	return modeClean, 0
}

// DialTimeout dials addr through the fault layer. It satisfies the iShare
// transport's Dialer contract.
func (n *Network) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	key := n.key(addr)
	seq := n.dialSeq[key]
	n.dialSeq[key] = seq + 1
	cfg := n.cfgFor(key)
	if n.partitioned[key] {
		n.dialFails++
		n.trace = append(n.trace, fmt.Sprintf("dial %s #%d: partitioned", key, seq))
		n.mu.Unlock()
		return nil, &ErrInjected{Op: "dial", Addr: key, Why: "partitioned"}
	}
	s := rng.New(n.seed).SplitN("dial/"+key, int(seq))
	if cfg.DialFailProb > 0 && s.Float64() < cfg.DialFailProb {
		n.dialFails++
		n.trace = append(n.trace, fmt.Sprintf("dial %s #%d: refused", key, seq))
		n.mu.Unlock()
		return nil, &ErrInjected{Op: "dial", Addr: key, Why: "connection refused"}
	}
	var delay time.Duration
	if cfg.DialLatency > 0 {
		delay = time.Duration(s.Float64() * float64(cfg.DialLatency))
	}
	mode, off := planConn(s.Split("conn"), cfg)
	if mode != modeClean {
		n.trace = append(n.trace, fmt.Sprintf("dial %s #%d: %s@%d", key, seq, mode, off))
	}
	n.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	fc := &conn{Conn: c, net: n, addr: key, mode: mode, offset: off}
	n.register(fc)
	return fc, nil
}

// register tracks an established outbound connection so Partition can sever
// it. A connection dialed to an already-partitioned peer cannot occur (the
// dial fails first).
func (n *Network) register(c *conn) {
	n.mu.Lock()
	n.open[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Network) unregister(c *conn) {
	n.mu.Lock()
	delete(n.open, c)
	n.mu.Unlock()
}

// Listen opens a fault-injecting listener: accepted connections get their
// own planned faults, keyed by the listener address and accept index.
func (n *Network) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return n.WrapListener(ln), nil
}

// WrapListener wraps an existing listener with fault injection on accepted
// connections.
func (n *Network) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

type listener struct {
	net.Listener
	net *Network
}

// Accept plans faults for each inbound connection.
func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.net.mu.Lock()
	key := l.net.key(l.Listener.Addr().String())
	seq := l.net.acceptSeq[key]
	l.net.acceptSeq[key] = seq + 1
	cfg := l.net.cfgFor(key)
	s := rng.New(l.net.seed).SplitN("accept/"+key, int(seq))
	mode, off := planConn(s, cfg)
	if mode != modeClean {
		l.net.trace = append(l.net.trace, fmt.Sprintf("accept %s #%d: %s@%d", key, seq, mode, off))
	}
	l.net.mu.Unlock()
	return &conn{Conn: c, addr: key, mode: mode, offset: off}, nil
}

// conn applies one planned fault to a real connection. Offsets count
// cumulative bytes on the faulted direction, so the trigger point does not
// depend on how the stream is chunked into Read/Write calls.
type conn struct {
	net.Conn
	net    *Network // nil for accepted (inbound) connections
	addr   string
	mode   connMode
	offset int

	mu      sync.Mutex
	read    int
	written int
	done    bool // fault already delivered
}

// Close unregisters the connection from the partition registry before
// closing the underlying socket.
func (c *conn) Close() error {
	if c.net != nil {
		c.net.unregister(c)
	}
	return c.Conn.Close()
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	mode, off, read, done := c.mode, c.offset, c.read, c.done
	c.mu.Unlock()
	if !done && mode == modeResetRead {
		if read >= off {
			c.fire()
			_ = c.Conn.Close()
			return 0, &ErrInjected{Op: "read", Addr: c.addr, Why: "connection reset"}
		}
		// Never deliver bytes past the planned offset: cap this read so
		// the reset fires at exactly off cumulative bytes, regardless of
		// how the kernel chunks the stream.
		if len(p) > off-read {
			p = p[:off-read]
		}
	}
	n, err := c.Conn.Read(p)
	if n > 0 && !done && mode == modeCorrupt && read < off && read+n >= off {
		// Flip the byte at the planned cumulative offset.
		p[off-read-1] ^= 0xFF
		c.fire()
	}
	c.mu.Lock()
	c.read += n
	c.mu.Unlock()
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	mode, off, written, done := c.mode, c.offset, c.written, c.done
	c.mu.Unlock()
	if !done && written+len(p) > off {
		switch mode {
		case modeResetWrite:
			c.fire()
			_ = c.Conn.Close()
			return 0, &ErrInjected{Op: "write", Addr: c.addr, Why: "connection reset"}
		case modePartialWrite:
			k := off - written
			if k < 0 {
				k = 0
			}
			n, _ := c.Conn.Write(p[:k])
			c.fire()
			_ = c.Conn.Close()
			c.mu.Lock()
			c.written += n
			c.mu.Unlock()
			return n, &ErrInjected{Op: "write", Addr: c.addr, Why: "partial write"}
		}
	}
	n, err := c.Conn.Write(p)
	c.mu.Lock()
	c.written += n
	c.mu.Unlock()
	return n, err
}

func (c *conn) fire() {
	c.mu.Lock()
	c.done = true
	c.mu.Unlock()
}
