// Package linalg implements the small dense linear-algebra kernels needed by
// the time-series fitting code (innovations algorithm for MA models,
// Hannan–Rissanen least squares for ARMA models): a dense matrix type,
// LU solve with partial pivoting, and least squares via QR-free normal
// equations with Tikhonov regularization for rank-deficient designs.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols)
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveLU solves A x = b in place using Gaussian elimination with partial
// pivoting. A must be square; A and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("linalg: SolveLU needs a square matrix")
	}
	if len(b) != n {
		return nil, errors.New("linalg: SolveLU rhs dimension mismatch")
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ||A x - b||² via the regularized normal equations
// (AᵀA + λI) x = Aᵀb. The small ridge term λ keeps nearly collinear designs
// (common when fitting ARMA models to low-variance load windows) solvable
// without materially biasing well-conditioned fits.
func LeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("linalg: LeastSquares rhs dimension mismatch")
	}
	if ridge < 0 {
		return nil, errors.New("linalg: negative ridge")
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if row[j] == 0 {
				continue
			}
			atb[j] += row[j] * b[i]
			for k := j; k < n; k++ {
				ata.Data[j*n+k] += row[j] * row[k]
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			ata.Data[k*n+j] = ata.Data[j*n+k]
		}
		ata.Data[j*n+j] += ridge
	}
	return SolveLU(ata, atb)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
