package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"fgcs/internal/rng"
)

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("At/Set round trip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix not zero")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	vals := [][]float64{{1, 2, 3}, {4, 5, 6}}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSolveLUIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	b := []float64{7, 8, 9}
	x, err := SolveLU(m, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("identity solve wrong: %v", x)
		}
	}
}

func TestSolveLUKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := SolveLU(m, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero pivot in position (0,0): requires row exchange.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := SolveLU(m, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution = %v", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := SolveLU(m, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLUDoesNotMutateInputs(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	b := []float64{6, 8}
	if _, err := SolveLU(m, b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 3 || b[0] != 6 {
		t.Fatal("SolveLU mutated its inputs")
	}
}

func TestSolveLUShapeErrors(t *testing.T) {
	if _, err := SolveLU(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := SolveLU(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("rhs mismatch accepted")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: y = 2a + 3b.
	a := NewMatrix(4, 2)
	rows := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	b := make([]float64, 4)
	for i, r := range rows {
		a.Set(i, 0, r[0])
		a.Set(i, 1, r[1])
		b[i] = 2*r[0] + 3*r[1]
	}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("LS solution = %v", x)
	}
}

func TestLeastSquaresRidgeHandlesCollinear(t *testing.T) {
	// Perfectly collinear columns: unsolvable without regularization.
	a := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1))
	}
	b := []float64{2, 4, 6}
	if _, err := LeastSquares(a, b, 0); err == nil {
		t.Fatal("collinear design solved without ridge")
	}
	x, err := LeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// With symmetric ridge the mass splits evenly: x0 ≈ x1 ≈ 1.
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Fatalf("ridge solution = %v", x)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(2, 2), []float64{1}, 0); err == nil {
		t.Fatal("rhs mismatch accepted")
	}
	if _, err := LeastSquares(NewMatrix(2, 2), []float64{1, 2}, -1); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: SolveLU(A, A·x) recovers x for random well-conditioned systems.
func TestSolveLURoundTripProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Uniform(-1, 1))
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Uniform(-10, 10)
		}
		b, err := a.MulVec(x)
		if err != nil {
			return false
		}
		got, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
