package workload

import (
	"math"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
)

// smallParams keeps unit tests fast: one machine, two weeks.
func smallParams() Params {
	p := DefaultParams()
	p.Machines = 1
	p.Days = 14
	return p
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := []func(*Params){
		func(p *Params) { p.Machines = 0 },
		func(p *Params) { p.Days = 0 },
		func(p *Params) { p.Period = 0 },
		func(p *Params) { p.TotalMemMB = 0 },
		func(p *Params) { p.ActivityScale = 0 },
		func(p *Params) { p.RebootProb = -0.1 },
		func(p *Params) { p.RebootProb = 1.5 },
		func(p *Params) { p.DailyFailureProb = 2 },
	}
	for i, f := range mutate {
		p := DefaultParams()
		f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: Generate accepted invalid params", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := smallParams()
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for di := range a.Machines[0].Days {
		da, db := a.Machines[0].Days[di], b.Machines[0].Days[di]
		for i := range da.Samples {
			if da.Samples[i] != db.Samples[i] {
				t.Fatalf("day %d sample %d differs between identical seeds", di, i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p := smallParams()
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	same := 0
	da, db := a.Machines[0].Days[0], b.Machines[0].Days[0]
	for i := range da.Samples {
		if da.Samples[i] == db.Samples[i] {
			same++
		}
	}
	if same == len(da.Samples) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestSampleValidity(t *testing.T) {
	p := smallParams()
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds.Machines[0].Days {
		if d.Len() != int(24*time.Hour/p.Period) {
			t.Fatalf("day has %d samples", d.Len())
		}
		for i, s := range d.Samples {
			if s.CPU < 0 || s.CPU > 100 {
				t.Fatalf("sample %d CPU = %v", i, s.CPU)
			}
			if s.FreeMemMB < 0 || s.FreeMemMB > p.TotalMemMB {
				t.Fatalf("sample %d free mem = %v", i, s.FreeMemMB)
			}
			if !s.Up && (s.CPU != 0 || s.FreeMemMB != 0) {
				t.Fatalf("down sample %d carries load data", i)
			}
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	p := smallParams()
	p.Days = 28
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Machines[0]
	var busy, idle []float64
	for _, d := range m.DaysOfType(trace.Weekday) {
		for _, s := range d.Window(10*time.Hour, 6*time.Hour) {
			if s.Up {
				busy = append(busy, s.CPU)
			}
		}
		for _, s := range d.Window(2*time.Hour, 3*time.Hour) {
			if s.Up {
				idle = append(idle, s.CPU)
			}
		}
	}
	mb, mi := stats.Mean(busy), stats.Mean(idle)
	if mb < 2*mi {
		t.Fatalf("daytime load %v not clearly above overnight load %v", mb, mi)
	}
}

func TestWeekendLighterThanWeekday(t *testing.T) {
	p := smallParams()
	p.Days = 28
	ds, _ := Generate(p)
	m := ds.Machines[0]
	dayLoad := func(days []*trace.Day) float64 {
		var xs []float64
		for _, d := range days {
			for _, s := range d.Window(9*time.Hour, 8*time.Hour) {
				if s.Up {
					xs = append(xs, s.CPU)
				}
			}
		}
		return stats.Mean(xs)
	}
	wd := dayLoad(m.DaysOfType(trace.Weekday))
	we := dayLoad(m.DaysOfType(trace.Weekend))
	if we >= wd {
		t.Fatalf("weekend load %v not below weekday load %v", we, wd)
	}
}

// TestTestbedCalibration is the §6.1 experiment: per-machine unavailability
// counts over 90 days must land near the paper's 405-453 band.
func TestTestbedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs the full 90-day trace")
	}
	p := DefaultParams()
	p.Machines = 4
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := avail.DefaultConfig()
	var counts []float64
	for _, m := range ds.Machines {
		total := 0
		for _, d := range m.Days {
			total += avail.CountEvents(d, cfg)
		}
		counts = append(counts, float64(total))
		if total < 350 || total > 520 {
			t.Errorf("%s: %d events, outside the calibrated band [350, 520]", m.ID, total)
		}
	}
	mean := stats.Mean(counts)
	if mean < 395 || mean > 470 {
		t.Errorf("mean events %v not centered on the paper's 405-453 band", mean)
	}
}

func TestDayToDaySimilarity(t *testing.T) {
	// The SMP estimator assumes the hourly load profile repeats across
	// weekdays: the correlation between one weekday's hourly means and
	// the machine's average weekday profile must be clearly positive.
	p := smallParams()
	p.Days = 28
	ds, _ := Generate(p)
	m := ds.Machines[0]
	weekdays := m.DaysOfType(trace.Weekday)
	hourly := func(d *trace.Day) []float64 {
		out := make([]float64, 24)
		for h := 0; h < 24; h++ {
			var xs []float64
			for _, s := range d.Window(time.Duration(h)*time.Hour, time.Hour) {
				if s.Up {
					xs = append(xs, s.CPU)
				}
			}
			out[h] = stats.Mean(xs)
		}
		return out
	}
	avg := make([]float64, 24)
	profs := make([][]float64, len(weekdays))
	for i, d := range weekdays {
		profs[i] = hourly(d)
		for h, v := range profs[i] {
			avg[h] += v / float64(len(weekdays))
		}
	}
	// Mean Pearson correlation of each day against the average profile.
	var corrs []float64
	for _, prof := range profs {
		corrs = append(corrs, pearson(prof, avg))
	}
	if mc := stats.Mean(corrs); mc < 0.5 {
		t.Fatalf("mean day-vs-profile correlation %v too low for SMP history pooling", mc)
	}
}

func pearson(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

func TestTransientSpikesExist(t *testing.T) {
	// The generator must produce sub-minute excursions above Th2 — the
	// workload feature that motivates the model's transient rule.
	p := smallParams()
	ds, _ := Generate(p)
	cfg := avail.DefaultConfig()
	limit := 10 // 60 s at 6 s sampling
	transients := 0
	for _, d := range ds.Machines[0].Days {
		run := 0
		for _, s := range d.Samples {
			if s.Up && s.CPU > cfg.Th2 {
				run++
			} else {
				if run > 0 && run < limit {
					transients++
				}
				run = 0
			}
		}
	}
	if transients < 10 {
		t.Fatalf("only %d transient excursions in two weeks; generator not exercising the transient rule", transients)
	}
}

func TestURROccurs(t *testing.T) {
	p := smallParams()
	p.Days = 30
	ds, _ := Generate(p)
	down := 0
	for _, d := range ds.Machines[0].Days {
		for _, s := range d.Samples {
			if !s.Up {
				down++
			}
		}
	}
	if down == 0 {
		t.Fatal("no URR downtime generated in a month")
	}
}

func TestGenerateMachineMatchesGenerate(t *testing.T) {
	p := smallParams()
	p.Machines = 3
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := GenerateMachine(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := ds.Machines[2]
	if m2.ID != want.ID {
		t.Fatalf("ID %q != %q", m2.ID, want.ID)
	}
	for di := range want.Days {
		for i := range want.Days[di].Samples {
			if m2.Days[di].Samples[i] != want.Days[di].Samples[i] {
				t.Fatal("GenerateMachine diverges from Generate")
			}
		}
	}
}

func TestMachineDaysScale(t *testing.T) {
	p := DefaultParams()
	if p.Machines*p.Days != 1800 {
		t.Fatalf("default scale = %d machine-days, want 1800 (the paper's trace)", p.Machines*p.Days)
	}
}

func TestEnterpriseProfileShape(t *testing.T) {
	p := smallParams()
	p.Profile = ProfileEnterprise
	p.Days = 14
	ds, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Machines[0]
	for _, d := range m.DaysOfType(trace.Weekday) {
		// Overnight: powered off (URR).
		for _, s := range d.Window(0, 6*time.Hour) {
			if s.Up {
				t.Fatal("enterprise desktop up before 06:00")
			}
		}
		// Mid-morning: powered on (reboots and failures may still dent
		// the hour, but most of it must be up).
		up := 0
		win := d.Window(10*time.Hour, time.Hour)
		for _, s := range win {
			if s.Up {
				up++
			}
		}
		if up < len(win)*3/4 {
			t.Fatalf("enterprise desktop down mid-morning: %d/%d up", up, len(win))
		}
	}
	// Weekends: mostly off.
	downDays := 0
	weekends := m.DaysOfType(trace.Weekend)
	for _, d := range weekends {
		up := 0
		for _, s := range d.Samples {
			if s.Up {
				up++
			}
		}
		if up == 0 {
			downDays++
		}
	}
	if downDays == 0 {
		t.Fatal("no fully-off weekend days on an enterprise desktop")
	}
	if ProfileEnterprise.String() != "enterprise" || ProfileLab.String() != "lab" {
		t.Fatal("profile names wrong")
	}
}

func TestEnterpriseLighterFailures(t *testing.T) {
	// During working hours the enterprise machine should see fewer
	// sustained-CPU failures than a lab machine: office work is light.
	mk := func(profile Profile) int {
		p := smallParams()
		p.Profile = profile
		p.Days = 20
		ds, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := avail.DefaultConfig()
		s3 := 0
		for _, d := range ds.Machines[0].Days {
			for _, e := range avail.Events(d, cfg) {
				if e.State == avail.S3 {
					s3++
				}
			}
		}
		return s3
	}
	lab, ent := mk(ProfileLab), mk(ProfileEnterprise)
	if ent >= lab {
		t.Fatalf("enterprise S3 events (%d) not below lab (%d)", ent, lab)
	}
}
