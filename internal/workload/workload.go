// Package workload generates synthetic testbed traces that substitute for
// the paper's proprietary 3-month monitoring data (Section 6.1: a computer
// laboratory at Purdue, ~1800 machine-days, sampling every 6 seconds, with
// 405-453 unavailability occurrences per machine).
//
// The generator simulates, per machine and per day, the workload structure
// the paper describes: students using lab machines for editing, e-mail,
// compiling and testing class projects, producing highly diverse host CPU
// and memory loads with strong diurnal regularity (the property the SMP
// estimator exploits), short transient load spikes (the reason for the
// model's transient-excursion rule), memory-pressure episodes, and owner
// reboots / failures (URR).
//
// Every draw comes from per-(machine, day, subsystem) split random streams,
// so traces are fully reproducible from one seed and stable under parameter
// changes elsewhere.
package workload

import (
	"fmt"
	"time"

	"fgcs/internal/rng"
	"fgcs/internal/trace"
)

// Profile selects the modeled environment.
type Profile int

const (
	// ProfileLab is the paper's testbed: a general-purpose student
	// computer laboratory (diverse interactive use around the clock,
	// evening project work, occasional reboots).
	ProfileLab Profile = iota
	// ProfileEnterprise models the office-desktop environment of the
	// paper's future work (Section 8): a single assigned user, strict
	// 9-to-5 presence with a lunch dip, rare compute bursts, and machines
	// powered off outside working hours (long, highly regular URR).
	ProfileEnterprise
)

// String names the profile.
func (p Profile) String() string {
	if p == ProfileEnterprise {
		return "enterprise"
	}
	return "lab"
}

// Params configures trace generation.
type Params struct {
	// Profile selects the modeled environment (default: ProfileLab).
	Profile Profile
	// Machines is the number of lab machines to simulate.
	Machines int
	// Days is the number of consecutive calendar days.
	Days int
	// Start is the first day (midnight). The paper's trace starts
	// 2005-08-22, a Monday.
	Start time.Time
	// Period is the sampling period (paper: 6 s).
	Period time.Duration
	// Seed makes the whole dataset reproducible.
	Seed uint64
	// TotalMemMB is the machines' physical memory.
	TotalMemMB float64
	// ActivityScale multiplies user activity levels; 1.0 is calibrated to
	// the paper's unavailability band.
	ActivityScale float64
	// RebootProb is the probability that a departing user reboots the
	// machine (an URR occurrence).
	RebootProb float64
	// DailyFailureProb is the probability of a spontaneous
	// hardware/software failure per machine-day (also URR).
	DailyFailureProb float64
}

// DefaultParams returns the calibrated testbed configuration: 90 days on 20
// machines reproduces the scale of the paper's trace (1800 machine-days).
func DefaultParams() Params {
	return Params{
		Machines:         20,
		Days:             90,
		Start:            time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC),
		Period:           trace.DefaultPeriod,
		Seed:             1,
		TotalMemMB:       512,
		ActivityScale:    1.0,
		RebootProb:       0.07,
		DailyFailureProb: 0.08,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Machines <= 0 || p.Days <= 0 {
		return fmt.Errorf("workload: need at least one machine and one day")
	}
	if p.Period <= 0 {
		return fmt.Errorf("workload: non-positive period")
	}
	if p.TotalMemMB <= 0 {
		return fmt.Errorf("workload: non-positive memory")
	}
	if p.ActivityScale <= 0 {
		return fmt.Errorf("workload: non-positive activity scale")
	}
	if p.RebootProb < 0 || p.RebootProb > 1 || p.DailyFailureProb < 0 || p.DailyFailureProb > 1 {
		return fmt.Errorf("workload: probabilities must be in [0,1]")
	}
	return nil
}

// activity is one thing a lab user does, with its host resource footprint.
type activity struct {
	name   string
	cpu    float64 // mean host CPU percent while active
	cpuJit float64 // CPU noise amplitude
	memMB  float64 // resident memory on top of the OS baseline
	dwell  float64 // mean dwell time in seconds
	weight float64 // selection weight within a session
}

// The activity mix models the paper's description of lab usage: "checking
// e-mails, editing files, and compiling and testing class projects". The
// compile/test/bigjob activities produce the sustained >Th2 runs that become
// S3 events; memhog produces the rare memory-thrashing (S4) episodes.
// The weight field is the casual-session mix; project sessions use
// workingWeights, where the heavy activities dominate. Failures therefore
// cluster inside project sessions — episodes whose elevated background load
// keeps the machine in the S2 band, which is exactly the state structure the
// SMP model is built to learn.
var activities = []activity{
	{name: "think", cpu: 3, cpuJit: 2, memMB: 30, dwell: 60, weight: 26},
	{name: "edit", cpu: 9, cpuJit: 4, memMB: 70, dwell: 120, weight: 24},
	{name: "mail", cpu: 22, cpuJit: 8, memMB: 120, dwell: 90, weight: 14},
	{name: "build", cpu: 74, cpuJit: 10, memMB: 160, dwell: 30, weight: 0.3},
	{name: "test", cpu: 88, cpuJit: 6, memMB: 200, dwell: 150, weight: 0.02},
	{name: "bigjob", cpu: 95, cpuJit: 4, memMB: 240, dwell: 500, weight: 0.005},
	{name: "memhog", cpu: 55, cpuJit: 10, memMB: 430, dwell: 120, weight: 0.004},
}

// workingWeights replaces the per-activity weights during project sessions.
var workingWeights = []float64{14, 20, 9, 7, 1.1, 0.35, 0.2}

// workingProb is the probability that a newly arrived session is a project
// session, by hour of day. Daytime lab visits are mostly quick e-mail and
// editing between classes; compile-and-test project work concentrates in the
// late afternoon and evening. This diurnal concentration is what the paper
// observes implicitly: "unavailability is very rare" around 8:00 am
// (Section 7.3), while the machines still accumulate 405-453 occurrences
// over the trace.
func workingProb(p Profile, t trace.DayType, hour int) float64 {
	if p == ProfileEnterprise {
		// Office work is e-mail, documents and the occasional heavy
		// spreadsheet/report job, evenly thin through the day.
		return 0.05
	}
	switch {
	case hour < 9:
		return 0.04
	case hour < 15:
		return 0.10
	case hour < 18:
		return 0.34
	default:
		if t == trace.Weekend {
			return 0.55
		}
		return 0.70
	}
}

// profile is the per-machine personality: how busy the machine is and when.
type profile struct {
	scale     float64 // activity multiplier (some machines sit in corners)
	peakShift int     // hours the diurnal curve is shifted
	baseCPU   float64 // background OS load percent
	baseMemMB float64 // OS + desktop resident memory
}

// hourly presence probability for a general-purpose student lab (fraction of
// the hour during which some user occupies the machine).
var weekdayCurve = [24]float64{
	0.02, 0.01, 0.01, 0.01, 0.01, 0.02, 0.04, 0.10,
	0.30, 0.55, 0.70, 0.75, 0.70, 0.72, 0.75, 0.72,
	0.65, 0.55, 0.45, 0.42, 0.38, 0.25, 0.12, 0.05,
}

var weekendCurve = [24]float64{
	0.03, 0.02, 0.01, 0.01, 0.01, 0.01, 0.02, 0.04,
	0.08, 0.15, 0.25, 0.32, 0.35, 0.36, 0.38, 0.36,
	0.34, 0.30, 0.28, 0.26, 0.22, 0.15, 0.08, 0.04,
}

// Enterprise desktops: one assigned user, in at ~8:30, lunch dip, gone by
// ~18:00; weekend visits are rare.
var enterpriseWeekdayCurve = [24]float64{
	0, 0, 0, 0, 0, 0, 0, 0.05,
	0.55, 0.85, 0.88, 0.80, 0.45, 0.75, 0.88, 0.85,
	0.80, 0.55, 0.15, 0.04, 0.01, 0, 0, 0,
}

var enterpriseWeekendCurve = [24]float64{
	0, 0, 0, 0, 0, 0, 0, 0,
	0.02, 0.05, 0.08, 0.08, 0.06, 0.06, 0.06, 0.05,
	0.04, 0.02, 0.01, 0, 0, 0, 0, 0,
}

func presence(p Profile, t trace.DayType, hour, shift int) float64 {
	h := (hour - shift + 24) % 24
	if p == ProfileEnterprise {
		if t == trace.Weekend {
			return enterpriseWeekendCurve[h]
		}
		return enterpriseWeekdayCurve[h]
	}
	if t == trace.Weekend {
		return weekendCurve[h]
	}
	return weekdayCurve[h]
}

// Generate produces the full synthetic testbed trace.
func Generate(p Params) (*trace.Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(p.Seed)
	ds := &trace.Dataset{}
	for mi := 0; mi < p.Machines; mi++ {
		mStream := root.SplitN("machine", mi)
		prof := profile{
			scale:     mStream.Uniform(0.92, 1.08) * p.ActivityScale,
			peakShift: mStream.UniformInt(-1, 2),
			baseCPU:   mStream.Uniform(1.5, 4.5),
			baseMemMB: mStream.Uniform(100, 150),
		}
		m := trace.NewMachine(fmt.Sprintf("lab-%02d", mi+1), p.Period)
		for di := 0; di < p.Days; di++ {
			date := p.Start.AddDate(0, 0, di)
			day := genDay(date, p, prof, mStream.SplitN("day", di))
			if err := m.AddDay(day); err != nil {
				return nil, err
			}
		}
		ds.Machines = append(ds.Machines, m)
	}
	return ds, nil
}

// GenerateMachine produces a single machine's trace, convenient for focused
// experiments.
func GenerateMachine(p Params, index int) (*trace.Machine, error) {
	p.Machines = index + 1
	ds, err := Generate(p)
	if err != nil {
		return nil, err
	}
	return ds.Machines[index], nil
}

// dayState carries the per-tick simulation state.
type dayState struct {
	userPresent bool
	working     bool    // project session: heavy activities, elevated base load
	sessionCPU  float64 // session background CPU (editors, browser, runs)
	sessionLeft int     // ticks remaining in the session
	act         int     // current activity index
	actLeft     int     // ticks remaining in the activity
	spikeLeft   int     // ticks remaining in the current transient spike
	spikeCPU    float64
	downLeft    int // ticks remaining in the current outage
}

func genDay(date time.Time, p Params, prof profile, r *rng.Stream) *trace.Day {
	day := trace.NewDay(date, p.Period)
	n := day.Len()
	tickSec := p.Period.Seconds()
	dt := trace.TypeOfDate(date)

	sess := r.Split("session")
	actR := r.Split("activity")
	spike := r.Split("spike")
	fail := r.Split("failure")
	noise := r.Split("noise")

	casualWeights := make([]float64, len(activities))
	for ai, a := range activities {
		casualWeights[ai] = a.weight
	}

	var st dayState

	// Enterprise desktops are powered off outside working hours: the
	// machine contributes a long, regular URR block every day. powerOn/
	// powerOff bound the up-interval in ticks; the defaults keep lab
	// machines up around the clock.
	powerOn, powerOff := 0, n
	if p.Profile == ProfileEnterprise {
		power := r.Split("power")
		if dt == trace.Weekday {
			powerOn = int(power.Uniform(7.6, 8.4) * 3600 / tickSec)
			powerOff = int(power.Uniform(17.4, 19.2) * 3600 / tickSec)
		} else if power.Bool(0.15) {
			// A rare weekend visit.
			powerOn = int(power.Uniform(10, 12) * 3600 / tickSec)
			powerOff = int(power.Uniform(13, 17) * 3600 / tickSec)
		} else {
			powerOn, powerOff = n, n // off all day
		}
	}

	// Spontaneous failure: pick the moment once per day.
	failTick := -1
	if fail.Bool(p.DailyFailureProb) {
		failTick = fail.Intn(n)
	}

	for i := 0; i < n; i++ {
		if i < powerOn || i >= powerOff {
			day.Samples[i] = trace.Sample{Up: false}
			continue
		}
		// ------------------------------------------------ outages ----
		if st.downLeft > 0 {
			st.downLeft--
			day.Samples[i] = trace.Sample{Up: false}
			continue
		}
		if i == failTick {
			// Hardware/software failure: minutes to a couple hours.
			downSec := fail.Pareto(180, 1.2)
			if downSec > 3*3600 {
				downSec = 3 * 3600
			}
			st.downLeft = int(downSec/tickSec) + 1
			st.userPresent = false
			day.Samples[i] = trace.Sample{Up: false}
			continue
		}

		hour := int(time.Duration(i) * p.Period / time.Hour)
		pres := presence(p.Profile, dt, hour, prof.peakShift) * prof.scale

		// ------------------------------------------------ sessions ----
		if !st.userPresent {
			// Expected sessions/hour chosen so the expected occupied
			// fraction tracks the presence curve for ~35 min sessions.
			arrivalPerTick := pres * tickSec / (35 * 60) * 1.5
			if sess.Bool(arrivalPerTick) {
				st.userPresent = true
				durSec := sess.LogNormal(7.4, 0.6) // median ~27 min
				if durSec > 4*3600 {
					durSec = 4 * 3600
				}
				st.sessionLeft = int(durSec/tickSec) + 1
				st.actLeft = 0
				st.working = sess.Bool(workingProb(p.Profile, dt, hour))
				st.sessionCPU = 0
				if st.working {
					// Project work keeps a moderate background load
					// (editor, browser, output windows) that places the
					// machine in the S2 band between compile bursts.
					st.sessionCPU = sess.Uniform(18, 30)
				}
			}
		}

		cpu := prof.baseCPU + noise.Uniform(-1, 1)
		mem := prof.baseMemMB + noise.Uniform(-10, 10)

		if st.userPresent {
			if st.actLeft <= 0 {
				weights := casualWeights
				if st.working {
					weights = workingWeights
				}
				st.act = actR.Categorical(weights)
				a := activities[st.act]
				st.actLeft = int(actR.Exp(a.dwell)/tickSec) + 1
			}
			a := activities[st.act]
			cpu += a.cpu + actR.Uniform(-a.cpuJit, a.cpuJit)
			if a.cpu < 50 {
				// The session background only matters between bursts.
				cpu += st.sessionCPU
			}
			mem += a.memMB
			st.actLeft--
			st.sessionLeft--
			if st.sessionLeft <= 0 {
				st.userPresent = false
				// Owner reboot on departure: an URR occurrence.
				if sess.Bool(p.RebootProb) {
					downSec := sess.Uniform(120, 900)
					st.downLeft = int(downSec / tickSec)
				}
			}
		}

		// ------------------------------------------- transient spikes ----
		// Short bursts (X clients starting, system processes): the cause
		// of the <1 min excursions the availability model must not treat
		// as failures (Section 3.3).
		if st.spikeLeft == 0 {
			perTick := (0.5 + 4*pres) * tickSec / 3600 // spikes/hour
			if spike.Bool(perTick) {
				// 1..9 ticks = 6..54 s: always strictly below the 60 s
				// suspend limit, so an isolated spike is never an S3
				// event (it can still merge with adjacent high load).
				st.spikeLeft = 1 + spike.Intn(9)
				st.spikeCPU = spike.Uniform(40, 90)
			}
		}
		if st.spikeLeft > 0 {
			cpu += st.spikeCPU
			st.spikeLeft--
		}

		if cpu < 0 {
			cpu = 0
		}
		if cpu > 100 {
			cpu = 100
		}
		if mem < 0 {
			mem = 0
		}
		free := p.TotalMemMB - mem
		if free < 0 {
			free = 0
		}
		day.Samples[i] = trace.Sample{CPU: cpu, FreeMemMB: free, Up: true}
	}
	return day
}
