package predict

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"fgcs/internal/avail"
)

// Spectral is the FFT predictor: it treats the machine's availability as a
// periodic signal, extracts its dominant spectrum (diurnal/weekly harmonics
// dominate on cycle-sharing hosts), reconstructs the next day's window from
// the truncated Fourier series, and reports the window's worst reconstructed
// availability as the TR. The knobs mirror crane's DSP estimator: spectrum
// item caps, a low-amplitude cutoff relative to the strongest component, and
// a safety margin shaved off the final prediction.
//
// The pipeline, all deterministic: classify each history day's samples into
// a binary available/unavailable signal (1 when the state is recoverable),
// concatenate the days oldest-first, resample to a fixed power-of-two length
// by fractional block averaging (an anti-aliasing box filter), remove the
// mean, run a radix-2 FFT, keep the dominant components per the knobs, and
// evaluate the series at the query window's positions on the following day
// (the series is periodic, so out-of-range positions wrap — crane's
// periodic-extension forecast).
type Spectral struct {
	// Cfg is the availability-model configuration used to classify the
	// history into the binary availability signal.
	Cfg avail.Config
	// HistoryDays bounds how many of the most recent days feed the
	// spectrum (zero means all provided).
	HistoryDays int
	// MaxSpectrumItems caps how many frequency components the truncated
	// series keeps (crane: maxNumOfSpectrumItems).
	MaxSpectrumItems int
	// MinSpectrumItems is the floor of kept components: the strongest
	// Min items are retained even below the amplitude threshold (crane:
	// minNumOfSpectrumItems).
	MinSpectrumItems int
	// LowAmplitudeThreshold drops components weaker than this fraction of
	// the strongest component's amplitude (crane: lowAmplitudeThreshold,
	// expressed relative rather than absolute so the knob is scale-free).
	LowAmplitudeThreshold float64
	// MarginFraction shaves a safety margin off the final TR:
	// tr *= (1 - MarginFraction) (crane: marginFraction).
	MarginFraction float64
}

// spectralSignalLen is the fixed power-of-two length the availability signal
// is resampled to before the FFT. 4096 points over a multi-day history keeps
// per-fit cost bounded and independent of the monitoring period while
// resolving harmonics far above the diurnal fundamental.
const spectralSignalLen = 4096

// DefaultSpectral returns the FFT predictor with crane's default knobs.
func DefaultSpectral() Spectral {
	return Spectral{
		Cfg:                   avail.DefaultConfig(),
		MaxSpectrumItems:      20,
		MinSpectrumItems:      10,
		LowAmplitudeThreshold: 0.05,
		MarginFraction:        0,
	}
}

// Name implements Plugin.
func (Spectral) Name() string { return "FFT" }

// CacheSalt implements Cacheable: Spectral is a pure function of (Days,
// Window, knobs), so the engine may memoize it. Every knob folds in.
func (s Spectral) CacheSalt() uint64 {
	h := uint64(fnvOffset64)
	h = mix64(h, math.Float64bits(s.Cfg.Th1))
	h = mix64(h, math.Float64bits(s.Cfg.Th2))
	h = mix64(h, uint64(s.Cfg.SuspendLimit))
	h = mix64(h, math.Float64bits(s.Cfg.GuestMemMB))
	h = mix64(h, uint64(s.HistoryDays))
	h = mix64(h, uint64(s.MaxSpectrumItems))
	h = mix64(h, uint64(s.MinSpectrumItems))
	h = mix64(h, math.Float64bits(s.LowAmplitudeThreshold))
	h = mix64(h, math.Float64bits(s.MarginFraction))
	return h
}

// PredictTR implements Plugin.
func (s Spectral) PredictTR(in PluginInput) (float64, error) {
	w := in.Window
	if err := w.Validate(); err != nil {
		return 0, err
	}
	// Cacheable contract: only Days, Window and the receiver's own knobs
	// may influence the result (in.Cfg/Prev/State are ignored) — the cache
	// salt covers exactly the receiver. Callers wanting a per-query config
	// copy the struct and set Cfg before calling.
	cfg := s.Cfg
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	days := truncDays(in.Days, s.HistoryDays)
	if len(days) == 0 {
		return 0, fmt.Errorf("predict: spectral: no history days")
	}
	period := periodOf(days)
	units := w.Units(period)
	if units < 1 {
		return 0, fmt.Errorf("predict: spectral: window %v shorter than the sampling period", w)
	}
	// Binary availability signal, concatenated oldest-first.
	total := 0
	for _, d := range days {
		total += len(d.Samples)
	}
	if total == 0 {
		return 0, fmt.Errorf("predict: spectral: history days carry no samples")
	}
	signal := make([]float64, 0, total)
	for _, d := range days {
		for _, st := range avail.Classify(d.Samples, cfg, d.Period) {
			if st.Recoverable() {
				signal = append(signal, 1)
			} else {
				signal = append(signal, 0)
			}
		}
	}
	resampled := resampleBoxFilter(signal, spectralSignalLen)
	mean := 0.0
	for _, v := range resampled {
		mean += v
	}
	mean /= float64(len(resampled))
	buf := make([]complex128, len(resampled))
	for i, v := range resampled {
		buf[i] = complex(v-mean, 0)
	}
	fftRadix2(buf)
	items := s.selectSpectrum(buf)
	// Evaluate the truncated series at the query window's positions on
	// the day after the history. Positions are expressed in original
	// signal coordinates then scaled into resampled coordinates; the
	// series is periodic so the next-day positions wrap onto the diurnal
	// structure the dominant harmonics encode.
	m := float64(len(resampled))
	scale := m / float64(total)
	tr := math.Inf(1)
	for j := 0; j < units; j++ {
		pos := float64(total) + (float64(w.Start)+(float64(j)+0.5)*float64(period))/float64(period)
		u := pos * scale
		v := mean
		for _, it := range items {
			v += 2 / m * (real(buf[it])*math.Cos(2*math.Pi*float64(it)*u/m) -
				imag(buf[it])*math.Sin(2*math.Pi*float64(it)*u/m))
		}
		if v < tr {
			tr = v
		}
	}
	tr *= 1 - s.MarginFraction
	if tr < 0 {
		tr = 0
	}
	if tr > 1 {
		tr = 1
	}
	return tr, nil
}

// selectSpectrum picks the dominant frequency bins of the half-spectrum per
// the crane-style knobs: amplitude-sorted (bin index breaks ties, so the
// choice is deterministic), at most MaxSpectrumItems, at least
// MinSpectrumItems of the strongest regardless of the amplitude cutoff, and
// beyond the floor only bins at or above LowAmplitudeThreshold of the
// strongest amplitude.
func (s Spectral) selectSpectrum(spec []complex128) []int {
	half := len(spec) / 2
	bins := make([]int, 0, half)
	maxAmp := 0.0
	for k := 1; k <= half; k++ {
		bins = append(bins, k)
		if a := cmplx.Abs(spec[k]); a > maxAmp {
			maxAmp = a
		}
	}
	sort.Slice(bins, func(i, j int) bool {
		ai, aj := cmplx.Abs(spec[bins[i]]), cmplx.Abs(spec[bins[j]])
		if ai != aj {
			return ai > aj
		}
		return bins[i] < bins[j]
	})
	maxItems := s.MaxSpectrumItems
	if maxItems <= 0 {
		maxItems = 20
	}
	minItems := s.MinSpectrumItems
	if minItems < 0 {
		minItems = 0
	}
	cutoff := s.LowAmplitudeThreshold * maxAmp
	kept := bins[:0]
	for _, k := range bins {
		if len(kept) >= maxItems {
			break
		}
		if len(kept) >= minItems && cmplx.Abs(spec[k]) < cutoff {
			break
		}
		kept = append(kept, k)
	}
	return kept
}

// resampleBoxFilter resamples signal to exactly n points by fractional block
// averaging: output point i averages the source interval
// [i*L/n, (i+1)*L/n), weighting partial source samples by their overlap.
// Downsampling therefore anti-aliases (a box filter) and upsampling
// replicates; both are exact and deterministic.
func resampleBoxFilter(signal []float64, n int) []float64 {
	out := make([]float64, n)
	l := float64(len(signal))
	step := l / float64(n)
	for i := 0; i < n; i++ {
		lo := float64(i) * step
		hi := lo + step
		sum, weight := 0.0, 0.0
		for j := int(lo); j < len(signal) && float64(j) < hi; j++ {
			a, b := math.Max(lo, float64(j)), math.Min(hi, float64(j+1))
			if b <= a {
				continue
			}
			sum += signal[j] * (b - a)
			weight += b - a
		}
		if weight > 0 {
			out[i] = sum / weight
		}
	}
	return out
}

// fftRadix2 is an in-place iterative radix-2 Cooley-Tukey FFT. len(buf) must
// be a power of two (the resampler guarantees it).
func fftRadix2(buf []complex128) {
	n := len(buf)
	if n&(n-1) != 0 {
		panic("predict: fft length is not a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := buf[start+k]
				v := buf[start+k+length/2] * w
				buf[start+k] = u + v
				buf[start+k+length/2] = u - v
				w *= wl
			}
		}
	}
}
