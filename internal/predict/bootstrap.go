package predict

import (
	"fmt"
	"sort"

	"fgcs/internal/rng"
	"fgcs/internal/trace"
)

// Interval is a two-sided confidence interval for a predicted TR.
type Interval struct {
	// TR is the point prediction on the full history.
	TR float64
	// Lo and Hi bound the central confidence region.
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.90).
	Level float64
	// Resamples is the bootstrap replication count used.
	Resamples int
}

// PredictCI augments Predict with a nonparametric bootstrap confidence
// interval: history days are resampled with replacement B times, the SMP is
// re-estimated and re-solved on each replicate, and the interval is read off
// the empirical quantiles of the replicated TRs. This quantifies how much of
// a prediction rests on a handful of observed failures — the uncertainty
// the semi-Markov reward work cited by the paper struggled with ("wide
// confidence intervals") but never propagated to its users.
//
// Cost: B full predictions; keep B modest (50-200) for long windows, whose
// Equation (3) solve is quadratic in the window length.
func (p SMP) PredictCI(history []*trace.Day, w Window, level float64, resamples int, seed uint64) (Interval, error) {
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("predict: confidence level %v outside (0,1)", level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("predict: need at least 10 bootstrap resamples")
	}
	point, err := p.Predict(history, w)
	if err != nil {
		return Interval{}, err
	}
	// Resample over the effective day pool (what the estimator would use).
	days := history
	if p.HistoryDays > 0 && len(days) > p.HistoryDays {
		days = days[len(days)-p.HistoryDays:]
	}
	r := rng.New(seed)
	trs := make([]float64, 0, resamples)
	resampled := make([]*trace.Day, len(days))
	for b := 0; b < resamples; b++ {
		for i := range resampled {
			resampled[i] = days[r.Intn(len(days))]
		}
		// Resampling breaks chronological order; bypass HistoryDays
		// truncation by predicting on exactly this pool.
		pb := p
		pb.HistoryDays = 0
		pred, err := pb.Predict(resampled, w)
		if err != nil {
			return Interval{}, err
		}
		trs = append(trs, pred.TR)
	}
	sort.Float64s(trs)
	alpha := (1 - level) / 2
	lo := trs[clampIndex(int(alpha*float64(len(trs))), len(trs))]
	hi := trs[clampIndex(int((1-alpha)*float64(len(trs)))-1, len(trs))]
	if lo > point.TR {
		lo = point.TR
	}
	if hi < point.TR {
		hi = point.TR
	}
	return Interval{TR: point.TR, Lo: lo, Hi: hi, Level: level, Resamples: resamples}, nil
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
