package predict

import (
	"fmt"

	"fgcs/internal/avail"
	"fgcs/internal/stats"
	"fgcs/internal/trace"
)

// EmpiricalTR measures the observed temporal reliability of a window over a
// set of days: the fraction of days on which the machine, having been in a
// recoverable state at the window start, stays available throughout the
// window. Days already failed at the window start are excluded — a guest job
// would not have been placed there. The second result is the number of days
// that contributed.
func EmpiricalTR(days []*trace.Day, w Window, cfg avail.Config) (float64, int) {
	survived, usable := 0, 0
	for _, d := range days {
		samples := d.Window(w.Start, w.Length)
		if len(samples) == 0 {
			continue
		}
		if _, ok := avail.InitialState(samples, cfg, d.Period); !ok {
			continue
		}
		usable++
		if avail.WindowSurvives(samples, cfg, d.Period) {
			survived++
		}
	}
	if usable == 0 {
		return 0, 0
	}
	return float64(survived) / float64(usable), usable
}

// Evaluation is the outcome of comparing a prediction against the test set,
// the quantity plotted in Figures 5-7.
type Evaluation struct {
	Window    Window
	Predictor string
	// TRPred is the predicted temporal reliability (from the training
	// set for SMP; from per-test-day forecasts for time-series models).
	TRPred float64
	// TREmp is the observed temporal reliability over the test days.
	TREmp float64
	// RelErr is |TRPred - TREmp| / TREmp, the paper's accuracy metric.
	RelErr float64
	// TestDays is how many test days contributed to TREmp.
	TestDays int
}

// EvaluateSMP trains the SMP predictor on the split's training days and
// scores it against the split's test days for one window.
func EvaluateSMP(p SMP, sp trace.Split, w Window) (Evaluation, error) {
	pred, err := p.Predict(sp.Train, w)
	if err != nil {
		return Evaluation{}, err
	}
	emp, n := EmpiricalTR(sp.Test, w, p.Cfg)
	if n == 0 {
		return Evaluation{}, fmt.Errorf("predict: no usable test days for window %v", w)
	}
	return Evaluation{
		Window:    w,
		Predictor: p.Name(),
		TRPred:    pred.TR,
		TREmp:     emp,
		RelErr:    stats.RelativeError(pred.TR, emp),
		TestDays:  n,
	}, nil
}

// EvaluateTimeSeries scores a time-series baseline on the split's test days
// for one window. Per Section 6.2 the model needs no training set: each test
// day is forecast from its own preceding window; the training days only
// participate through the day-type split.
func EvaluateTimeSeries(t TimeSeries, sp trace.Split, w Window) (Evaluation, error) {
	// Restrict to test days usable for the empirical measurement so both
	// sides of the comparison see the same population.
	var usable []*trace.Day
	for _, d := range sp.Test {
		samples := d.Window(w.Start, w.Length)
		if len(samples) == 0 {
			continue
		}
		if _, ok := avail.InitialState(samples, t.Cfg, d.Period); ok {
			usable = append(usable, d)
		}
	}
	if len(usable) == 0 {
		return Evaluation{}, fmt.Errorf("predict: no usable test days for window %v", w)
	}
	trPred, err := t.Predict(usable, w)
	if err != nil {
		return Evaluation{}, err
	}
	emp, n := EmpiricalTR(usable, w, t.Cfg)
	return Evaluation{
		Window:    w,
		Predictor: t.Name(),
		TRPred:    trPred,
		TREmp:     emp,
		RelErr:    stats.RelativeError(trPred, emp),
		TestDays:  n,
	}, nil
}
