package predict

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/obs"
	"fgcs/internal/otrace"
	"fgcs/internal/smp"
	"fgcs/internal/trace"
)

// Engine is a concurrent batch-prediction service over the SMP predictor: it
// memoizes estimated kernels (and their solved reliabilities) in an LRU
// keyed by (history fingerprint, window, estimator configuration), serves
// any number of concurrent Predict/PredictFrom queries against the cache,
// and fans PredictBatch request slices across a bounded worker pool. Cache
// misses run on pooled scratch buffers, so the extraction and
// backward-recursion hot paths allocate nothing at steady state beyond the
// cached kernel itself.
//
// Cache coherence rests on one rule: history days are immutable once handed
// to the engine. The fingerprint memoizes a per-*trace.Day content hash by
// pointer, so mutating a day in place after its first query yields stale
// results — clone days instead (everything in this repository already does:
// the recorder snapshots, noise injection clones). Appending a new day to a
// history slice changes the fingerprint and naturally invalidates all
// entries for the old day set — the "new day arrived" semantics a
// day-structured predictor wants.
type Engine struct {
	workers   int
	cacheSize int

	mu       sync.Mutex
	lru      *list.List // front = most recent; values are *engineEntry
	items    map[engineKey]*list.Element
	inflight map[engineKey]*inflightCall

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	metrics atomic.Pointer[EngineMetrics]

	hashMu    sync.RWMutex
	dayHashes map[*trace.Day]uint64

	scratchPool sync.Pool
}

// EngineConfig tunes an Engine.
type EngineConfig struct {
	// CacheSize bounds the number of cached kernels. Zero selects the
	// default (256); a negative value disables caching entirely (every
	// query recomputes — useful for benchmarking the cold path).
	CacheSize int
	// Workers bounds PredictBatch's worker pool. Zero selects
	// runtime.GOMAXPROCS(0).
	Workers int
}

// DefaultCacheSize is the kernel-cache capacity used when EngineConfig
// leaves CacheSize zero.
const DefaultCacheSize = 256

// maxDayHashes bounds the per-day content-hash memo; when exceeded the memo
// is dropped and rebuilt on demand (hashing is cheap relative to
// estimation, the memo only amortizes it).
const maxDayHashes = 16384

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine {
	size := cfg.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers:   workers,
		cacheSize: size,
		lru:       list.New(),
		items:     make(map[engineKey]*list.Element),
		inflight:  make(map[engineKey]*inflightCall),
		dayHashes: make(map[*trace.Day]uint64),
	}
	e.scratchPool.New = func() interface{} {
		return &scratch{
			ex: avail.NewExtractor(avail.DefaultConfig(), trace.DefaultPeriod),
			ws: &smp.Workspace{},
		}
	}
	return e
}

// Workers returns the batch worker-pool width.
func (e *Engine) Workers() int { return e.workers }

// engineKey identifies one cached result: the fingerprint of the day pool,
// the query window, and the predictor identity — the full SMP estimator
// configuration on the kernel path, or the plugin's registered name plus its
// configuration salt on the cached-plugin path (see Cacheable). The plugin
// name is always part of the key, so two predictors can never share an
// entry: ensemble routing cannot serve one predictor's fitted result for
// another's. SMP and Window are comparable value types, so the key works
// directly as a map key.
type engineKey struct {
	fp     uint64
	window Window
	pred   SMP
	plugin string
	salt   uint64
}

// engineEntry is one cached result: the estimated kernel plus everything a
// query needs (the solved per-initial-state reliabilities and the empirical
// initial-state distribution), so hits touch no predictor code at all.
type engineEntry struct {
	key    engineKey
	kernel *smp.Kernel
	pred   Prediction // fully populated: TR, TRByInit, InitProb, HistoryWindows
}

type inflightCall struct {
	done  chan struct{}
	entry *engineEntry
	err   error
}

// EngineStats reports cache effectiveness counters.
type EngineStats struct {
	// Hits counts queries served from the cache, including queries that
	// piggybacked on another goroutine's in-flight estimation.
	Hits uint64
	// Misses counts queries that ran the full extract/estimate/solve
	// pipeline.
	Misses uint64
	// Evictions counts cache entries displaced by the LRU policy.
	Evictions uint64
	// Entries is the current number of cached kernels.
	Entries int
}

// EngineMetrics is the engine's observability surface: cache-effectiveness
// counters plus fit and solve latency histograms. All instruments are
// nil-safe, so a zero EngineMetrics records nothing; the counters mirror the
// engine's internal Stats counters so an externally scraped registry and the
// QueryTR response always agree.
type EngineMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
	// Entries tracks the current number of cached kernels.
	Entries *obs.Gauge
	// FitSeconds observes the latency of the extract/estimate/solve
	// pipeline on a cache miss; SolveSeconds the Equation (3) backward
	// recursion alone (a sub-span of FitSeconds).
	FitSeconds   *obs.Histogram
	SolveSeconds *obs.Histogram
}

// NewEngineMetrics registers the engine metric family on a registry.
func NewEngineMetrics(r *obs.Registry) *EngineMetrics {
	return &EngineMetrics{
		Hits:         r.Counter("fgcs_engine_cache_hits_total", "Queries served from the kernel cache (including coalesced in-flight waits)."),
		Misses:       r.Counter("fgcs_engine_cache_misses_total", "Queries that ran the full extract/estimate/solve pipeline."),
		Evictions:    r.Counter("fgcs_engine_cache_evictions_total", "Cache entries displaced by the LRU policy."),
		Entries:      r.Gauge("fgcs_engine_cache_entries", "Cached kernels currently held."),
		FitSeconds:   r.Histogram("fgcs_engine_fit_seconds", "Cold-path latency: extraction, estimation and solve.", nil),
		SolveSeconds: r.Histogram("fgcs_engine_solve_seconds", "Equation (3) reliability solve latency.", nil),
	}
}

// SetMetrics attaches (or replaces) the engine's metrics. Safe to call
// concurrently with queries; pass nil to detach.
func (e *Engine) SetMetrics(m *EngineMetrics) { e.metrics.Store(m) }

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	entries := len(e.items)
	e.mu.Unlock()
	return EngineStats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Evictions: e.evictions.Load(),
		Entries:   entries,
	}
}

// Predict is SMP.Predict through the cache: bit-identical results, but
// repeated queries for the same (history, window, config) reuse the fitted
// kernel and its solved reliabilities instead of re-running extraction,
// estimation and the Equation (3) recursion.
func (e *Engine) Predict(p SMP, history []*trace.Day, w Window) (Prediction, error) {
	return e.PredictCtx(context.Background(), p, history, w)
}

// PredictCtx is Predict with trace instrumentation: when ctx carries a
// sampled span, the lookup marks a cache-hit or cache-miss event on it and a
// miss records engine.fit/engine.solve child spans. With an untraced context
// the instrumentation is two pointer reads — the cached warm path stays at 0
// allocs/op.
func (e *Engine) PredictCtx(ctx context.Context, p SMP, history []*trace.Day, w Window) (Prediction, error) {
	entry, err := e.lookup(ctx, p, history, w)
	if err != nil {
		return Prediction{}, err
	}
	return entry.pred, nil
}

// PredictFrom is SMP.PredictFrom through the cache: TR for a job starting in
// the given (recoverable) current state. A PredictFrom after a Predict for
// the same query (or vice versa) is a cache hit — both are served from the
// same solved kernel.
func (e *Engine) PredictFrom(p SMP, history []*trace.Day, w Window, init avail.State) (float64, error) {
	return e.PredictFromCtx(context.Background(), p, history, w, init)
}

// PredictFromCtx is PredictFrom with trace instrumentation (see PredictCtx).
func (e *Engine) PredictFromCtx(ctx context.Context, p SMP, history []*trace.Day, w Window, init avail.State) (float64, error) {
	entry, err := e.lookup(ctx, p, history, w)
	if err != nil {
		return 0, err
	}
	switch init {
	case avail.S1:
		return entry.pred.TRByInit[0], nil
	case avail.S2:
		return entry.pred.TRByInit[1], nil
	}
	return 0, fmt.Errorf("smp: initial state %v is not recoverable", init)
}

// BatchRequest is one (machine, window) query of a PredictBatch call.
type BatchRequest struct {
	// Machine labels the request in the result (it does not key the
	// cache; the history fingerprint does).
	Machine string
	// History is the machine's day pool (same contract as SMP.Predict).
	History []*trace.Day
	// Window is the query window.
	Window Window
}

// BatchResult is the outcome of one BatchRequest, with per-request error
// capture: one failing machine does not abort the batch.
type BatchResult struct {
	Machine    string
	Window     Window
	Prediction Prediction
	Err        error
}

// PredictBatch evaluates all requests across the engine's worker pool and
// returns results in request order. Results are bit-identical to a serial
// loop over SMP.Predict: each request's computation is independent and
// deterministic, so scheduling order cannot perturb the numbers.
func (e *Engine) PredictBatch(p SMP, reqs []BatchRequest) []BatchResult {
	out := make([]BatchResult, len(reqs))
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			pred, err := e.Predict(p, r.History, r.Window)
			out[i] = BatchResult{Machine: r.Machine, Window: r.Window, Prediction: pred, Err: err}
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				r := reqs[i]
				pred, err := e.Predict(p, r.History, r.Window)
				out[i] = BatchResult{Machine: r.Machine, Window: r.Window, Prediction: pred, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// lookup resolves a query to a cache entry, computing and caching it on a
// miss. Concurrent misses for the same key are coalesced: one goroutine
// estimates, the rest wait and share the result (counted as hits — they did
// not pay for the estimation). The span in ctx (if any) gets a cache-hit or
// cache-miss event; the unsampled path adds no allocations.
func (e *Engine) lookup(ctx context.Context, p SMP, history []*trace.Day, w Window) (*engineEntry, error) {
	span := otrace.FromContext(ctx)
	days := history
	if p.HistoryDays > 0 && len(days) > p.HistoryDays {
		days = days[len(days)-p.HistoryDays:]
	}
	norm := p
	norm.HistoryDays = 0 // the truncation is already folded into the fingerprint
	key := engineKey{fp: e.fingerprint(days), window: w, pred: norm, plugin: "SMP"}
	m := e.metrics.Load()
	if e.cacheSize < 0 {
		e.misses.Add(1)
		if m != nil {
			m.Misses.Inc()
		}
		span.AddEvent("cache-miss")
		return e.compute(span, m, norm, days, w)
	}
	e.mu.Lock()
	if el, ok := e.items[key]; ok {
		e.lru.MoveToFront(el)
		entry := el.Value.(*engineEntry)
		e.mu.Unlock()
		e.hits.Add(1)
		if m != nil {
			m.Hits.Inc()
		}
		span.AddEvent("cache-hit")
		return entry, nil
	}
	if call, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, call.err
		}
		e.hits.Add(1)
		if m != nil {
			m.Hits.Inc()
		}
		// Coalesced wait: served by another goroutine's estimation.
		span.AddEvent("cache-hit", otrace.String("via", "inflight"))
		return call.entry, nil
	}
	call := &inflightCall{done: make(chan struct{})}
	e.inflight[key] = call
	e.mu.Unlock()
	e.misses.Add(1)
	if m != nil {
		m.Misses.Inc()
	}
	span.AddEvent("cache-miss")

	entry, err := e.compute(span, m, norm, days, w)
	call.entry, call.err = entry, err

	e.mu.Lock()
	delete(e.inflight, key)
	if err == nil {
		e.insertLocked(key, entry, m)
	}
	e.mu.Unlock()
	close(call.done)
	return entry, err
}

// insertLocked files a freshly computed entry under key and applies the LRU
// bound. Callers hold e.mu.
func (e *Engine) insertLocked(key engineKey, entry *engineEntry, m *EngineMetrics) {
	entry.key = key
	e.items[key] = e.lru.PushFront(entry)
	for len(e.items) > e.cacheSize {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.items, oldest.Value.(*engineEntry).key)
		e.evictions.Add(1)
		if m != nil {
			m.Evictions.Inc()
		}
	}
	if m != nil {
		m.Entries.Set(float64(len(e.items)))
	}
}

// PredictPlugin is PredictPluginCtx with a background context.
func (e *Engine) PredictPlugin(pl Plugin, in PluginInput) (float64, error) {
	return e.PredictPluginCtx(context.Background(), pl, in)
}

// PredictPluginCtx evaluates an ensemble plugin through the engine. Plugins
// that implement Cacheable are memoized in the same LRU as the SMP kernels,
// keyed by (history fingerprint, window, plugin name, configuration salt) —
// the plugin identity in the key guarantees predictors never cross-serve —
// with concurrent misses for the same key coalesced exactly like kernel
// estimations. Non-cacheable plugins (the forecast-origin baselines, whose
// output depends on the live Prev samples) are evaluated directly.
func (e *Engine) PredictPluginCtx(ctx context.Context, pl Plugin, in PluginInput) (float64, error) {
	c, cacheable := pl.(Cacheable)
	if !cacheable {
		return pl.PredictTR(in)
	}
	span := otrace.FromContext(ctx)
	m := e.metrics.Load()
	if e.cacheSize < 0 {
		e.misses.Add(1)
		if m != nil {
			m.Misses.Inc()
		}
		span.AddEvent("cache-miss")
		return pl.PredictTR(in)
	}
	key := engineKey{fp: e.fingerprint(in.Days), window: in.Window, plugin: pl.Name(), salt: c.CacheSalt()}
	e.mu.Lock()
	if el, ok := e.items[key]; ok {
		e.lru.MoveToFront(el)
		entry := el.Value.(*engineEntry)
		e.mu.Unlock()
		e.hits.Add(1)
		if m != nil {
			m.Hits.Inc()
		}
		span.AddEvent("cache-hit")
		return entry.pred.TR, nil
	}
	if call, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		<-call.done
		if call.err != nil {
			return 0, call.err
		}
		e.hits.Add(1)
		if m != nil {
			m.Hits.Inc()
		}
		span.AddEvent("cache-hit", otrace.String("via", "inflight"))
		return call.entry.pred.TR, nil
	}
	call := &inflightCall{done: make(chan struct{})}
	e.inflight[key] = call
	e.mu.Unlock()
	e.misses.Add(1)
	if m != nil {
		m.Misses.Inc()
	}
	span.AddEvent("cache-miss")

	tr, err := pl.PredictTR(in)
	var entry *engineEntry
	if err == nil {
		entry = &engineEntry{pred: Prediction{TR: tr}}
	}
	call.entry, call.err = entry, err

	e.mu.Lock()
	delete(e.inflight, key)
	if err == nil {
		e.insertLocked(key, entry, m)
	}
	e.mu.Unlock()
	close(call.done)
	if err != nil {
		return 0, err
	}
	return tr, nil
}

// compute runs the full prediction pipeline on pooled scratch buffers. The
// metrics pointer is threaded in from lookup so the cold path is timed only
// when someone is watching; a sampled span gets engine.fit/engine.solve
// child spans covering the same intervals the histograms observe.
func (e *Engine) compute(span *otrace.Span, m *EngineMetrics, p SMP, days []*trace.Day, w Window) (*engineEntry, error) {
	sc := e.scratchPool.Get().(*scratch)
	defer e.scratchPool.Put(sc)
	fitSpan := span.StartChild("engine.fit")
	if fitSpan != nil {
		fitSpan.SetAttr(otrace.Int("history-days", len(days)))
	}
	var fitStart time.Time
	if m != nil {
		fitStart = time.Now()
	}
	kernel, pred, units, err := p.prepare(sc, days, w)
	if err != nil {
		fitSpan.SetError(err)
		fitSpan.End()
		return nil, err
	}
	solveSpan := fitSpan.StartChild("engine.solve")
	var solveStart time.Time
	if m != nil {
		solveStart = time.Now()
	}
	tr1, tr2, err := kernel.ReliabilitiesWS(sc.ws, units)
	if m != nil {
		now := time.Now()
		m.SolveSeconds.Observe(now.Sub(solveStart).Seconds())
		m.FitSeconds.Observe(now.Sub(fitStart).Seconds())
	}
	solveSpan.SetError(err)
	solveSpan.End()
	fitSpan.SetError(err)
	fitSpan.End()
	if err != nil {
		return nil, err
	}
	pred.TRByInit = [2]float64{tr1, tr2}
	pred.TR = pred.InitProb[0]*tr1 + pred.InitProb[1]*tr2
	return &engineEntry{kernel: kernel, pred: pred}, nil
}

// fingerprint hashes the identity and content of a day pool. Per-day content
// hashes are memoized by pointer (days are immutable, see the Engine doc);
// the combined fingerprint additionally mixes each day's date, period and
// length, so replacing a day with a same-content clone still hits while any
// change to the pool's composition misses.
func (e *Engine) fingerprint(days []*trace.Day) uint64 {
	h := uint64(fnvOffset64)
	h = mix64(h, uint64(len(days)))
	for _, d := range days {
		h = mix64(h, uint64(d.Date.Unix()))
		h = mix64(h, uint64(d.Period))
		h = mix64(h, uint64(len(d.Samples)))
		h = mix64(h, e.dayHash(d))
	}
	return h
}

func (e *Engine) dayHash(d *trace.Day) uint64 {
	e.hashMu.RLock()
	h, ok := e.dayHashes[d]
	e.hashMu.RUnlock()
	if ok {
		return h
	}
	h = hashSamples(d.Samples)
	e.hashMu.Lock()
	if len(e.dayHashes) >= maxDayHashes {
		e.dayHashes = make(map[*trace.Day]uint64)
	}
	e.dayHashes[d] = h
	e.hashMu.Unlock()
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 folds one 64-bit word into an FNV-1a style running hash.
func mix64(h, v uint64) uint64 {
	return (h ^ v) * fnvPrime64
}

// hashSamples digests a day's sample content word-wise.
func hashSamples(samples []trace.Sample) uint64 {
	h := uint64(fnvOffset64)
	for i := range samples {
		s := &samples[i]
		h = mix64(h, math.Float64bits(s.CPU))
		h = mix64(h, math.Float64bits(s.FreeMemMB))
		if s.Up {
			h = mix64(h, 1)
		} else {
			h = mix64(h, 2)
		}
	}
	return h
}
