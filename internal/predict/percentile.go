package predict

import (
	"fmt"
	"math"
	"sort"

	"fgcs/internal/avail"
)

// Percentile is the quantile predictor (crane's pkg/prediction/percentile
// shape): score each history day by the fraction of the query window it
// spent in a recoverable state, then report a chosen quantile of that
// per-day distribution as the TR. The median (the default) is robust to a
// single anomalous day; lower quantiles give a conservative estimate that
// tracks the machine's bad days.
type Percentile struct {
	// Cfg is the availability-model configuration used to classify the
	// history windows.
	Cfg avail.Config
	// HistoryDays bounds how many of the most recent days are scored
	// (zero means all provided).
	HistoryDays int
	// Quantile in (0, 1] selects which quantile of the per-day
	// availability distribution becomes the prediction: 0.5 is the
	// median, lower is more conservative. Lower interpolation (the floor
	// index of the sorted scores) keeps the result bit-exact.
	Quantile float64
	// MarginFraction shaves a safety margin off the final TR:
	// tr *= (1 - MarginFraction).
	MarginFraction float64
}

// DefaultPercentile returns the quantile predictor at the median with no
// margin.
func DefaultPercentile() Percentile {
	return Percentile{Cfg: avail.DefaultConfig(), Quantile: 0.5}
}

// Name implements Plugin.
func (Percentile) Name() string { return "PCT" }

// CacheSalt implements Cacheable: Percentile is a pure function of (Days,
// Window, knobs), so the engine may memoize it.
func (p Percentile) CacheSalt() uint64 {
	h := uint64(fnvOffset64)
	h = mix64(h, math.Float64bits(p.Cfg.Th1))
	h = mix64(h, math.Float64bits(p.Cfg.Th2))
	h = mix64(h, uint64(p.Cfg.SuspendLimit))
	h = mix64(h, math.Float64bits(p.Cfg.GuestMemMB))
	h = mix64(h, uint64(p.HistoryDays))
	h = mix64(h, math.Float64bits(p.Quantile))
	h = mix64(h, math.Float64bits(p.MarginFraction))
	return h
}

// PredictTR implements Plugin.
func (p Percentile) PredictTR(in PluginInput) (float64, error) {
	w := in.Window
	if err := w.Validate(); err != nil {
		return 0, err
	}
	// Cacheable contract: only Days, Window and the receiver's own knobs
	// may influence the result (in.Cfg/Prev/State are ignored) — the cache
	// salt covers exactly the receiver. Callers wanting a per-query config
	// copy the struct and set Cfg before calling.
	cfg := p.Cfg
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	q := p.Quantile
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("predict: percentile: quantile %g outside (0, 1]", q)
	}
	days := truncDays(in.Days, p.HistoryDays)
	if len(days) == 0 {
		return 0, fmt.Errorf("predict: percentile: no history days")
	}
	scores := make([]float64, 0, len(days))
	for _, d := range days {
		samples := d.Window(w.Start, w.Length)
		if len(samples) == 0 {
			continue
		}
		up := 0
		states := avail.Classify(samples, cfg, d.Period)
		for _, st := range states {
			if st.Recoverable() {
				up++
			}
		}
		scores = append(scores, float64(up)/float64(len(states)))
	}
	if len(scores) == 0 {
		return 0, fmt.Errorf("predict: percentile: no history windows overlap %v", w)
	}
	sort.Float64s(scores)
	tr := scores[int(q*float64(len(scores)-1))]
	tr *= 1 - p.MarginFraction
	if tr < 0 {
		tr = 0
	}
	if tr > 1 {
		tr = 1
	}
	return tr, nil
}
