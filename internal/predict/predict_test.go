package predict

import (
	"math"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

var monday = time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC)

const period = trace.DefaultPeriod

// idleDay returns a fully idle, fully up day.
func idleDay(offsetDays int) *trace.Day {
	d := trace.NewDay(monday.AddDate(0, 0, offsetDays), period)
	for i := range d.Samples {
		d.Samples[i].CPU = 5
		d.Samples[i].FreeMemMB = 400
	}
	return d
}

// failAt overlays an unavailability occurrence (URR) starting at the offset.
func failAt(d *trace.Day, start, hold time.Duration) *trace.Day {
	lo, hi := d.IndexAt(start), d.IndexAt(start+hold)
	for i := lo; i < hi && i < len(d.Samples); i++ {
		d.Samples[i].Up = false
	}
	return d
}

// busyAt overlays sustained high CPU load.
func busyAt(d *trace.Day, start, hold time.Duration, cpu float64) *trace.Day {
	lo, hi := d.IndexAt(start), d.IndexAt(start+hold)
	for i := lo; i < hi && i < len(d.Samples); i++ {
		d.Samples[i].CPU = cpu
	}
	return d
}

func defaultSMP() SMP { return SMP{Cfg: avail.DefaultConfig()} }

func TestWindowValidate(t *testing.T) {
	good := []Window{
		{Start: 0, Length: time.Hour},
		{Start: 8 * time.Hour, Length: 10 * time.Hour},
		{Start: 23 * time.Hour, Length: time.Hour},
	}
	for _, w := range good {
		if err := w.Validate(); err != nil {
			t.Errorf("%v rejected: %v", w, err)
		}
	}
	bad := []Window{
		{Start: -time.Hour, Length: time.Hour},
		{Start: 25 * time.Hour, Length: time.Hour},
		{Start: 8 * time.Hour, Length: 0},
		{Start: 20 * time.Hour, Length: 5 * time.Hour},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("%v accepted", w)
		}
	}
}

func TestWindowStringAndUnits(t *testing.T) {
	w := Window{Start: 8*time.Hour + 30*time.Minute, Length: 2 * time.Hour}
	if w.String() != "08:30+2h0m0s" {
		t.Fatalf("String = %q", w.String())
	}
	if w.Units(6*time.Second) != 1200 {
		t.Fatalf("Units = %d", w.Units(6*time.Second))
	}
}

func TestSMPPredictDeterministicFailureRate(t *testing.T) {
	// 10 history days; on 4 of them the machine fails at 9:00 within the
	// 8:00-10:00 window. Predicted TR for that window should be ~0.6.
	var days []*trace.Day
	for i := 0; i < 10; i++ {
		d := idleDay(i)
		if i%10 < 4 {
			failAt(d, 9*time.Hour, 30*time.Minute)
		}
		days = append(days, d)
	}
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	pred, err := defaultSMP().Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.HistoryWindows != 10 {
		t.Fatalf("HistoryWindows = %d", pred.HistoryWindows)
	}
	if math.Abs(pred.TR-0.6) > 1e-9 {
		t.Fatalf("TR = %v, want 0.6", pred.TR)
	}
	// All history windows start idle.
	if pred.InitProb[0] != 1 || pred.InitProb[1] != 0 {
		t.Fatalf("InitProb = %v", pred.InitProb)
	}
}

func TestSMPPredictAllClear(t *testing.T) {
	days := []*trace.Day{idleDay(0), idleDay(1), idleDay(2)}
	pred, err := defaultSMP().Predict(days, Window{Start: 8 * time.Hour, Length: 10 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if pred.TR != 1 {
		t.Fatalf("TR = %v, want 1 with no observed failures", pred.TR)
	}
}

func TestSMPPredictTRMonotoneInLength(t *testing.T) {
	var days []*trace.Day
	for i := 0; i < 12; i++ {
		d := idleDay(i)
		if i%3 == 0 {
			busyAt(d, time.Duration(9+i%4)*time.Hour, 10*time.Minute, 95)
		}
		days = append(days, d)
	}
	// Each window length estimates its own kernel from its own data, so
	// strict monotonicity is not guaranteed across lengths; it must hold
	// up to estimation slack, and the extremes must be ordered.
	prev := 1.1
	var first, last float64
	for i, hrs := range []int{1, 2, 3, 5, 10} {
		w := Window{Start: 8 * time.Hour, Length: time.Duration(hrs) * time.Hour}
		pred, err := defaultSMP().Predict(days, w)
		if err != nil {
			t.Fatal(err)
		}
		if pred.TR > prev+0.15 {
			t.Fatalf("TR jumped with window length at %dh: %v > %v", hrs, pred.TR, prev)
		}
		prev = pred.TR
		if i == 0 {
			first = pred.TR
		}
		last = pred.TR
	}
	if last > first {
		t.Fatalf("TR(10h)=%v above TR(1h)=%v", last, first)
	}
}

func TestSMPHistoryDaysLimit(t *testing.T) {
	// Old days all fail; the 5 most recent are clean. With HistoryDays=5
	// the prediction must ignore the failures.
	var days []*trace.Day
	for i := 0; i < 10; i++ {
		d := idleDay(i)
		if i < 5 {
			failAt(d, 9*time.Hour, time.Hour)
		}
		days = append(days, d)
	}
	w := Window{Start: 8 * time.Hour, Length: 3 * time.Hour}
	p := defaultSMP()
	p.HistoryDays = 5
	pred, err := p.Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TR != 1 {
		t.Fatalf("TR = %v, want 1 (old failures must be outside the history horizon)", pred.TR)
	}
	if pred.HistoryWindows != 5 {
		t.Fatalf("HistoryWindows = %d, want 5", pred.HistoryWindows)
	}
	// Without the limit the failures count.
	pred, err = defaultSMP().Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TR >= 1 {
		t.Fatalf("unlimited history TR = %v, want < 1", pred.TR)
	}
}

func TestSMPPredictFrom(t *testing.T) {
	// Failures only ever happen out of S2 (heavy load precedes them).
	var days []*trace.Day
	for i := 0; i < 8; i++ {
		d := idleDay(i)
		busyAt(d, 9*time.Hour, 30*time.Minute, 40) // S2 period
		if i%2 == 0 {
			busyAt(d, 9*time.Hour+30*time.Minute, 10*time.Minute, 95) // S3
		}
		days = append(days, d)
	}
	w := Window{Start: 9 * time.Hour, Length: 2 * time.Hour}
	p := defaultSMP()
	tr2, err := p.PredictFrom(days, w, avail.S2)
	if err != nil {
		t.Fatal(err)
	}
	if tr2 >= 1 || tr2 < 0 {
		t.Fatalf("TR from S2 = %v", tr2)
	}
	if _, err := p.PredictFrom(days, w, avail.S5); err == nil {
		t.Fatal("failure initial state accepted")
	}
}

func TestSMPPredictErrors(t *testing.T) {
	p := defaultSMP()
	if _, err := p.Predict(nil, Window{Start: 0, Length: time.Hour}); err == nil {
		t.Fatal("empty history accepted")
	}
	days := []*trace.Day{idleDay(0)}
	if _, err := p.Predict(days, Window{Start: -1, Length: time.Hour}); err == nil {
		t.Fatal("invalid window accepted")
	}
	if _, err := p.Predict(days, Window{Start: 0, Length: time.Second}); err == nil {
		t.Fatal("sub-period window accepted")
	}
	bad := p
	bad.Cfg.Th1 = 90
	bad.Cfg.Th2 = 10
	if _, err := bad.Predict(days, Window{Start: 0, Length: time.Hour}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestTimeSeriesPredictDayIdle(t *testing.T) {
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.Last{}}
	ok, err := ts.PredictDay(idleDay(0), Window{Start: 8 * time.Hour, Length: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("idle day predicted to fail")
	}
}

func TestTimeSeriesPredictDayHeavyLoadPersists(t *testing.T) {
	// Heavy load through the previous window: LAST predicts the heavy
	// load persists → predicted failure.
	d := idleDay(0)
	busyAt(d, 6*time.Hour, 2*time.Hour, 90)
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.Last{}}
	ok, err := ts.PredictDay(d, Window{Start: 8 * time.Hour, Length: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("LAST did not extrapolate the heavy load")
	}
}

func TestTimeSeriesPredictDayDownAtOrigin(t *testing.T) {
	d := idleDay(0)
	failAt(d, 7*time.Hour, time.Hour+time.Minute)
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.Last{}}
	ok, err := ts.PredictDay(d, Window{Start: 8 * time.Hour, Length: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("machine down at origin predicted to survive")
	}
}

func TestTimeSeriesPredictDayWindowAtMidnight(t *testing.T) {
	// No preceding samples: must not error, falls back to idle forecast.
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.AR{P: 8}}
	ok, err := ts.PredictDay(idleDay(0), Window{Start: 0, Length: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("midnight window on an idle day predicted to fail")
	}
}

func TestTimeSeriesPredictAggregates(t *testing.T) {
	days := []*trace.Day{idleDay(0), idleDay(1)}
	busyAt(days[1], 6*time.Hour, 2*time.Hour, 90)
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.Last{}}
	tr, err := ts.Predict(days, Window{Start: 8 * time.Hour, Length: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if tr != 0.5 {
		t.Fatalf("aggregate TR = %v, want 0.5", tr)
	}
	if _, err := ts.Predict(nil, Window{Start: 0, Length: time.Hour}); err == nil {
		t.Fatal("empty day set accepted")
	}
}

func TestTimeSeriesErrors(t *testing.T) {
	ts := TimeSeries{Cfg: avail.DefaultConfig()}
	if _, err := ts.PredictDay(idleDay(0), Window{Start: 0, Length: time.Hour}); err == nil {
		t.Fatal("nil fitter accepted")
	}
	ts.Fitter = timeseries.Last{}
	if _, err := ts.PredictDay(idleDay(0), Window{Start: -1, Length: time.Hour}); err == nil {
		t.Fatal("invalid window accepted")
	}
}

func TestEmpiricalTR(t *testing.T) {
	cfg := avail.DefaultConfig()
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	days := []*trace.Day{
		idleDay(0),
		failAt(idleDay(1), 9*time.Hour, 10*time.Minute),
		// Failed at the window start: excluded from the population.
		failAt(idleDay(2), 7*time.Hour, 90*time.Minute),
	}
	tr, n := EmpiricalTR(days, w, cfg)
	if n != 2 {
		t.Fatalf("usable days = %d, want 2", n)
	}
	if tr != 0.5 {
		t.Fatalf("empirical TR = %v, want 0.5", tr)
	}
	if tr, n := EmpiricalTR(nil, w, cfg); tr != 0 || n != 0 {
		t.Fatal("empty day set should report 0,0")
	}
}

func TestEvaluateSMPPerfectOnStationaryPattern(t *testing.T) {
	// Train and test sets have identical failure statistics: every third
	// day fails inside the window. The SMP prediction should land close
	// to the empirical TR.
	var train, test []*trace.Day
	for i := 0; i < 12; i++ {
		d := idleDay(i)
		if i%3 == 0 {
			failAt(d, 9*time.Hour, 20*time.Minute)
		}
		train = append(train, d)
	}
	for i := 12; i < 24; i++ {
		d := idleDay(i)
		if i%3 == 0 {
			failAt(d, 9*time.Hour, 20*time.Minute)
		}
		test = append(test, d)
	}
	sp := trace.Split{Train: train, Test: test}
	ev, err := EvaluateSMP(defaultSMP(), sp, Window{Start: 8 * time.Hour, Length: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if ev.RelErr > 0.05 {
		t.Fatalf("relative error %v too high on a stationary pattern (pred %v, emp %v)",
			ev.RelErr, ev.TRPred, ev.TREmp)
	}
	if ev.TestDays != 12 {
		t.Fatalf("TestDays = %d", ev.TestDays)
	}
	if ev.Predictor != "SMP" {
		t.Fatalf("Predictor = %q", ev.Predictor)
	}
}

func TestEvaluateTimeSeries(t *testing.T) {
	var test []*trace.Day
	for i := 0; i < 6; i++ {
		test = append(test, idleDay(i))
	}
	sp := trace.Split{Test: test}
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.BM{P: 8}}
	ev, err := EvaluateTimeSeries(ts, sp, Window{Start: 8 * time.Hour, Length: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TRPred != 1 || ev.TREmp != 1 || ev.RelErr != 0 {
		t.Fatalf("evaluation = %+v", ev)
	}
	if ev.Predictor != "BM(8)" {
		t.Fatalf("Predictor = %q", ev.Predictor)
	}
}

func TestEvaluateErrorsOnNoUsableTestDays(t *testing.T) {
	// Every test day is failed at the window start.
	var test []*trace.Day
	for i := 0; i < 3; i++ {
		test = append(test, failAt(idleDay(i), 7*time.Hour, 3*time.Hour))
	}
	sp := trace.Split{Train: []*trace.Day{idleDay(9)}, Test: test}
	w := Window{Start: 8 * time.Hour, Length: time.Hour}
	if _, err := EvaluateSMP(defaultSMP(), sp, w); err == nil {
		t.Fatal("EvaluateSMP accepted an unusable test set")
	}
	ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.Last{}}
	if _, err := EvaluateTimeSeries(ts, sp, w); err == nil {
		t.Fatal("EvaluateTimeSeries accepted an unusable test set")
	}
}

func TestEstimationModes(t *testing.T) {
	// A machine that fails at 09:00 every day, recovering afterwards.
	var days []*trace.Day
	for i := 0; i < 10; i++ {
		days = append(days, failAt(idleDay(i), 9*time.Hour, 20*time.Minute))
	}
	w := Window{Start: 8 * time.Hour, Length: 3 * time.Hour}
	absorb := SMP{Cfg: avail.DefaultConfig(), Estimation: EstimateAbsorb}
	predA, err := absorb.Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	// Absorb semantics nails the deterministic per-window failure.
	if predA.TR > 0.01 {
		t.Fatalf("absorb TR = %v, want ~0", predA.TR)
	}
	restart := SMP{Cfg: avail.DefaultConfig(), Estimation: EstimateRestart}
	predR, err := restart.Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	// Restart semantics dilutes the estimate with post-recovery data but
	// must still predict substantially degraded reliability.
	if predR.TR >= 0.75 {
		t.Fatalf("restart TR = %v, want well below 1", predR.TR)
	}
	if predR.TR < predA.TR {
		t.Fatalf("restart TR %v below absorb TR %v", predR.TR, predA.TR)
	}
}

func TestPredictCIBracketsPoint(t *testing.T) {
	var days []*trace.Day
	for i := 0; i < 20; i++ {
		d := idleDay(i)
		if i%4 == 0 {
			failAt(d, 9*time.Hour, 20*time.Minute)
		}
		days = append(days, d)
	}
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	iv, err := defaultSMP().PredictCI(days, w, 0.9, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > iv.TR || iv.TR > iv.Hi {
		t.Fatalf("interval [%v, %v] does not bracket the point %v", iv.Lo, iv.Hi, iv.TR)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Fatalf("interval outside [0,1]: %+v", iv)
	}
	// With 25% failing days, uncertainty must be visible.
	if iv.Hi-iv.Lo < 0.01 {
		t.Fatalf("interval [%v, %v] implausibly tight", iv.Lo, iv.Hi)
	}
	if iv.Level != 0.9 || iv.Resamples != 60 {
		t.Fatalf("metadata %+v", iv)
	}
}

func TestPredictCIDegenerateHistory(t *testing.T) {
	days := []*trace.Day{idleDay(0), idleDay(1), idleDay(2)}
	iv, err := defaultSMP().PredictCI(days, Window{Start: 8 * time.Hour, Length: time.Hour}, 0.9, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.TR != 1 || iv.Lo != 1 || iv.Hi != 1 {
		t.Fatalf("all-clear history interval = %+v, want degenerate at 1", iv)
	}
}

func TestPredictCIShrinksWithMoreData(t *testing.T) {
	mk := func(n int) []*trace.Day {
		var days []*trace.Day
		for i := 0; i < n; i++ {
			d := idleDay(i)
			if i%4 == 0 {
				failAt(d, 9*time.Hour, 20*time.Minute)
			}
			days = append(days, d)
		}
		return days
	}
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	small, err := defaultSMP().PredictCI(mk(8), w, 0.9, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	big, err := defaultSMP().PredictCI(mk(64), w, 0.9, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if big.Hi-big.Lo >= small.Hi-small.Lo {
		t.Fatalf("interval did not shrink: %v (n=8) vs %v (n=64)",
			small.Hi-small.Lo, big.Hi-big.Lo)
	}
}

func TestPredictCIValidation(t *testing.T) {
	days := []*trace.Day{idleDay(0)}
	w := Window{Start: 8 * time.Hour, Length: time.Hour}
	if _, err := defaultSMP().PredictCI(days, w, 0, 50, 1); err == nil {
		t.Fatal("level 0 accepted")
	}
	if _, err := defaultSMP().PredictCI(days, w, 1.2, 50, 1); err == nil {
		t.Fatal("level > 1 accepted")
	}
	if _, err := defaultSMP().PredictCI(days, w, 0.9, 3, 1); err == nil {
		t.Fatal("too few resamples accepted")
	}
	if _, err := defaultSMP().PredictCI(nil, w, 0.9, 50, 1); err == nil {
		t.Fatal("empty history accepted")
	}
}
