package predict

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden prediction file")

// goldenWorkload is the fixed-seed scenario the golden file pins: two
// machines, twelve days, one-minute sampling. Everything downstream of the
// workload generator — classification, sojourn extraction, kernel
// estimation, the Equation (3) solve, and every linear baseline — feeds into
// the recorded numbers, so any unintended numerical drift in any layer
// breaks this test bit-for-bit.
func goldenWorkload(t *testing.T) *trace.Dataset {
	t.Helper()
	ds, err := workload.Generate(workload.Params{
		Machines:         2,
		Days:             12,
		Start:            time.Date(2005, 8, 22, 0, 0, 0, 0, time.UTC),
		Period:           time.Minute,
		Seed:             7,
		TotalMemMB:       512,
		ActivityScale:    1.0,
		RebootProb:       0.07,
		DailyFailureProb: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// f64 formats a float with full round-trip precision, so the golden file is
// an exact bit-level record (two floats format identically iff they are the
// same float64).
func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func TestGoldenPredictions(t *testing.T) {
	ds := goldenWorkload(t)
	cfg := avail.DefaultConfig()
	windows := []Window{
		{Start: 8 * time.Hour, Length: time.Hour},
		{Start: 8 * time.Hour, Length: 4 * time.Hour},
		{Start: 14 * time.Hour, Length: 2 * time.Hour},
		{Start: 20 * time.Hour, Length: 3 * time.Hour},
	}

	var b strings.Builder
	b.WriteString("# machine window predictor value — regenerate with: go test ./internal/predict -run TestGoldenPredictions -update\n")
	for _, m := range ds.Machines {
		days := m.DaysOfType(trace.Weekday)
		for _, w := range windows {
			smp := SMP{Cfg: cfg}
			pred, err := smp.Predict(days, w)
			if err != nil {
				t.Fatalf("%s %v SMP: %v", m.ID, w, err)
			}
			fmt.Fprintf(&b, "%s %v SMP %s\n", m.ID, w, f64(pred.TR))
			fmt.Fprintf(&b, "%s %v SMP-windows %d\n", m.ID, w, pred.HistoryWindows)
			emp, n := EmpiricalTR(days, w, cfg)
			fmt.Fprintf(&b, "%s %v empirical %s over %d\n", m.ID, w, f64(emp), n)
			for _, fit := range timeseries.ReferenceSuite() {
				ts := TimeSeries{Cfg: cfg, Fitter: fit}
				tr, err := ts.Predict(days, w)
				if err != nil {
					t.Fatalf("%s %v %s: %v", m.ID, w, fit.Name(), err)
				}
				fmt.Fprintf(&b, "%s %v %s %s\n", m.ID, w, fit.Name(), f64(tr))
			}
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_predictions.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report the first diverging line, not a wall of text.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s\n(run with -update if the change is intended)", i+1, g, w)
		}
	}
}

// TestGoldenPredictionsPlugins pins the ensemble's day-structured plugins
// (FFT, PCT) bit-for-bit over the same fixed-seed workload and windows as
// TestGoldenPredictions; the spectral pipeline (classification, box-filter
// resampling, radix-2 FFT, spectrum selection, series evaluation) and the
// quantile scorer all feed the recorded numbers. The name matches both the
// `make golden` and `make golden-update` filters.
func TestGoldenPredictionsPlugins(t *testing.T) {
	ds := goldenWorkload(t)
	cfg := avail.DefaultConfig()
	windows := []Window{
		{Start: 8 * time.Hour, Length: time.Hour},
		{Start: 8 * time.Hour, Length: 4 * time.Hour},
		{Start: 14 * time.Hour, Length: 2 * time.Hour},
		{Start: 20 * time.Hour, Length: 3 * time.Hour},
	}
	fft := DefaultSpectral()
	fft.Cfg = cfg
	pct := DefaultPercentile()
	pct.Cfg = cfg
	plugins := []Plugin{fft, pct}

	var b strings.Builder
	b.WriteString("# machine window predictor value — regenerate with: go test ./internal/predict -run TestGoldenPredictionsPlugins -update\n")
	for _, m := range ds.Machines {
		days := m.DaysOfType(trace.Weekday)
		for _, w := range windows {
			for _, pl := range plugins {
				tr, err := pl.PredictTR(PluginInput{Days: days, Window: w, Period: m.Period})
				if err != nil {
					t.Fatalf("%s %v %s: %v", m.ID, w, pl.Name(), err)
				}
				if tr < 0 || tr > 1 {
					t.Fatalf("%s %v %s: TR %v outside [0, 1]", m.ID, w, pl.Name(), tr)
				}
				fmt.Fprintf(&b, "%s %v %s %s\n", m.ID, w, pl.Name(), f64(tr))
			}
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "golden_plugins.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s\n(run with -update if the change is intended)", i+1, g, w)
		}
	}
}

// TestGoldenDeterminism guards the guard: generating the workload and
// evaluating one prediction twice from scratch must agree exactly, otherwise
// the golden file would flake rather than catch regressions.
func TestGoldenDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		ds := goldenWorkload(t)
		days := ds.Machines[0].DaysOfType(trace.Weekday)
		w := Window{Start: 8 * time.Hour, Length: 4 * time.Hour}
		p, err := SMP{Cfg: avail.DefaultConfig()}.Predict(days, w)
		if err != nil {
			t.Fatal(err)
		}
		ts := TimeSeries{Cfg: avail.DefaultConfig(), Fitter: timeseries.ReferenceSuite()[0]}
		tr, err := ts.Predict(days, w)
		if err != nil {
			t.Fatal(err)
		}
		return p.TR, tr
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("non-deterministic predictions: (%v,%v) vs (%v,%v)", a1, a2, b1, b2)
	}
}
