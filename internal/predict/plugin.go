package predict

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

// Plugin is the uniform predictor surface the ensemble router selects over:
// fit from recorded day history and predict the temporal reliability of one
// (start, length) window. Implementations must be deterministic — the same
// PluginInput must always yield the same TR bit-for-bit, with no wall-clock
// reads, map-iteration dependence, or unseeded randomness — because routing
// decisions, golden traces, and the fleetsim transcript all hash predictor
// output. See docs/PREDICTORS.md for the authoring contract and a worked
// example.
type Plugin interface {
	// Name is the stable identifier used by the accuracy tracker, the
	// router, query-stats output and the docs reference table.
	Name() string
	// PredictTR returns the predicted probability, in [0, 1], that the
	// machine stays available for guest execution throughout in.Window.
	PredictTR(in PluginInput) (float64, error)
}

// PluginInput is everything a predictor may condition on. Day-structured
// predictors (SMP, FFT, PCT) read Days; forecast-origin predictors (the
// linear baselines) read Prev, the live samples immediately preceding the
// window. Either slice may be empty — plugins must fail or degrade
// gracefully, not panic.
type PluginInput struct {
	// Days holds completed history days of the target day's type, oldest
	// first, immutable (the same contract as SMP.Predict).
	Days []*trace.Day
	// Prev holds today's samples for the window immediately preceding
	// Window (equal length, clipped at midnight), for predictors that
	// forecast from the live origin rather than from day structure.
	Prev []trace.Sample
	// Window is the query window.
	Window Window
	// Period is the sampling period of Prev (Days carry their own).
	Period time.Duration
	// State is the machine's current availability state when known
	// (HaveState true); predictors that condition on the initial state
	// fall back to the historical initial-state mix otherwise.
	State avail.State
	// HaveState reports whether State is meaningful.
	HaveState bool
	// Cfg is the availability-model configuration (thresholds, guest
	// memory) the prediction must respect.
	Cfg avail.Config
}

// Cacheable marks plugins whose PredictTR is a pure function of (Days,
// Window) plus the plugin's own configuration — ignoring the request-scoped
// Prev, State and Cfg fields entirely — so the engine may memoize their
// results in the kernel LRU keyed by (history fingerprint, window, plugin
// name, CacheSalt). CacheSalt must fold every knob that changes the output;
// two configurations with different predictions must never share a salt.
// Callers wanting a per-query availability config copy the plugin value and
// set its Cfg field before the call, which changes the salt with it.
type Cacheable interface {
	// CacheSalt digests the plugin's configuration for the cache key.
	CacheSalt() uint64
}

// PluginOptions parameterizes plugin construction with the two settings
// every predictor shares; plugin-specific knobs keep their registered
// defaults (construct the concrete type directly to override them).
type PluginOptions struct {
	// Cfg is the availability-model configuration.
	Cfg avail.Config
	// HistoryDays bounds how many of the most recent days are used (zero
	// means all provided).
	HistoryDays int
}

// PluginFactory builds a configured plugin instance.
type PluginFactory func(opts PluginOptions) Plugin

var (
	pluginMu        sync.RWMutex
	pluginFactories = map[string]PluginFactory{}
)

// RegisterPlugin adds a predictor factory under its stable name. Built-ins
// register from this package's init; external predictors register from their
// own. Re-registering a name panics — names are identity everywhere
// (tracker keys, router state, docs table), so a silent overwrite would
// corrupt scoring.
func RegisterPlugin(name string, f PluginFactory) {
	if name == "" || f == nil {
		panic("predict: RegisterPlugin with empty name or nil factory")
	}
	pluginMu.Lock()
	defer pluginMu.Unlock()
	if _, dup := pluginFactories[name]; dup {
		panic(fmt.Sprintf("predict: plugin %q registered twice", name))
	}
	pluginFactories[name] = f
}

// PluginNames returns the registered predictor names, sorted.
func PluginNames() []string {
	pluginMu.RLock()
	defer pluginMu.RUnlock()
	names := make([]string, 0, len(pluginFactories))
	for n := range pluginFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPlugin constructs the named plugin, reporting false for unknown names.
func NewPlugin(name string, opts PluginOptions) (Plugin, bool) {
	pluginMu.RLock()
	f, ok := pluginFactories[name]
	pluginMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(opts), true
}

func init() {
	RegisterPlugin("SMP", func(opts PluginOptions) Plugin {
		return smpPlugin{p: SMP{Cfg: opts.Cfg, HistoryDays: opts.HistoryDays}}
	})
	RegisterPlugin("FFT", func(opts PluginOptions) Plugin {
		s := DefaultSpectral()
		s.Cfg = opts.Cfg
		s.HistoryDays = opts.HistoryDays
		return s
	})
	RegisterPlugin("PCT", func(opts PluginOptions) Plugin {
		p := DefaultPercentile()
		p.Cfg = opts.Cfg
		p.HistoryDays = opts.HistoryDays
		return p
	})
	for _, f := range timeseries.ReferenceSuite() {
		fitter := f
		RegisterPlugin(fitter.Name(), func(opts PluginOptions) Plugin {
			return timeSeriesPlugin{ts: TimeSeries{Cfg: opts.Cfg, Fitter: fitter}}
		})
	}
}

// smpPlugin adapts the paper's SMP predictor onto the plugin surface. When
// the caller knows the current state (a live query) the prediction is
// conditioned on it; otherwise the historical initial-state mix weights the
// two recoverable starts, exactly as SMP.Predict.
type smpPlugin struct {
	p SMP
}

func (s smpPlugin) Name() string { return s.p.Name() }

func (s smpPlugin) PredictTR(in PluginInput) (float64, error) {
	p := s.p
	if in.Cfg != (avail.Config{}) {
		p.Cfg = in.Cfg
	}
	if in.HaveState && in.State.Recoverable() {
		return p.PredictFrom(in.Days, in.Window, in.State)
	}
	pred, err := p.Predict(in.Days, in.Window)
	if err != nil {
		return 0, err
	}
	return pred.TR, nil
}

// timeSeriesPlugin adapts the linear baselines (AR/BM/MA/ARMA/LAST) onto
// the plugin surface. The underlying models classify a forecast trajectory
// into survive/fail, so the TR they emit is binary {0, 1}.
type timeSeriesPlugin struct {
	ts TimeSeries
}

func (t timeSeriesPlugin) Name() string { return t.ts.Name() }

func (t timeSeriesPlugin) PredictTR(in PluginInput) (float64, error) {
	ts := t.ts
	if in.Cfg != (avail.Config{}) {
		ts.Cfg = in.Cfg
	}
	survives, err := ts.PredictWindow(in.Prev, in.Window, in.Period)
	if err != nil {
		return 0, err
	}
	if survives {
		return 1, nil
	}
	return 0, nil
}

// truncDays applies the shared HistoryDays bound: keep the most recent n
// days when n > 0.
func truncDays(days []*trace.Day, n int) []*trace.Day {
	if n > 0 && len(days) > n {
		return days[len(days)-n:]
	}
	return days
}
