// Package predict is the paper's core contribution as a library: prediction
// of temporal reliability — the probability that a machine stays available
// for guest execution throughout a future time window — from monitor history
// logs.
//
// Two predictor families are provided. SMP is the paper's semi-Markov-process
// predictor (Section 4): it pools the same clock window from the most recent
// N days of the same type (weekday/weekend), estimates the sparse Q/H
// parameters, and solves Equation (3). TimeSeries is the reference baseline
// of Section 6.2: a linear time-series model fitted to the window preceding
// the query window, forecast multi-step-ahead and classified into
// availability states.
//
// The package also implements the evaluation methodology of Section 7:
// empirical TR over test days, relative error, and the training/test
// machinery shared by the Figure 5-8 experiments.
package predict

import (
	"fmt"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/smp"
	"fgcs/internal/timeseries"
	"fgcs/internal/trace"
)

// Window is a future time window specified by its start offset from midnight
// (W_init) and its length (T).
type Window struct {
	Start  time.Duration
	Length time.Duration
}

// String formats the window, e.g. "08:00+2h".
func (w Window) String() string {
	h := int(w.Start / time.Hour)
	m := int(w.Start/time.Minute) % 60
	return fmt.Sprintf("%02d:%02d+%s", h, m, w.Length)
}

// Validate checks the window is inside a day.
func (w Window) Validate() error {
	if w.Start < 0 || w.Start >= 24*time.Hour {
		return fmt.Errorf("predict: window start %v outside the day", w.Start)
	}
	if w.Length <= 0 || w.Start+w.Length > 24*time.Hour {
		return fmt.Errorf("predict: window %v does not fit in the day", w)
	}
	return nil
}

// Units converts the window length into discretization intervals of the
// given period (d in the paper; equal to the monitoring period).
func (w Window) Units(period time.Duration) int {
	return int(w.Length / period)
}

// Estimation selects how history windows are turned into training
// trajectories for the kernel estimator.
type Estimation int

const (
	// EstimateRestart (the default) harvests every unavailability
	// occurrence in a history window: the machine recovers after each
	// failure and its subsequent samples start a fresh trajectory. This
	// is what makes the prediction robust to isolated noise events
	// (Section 7.3) — an injected occurrence is one observation among
	// many.
	EstimateRestart Estimation = iota
	// EstimateAbsorb stops each history window at its first failure,
	// directly estimating the per-window absorption law. It is sharper
	// when failures recur at fixed clock times but treats every event as
	// the sole fate of its window, so single noise events perturb it
	// more. Retained as an ablation (BenchmarkAblationEstimation).
	EstimateAbsorb
)

// SMP is the semi-Markov availability predictor.
type SMP struct {
	// Cfg is the availability-model configuration (thresholds etc.).
	Cfg avail.Config
	// HistoryDays bounds how many of the most recent same-type days are
	// pooled into the estimate (N in Section 4.2). Zero means all
	// provided days.
	HistoryDays int
	// Smoothing is the optional pseudo-count passed to the estimator.
	Smoothing float64
	// Censoring selects the censored-sojourn policy.
	Censoring smp.CensorMode
	// Estimation selects restart (default) or absorb trajectory
	// extraction.
	Estimation Estimation
}

// Name implements a human-readable identifier used in experiment output.
func (SMP) Name() string { return "SMP" }

// Prediction is the result of an SMP query.
type Prediction struct {
	// TR is the initial-state-weighted temporal reliability.
	TR float64
	// TRByInit holds TR conditioned on starting in S1 and S2.
	TRByInit [2]float64
	// InitProb is the empirical distribution of the initial state over
	// the history windows (S1, S2), used to weight TRByInit.
	InitProb [2]float64
	// HistoryWindows is the number of history windows the estimate used.
	HistoryWindows int
}

// Predict computes the temporal reliability for the window on a future day,
// estimated from the history days (which must all be of the target day's
// type; use trace.Machine.DaysOfType or a trace.Split to select them).
//
// When the caller knows the machine's current state (a live query at
// W_init), use PredictFrom instead; Predict weights the two recoverable
// initial states by their historical frequency, which is the right thing for
// ahead-of-time evaluation.
func (p SMP) Predict(history []*trace.Day, w Window) (Prediction, error) {
	kernel, pred, units, err := p.prepare(nil, history, w)
	if err != nil {
		return Prediction{}, err
	}
	tr1, tr2, err := kernel.Reliabilities(units)
	if err != nil {
		return Prediction{}, err
	}
	pred.TRByInit = [2]float64{tr1, tr2}
	pred.TR = pred.InitProb[0]*tr1 + pred.InitProb[1]*tr2
	return pred, nil
}

// PredictFrom computes TR for a job starting in the given (recoverable)
// current state — the live query issued by the iShare job scheduler.
func (p SMP) PredictFrom(history []*trace.Day, w Window, init avail.State) (float64, error) {
	kernel, _, units, err := p.prepare(nil, history, w)
	if err != nil {
		return 0, err
	}
	return kernel.TR(init, units)
}

func periodOf(days []*trace.Day) time.Duration {
	if len(days) == 0 {
		return trace.DefaultPeriod
	}
	return days[0].Period
}

// scratch bundles the reusable per-query buffers of the engine's hot path:
// the classification/extraction arena and the solver workspace.
type scratch struct {
	ex *avail.Extractor
	ws *smp.Workspace
}

// prepare extracts sojourn sequences from the history windows and estimates
// the kernel, returning it along with the partially-filled Prediction
// (initial-state distribution, window count) and the window length in
// discretization units. The period is resolved once per history slice here;
// callers must not recompute it per query. When sc is non-nil its reusable
// buffers back classification and extraction (the engine's zero-alloc path);
// results are identical either way.
func (p SMP) prepare(sc *scratch, history []*trace.Day, w Window) (*smp.Kernel, Prediction, int, error) {
	var pred Prediction
	if err := w.Validate(); err != nil {
		return nil, pred, 0, err
	}
	if err := p.Cfg.Validate(); err != nil {
		return nil, pred, 0, err
	}
	if len(history) == 0 {
		return nil, pred, 0, fmt.Errorf("predict: no history days")
	}
	days := history
	if p.HistoryDays > 0 && len(days) > p.HistoryDays {
		days = days[len(days)-p.HistoryDays:] // most recent N
	}
	period := periodOf(days)
	units := w.Units(period)
	if units < 1 {
		return nil, pred, 0, fmt.Errorf("predict: window %v shorter than the sampling period", w)
	}
	absorb := p.Estimation == EstimateAbsorb
	var seqs [][]avail.Sojourn
	var initCount [2]float64
	windows := 0
	if sc != nil {
		sc.ex.Reset(p.Cfg, period)
		for _, d := range days {
			samples := d.Window(w.Start, w.Length)
			if len(samples) == 0 {
				continue
			}
			windows++
			// One classification pass yields both the training
			// sequences and the window's initial state.
			if st, ok := sc.ex.AddWindow(samples, absorb); ok {
				if st == avail.S1 {
					initCount[0]++
				} else {
					initCount[1]++
				}
			}
		}
		seqs = sc.ex.Seqs()
	} else {
		seqs = make([][]avail.Sojourn, 0, len(days))
		for _, d := range days {
			samples := d.Window(w.Start, w.Length)
			if len(samples) == 0 {
				continue
			}
			windows++
			if absorb {
				seqs = append(seqs, avail.ExtractSojourns(samples, p.Cfg, period))
			} else {
				// Restart: harvest every trajectory in the window — the
				// machine recovers after each unavailability occurrence
				// even though a guest job would not.
				seqs = avail.AppendTrajectories(seqs, samples, p.Cfg, period)
			}
			if st, ok := avail.InitialState(samples, p.Cfg, period); ok {
				if st == avail.S1 {
					initCount[0]++
				} else {
					initCount[1]++
				}
			}
		}
	}
	pred.HistoryWindows = windows
	total := initCount[0] + initCount[1]
	if total > 0 {
		pred.InitProb = [2]float64{initCount[0] / total, initCount[1] / total}
	} else {
		pred.InitProb = [2]float64{1, 0} // no usable history: assume idle start
	}
	est := smp.Estimator{Horizon: units, Smoothing: p.Smoothing, Censoring: p.Censoring}
	kernel, err := est.Estimate(seqs)
	if err != nil {
		return nil, pred, 0, err
	}
	return kernel, pred, units, nil
}

// TimeSeries is the linear-time-series baseline predictor: fit on the window
// preceding the query window (same length), forecast the host CPU load
// multi-step-ahead across the query window, classify the forecast into
// availability states, and report survival of the predicted transitions.
type TimeSeries struct {
	// Cfg is the availability-model configuration used to classify the
	// forecast trajectory.
	Cfg avail.Config
	// Fitter is the model family (one of timeseries.ReferenceSuite()).
	Fitter timeseries.Fitter
}

// Name returns the underlying model name.
func (t TimeSeries) Name() string { return t.Fitter.Name() }

// PredictDay forecasts the query window of one specific day from that day's
// preceding samples and reports whether the predicted trajectory survives
// (no failure states). This mirrors RPS usage: the model sees only the
// immediately preceding window of equal length.
func (t TimeSeries) PredictDay(day *trace.Day, w Window) (bool, error) {
	prevStart := w.Start - w.Length
	if prevStart < 0 {
		prevStart = 0
	}
	return t.PredictWindow(day.Window(prevStart, w.Start-prevStart), w, day.Period)
}

// PredictWindow is PredictDay for a live, partially recorded day: prev holds
// the samples of the window immediately preceding w (equal length, clipped
// at midnight), and period is their sampling period. This is what lets the
// state manager score the linear baselines online, where "today" exists only
// as the recorder's growing sample log rather than a completed trace day.
func (t TimeSeries) PredictWindow(prev []trace.Sample, w Window, period time.Duration) (bool, error) {
	if err := w.Validate(); err != nil {
		return false, err
	}
	if err := t.Cfg.Validate(); err != nil {
		return false, err
	}
	if t.Fitter == nil {
		return false, fmt.Errorf("predict: no fitter configured")
	}
	// Build the training series from reachable samples; machine-down
	// samples carry no load observation.
	var series []float64
	lastFree := t.Cfg.GuestMemMB + 1 // optimistic default when unobserved
	upAtOrigin := true
	for _, s := range prev {
		if s.Up {
			series = append(series, s.CPU)
			lastFree = s.FreeMemMB
		}
	}
	if len(prev) > 0 {
		upAtOrigin = prev[len(prev)-1].Up
	}
	if !upAtOrigin {
		// Machine is down at the forecast origin: the only sensible
		// prediction for the window is failure.
		return false, nil
	}
	if len(series) == 0 {
		// Nothing observed before the window (e.g. a window starting at
		// midnight after an outage): predict idle.
		series = []float64{0}
	}
	model, err := t.Fitter.Fit(series)
	if err != nil {
		return false, err
	}
	units := w.Units(period)
	forecast := model.Forecast(units)
	predicted := make([]trace.Sample, len(forecast))
	for i, cpu := range forecast {
		if cpu < 0 {
			cpu = 0
		}
		if cpu > 100 {
			cpu = 100
		}
		// CPU is forecast by the linear model; memory and machine-up
		// follow the persistence forecast, as RPS models only the load
		// signal.
		predicted[i] = trace.Sample{CPU: cpu, FreeMemMB: lastFree, Up: true}
	}
	return avail.WindowSurvives(predicted, t.Cfg, period), nil
}

// Predict aggregates PredictDay over a set of days: the predicted temporal
// reliability is the fraction of days whose forecast trajectory survives the
// window.
func (t TimeSeries) Predict(days []*trace.Day, w Window) (float64, error) {
	if len(days) == 0 {
		return 0, fmt.Errorf("predict: no days")
	}
	survived := 0
	for _, d := range days {
		ok, err := t.PredictDay(d, w)
		if err != nil {
			return 0, err
		}
		if ok {
			survived++
		}
	}
	return float64(survived) / float64(len(days)), nil
}
