package predict

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/trace"
	"fgcs/internal/workload"
)

// failHistory builds n idle days where every k-th day fails inside 8:00-10:00.
func failHistory(n, k int) []*trace.Day {
	var days []*trace.Day
	for i := 0; i < n; i++ {
		d := idleDay(i)
		if k > 0 && i%k == 0 {
			failAt(d, 9*time.Hour, 30*time.Minute)
		}
		days = append(days, d)
	}
	return days
}

func TestEngineMatchesSMP(t *testing.T) {
	days := failHistory(12, 3)
	busyAt(days[1], 8*time.Hour, 30*time.Minute, 45) // some S2 starts
	windows := []Window{
		{Start: 8 * time.Hour, Length: 2 * time.Hour},
		{Start: 8 * time.Hour, Length: 30 * time.Minute},
		{Start: 0, Length: 10 * time.Hour},
	}
	preds := []SMP{
		defaultSMP(),
		{Cfg: avail.DefaultConfig(), HistoryDays: 5},
		{Cfg: avail.DefaultConfig(), Smoothing: 0.5},
		{Cfg: avail.DefaultConfig(), Estimation: EstimateAbsorb},
	}
	e := NewEngine(EngineConfig{})
	for _, p := range preds {
		for _, w := range windows {
			want, err := p.Predict(days, w)
			if err != nil {
				t.Fatal(err)
			}
			// Twice: the second answer comes from the cache.
			for pass := 0; pass < 2; pass++ {
				got, err := e.Predict(p, days, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("pass %d: engine %+v != serial %+v (pred %+v, window %v)", pass, got, want, p, w)
				}
			}
			for _, init := range []avail.State{avail.S1, avail.S2} {
				wantTR, err := p.PredictFrom(days, w, init)
				if err != nil {
					t.Fatal(err)
				}
				gotTR, err := e.PredictFrom(p, days, w, init)
				if err != nil {
					t.Fatal(err)
				}
				if gotTR != wantTR {
					t.Fatalf("PredictFrom(%v) = %v, serial %v", init, gotTR, wantTR)
				}
			}
		}
	}
	if _, err := e.PredictFrom(defaultSMP(), days, windows[0], avail.S5); err == nil {
		t.Fatal("failure initial state accepted")
	}
}

func TestEngineCacheCounters(t *testing.T) {
	days := failHistory(10, 4)
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	e := NewEngine(EngineConfig{})
	p := defaultSMP()
	if _, err := e.Predict(p, days, w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Predict(p, days, w); err != nil {
			t.Fatal(err)
		}
	}
	// PredictFrom on the same query is served from the same entry.
	if _, err := e.PredictFrom(p, days, w, avail.S1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != 5 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 5 hits / 1 entry", st)
	}

	// HistoryDays truncation is folded into the key: querying the full
	// slice with HistoryDays=6 and querying the last 6 days directly are
	// the same cache entry.
	limited := p
	limited.HistoryDays = 6
	if _, err := e.Predict(limited, days, w); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(p, days[len(days)-6:], w); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Misses != 2 || st.Hits != 6 {
		t.Fatalf("stats after truncated queries = %+v, want 2 misses / 6 hits", st)
	}
}

func TestEngineInvalidationOnNewDay(t *testing.T) {
	days := failHistory(8, 4)
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	e := NewEngine(EngineConfig{})
	p := defaultSMP()
	first, err := e.Predict(p, days, w)
	if err != nil {
		t.Fatal(err)
	}
	// A new day arrives: the extended pool is a different fingerprint, so
	// the stale entry cannot be served.
	grown := append(append([]*trace.Day{}, days...), failAt(idleDay(8), 9*time.Hour, time.Hour))
	second, err := e.Predict(p, grown, w)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", st)
	}
	if second.TR >= first.TR {
		t.Fatalf("TR did not react to the new failing day: %v -> %v", first.TR, second.TR)
	}
	// Same content in freshly cloned days still hits: the fingerprint is
	// content-based, not pointer-based.
	clones := make([]*trace.Day, len(days))
	for i, d := range days {
		clones[i] = d.Clone()
	}
	got, err := e.Predict(p, clones, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Fatalf("cloned history returned %+v, want cached %+v", got, first)
	}
	if st := e.Stats(); st.Hits != 1 {
		t.Fatalf("cloned history did not hit: %+v", st)
	}
}

func TestEngineLRUEviction(t *testing.T) {
	days := failHistory(10, 3)
	e := NewEngine(EngineConfig{CacheSize: 2})
	p := defaultSMP()
	ws := []Window{
		{Start: 8 * time.Hour, Length: time.Hour},
		{Start: 9 * time.Hour, Length: time.Hour},
		{Start: 10 * time.Hour, Length: time.Hour},
	}
	for _, w := range ws {
		if _, err := e.Predict(p, days, w); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// ws[0] was evicted (least recent); ws[1] and ws[2] still hit.
	for _, w := range ws[1:] {
		if _, err := e.Predict(p, days, w); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Predict(p, days, ws[0]); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 2 hits / 4 misses", st)
	}
}

func TestEngineErrorsNotCached(t *testing.T) {
	e := NewEngine(EngineConfig{})
	p := defaultSMP()
	bad := Window{Start: -time.Hour, Length: time.Hour}
	for i := 0; i < 2; i++ {
		if _, err := e.Predict(p, failHistory(3, 0), bad); err == nil {
			t.Fatal("invalid window accepted")
		}
	}
	st := e.Stats()
	if st.Entries != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 0 entries / 2 misses", st)
	}
}

func TestEngineCachingDisabled(t *testing.T) {
	days := failHistory(8, 4)
	w := Window{Start: 8 * time.Hour, Length: time.Hour}
	e := NewEngine(EngineConfig{CacheSize: -1})
	p := defaultSMP()
	want, err := p.Predict(days, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := e.Predict(p, days, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("uncached engine diverged: %+v != %+v", got, want)
		}
	}
	st := e.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want pure misses with caching disabled", st)
	}
}

// TestEngineConcurrent hammers one engine from many goroutines over a small
// key set and checks, under -race, that every answer is identical to the
// serial predictor and that the miss counter equals the number of distinct
// keys (in-flight coalescing: concurrent misses for one key estimate once).
func TestEngineConcurrent(t *testing.T) {
	days := failHistory(12, 3)
	p := defaultSMP()
	windows := []Window{
		{Start: 8 * time.Hour, Length: time.Hour},
		{Start: 8 * time.Hour, Length: 2 * time.Hour},
		{Start: 14 * time.Hour, Length: 3 * time.Hour},
	}
	want := make([]Prediction, len(windows))
	for i, w := range windows {
		var err error
		want[i], err = p.Predict(days, w)
		if err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(EngineConfig{Workers: 8})
	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(windows)
				got, err := e.Predict(p, days, windows[i])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("window %v: %+v != %+v", windows[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Misses != uint64(len(windows)) {
		t.Fatalf("misses = %d, want %d (one per distinct key)", st.Misses, len(windows))
	}
	if total := st.Hits + st.Misses; total != goroutines*rounds {
		t.Fatalf("hits+misses = %d, want %d", total, goroutines*rounds)
	}

	// PredictBatch from several goroutines against the same shared cache.
	reqs := make([]BatchRequest, 0, 2*len(windows))
	for i, w := range windows {
		reqs = append(reqs, BatchRequest{Machine: fmt.Sprintf("m%d", i), History: days, Window: w})
	}
	for i, w := range windows {
		reqs = append(reqs, BatchRequest{Machine: fmt.Sprintf("m%d'", i), History: days, Window: w})
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := e.PredictBatch(p, reqs)
			for i, r := range res {
				if r.Err != nil {
					t.Error(r.Err)
					return
				}
				if !reflect.DeepEqual(r.Prediction, want[i%len(windows)]) {
					t.Errorf("batch result %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPredictBatchMatchesSerial is the determinism acceptance test: on a
// 20-machine, 90-day generated testbed, PredictBatch across the worker pool
// must be bit-identical to a serial SMP.Predict loop.
func TestPredictBatchMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full testbed generation in -short mode")
	}
	ds, err := workload.Generate(workload.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Machines) != 20 {
		t.Fatalf("testbed has %d machines, want 20", len(ds.Machines))
	}
	p := SMP{Cfg: avail.DefaultConfig(), HistoryDays: 30}
	windows := []Window{
		{Start: 8 * time.Hour, Length: 2 * time.Hour},
		{Start: 19 * time.Hour, Length: 3 * time.Hour},
	}
	var reqs []BatchRequest
	for _, m := range ds.Machines {
		days := m.DaysOfType(trace.Weekday)
		for _, w := range windows {
			reqs = append(reqs, BatchRequest{Machine: m.ID, History: days, Window: w})
		}
	}
	// Serial reference, straight through the predictor.
	serial := make([]Prediction, len(reqs))
	for i, r := range reqs {
		serial[i], err = p.Predict(r.History, r.Window)
		if err != nil {
			t.Fatalf("serial %s %v: %v", r.Machine, r.Window, err)
		}
	}
	for _, workers := range []int{1, 4} {
		e := NewEngine(EngineConfig{Workers: workers})
		res := e.PredictBatch(p, reqs)
		if len(res) != len(reqs) {
			t.Fatalf("got %d results for %d requests", len(res), len(reqs))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d %s: %v", workers, r.Machine, r.Err)
			}
			if r.Machine != reqs[i].Machine || r.Window != reqs[i].Window {
				t.Fatalf("workers=%d: result %d out of order: %s %v", workers, i, r.Machine, r.Window)
			}
			if !reflect.DeepEqual(r.Prediction, serial[i]) {
				t.Fatalf("workers=%d %s %v: parallel %+v != serial %+v",
					workers, r.Machine, r.Window, r.Prediction, serial[i])
			}
		}
	}
}
