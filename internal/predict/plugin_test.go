package predict

import (
	"testing"
	"time"

	"fgcs/internal/avail"
)

// TestPluginRegistry pins the built-in predictor set: the ensemble's docs,
// router candidate lists and the doccheck cross-check all key off these
// names.
func TestPluginRegistry(t *testing.T) {
	names := PluginNames()
	want := []string{"AR(8)", "ARMA(8,8)", "BM(8)", "FFT", "LAST", "MA(8)", "PCT", "SMP"}
	if len(names) != len(want) {
		t.Fatalf("registered plugins = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("registered plugins = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		pl, ok := NewPlugin(n, PluginOptions{Cfg: avail.DefaultConfig()})
		if !ok {
			t.Fatalf("NewPlugin(%q) not found", n)
		}
		if pl.Name() != n {
			t.Fatalf("plugin registered as %q names itself %q", n, pl.Name())
		}
	}
	if _, ok := NewPlugin("no-such-predictor", PluginOptions{}); ok {
		t.Fatal("unknown plugin constructed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterPlugin("SMP", func(PluginOptions) Plugin { return smpPlugin{} })
}

// TestPluginDeterminism repeats every day-structured plugin on the same
// input: the results must be bit-identical, the property golden traces and
// the fleetsim transcript hash rely on.
func TestPluginDeterminism(t *testing.T) {
	days := failHistory(10, 3)
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	in := PluginInput{Days: days, Window: w, Period: time.Minute}
	fft := DefaultSpectral()
	pct := DefaultPercentile()
	for _, pl := range []Plugin{fft, pct} {
		first, err := pl.PredictTR(in)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if first < 0 || first > 1 {
			t.Fatalf("%s: TR %v outside [0, 1]", pl.Name(), first)
		}
		for i := 0; i < 5; i++ {
			again, err := pl.PredictTR(in)
			if err != nil {
				t.Fatalf("%s: %v", pl.Name(), err)
			}
			if again != first {
				t.Fatalf("%s: non-deterministic TR: %v then %v", pl.Name(), first, again)
			}
		}
	}
}

// TestPluginCacheSaltIsolation drives differently-configured instances of
// the same plugin through one engine: distinct knobs must produce distinct
// cache entries (different salts), and repeated identical calls must hit.
func TestPluginCacheSaltIsolation(t *testing.T) {
	days := failHistory(10, 3)
	w := Window{Start: 8 * time.Hour, Length: 2 * time.Hour}
	in := PluginInput{Days: days, Window: w, Period: time.Minute}
	e := NewEngine(EngineConfig{})

	plain := DefaultSpectral()
	margined := DefaultSpectral()
	margined.MarginFraction = 0.5
	if plain.CacheSalt() == margined.CacheSalt() {
		t.Fatal("different MarginFraction, same cache salt")
	}
	trPlain, err := e.PredictPlugin(plain, in)
	if err != nil {
		t.Fatal(err)
	}
	trMargined, err := e.PredictPlugin(margined, in)
	if err != nil {
		t.Fatal(err)
	}
	if trMargined >= trPlain {
		t.Fatalf("margined TR %v not below plain TR %v — cache entries collided?", trMargined, trPlain)
	}
	misses := e.Stats().Misses
	for i := 0; i < 3; i++ {
		again, err := e.PredictPlugin(plain, in)
		if err != nil {
			t.Fatal(err)
		}
		if again != trPlain {
			t.Fatalf("cached TR %v != first %v", again, trPlain)
		}
	}
	if got := e.Stats().Misses; got != misses {
		t.Fatalf("repeated identical plugin calls missed the cache: %d -> %d misses", misses, got)
	}

	// The plugin name is part of the key, so two plugins over the same days
	// and window can never share an entry.
	pct := DefaultPercentile()
	trPct, err := e.PredictPlugin(pct, in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.PredictPlugin(plain, in)
	if err != nil {
		t.Fatal(err)
	}
	if again != trPlain {
		t.Fatalf("FFT entry clobbered by PCT: %v != %v (pct %v)", again, trPlain, trPct)
	}
}
