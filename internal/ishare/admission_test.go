package ishare

import (
	"testing"
	"time"
)

// waitWaiting polls until the admitter has n queued waiters; enqueue order
// in these tests must be deterministic, and acquire blocks, so the test
// observes the count instead of racing the goroutines.
func waitWaiting(t *testing.T, a *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		w := a.waiting
		a.mu.Unlock()
		if w == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("admitter never reached %d waiters", n)
}

func TestAdmitterImmediateGrantAndRelease(t *testing.T) {
	a := newAdmitter(2, 4)
	done := make(chan struct{})
	if !a.acquire("A", done) || !a.acquire("B", done) {
		t.Fatal("free slots were not granted immediately")
	}
	a.release()
	a.release()
	if !a.acquire("C", done) {
		t.Fatal("released slot was not granted")
	}
	a.release()
	if got := a.shedCount(); got != 0 {
		t.Fatalf("sheds = %d, want 0", got)
	}
}

// TestAdmitterFairnessAndShed saturates a one-slot admitter, queues two
// waiters on connection A and one on connection B, and checks that (1) the
// waiter cap sheds the overflow request immediately and (2) freed slots are
// granted round-robin across connections — A1, B1, A2 — so the pipelining
// connection A cannot starve B.
func TestAdmitterFairnessAndShed(t *testing.T) {
	a := newAdmitter(1, 3)
	done := make(chan struct{})
	defer close(done)
	if !a.acquire("A", done) {
		t.Fatal("initial slot not granted")
	}

	granted := make(chan string, 3)
	enqueue := func(key, name string, n int) {
		go func() {
			if a.acquire(key, done) {
				granted <- name
			} else {
				granted <- name + "-shed"
			}
		}()
		waitWaiting(t, a, n)
	}
	enqueue("A", "A1", 1)
	enqueue("A", "A2", 2)
	enqueue("B", "B1", 3)

	// The queue is at maxWait: the next request is shed, not queued.
	if a.acquire("C", done) {
		t.Fatal("overflow request was admitted past the waiter cap")
	}
	if got := a.shedCount(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}

	// Each release grants exactly one waiter; the grant order alternates
	// across connections before returning to A's second request.
	for i, want := range []string{"A1", "B1", "A2"} {
		a.release()
		select {
		case got := <-granted:
			if got != want {
				t.Fatalf("grant %d went to %s, want %s", i, got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived", i)
		}
	}
	// The last grantee finishes: the slot must come back whole.
	a.release()
	if !a.acquire("D", done) {
		t.Fatal("slot leaked through the grant cycle")
	}
}

// TestAdmitterDoneWithdrawsWaiter closes a queued waiter's done channel (its
// connection died) and checks the slot accounting stays intact.
func TestAdmitterDoneWithdrawsWaiter(t *testing.T) {
	a := newAdmitter(1, 4)
	hold := make(chan struct{})
	if !a.acquire("A", hold) {
		t.Fatal("initial slot not granted")
	}
	connDone := make(chan struct{})
	result := make(chan bool, 1)
	go func() { result <- a.acquire("B", connDone) }()
	waitWaiting(t, a, 1)
	close(connDone)
	if <-result {
		t.Fatal("dead connection's waiter was granted")
	}
	waitWaiting(t, a, 0)
	a.release()
	if !a.acquire("C", hold) {
		t.Fatal("slot lost after a withdrawn waiter")
	}
}

// TestAdmitterForgetDropsQueue removes a dead connection's queue and checks
// the waiter count and round-robin ring stay consistent for the survivors.
func TestAdmitterForgetDropsQueue(t *testing.T) {
	a := newAdmitter(1, 4)
	hold := make(chan struct{})
	if !a.acquire("A", hold) {
		t.Fatal("initial slot not granted")
	}
	deadDone := make(chan struct{})
	deadResult := make(chan bool, 1)
	go func() { deadResult <- a.acquire("dead", deadDone) }()
	waitWaiting(t, a, 1)
	liveResult := make(chan bool, 1)
	go func() { liveResult <- a.acquire("live", hold) }()
	waitWaiting(t, a, 2)

	// The server tears down the dead connection: done closes, then forget.
	close(deadDone)
	if <-deadResult {
		t.Fatal("dead connection's waiter was granted")
	}
	a.forget("dead")

	a.release()
	select {
	case ok := <-liveResult:
		if !ok {
			t.Fatal("surviving waiter was refused")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("surviving waiter never granted after forget")
	}
	a.release()
	if !a.acquire("B", hold) {
		t.Fatal("slot lost after forget")
	}
}
