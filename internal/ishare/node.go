package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"fgcs/internal/avail"
	"fgcs/internal/durable"
	"fgcs/internal/monitor"
	"fgcs/internal/simclock"
	"fgcs/internal/trace"
)

// HostNode bundles the three prediction-related daemons of Figure 2 — the
// iShare gateway, the resource monitor and the state manager — wired
// exactly as the paper describes: the monitor samples host resource usage
// periodically, each sample flows to the state manager (history logs,
// prediction) and to the gateway (guest-process control).
type HostNode struct {
	Gateway *Gateway
	Monitor *monitor.Monitor
	SM      *StateManager
	// Persist is the durability layer, nil unless NodeConfig.Durable was
	// set. When present it sits between the monitor and the gateway in the
	// sample path.
	Persist *Persister

	clock  simclock.Clock
	period time.Duration
}

// NodeConfig configures a host node.
type NodeConfig struct {
	MachineID string
	// Cfg is the availability model configuration.
	Cfg avail.Config
	// Period is the monitoring period (defaults to the paper's 6 s).
	Period time.Duration
	// Clock defaults to the wall clock.
	Clock simclock.Clock
	// Preloaded optionally seeds the state manager with history.
	Preloaded *trace.Machine
	// HistoryDays bounds the SMP day pool (0 = all).
	HistoryDays int
	// HeartbeatPath enables the t_monitor heartbeat file.
	HeartbeatPath string
	// Logger, when non-nil, receives structured records from the node's
	// daemons (monitor tick failures, recorder drops). It should already
	// carry the machine attr; components add their own.
	Logger *slog.Logger
	// Durable, when non-nil, persists the node's state (sample history,
	// idempotency keys, accuracy stats) through a WAL + snapshots. The node
	// takes ownership of the store: HostNode.Persist closes it.
	Durable *durable.Store
	// DurableRecovery carries the state recovered by durable.Open to replay
	// into the node before it starts serving. Nil on a fresh data dir.
	DurableRecovery *durable.Recovery
	// Ensemble turns on the predictor ensemble router: QueryTR answers come
	// from whichever registered predictor currently holds the best rolling
	// Brier score for this machine, with SMP as the fallback.
	Ensemble bool
	// EnsembleConfig tunes the router when Ensemble is set (zero-value
	// fields take the documented defaults).
	EnsembleConfig RouterConfig
	// Predictor, when non-empty, pins QueryTR serving to one registered
	// predictor plugin regardless of Ensemble (shadow scoring continues).
	Predictor string
}

// NewHostNode assembles a node around the given load source.
func NewHostNode(cfg NodeConfig, src monitor.LoadSource) (*HostNode, error) {
	if cfg.MachineID == "" {
		return nil, fmt.Errorf("ishare: node needs a machine id")
	}
	if cfg.Period <= 0 {
		cfg.Period = trace.DefaultPeriod
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	// The ensemble router needs the node's accuracy tracker before the state
	// manager exists, so the observability bundle is built up front and
	// injected; without the ensemble the manager builds its own.
	var deps SharedDeps
	if cfg.Ensemble {
		deps.Obs = NewNodeObs()
		deps.Router = NewRouter(deps.Obs.Tracker, cfg.EnsembleConfig)
		deps.Router.SetMetrics(deps.Obs.RouterDecisions, deps.Obs.RouterSwitches)
	}
	sm, err := NewStateManagerShared(cfg.MachineID, cfg.Period, cfg.Cfg, cfg.Clock, cfg.Preloaded, cfg.HistoryDays, deps)
	if err != nil {
		return nil, err
	}
	if err := sm.ForcePredictor(cfg.Predictor); err != nil {
		return nil, err
	}
	sm.SetLogger(cfg.Logger)
	gw, err := NewGateway(cfg.MachineID, cfg.Cfg, cfg.Period, cfg.Clock, sm)
	if err != nil {
		return nil, err
	}
	// The gateway sink feeds the state manager itself, so the monitor
	// only needs the one sink. The monitor gets the error and tick-latency
	// instruments but not the sample counter: samples are counted by the
	// state manager, which also sees replayed days (FeedDay), so the count
	// stays truthful however samples arrive.
	var persist *Persister
	var sink monitor.Sink = gw
	if cfg.Durable != nil {
		persist, err = NewPersister(cfg.Durable, cfg.DurableRecovery, sm, gw, cfg.Logger)
		if err != nil {
			return nil, err
		}
		sink = persist
	}
	obsv := sm.Obs()
	mon, err := monitor.New(monitor.Config{
		Period:        cfg.Period,
		Clock:         cfg.Clock,
		HeartbeatPath: cfg.HeartbeatPath,
		Metrics: &monitor.Metrics{
			Errors:      obsv.Monitor.Errors,
			TickSeconds: obsv.Monitor.TickSeconds,
		},
		Logger: cfg.Logger,
	}, src, sink)
	if err != nil {
		return nil, err
	}
	return &HostNode{Gateway: gw, Monitor: mon, SM: sm, Persist: persist, clock: cfg.Clock, period: cfg.Period}, nil
}

// Obs exposes the node's observability bundle (metrics registry + accuracy
// tracker), shared by every component on the node.
func (n *HostNode) Obs() *NodeObs { return n.SM.Obs() }

// Start launches the monitor loop in the background.
func (n *HostNode) Start() { go n.Monitor.Run() }

// Stop terminates the monitor loop.
func (n *HostNode) Stop() { n.Monitor.Stop() }

// Serve exposes the gateway on a TCP address and registers it with the
// registry (empty registryAddr skips registration).
func (n *HostNode) Serve(addr, registryAddr string) (*Server, error) {
	srv, err := n.Gateway.Serve(addr)
	if err != nil {
		return nil, err
	}
	if registryAddr != "" {
		if err := RegisterWith(registryAddr, n.Gateway.MachineID(), srv.Addr(), 5*time.Second); err != nil {
			_ = srv.Close()
			return nil, err
		}
	}
	return srv, nil
}

// StartHeartbeat re-registers the gateway with the registry every interval,
// each time with the given TTL, so the registration stays live as long as
// the node does and expires soon after it dies. Registration failures are
// retried under the caller's policy and otherwise left to the next beat —
// a missed heartbeat is exactly the signal the TTL is there to catch. The
// returned stop function ends the heartbeat (idempotent).
func (n *HostNode) StartHeartbeat(caller *Caller, registryAddr, gatewayAddr string, ttl, every time.Duration, timeout time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-done:
				return
			case <-n.clock.After(every):
				_ = RegisterWithTTL(context.Background(), caller, registryAddr, n.Gateway.MachineID(), gatewayAddr, ttl, timeout)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// FeedDay drives the node synchronously through one simulated day of
// samples, advancing from the given midnight. It returns the timestamp after
// the last sample. This is how simulations and tests run a node without
// real time passing; down samples are routed through the gateway's crash
// path exactly as a dead monitor would manifest.
func (n *HostNode) FeedDay(day *trace.Day) time.Time {
	var sink monitor.Sink = n.Gateway
	if n.Persist != nil {
		sink = n.Persist
	}
	t := day.Date
	for _, s := range day.Samples {
		if s.Up {
			sink.Record(t, s)
		} else {
			// The monitor cannot sample a dead machine; the guest dies
			// with the node and the recorder later back-fills the gap.
			n.Gateway.Crash()
			sink.Record(t, s)
		}
		t = t.Add(day.Period)
	}
	return t
}
